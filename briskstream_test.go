package briskstream

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// buildWC assembles a word-count topology on the public API.
func buildWC(limit int64) *Topology {
	var emitted atomic.Int64
	t := NewTopology("wc")
	t.Spout("source", func() Spout {
		return SpoutFunc(func(c Collector) error {
			if emitted.Add(1) > limit {
				return io.EOF
			}
			c.Emit("the quick brown fox jumps over the lazy dog tonight")
			return nil
		})
	})
	t.Operator("split", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			for _, w := range strings.Fields(tp.Str(0)) {
				c.Emit(w)
			}
			return nil
		})
	}).Subscribe("source", Shuffle).Selectivity(DefaultStream, 10)
	t.Operator("count", func() Operator {
		counts := map[string]int64{}
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			w := tp.Str(0)
			if _, ok := counts[w]; !ok {
				// The Str view dies with the tuple; own the key bytes the
				// first time a word is seen.
				w = strings.Clone(w)
			}
			counts[w]++
			c.Emit(w, counts[w])
			return nil
		})
	}).Subscribe("split", FieldsKey(0)).Parallelism(2)
	t.Sink("sink", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("count", Shuffle)
	return t
}

func TestTopologyRunEndToEnd(t *testing.T) {
	topo := buildWC(500)
	res, err := topo.Run(RunConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != 5000 {
		t.Fatalf("sink tuples = %d, want 5000 (500 sentences x 10 words)", res.SinkTuples)
	}
	if res.Processed["split"] != 500 {
		t.Errorf("split processed %d", res.Processed["split"])
	}
}

func TestTopologyValidateCatchesMistakes(t *testing.T) {
	bad := NewTopology("bad")
	bad.Spout("s", func() Spout { return SpoutFunc(func(c Collector) error { return io.EOF }) })
	// No sink.
	if err := bad.Validate(); err == nil {
		t.Error("topology without sink validated")
	}

	dup := NewTopology("dup")
	dup.Spout("x", nil)
	dup.Operator("x", nil)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate operator name validated")
	}

	badPar := buildWC(1)
	badPar.Operator("extra", func() Operator { return nil }).Parallelism(0)
	if err := badPar.Validate(); err == nil {
		t.Error("zero parallelism validated")
	}
}

func TestSubscribeUnknownProducer(t *testing.T) {
	topo := NewTopology("t")
	topo.Sink("k", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("ghost", Shuffle)
	if err := topo.Validate(); err == nil {
		t.Error("edge from unknown producer validated")
	}
}

func wcStats() map[string]OperatorStats {
	return map[string]OperatorStats{
		"source": {ExecNs: 450, MemoryBytes: 140, TupleBytes: 70},
		"split":  {ExecNs: 1600, MemoryBytes: 300, TupleBytes: 70},
		"count":  {ExecNs: 612, MemoryBytes: 80, TupleBytes: 16},
		"sink":   {ExecNs: 100, MemoryBytes: 48, TupleBytes: 24},
	}
}

func TestOptimizeOnServerA(t *testing.T) {
	topo := buildWC(1)
	p, err := topo.Optimize(OptimizeConfig{
		Machine:         ServerA(),
		Stats:           wcStats(),
		SearchNodeLimit: 400,
		MaxIterations:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedThroughput <= 0 {
		t.Fatal("no predicted throughput")
	}
	if p.Replication["count"] < 2 {
		t.Errorf("count replication = %d; the counter should scale", p.Replication["count"])
	}
	if !strings.Contains(p.PlacementText, "S0") {
		t.Errorf("placement text = %q", p.PlacementText)
	}
	if d := p.Describe(); !strings.Contains(d, "replication") || !strings.Contains(d, "placement") {
		t.Errorf("Describe output incomplete:\n%s", d)
	}
	if p.ExecGraph() == nil {
		t.Error("ExecGraph not exposed")
	}
}

func TestOptimizeRequiresInputs(t *testing.T) {
	topo := buildWC(1)
	if _, err := topo.Optimize(OptimizeConfig{Stats: wcStats()}); err == nil {
		t.Error("missing machine accepted")
	}
	if _, err := topo.Optimize(OptimizeConfig{Machine: ServerA()}); err == nil {
		t.Error("missing stats accepted")
	}
	partial := wcStats()
	delete(partial, "count")
	if _, err := topo.Optimize(OptimizeConfig{Machine: ServerA(), Stats: partial}); err == nil {
		t.Error("partial stats accepted")
	}
}

func TestSimulatePlan(t *testing.T) {
	topo := buildWC(1)
	m := ServerA()
	p, err := topo.Optimize(OptimizeConfig{
		Machine: m, Stats: wcStats(), SearchNodeLimit: 400, MaxIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := topo.Simulate(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput <= 0 {
		t.Error("simulated throughput zero")
	}
	// Simulation should land within 2x of the model's prediction.
	ratio := sr.Throughput / p.PredictedThroughput
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("sim/model = %v, want within [0.5, 2]", ratio)
	}
	if len(sr.Utilization) == 0 {
		t.Error("no per-vertex utilization")
	}
	if _, err := topo.Simulate(nil, m); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestOptimizeSmallMachineBacksOffIngress(t *testing.T) {
	topo := buildWC(1)
	p, err := topo.Optimize(OptimizeConfig{
		Machine:         SyntheticMachine("laptop", 1, 2),
		Stats:           wcStats(),
		SearchNodeLimit: 300,
		MaxIterations:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedThroughput <= 0 {
		t.Error("small machine plan has no throughput")
	}
}

func TestRunWithOptimizedReplication(t *testing.T) {
	topo := buildWC(300)
	res, err := topo.Run(RunConfig{
		Replication: map[string]int{"source": 1, "split": 2, "count": 3, "sink": 1},
		Duration:    5 * time.Second, // safety bound; EOF ends sooner
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 3000 {
		t.Fatalf("sink tuples = %d, want 3000", res.SinkTuples)
	}
}

// ckptSource is a replayable, snapshottable public-API source: emits
// 1..limit and can rewind.
type ckptSource struct{ i, limit int64 }

func (s *ckptSource) Next(c Collector) error {
	if s.i >= s.limit {
		return io.EOF
	}
	s.i++
	c.Emit(s.i)
	return nil
}

func (s *ckptSource) Offset() int64             { return s.i }
func (s *ckptSource) SeekTo(offset int64) error { s.i = offset; return nil }

// TestRunWithCheckpointsAndResume drives the public fault-tolerance
// surface: a checkpointed run followed by a Resume run on a fresh
// topology instance sharing the coordinator, with a Snapshotter sink
// whose state survives the restore.
func TestRunWithCheckpointsAndResume(t *testing.T) {
	co := NewCheckpointCoordinator(NewMemoryCheckpointStore())
	var lastSum atomic.Int64
	build := func(limit int64) *Topology {
		topo := NewTopology("ckpt")
		topo.Spout("source", func() Spout { return &ckptSource{limit: limit} })
		topo.Sink("sum", func() Operator {
			sum := int64(0)
			return &struct {
				OperatorFunc
				Snapshotter
			}{
				OperatorFunc(func(c Collector, tp *Tuple) error {
					sum += tp.Int(0)
					lastSum.Store(sum)
					return nil
				}),
				snapshotterFuncs{
					snap: func(enc *SnapshotEncoder) error { enc.Int64(sum); return nil },
					rest: func(dec *SnapshotDecoder) error { sum = dec.Int64(); lastSum.Store(sum); return dec.Err() },
				},
			}
		}).Subscribe("source", Global)
		return topo
	}
	// Run 1: finite stream, checkpoints on an interval. The stream is
	// long enough for at least one completed checkpoint on any machine.
	const n = 2_000_000
	res, err := build(n).Run(RunConfig{CheckpointInterval: time.Millisecond, Checkpoint: co})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if co.Completed() == 0 {
		t.Skip("run finished before any checkpoint completed (machine too fast for the interval)")
	}
	want := int64(n) * (n + 1) / 2
	if got := lastSum.Load(); got != want {
		t.Fatalf("run 1 sum = %d, want %d", got, want)
	}
	// Run 2: a fresh topology (fresh operator/spout instances, as after
	// a process restart with a persistent store) resumes from the
	// coordinator's latest checkpoint and replays to EOF; the final
	// state must match the failure-free total exactly.
	lastSum.Store(0)
	res2, err := build(n).Run(RunConfig{Checkpoint: co, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Errors) != 0 {
		t.Fatalf("resume errors: %v", res2.Errors)
	}
	if got := lastSum.Load(); got != want {
		t.Fatalf("resumed sum = %d, want %d", got, want)
	}
	// Resume without any checkpoint is a clean error.
	empty := NewCheckpointCoordinator(nil)
	if _, err := build(10).Run(RunConfig{Checkpoint: empty, Resume: true}); err == nil {
		t.Fatal("Resume with no completed checkpoint must fail")
	}
}

// snapshotterFuncs adapts two closures to Snapshotter.
type snapshotterFuncs struct {
	snap func(*SnapshotEncoder) error
	rest func(*SnapshotDecoder) error
}

func (s snapshotterFuncs) Snapshot(enc *SnapshotEncoder) error { return s.snap(enc) }
func (s snapshotterFuncs) Restore(dec *SnapshotDecoder) error  { return s.rest(dec) }

// TestCheckpointIntervalRequiresCoordinator: a throwaway hidden
// coordinator would make checkpoints pure overhead with no recovery
// handle, so the API refuses the interval without one.
func TestCheckpointIntervalRequiresCoordinator(t *testing.T) {
	if _, err := buildWC(10).Run(RunConfig{CheckpointInterval: time.Millisecond}); err == nil {
		t.Fatal("CheckpointInterval without a coordinator must be rejected")
	}
}
