package briskstream

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// buildWC assembles a word-count topology on the public API.
func buildWC(limit int64) *Topology {
	var emitted atomic.Int64
	t := NewTopology("wc")
	t.Spout("source", func() Spout {
		return SpoutFunc(func(c Collector) error {
			if emitted.Add(1) > limit {
				return io.EOF
			}
			c.Emit("the quick brown fox jumps over the lazy dog tonight")
			return nil
		})
	})
	t.Operator("split", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			for _, w := range strings.Fields(tp.String(0)) {
				c.Emit(w)
			}
			return nil
		})
	}).Subscribe("source", Shuffle).Selectivity(DefaultStream, 10)
	t.Operator("count", func() Operator {
		counts := map[string]int64{}
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			w := tp.String(0)
			counts[w]++
			c.Emit(w, counts[w])
			return nil
		})
	}).Subscribe("split", FieldsKey(0)).Parallelism(2)
	t.Sink("sink", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("count", Shuffle)
	return t
}

func TestTopologyRunEndToEnd(t *testing.T) {
	topo := buildWC(500)
	res, err := topo.Run(RunConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != 5000 {
		t.Fatalf("sink tuples = %d, want 5000 (500 sentences x 10 words)", res.SinkTuples)
	}
	if res.Processed["split"] != 500 {
		t.Errorf("split processed %d", res.Processed["split"])
	}
}

func TestTopologyValidateCatchesMistakes(t *testing.T) {
	bad := NewTopology("bad")
	bad.Spout("s", func() Spout { return SpoutFunc(func(c Collector) error { return io.EOF }) })
	// No sink.
	if err := bad.Validate(); err == nil {
		t.Error("topology without sink validated")
	}

	dup := NewTopology("dup")
	dup.Spout("x", nil)
	dup.Operator("x", nil)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate operator name validated")
	}

	badPar := buildWC(1)
	badPar.Operator("extra", func() Operator { return nil }).Parallelism(0)
	if err := badPar.Validate(); err == nil {
		t.Error("zero parallelism validated")
	}
}

func TestSubscribeUnknownProducer(t *testing.T) {
	topo := NewTopology("t")
	topo.Sink("k", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("ghost", Shuffle)
	if err := topo.Validate(); err == nil {
		t.Error("edge from unknown producer validated")
	}
}

func wcStats() map[string]OperatorStats {
	return map[string]OperatorStats{
		"source": {ExecNs: 450, MemoryBytes: 140, TupleBytes: 70},
		"split":  {ExecNs: 1600, MemoryBytes: 300, TupleBytes: 70},
		"count":  {ExecNs: 612, MemoryBytes: 80, TupleBytes: 16},
		"sink":   {ExecNs: 100, MemoryBytes: 48, TupleBytes: 24},
	}
}

func TestOptimizeOnServerA(t *testing.T) {
	topo := buildWC(1)
	p, err := topo.Optimize(OptimizeConfig{
		Machine:         ServerA(),
		Stats:           wcStats(),
		SearchNodeLimit: 400,
		MaxIterations:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedThroughput <= 0 {
		t.Fatal("no predicted throughput")
	}
	if p.Replication["count"] < 2 {
		t.Errorf("count replication = %d; the counter should scale", p.Replication["count"])
	}
	if !strings.Contains(p.PlacementText, "S0") {
		t.Errorf("placement text = %q", p.PlacementText)
	}
	if d := p.Describe(); !strings.Contains(d, "replication") || !strings.Contains(d, "placement") {
		t.Errorf("Describe output incomplete:\n%s", d)
	}
	if p.ExecGraph() == nil {
		t.Error("ExecGraph not exposed")
	}
}

func TestOptimizeRequiresInputs(t *testing.T) {
	topo := buildWC(1)
	if _, err := topo.Optimize(OptimizeConfig{Stats: wcStats()}); err == nil {
		t.Error("missing machine accepted")
	}
	if _, err := topo.Optimize(OptimizeConfig{Machine: ServerA()}); err == nil {
		t.Error("missing stats accepted")
	}
	partial := wcStats()
	delete(partial, "count")
	if _, err := topo.Optimize(OptimizeConfig{Machine: ServerA(), Stats: partial}); err == nil {
		t.Error("partial stats accepted")
	}
}

func TestSimulatePlan(t *testing.T) {
	topo := buildWC(1)
	m := ServerA()
	p, err := topo.Optimize(OptimizeConfig{
		Machine: m, Stats: wcStats(), SearchNodeLimit: 400, MaxIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := topo.Simulate(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput <= 0 {
		t.Error("simulated throughput zero")
	}
	// Simulation should land within 2x of the model's prediction.
	ratio := sr.Throughput / p.PredictedThroughput
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("sim/model = %v, want within [0.5, 2]", ratio)
	}
	if len(sr.Utilization) == 0 {
		t.Error("no per-vertex utilization")
	}
	if _, err := topo.Simulate(nil, m); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestOptimizeSmallMachineBacksOffIngress(t *testing.T) {
	topo := buildWC(1)
	p, err := topo.Optimize(OptimizeConfig{
		Machine:         SyntheticMachine("laptop", 1, 2),
		Stats:           wcStats(),
		SearchNodeLimit: 300,
		MaxIterations:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictedThroughput <= 0 {
		t.Error("small machine plan has no throughput")
	}
}

func TestRunWithOptimizedReplication(t *testing.T) {
	topo := buildWC(300)
	res, err := topo.Run(RunConfig{
		Replication: map[string]int{"source": 1, "split": 2, "count": 3, "sink": 1},
		Duration:    5 * time.Second, // safety bound; EOF ends sooner
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 3000 {
		t.Fatalf("sink tuples = %d, want 3000", res.SinkTuples)
	}
}
