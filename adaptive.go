package briskstream

// The autoscaler: the closed profile → plan → rescale loop. Run with
// RunConfig.Adaptive periodically snapshots the engine's live profiling
// counters, reduces them into the statistics RLAS consumes, and asks
// the adaptive Advisor whether a re-optimized plan beats the running
// one by more than the configured gain. When it does, the engine is
// rolled over online: an aligned checkpoint is triggered, its keyed
// state re-sharded onto the recommended replication, and a fresh engine
// restores the cut and replays the sources — so the rescaled run's
// output is exactly the output of a static run.

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"briskstream/internal/adaptive"
	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
)

// AdaptiveConfig enables and tunes the autoscaler.
type AdaptiveConfig struct {
	// Machine is the optimization target. Nil defaults to a model of
	// the machine under us, built from the detected NUMA topology
	// (HostMachine) — the right target when the plan will execute here.
	Machine *Machine
	// Stats supplies the baseline operator statistics the initial plan
	// is optimized with (required); live profiling refines them.
	Stats map[string]OperatorStats
	// Interval is the profiling/evaluation period (default 200ms).
	Interval time.Duration
	// SampleEvery times every k-th operator invocation for live
	// profiling (default 64).
	SampleEvery int
	// Drift is the relative statistics change that counts as stale
	// (default 0.2); Gain the minimum predicted relative improvement
	// that justifies a rescale (default 0.1).
	Drift, Gain float64
	// MaxRescales bounds online rollovers (default 2).
	MaxRescales int
	// OnDecision observes every advisor verdict (optional; called on
	// the autoscaler's control goroutine).
	OnDecision func(AdaptiveDecision)
}

// AdaptiveDecision reports one advisor evaluation.
type AdaptiveDecision struct {
	// Rescaled reports whether the engine was rolled onto Replication.
	Rescaled bool
	// Replication is the recommended replica count per operator (nil
	// when the advisor saw no drift).
	Replication map[string]int
	// CurrentPredicted and NewPredicted are modelled throughputs of the
	// running and recommended plans under the observed statistics.
	CurrentPredicted, NewPredicted float64
	// Drifted lists the operators whose statistics moved.
	Drifted []string
	// Err reports a failed rescale attempt (the run continues).
	Err error
}

// runAdaptive executes the topology under the autoscaler.
func (t *Topology) runAdaptive(cfg RunConfig) (*RunResult, error) {
	ac := cfg.Adaptive
	if ac.Stats == nil {
		return nil, fmt.Errorf("briskstream: Adaptive requires Stats")
	}
	machine := ac.Machine
	if machine == nil {
		machine = HostMachine()
	}
	interval := ac.Interval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	maxRescales := ac.MaxRescales
	if maxRescales <= 0 {
		maxRescales = 2
	}

	// Initial plan: RLAS under the baseline statistics, with ingress
	// points pinned (a live source cannot be split or merged).
	p, err := t.Optimize(OptimizeConfig{Machine: machine, Stats: ac.Stats, FixedSpouts: true})
	if err != nil {
		return nil, err
	}
	repl := t.pinnedReplication(p.Replication, cfg)
	advisor, err := adaptive.New(t.g, p.stats, p.inner, adaptive.Config{
		Machine: machine, Drift: ac.Drift, Gain: ac.Gain,
		Optimizer: adaptive.OptimizerConfig{FixedSpouts: true},
	})
	if err != nil {
		return nil, err
	}

	co := cfg.Checkpoint
	if co == nil {
		// Unlike plain checkpointed runs, the autoscaler itself consumes
		// the checkpoints (they are the migration vehicle), so an
		// internal coordinator is not dead weight.
		co = checkpoint.NewCoordinator(nil)
	}
	ecfg := engine.DefaultConfig()
	if cfg.BatchSize > 0 {
		ecfg.BatchSize = cfg.BatchSize
	}
	if cfg.QueueCapacity > 0 {
		ecfg.QueueCapacity = cfg.QueueCapacity
	}
	if cfg.Linger != 0 {
		ecfg.Linger = max(cfg.Linger, 0)
	}
	ecfg.Checkpoint = co
	ecfg.CheckpointInterval = cfg.CheckpointInterval
	ecfg.AlignTimeout = cfg.AlignTimeout
	ecfg.ProfileSampleEvery = ac.SampleEvery
	if ecfg.ProfileSampleEvery <= 0 {
		ecfg.ProfileSampleEvery = 64
	}
	applyObsEngineConfig(&ecfg, cfg)

	sess, err := startObs(cfg)
	if err != nil {
		return nil, err
	}
	defer sess.close()
	ctl := &adaptiveCtl{sess: sess}
	if sess != nil {
		ag := sess.reg.Group("adaptive")
		ag.Counter("brisk_rescales_total", "Online rollovers the autoscaler performed this Run.", nil, ctl.rescales.Load)
		ag.Gauge("brisk_rescale_predicted_gain", "Model-predicted relative gain of the latest rescale.", nil, func() float64 {
			return floatFromAtomic(&ctl.lastPredicted)
		})
		ag.Gauge("brisk_rescale_realized_gain", "Measured relative gain of the latest settled rescale.", nil, func() float64 {
			return floatFromAtomic(&ctl.lastRealized)
		})
		// /statusz carries the full audit trail (predicted vs realized
		// gain plus measured pause per settled rescale), so pollers get
		// history, not just the latest-value gauges.
		sess.status("rescale_outcomes", func() any { return ctl.outcomes() })
	}

	total := &RunResult{Processed: map[string]uint64{}}
	start := time.Now()
	var restore *Checkpoint
	resume := cfg.Resume
	for {
		segDur := time.Duration(0)
		if cfg.Duration > 0 {
			segDur = cfg.Duration - time.Since(start)
			if segDur <= 0 {
				break
			}
		}
		e, err := engine.New(engine.Topology{
			App: t.g, Spouts: t.spouts, Operators: t.operators,
			Replication: repl, Schemas: t.schemas,
		}, ecfg)
		if err != nil {
			return nil, err
		}
		sess.bindEngine(e)
		if restore != nil {
			if err := e.RestoreFrom(restore); err != nil {
				return nil, err
			}
			restore = nil
		} else if resume {
			if _, err := e.Restore(); err != nil {
				return nil, err
			}
			resume = false
		}
		if !ctl.killAt.IsZero() {
			// The previous segment ended in Kill; the rescaled engine is
			// rebuilt and restored, so processing resumes the moment its
			// Run starts — the gap is the rescale's observable pause.
			pause := time.Since(ctl.killAt).Milliseconds()
			ctl.mu.Lock()
			ctl.lastPause = pause
			ctl.mu.Unlock()
			sess.event("rescale_end", map[string]string{
				"pause_ms": strconv.FormatInt(pause, 10),
			})
			ctl.killAt = time.Time{}
		}
		res, rescaled, err := t.superviseSegment(e, co, advisor, ac, interval, segDur, &repl, &restore, total.Rescales < maxRescales, ctl)
		if err != nil {
			return nil, err
		}
		total.Duration = time.Since(start)
		total.SinkTuples += res.SinkTuples
		total.AlignTimeouts += res.AlignTimeouts
		total.Errors = append(total.Errors, res.Errors...)
		for op, n := range res.Processed {
			total.Processed[op] += n
		}
		total.LatencyP50 = res.Latency.Quantile(0.5) / 1e6
		total.LatencyP99 = res.Latency.Quantile(0.99) / 1e6
		if !rescaled {
			break
		}
		total.Rescales++
	}
	if total.Duration > 0 {
		total.Throughput = float64(total.SinkTuples) / total.Duration.Seconds()
	}
	for _, o := range advisor.Outcomes() {
		total.RescaleOutcomes = append(total.RescaleOutcomes, RescaleOutcome{
			At: o.At, PredictedGain: o.PredictedGain, RealizedGain: o.RealizedGain,
		})
	}
	return total, nil
}

// adaptiveCtl carries the autoscaler's telemetry state across segments:
// the obs session, the rescale counter the metric pulls from, the
// kill timestamp the pause measurement spans, and the in-flight
// predicted-vs-realized gain measurement.
type adaptiveCtl struct {
	sess     *obsSession
	rescales atomic.Uint64
	killAt   time.Time
	pending  *pendingOutcome
	// lastPredicted/lastRealized hold the latest gains as float bits
	// (gauges read them from the scrape goroutine).
	lastPredicted, lastRealized atomic.Uint64

	// mu guards the rescale audit trail: supervise appends on the
	// control goroutine, /statusz reads from scrape goroutines.
	mu        sync.Mutex
	audits    []rescaleAudit
	lastPause int64 // measured pause of the latest rescale (ms)
}

// rescaleAudit is one settled rescale as /statusz publishes it:
// what the model promised, what the sink rate delivered, and how long
// processing stood still during the rollover.
type rescaleAudit struct {
	At            time.Time `json:"at"`
	PredictedGain float64   `json:"predicted_gain"`
	RealizedGain  float64   `json:"realized_gain"`
	PauseMs       int64     `json:"pause_ms"`
}

// outcomes snapshots the audit trail for /statusz.
func (c *adaptiveCtl) outcomes() []rescaleAudit {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rescaleAudit, len(c.audits))
	copy(out, c.audits)
	return out
}

// pendingOutcome is a rescale whose realized gain is still being
// measured: rate0 is the pre-rescale sink rate, and the measurement
// settles after the rescaled engine has run a few profiling ticks.
type pendingOutcome struct {
	predicted float64
	rate0     float64
	ticks     int
}

func floatToAtomic(a *atomic.Uint64, v float64) { a.Store(math.Float64bits(v)) }
func floatFromAtomic(a *atomic.Uint64) float64  { return math.Float64frombits(a.Load()) }

// superviseSegment runs one engine segment under the profiling ticker.
// It returns the segment result and whether the segment ended in a
// rescale (repl and restore are then updated for the next segment).
func (t *Topology) superviseSegment(e *engine.Engine, co *CheckpointCoordinator, advisor *adaptive.Advisor, ac *AdaptiveConfig, interval, segDur time.Duration, repl *map[string]int, restore **Checkpoint, mayRescale bool, ctl *adaptiveCtl) (*engine.Result, bool, error) {
	resCh := make(chan *engine.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		r, err := e.Run(segDur)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- r
	}()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var lastSink uint64
	var liveRate float64
	for {
		select {
		case err := <-errCh:
			return nil, false, err
		case res := <-resCh:
			return res, false, nil
		case <-tick.C:
		}
		// Live sink rate over the last tick: the before/after figure the
		// realized-gain audit compares (the model predicts steady-state
		// throughput, so both sides are measured the same way).
		sink := e.SinkCount()
		liveRate = float64(sink-lastSink) / interval.Seconds()
		lastSink = sink
		if p := ctl.pending; p != nil {
			// Skip the first post-rescale ticks: they blend restore replay
			// with steady state and would misattribute the pause to the
			// plan.
			if p.ticks++; p.ticks >= 3 {
				ctl.pending = nil
				realized := 0.0
				if p.rate0 > 0 {
					realized = liveRate/p.rate0 - 1
				}
				floatToAtomic(&ctl.lastRealized, realized)
				advisor.RecordOutcome(adaptive.Outcome{
					At: time.Now(), PredictedGain: p.predicted, RealizedGain: realized,
				})
				ctl.mu.Lock()
				ctl.audits = append(ctl.audits, rescaleAudit{
					At: time.Now(), PredictedGain: p.predicted,
					RealizedGain: realized, PauseMs: ctl.lastPause,
				})
				ctl.mu.Unlock()
				ctl.sess.event("rescale_realized", map[string]string{
					"predicted_gain": formatGain(p.predicted),
					"realized_gain":  formatGain(realized),
				})
			}
		}
		if err := advisor.RecordEngine(e.ProfileSnapshot()); err != nil {
			continue // e.g. a zero-duration tick; just skip this sample
		}
		if !mayRescale {
			continue
		}
		rec, err := advisor.Evaluate()
		if err != nil {
			continue // not enough history yet
		}
		dec := AdaptiveDecision{
			CurrentPredicted: rec.CurrentPredicted,
			NewPredicted:     rec.NewPredicted,
			Drifted:          rec.DriftedOperators,
		}
		if !rec.Reoptimize {
			if ac.OnDecision != nil {
				ac.OnDecision(dec)
			}
			continue
		}
		predicted := 0.0
		if rec.CurrentPredicted > 0 {
			predicted = rec.NewPredicted/rec.CurrentPredicted - 1
		}
		ctl.sess.event("advisor_decision", map[string]string{
			"predicted_gain":    formatGain(predicted),
			"current_predicted": strconv.FormatFloat(rec.CurrentPredicted, 'f', 1, 64),
			"new_predicted":     strconv.FormatFloat(rec.NewPredicted, 'f', 1, 64),
			"drifted":           strconv.Itoa(len(rec.DriftedOperators)),
		})
		observed, _ := advisor.ObservedStats()
		newCfg, err := rec.Plan.Apply()
		if err != nil {
			dec.Err = err
			if ac.OnDecision != nil {
				ac.OnDecision(dec)
			}
			continue
		}
		newRepl := t.pinnedReplication(newCfg.Replication, RunConfig{Replication: *repl})
		dec.Replication = newRepl
		if sameReplication(newRepl, *repl) {
			// Same shape, fresher statistics: adopt the baseline so the
			// advisor stops re-recommending, but keep the engine running.
			advisor.Adopt(rec.Plan, observed)
			if ac.OnDecision != nil {
				ac.OnDecision(dec)
			}
			continue
		}
		// Roll over: checkpoint the running engine, re-shard the cut
		// onto the new replication, and only then kill — a failed
		// re-shard leaves the run untouched.
		ctl.sess.event("rescale_begin", map[string]string{"predicted_gain": formatGain(predicted)})
		cp2, err := t.migrateState(e, co, resCh, errCh, newRepl)
		if err != nil {
			dec.Err = err
			if ac.OnDecision != nil {
				ac.OnDecision(dec)
			}
			if cp2 == nil {
				continue // checkpoint never completed; keep running
			}
			return nil, false, err
		}
		ctl.killAt = time.Now()
		e.Kill()
		select {
		case err := <-errCh:
			return nil, false, err
		case res := <-resCh:
			advisor.Adopt(rec.Plan, observed)
			*repl = newRepl
			*restore = cp2
			dec.Rescaled = true
			ctl.rescales.Add(1)
			floatToAtomic(&ctl.lastPredicted, predicted)
			ctl.pending = &pendingOutcome{predicted: predicted, rate0: liveRate}
			if ac.OnDecision != nil {
				ac.OnDecision(dec)
			}
			return res, true, nil
		}
	}
}

// migrateState triggers an aligned checkpoint on the running engine,
// waits for it to complete, and re-shards it onto newRepl. A nil
// checkpoint with an error means the cut never completed (the caller
// should keep running); a non-nil error after completion means the
// migration itself failed.
func (t *Topology) migrateState(e *engine.Engine, co *CheckpointCoordinator, resCh chan *engine.Result, errCh chan error, newRepl map[string]int) (*Checkpoint, error) {
	id := e.TriggerCheckpoint()
	if id == 0 {
		return nil, fmt.Errorf("briskstream: checkpointing unavailable for rescale")
	}
	deadline := time.Now().Add(10 * time.Second)
	for co.LatestID() < id {
		select {
		case err := <-errCh:
			errCh <- err
			return nil, fmt.Errorf("briskstream: run failed while awaiting rescale checkpoint")
		case res := <-resCh:
			// The stream ended under us; no rescale needed.
			resCh <- res
			return nil, fmt.Errorf("briskstream: run finished before rescale checkpoint %d", id)
		case <-time.After(time.Millisecond):
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("briskstream: rescale checkpoint %d did not complete", id)
		}
	}
	cp, err := co.Latest()
	if err != nil {
		return nil, err
	}
	cp2, err := engine.ReshardCheckpoint(cp, engine.Topology{
		App: t.g, Spouts: t.spouts, Operators: t.operators,
	}, newRepl)
	if err != nil {
		return nil, err
	}
	return cp2, nil
}

// pinnedReplication adapts an optimizer replication to what the running
// engine can adopt online: spout counts stay at their current values (a
// replayable source's offsets are per-replica and cannot be split or
// merged) and so do sink counts (sinks often hold non-keyed state, e.g.
// received multisets, that has no re-sharding rule).
func (t *Topology) pinnedReplication(planned map[string]int, cfg RunConfig) map[string]int {
	cur := t.repl
	if cfg.Replication != nil {
		cur = cfg.Replication
	}
	out := make(map[string]int, len(planned))
	for op, n := range planned {
		out[op] = n
	}
	for _, n := range t.g.Nodes() {
		if n.IsSpout || n.IsSink {
			c := cur[n.Name]
			if c <= 0 {
				c = 1
			}
			out[n.Name] = c
		}
	}
	return out
}

// formatGain renders a relative gain for event attributes ("0.137" =
// +13.7%).
func formatGain(g float64) string { return strconv.FormatFloat(g, 'f', 3, 64) }

func sameReplication(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for op, n := range a {
		bn := b[op]
		if bn <= 0 {
			bn = 1
		}
		if n <= 0 {
			n = 1
		}
		if n != bn {
			return false
		}
	}
	return true
}
