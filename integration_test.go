package briskstream

// integration_test.go exercises cross-module flows: multi-stream
// topologies on the public API, and the packaged benchmark applications
// driven end to end through optimizer + simulator + engine.

import (
	"io"
	"testing"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/sim"
)

// TestMultiStreamPublicAPI builds a dispatcher-style topology with two
// named output streams routed to different consumers.
func TestMultiStreamPublicAPI(t *testing.T) {
	const total = 1200
	t.Parallel()

	topo := NewTopology("router")
	emitted := 0
	topo.Spout("events", func() Spout {
		return SpoutFunc(func(c Collector) error {
			if emitted >= total {
				return io.EOF
			}
			emitted++
			c.Emit(int64(emitted))
			return nil
		})
	})
	topo.Operator("route", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			out := c.Borrow()
			out.CopyValuesFrom(tp)
			if tp.Int(0)%3 == 0 {
				out.Stream = Stream("thirds")
			} else {
				out.Stream = Stream("rest")
			}
			c.Send(out)
			return nil
		})
	}).Subscribe("events", Shuffle).
		Selectivity("thirds", 1.0/3).
		Selectivity("rest", 2.0/3)
	topo.Sink("third_sink", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("route", Shuffle.On("thirds"))
	topo.Sink("rest_sink", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error { return nil })
	}).Subscribe("route", FieldsKey(0).On("rest"))

	res, err := topo.Run(RunConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != total {
		t.Fatalf("sink tuples = %d, want %d", res.SinkTuples, total)
	}
	if res.Processed["third_sink"] != total/3 {
		t.Errorf("third_sink = %d, want %d", res.Processed["third_sink"], total/3)
	}
	if res.Processed["rest_sink"] != total*2/3 {
		t.Errorf("rest_sink = %d, want %d", res.Processed["rest_sink"], total*2/3)
	}
}

// TestAllAppsSimulateOnBothServers drives every packaged benchmark
// through plan building and the fluid simulator on both paper machines.
func TestAllAppsSimulateOnBothServers(t *testing.T) {
	t.Parallel()
	for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
		for _, a := range apps.All() {
			eg, err := plan.Build(a.Graph, nil, 1)
			if err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			r, err := sim.Run(eg, plan.CollocateAll(eg), &sim.Config{
				Machine: m, Stats: a.Stats, Ingress: model.Saturated, Duration: 0.5,
			})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, m.Name, err)
			}
			if r.Throughput <= 0 {
				t.Errorf("%s on %s: zero simulated throughput", a.Name, m.Name)
			}
			if r.AvgLatencyNs <= 0 {
				t.Errorf("%s on %s: zero simulated latency", a.Name, m.Name)
			}
		}
	}
}

// TestOptimizeThenRunScaledPlan closes the loop: optimize WC for a big
// machine, scale the replication down to this host, and run it.
func TestOptimizeThenRunScaledPlan(t *testing.T) {
	t.Parallel()
	wc := apps.ByName("WC")

	topo := NewTopology("wc-loop")
	topo.Spout("spout", wc.Spouts["spout"])
	topo.Operator("parser", wc.Operators["parser"]).Subscribe("spout", Shuffle)
	topo.Operator("splitter", wc.Operators["splitter"]).
		Subscribe("parser", Shuffle).Selectivity(DefaultStream, 10)
	topo.Operator("counter", wc.Operators["counter"]).Subscribe("splitter", FieldsKey(0))
	topo.Sink("sink", wc.Operators["sink"]).Subscribe("counter", Shuffle)

	stats := map[string]OperatorStats{}
	for op, st := range wc.Stats {
		stats[op] = OperatorStats{ExecNs: st.Te, MemoryBytes: st.M, TupleBytes: st.N, Selectivity: st.Selectivity}
	}
	p, err := topo.Optimize(OptimizeConfig{
		Machine: ServerA(), Stats: stats,
		SearchNodeLimit: 400, MaxIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Scale the 144-core plan down ~20x for the test host, preserving
	// the plan's ratios.
	repl := map[string]int{}
	for op, k := range p.Replication {
		repl[op] = (k + 19) / 20
	}
	res, err := topo.Run(RunConfig{Duration: 150 * time.Millisecond, Replication: repl})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples == 0 {
		t.Fatal("scaled plan processed nothing")
	}
}
