// Quickstart: build a three-stage pipeline on the public API, run it on
// the in-process engine, and print throughput and latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"briskstream"
)

func main() {
	t := briskstream.NewTopology("quickstart")

	// A spout producing sentences forever; the run is time-bounded. The
	// Borrow/Send surface reuses pooled tuples (typed slots + string
	// arena), so the only per-event allocation is formatting the
	// sentence itself. Emits declares the stream's typed schema.
	t.Spout("sentences", func() briskstream.Spout {
		i := 0
		return briskstream.SpoutFunc(func(c briskstream.Collector) error {
			i++
			out := c.Borrow()
			out.AppendStr(fmt.Sprintf("event %d from the quickstart stream pipeline", i))
			c.Send(out)
			return nil
		})
	}).Emits(briskstream.DefaultStream, briskstream.StrField("sentence"))

	// Split sentences into words (selectivity ~6 words per sentence).
	// Words are a low-cardinality hot set, so they travel as interned
	// symbols: a 4-byte id, no per-word boxing or copying.
	t.Operator("split", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			for _, w := range strings.Fields(tp.Str(0)) {
				out := c.Borrow()
				out.AppendSym(briskstream.InternSym(w))
				c.Send(out)
			}
			return nil
		})
	}).Subscribe("sentences", briskstream.Shuffle).
		Selectivity(briskstream.DefaultStream, 6).
		Emits(briskstream.DefaultStream, briskstream.SymField("word"))

	// Count words; fields grouping pins each word to one replica.
	// Symbol names are stable interned strings, so they are safe map
	// keys without cloning.
	t.Operator("count", func() briskstream.Operator {
		counts := map[string]int64{}
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			w := tp.Str(0)
			counts[w]++
			out := c.Borrow()
			out.AppendSym(tp.Sym(0))
			out.AppendInt(counts[w])
			c.Send(out)
			return nil
		})
	}).Subscribe("split", briskstream.FieldsKey(0)).Parallelism(2).
		Emits(briskstream.DefaultStream, briskstream.SymField("word"), briskstream.IntField("count"))

	t.Sink("sink", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			return nil
		})
	}).Subscribe("count", briskstream.Shuffle)

	res, err := t.Run(briskstream.RunConfig{Duration: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Errors) > 0 {
		log.Fatalf("runtime errors: %v", res.Errors)
	}
	fmt.Printf("processed %d tuples in %v\n", res.SinkTuples, res.Duration.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f tuples/s\n", res.Throughput)
	fmt.Printf("latency: p50 %.3f ms, p99 %.3f ms\n", res.LatencyP50, res.LatencyP99)
}
