// Linearroad: the Linear Road benchmark (the paper's most complex
// topology: 12 operators, 9 streams, variable tolling + accident
// notification + historical queries). Optimizes the plan for Server A,
// prints the replication/placement decision and the modelled bottleneck
// structure, then runs the topology on this host.
//
//	go run ./examples/linearroad
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/engine"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/rlas"
)

func main() {
	lr := apps.ByName("LR")
	m := numa.ServerA()

	fmt.Println("== LR topology ==")
	order, _ := lr.Graph.TopoSort()
	for _, op := range order {
		outs := lr.Graph.Out(op)
		if len(outs) == 0 {
			fmt.Printf("  %-16s (sink)\n", op)
			continue
		}
		for _, e := range outs {
			fmt.Printf("  %-16s --%s--> %s\n", op, e.Stream, e.To)
		}
	}

	fmt.Println("\n== RLAS optimization for Server A ==")
	seed, err := rlas.SeedReplication(lr.Graph, lr.Stats, m.TotalCores(), 0.7)
	if err != nil {
		log.Fatal(err)
	}
	r, err := rlas.Optimize(lr.Graph, rlas.Config{
		Model:         &model.Config{Machine: m, Stats: lr.Stats, Ingress: model.Saturated},
		BnB:           bnb.Config{NodeLimit: 1500},
		Initial:       seed,
		MaxIterations: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted throughput: %.1f K events/s in %d iterations (%v)\n",
		r.Eval.Throughput/1000, r.Iterations, r.Elapsed.Round(time.Millisecond))
	var ops []string
	for op := range r.Replication {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-16s x%d\n", op, r.Replication[op])
	}

	fmt.Println("\n== real run on this host ==")
	e, err := engine.New(engine.Topology{
		App: lr.Graph, Spouts: lr.Spouts, Operators: lr.Operators,
		Replication: map[string]int{"toll_notify": 2},
	}, engine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run(2 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Errors) > 0 {
		log.Fatalf("runtime errors: %v", res.Errors)
	}
	fmt.Printf("sink events: %d (%.0f events/s)\n", res.SinkTuples, res.Throughput)
	fmt.Printf("per-operator processed: dispatcher=%d toll_notify=%d accident_notify=%d account_balance=%d\n",
		res.Processed["dispatcher"], res.Processed["toll_notify"],
		res.Processed["accident_notify"], res.Processed["account_balance"])
}
