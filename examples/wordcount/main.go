// Wordcount: the paper's WC benchmark end to end — optimize the
// execution plan with RLAS for the paper's Server A (8 sockets x 18
// cores), show the plan, predict its throughput on both paper servers,
// then run the topology for real on this host with the plan's
// replication configuration.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	"briskstream"
	"briskstream/internal/apps"
)

func main() {
	wc := apps.ByName("WC")

	// Rebuild WC on the public API from the packaged app definition.
	t := briskstream.NewTopology("wc")
	t.Spout("spout", wc.Spouts["spout"])
	t.Operator("parser", wc.Operators["parser"]).
		Subscribe("spout", briskstream.Shuffle)
	t.Operator("splitter", wc.Operators["splitter"]).
		Subscribe("parser", briskstream.Shuffle).
		Selectivity(briskstream.DefaultStream, 10)
	t.Operator("counter", wc.Operators["counter"]).
		Subscribe("splitter", briskstream.FieldsKey(0))
	t.Sink("sink", wc.Operators["sink"]).
		Subscribe("counter", briskstream.Shuffle)

	stats := map[string]briskstream.OperatorStats{}
	for op, st := range wc.Stats {
		stats[op] = briskstream.OperatorStats{
			ExecNs: st.Te, MemoryBytes: st.M, TupleBytes: st.N, Selectivity: st.Selectivity,
		}
	}

	fmt.Println("== RLAS optimization for Server A (8x18 cores) ==")
	plan, err := t.Optimize(briskstream.OptimizeConfig{
		Machine: briskstream.ServerA(),
		Stats:   stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Describe())

	sr, err := t.Simulate(plan, briskstream.ServerA())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated steady state: %.1f K events/s, avg latency %.3f ms\n\n",
		sr.Throughput/1000, sr.AvgLatencyMs)

	fmt.Println("== real run on this host (plan replication, scaled down) ==")
	// The 144-core plan oversubscribes a laptop; scale counts down
	// proportionally while keeping the plan's ratios.
	repl := map[string]int{}
	for op, k := range plan.Replication {
		repl[op] = (k + 19) / 20
	}
	res, err := t.Run(briskstream.RunConfig{Duration: 2 * time.Second, Replication: repl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replication: %v\n", repl)
	fmt.Printf("throughput: %.0f words/s, p99 latency %.3f ms\n", res.Throughput, res.LatencyP99)
}
