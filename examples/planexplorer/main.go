// Planexplorer: compares execution-plan strategies for every paper
// benchmark on both paper servers — RLAS versus the OS / first-fit /
// round-robin placement heuristics under the same replication
// configuration (the Figure 13 experiment, interactive form), plus the
// NUMA-oblivious ablations RLAS_fix(L) and RLAS_fix(U) (Figure 12).
//
//	go run ./examples/planexplorer
package main

import (
	"fmt"
	"log"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/placement"
	"briskstream/internal/rlas"
	"briskstream/internal/sim"
)

func main() {
	for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
		fmt.Printf("== %s ==\n", m.Name)
		fmt.Printf("%-4s %12s %10s %10s %10s %12s %12s\n",
			"app", "RLAS (K/s)", "OS", "FF", "RR", "fix(L)", "fix(U)")
		for _, a := range apps.All() {
			seed, err := rlas.SeedReplication(a.Graph, a.Stats, m.TotalCores(), 0.7)
			if err != nil {
				log.Fatal(err)
			}
			base := rlas.Config{
				Model:         &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated},
				BnB:           bnb.Config{NodeLimit: 800},
				Initial:       seed,
				MaxIterations: 15,
			}
			r, err := rlas.Optimize(a.Graph, base)
			if err != nil {
				log.Fatal(err)
			}
			simCfg := &sim.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated, Duration: 1}
			rl, err := sim.Run(r.Graph, r.Placement, simCfg)
			if err != nil {
				log.Fatal(err)
			}

			norm := func(tput float64) string { return fmt.Sprintf("%.2f", tput/rl.Throughput) }
			mcfg := &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated}

			osSim, err := sim.Run(r.Graph, placement.OS(r.Graph, m), simCfg)
			if err != nil {
				log.Fatal(err)
			}
			ffP, err := placement.FF(r.Graph, mcfg)
			if err != nil {
				log.Fatal(err)
			}
			ffSim, err := sim.Run(r.Graph, ffP, simCfg)
			if err != nil {
				log.Fatal(err)
			}
			rrSim, err := sim.Run(r.Graph, placement.RR(r.Graph, m), simCfg)
			if err != nil {
				log.Fatal(err)
			}

			fixed := func(policy model.TfPolicy) string {
				cfg := base
				mc := *base.Model
				mc.Policy = policy
				cfg.Model = &mc
				fr, err := rlas.Optimize(a.Graph, cfg)
				if err != nil {
					return "n/a"
				}
				fs, err := sim.Run(fr.Graph, fr.Placement, simCfg)
				if err != nil {
					return "n/a"
				}
				return norm(fs.Throughput)
			}

			fmt.Printf("%-4s %12.1f %10s %10s %10s %12s %12s\n",
				a.Name, rl.Throughput/1000,
				norm(osSim.Throughput), norm(ffSim.Throughput), norm(rrSim.Throughput),
				fixed(model.TfWorstCase), fixed(model.TfZero))
		}
		fmt.Println()
	}
	fmt.Println("values are normalized to RLAS (1.00); lower means the strategy loses throughput.")
}
