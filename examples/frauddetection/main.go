// Frauddetection: the paper's FD benchmark on the real engine — a
// transaction stream scored by a per-entity predictor, with end-to-end
// latency reporting and a comparison of the BriskStream execution path
// against an emulated distributed-engine path (per-hop serialization,
// defensive copies, per-tuple queue insertions).
//
//	go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/engine"
)

func run(name string, cfg engine.Config) {
	fd := apps.ByName("FD")
	e, err := engine.New(engine.Topology{
		App:       fd.Graph,
		Spouts:    fd.Spouts,
		Operators: fd.Operators,
		Replication: map[string]int{
			"parser": 1, "predict": 2, "sink": 1,
		},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run(2 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Errors) > 0 {
		log.Fatalf("%s: runtime errors: %v", name, res.Errors)
	}
	fmt.Printf("%-22s %10.0f tuples/s   p50 %8.3f ms   p99 %8.3f ms\n",
		name, res.Throughput,
		res.Latency.Quantile(0.5)/1e6, res.Latency.Quantile(0.99)/1e6)
}

func main() {
	fmt.Println("fraud detection: BriskStream path vs distributed-engine path")
	run("briskstream", engine.DefaultConfig())
	run("storm-like", engine.StormLikeConfig())
}
