// Adaptive: online plan maintenance (the dynamic scenario of Section
// 5.3). A word-count variant runs on the real engine while an Advisor
// polls live rate snapshots; halfway through, the workload changes
// (sentences shrink from 10 words to 2), the splitter's observed
// selectivity drifts from its profile, and the advisor recommends a
// re-optimized plan for the new workload.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"briskstream/internal/adaptive"
	"briskstream/internal/bnb"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
	"briskstream/internal/rlas"
	"briskstream/internal/tuple"
)

// wordsPerSentence is flipped by the workload-change event.
var wordsPerSentence atomic.Int64

func buildApp() (*graph.Graph, map[string]func() engine.Spout, map[string]func() engine.Operator, profile.Set) {
	g := graph.New("adaptive-wc")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "splitter", Selectivity: map[string]float64{"default": 10}}))
	must(g.AddNode(&graph.Node{Name: "counter", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "splitter", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "splitter", To: "counter", Stream: "default", Partitioning: graph.Fields}))
	must(g.AddEdge(graph.Edge{From: "counter", To: "sink", Stream: "default"}))
	must(g.Validate())

	spouts := map[string]func() engine.Spout{
		"spout": func() engine.Spout {
			i := 0
			var words []string
			return engine.SpoutFunc(func(c engine.Collector) error {
				i++
				n := int(wordsPerSentence.Load())
				if cap(words) < n {
					words = make([]string, n)
				}
				words = words[:n]
				for j := range words {
					words[j] = fmt.Sprintf("w%d", (i+j)%64)
				}
				out := c.Borrow()
				out.AppendStr(strings.Join(words, " "))
				c.Send(out)
				return nil
			})
		},
	}
	ops := map[string]func() engine.Operator{
		"splitter": func() engine.Operator {
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				for _, w := range strings.Fields(t.Str(0)) {
					out := c.Borrow()
					out.AppendSym(tuple.InternSym(w))
					c.Send(out)
				}
				return nil
			})
		},
		"counter": func() engine.Operator {
			counts := map[string]int64{}
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				w := t.Str(0) // symbol name: a stable map key
				counts[w]++
				out := c.Borrow()
				out.AppendSym(t.Sym(0))
				out.AppendInt(counts[w])
				c.Send(out)
				return nil
			})
		},
		"sink": func() engine.Operator {
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
		},
	}
	stats := profile.Set{
		"spout":    {Te: 450, M: 140, N: 70, Selectivity: map[string]float64{"default": 1}},
		"splitter": {Te: 1600, M: 300, N: 70, Selectivity: map[string]float64{"default": 10}},
		"counter":  {Te: 612, M: 80, N: 16, Selectivity: map[string]float64{"default": 1}},
		"sink":     {Te: 100, M: 48, N: 24, Selectivity: map[string]float64{}},
	}
	return g, spouts, ops, stats
}

func main() {
	wordsPerSentence.Store(10)
	g, spouts, ops, stats := buildApp()
	m := numa.ServerA()

	fmt.Println("optimizing the initial plan (profiled selectivity 10)...")
	seed, err := rlas.SeedReplication(g, stats, m.TotalCores(), 0.7)
	if err != nil {
		log.Fatal(err)
	}
	current, err := rlas.Optimize(g, rlas.Config{
		Model:         &model.Config{Machine: m, Stats: stats, Ingress: model.Saturated},
		BnB:           bnb.Config{NodeLimit: 800},
		Initial:       seed,
		MaxIterations: 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  predicted %.1f K events/s with replication %v\n\n",
		current.Eval.Throughput/1000, current.Replication)

	advisor, err := adaptive.New(g, stats, current, adaptive.Config{Machine: m, Gain: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	e, err := engine.New(engine.Topology{App: g, Spouts: spouts, Operators: ops}, engine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Run(2 * time.Second); err != nil {
			log.Fatal(err)
		}
	}()

	poll := func(label string) {
		advisor.Record(adaptive.Observation{Processed: e.Snapshot(), At: time.Now()})
		rec, err := advisor.Evaluate()
		if err != nil {
			fmt.Printf("  [%s] %v\n", label, err)
			return
		}
		fmt.Printf("  [%s] drift=%v reoptimize=%v (current %.1f K/s, new %.1f K/s)\n",
			label, rec.DriftedOperators, rec.Reoptimize,
			rec.CurrentPredicted/1000, rec.NewPredicted/1000)
		if rec.Reoptimize {
			fmt.Printf("        recommended replication: %v\n", rec.Plan.Replication)
		}
	}

	time.Sleep(300 * time.Millisecond)
	advisor.Record(adaptive.Observation{Processed: e.Snapshot(), At: time.Now()})
	time.Sleep(500 * time.Millisecond)
	fmt.Println("steady workload (10 words per sentence):")
	poll("t=0.8s")

	fmt.Println("\nworkload change: sentences shrink to 2 words")
	wordsPerSentence.Store(2)
	time.Sleep(700 * time.Millisecond)
	advisor.Record(adaptive.Observation{Processed: e.Snapshot(), At: time.Now()})
	time.Sleep(400 * time.Millisecond)
	poll("t=1.9s")

	<-done
	fmt.Println("\nengine run complete.")
}
