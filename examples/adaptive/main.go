// Adaptive: the closed loop of online plan maintenance (the dynamic
// scenario of Section 5.3), end to end on the public API. A word-count
// variant runs under RunConfig.Adaptive: the engine live-profiles
// itself, the advisor watches the measured statistics, and when the
// workload changes a quarter of the way in (sentences grow from 2 words
// to 10, so the splitter's selectivity drifts 5x from its profile) the
// autoscaler re-optimizes and rolls the running engine onto the new
// plan — aligned barrier, state re-shard, source replay — without
// dropping or duplicating a single tuple.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	briskstream "briskstream"
)

const (
	streamTuples = 400_000 // bounded stream: the run ends at EOF
	pivot        = 100_000 // where the workload changes
)

var vocabulary = []string{
	"stream", "process", "socket", "memory", "tuple", "operator",
	"plan", "latency", "remote", "local", "numa", "core",
	"thread", "queue", "batch", "window",
}

// spout emits 2-word sentences before the pivot and 10-word sentences
// after. The stream is a pure function of the offset — the property
// that makes it replayable through a rescale.
type spout struct {
	off int64
	buf []byte
}

func (s *spout) Next(c briskstream.Collector) error {
	if s.off >= streamTuples {
		return io.EOF
	}
	off := s.off
	s.off++
	words := 2
	if off >= pivot {
		words = 10
	}
	s.buf = s.buf[:0]
	for i := 0; i < words; i++ {
		if i > 0 {
			s.buf = append(s.buf, ' ')
		}
		s.buf = append(s.buf, vocabulary[(off*7+int64(i)*13)%int64(len(vocabulary))]...)
	}
	out := c.Borrow()
	out.AppendStrBytes(s.buf)
	out.Event = off + 1
	c.Send(out)
	if (off+1)%64 == 0 {
		c.EmitWatermark(off + 1)
	}
	return nil
}

func (s *spout) Offset() int64 { return s.off }

func (s *spout) SeekTo(off int64) error {
	s.off = off
	return nil
}

func buildTopology() *briskstream.Topology {
	t := briskstream.NewTopology("adaptive-wc")
	t.Spout("spout", func() briskstream.Spout { return &spout{} }).
		Emits(briskstream.DefaultStream, briskstream.StrField("sentence"))
	t.Operator("splitter", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			sentence := tp.Str(0)
			for i := 0; i < len(sentence); {
				for i < len(sentence) && sentence[i] == ' ' {
					i++
				}
				start := i
				for i < len(sentence) && sentence[i] != ' ' {
					i++
				}
				if i > start {
					out := c.Borrow()
					out.AppendStr(sentence[start:i])
					c.Send(out)
				}
			}
			return nil
		})
	}).Subscribe("spout", briskstream.Shuffle).
		Selectivity(briskstream.DefaultStream, 2).
		Emits(briskstream.DefaultStream, briskstream.StrField("word"))
	t.Operator("counter", func() briskstream.Operator {
		type cnt struct{ n int64 }
		return briskstream.NewWindow(briskstream.WindowOp[cnt]{
			KeyField: 0,
			Size:     512,
			Init:     func(a *cnt) { a.n = 0 },
			Add:      func(a *cnt, tp *briskstream.Tuple) { a.n++ },
			Emit: func(c briskstream.Collector, key briskstream.Key, w briskstream.WindowSpan, a *cnt) {
				out := c.Borrow()
				out.AppendKey(key)
				out.AppendInt(a.n)
				out.Event = w.End
				c.Send(out)
			},
			// Save/Load make the counter snapshottable — and therefore
			// re-shardable when the autoscaler changes its replication.
			Save: func(enc *briskstream.SnapshotEncoder, a *cnt) { enc.Int64(a.n) },
			Load: func(dec *briskstream.SnapshotDecoder, a *cnt) error { a.n = dec.Int64(); return nil },
		})
	}).Subscribe("splitter", briskstream.FieldsKey(0)).
		Emits(briskstream.DefaultStream, briskstream.StrField("word"), briskstream.IntField("count"))
	t.Sink("sink", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error { return nil })
	}).Subscribe("counter", briskstream.Shuffle)
	return t
}

func main() {
	topo := buildTopology()

	// The baseline statistics describe the pre-pivot workload (short
	// sentences, cheap counter); the pivot makes them stale mid-run.
	stats := map[string]briskstream.OperatorStats{
		"spout":    {ExecNs: 450, MemoryBytes: 140, TupleBytes: 24},
		"splitter": {ExecNs: 400, MemoryBytes: 300, TupleBytes: 24},
		"counter":  {ExecNs: 300, MemoryBytes: 80, TupleBytes: 12},
		"sink":     {ExecNs: 100, MemoryBytes: 48, TupleBytes: 20, Selectivity: map[string]float64{}},
	}

	fmt.Println("running under the autoscaler (workload shifts 2 -> 10 words/sentence)...")
	res, err := topo.Run(briskstream.RunConfig{Adaptive: &briskstream.AdaptiveConfig{
		Machine:     briskstream.SyntheticMachine("demo", 2, 8),
		Stats:       stats,
		Interval:    50 * time.Millisecond,
		SampleEvery: 32,
		MaxRescales: 2,
		OnDecision: func(d briskstream.AdaptiveDecision) {
			switch {
			case d.Err != nil:
				fmt.Printf("  advisor: rescale attempt failed: %v\n", d.Err)
			case d.Rescaled:
				fmt.Printf("  advisor: drift %v -> RESCALE to %v (predicted %.1f -> %.1f K/s)\n",
					d.Drifted, d.Replication, d.CurrentPredicted/1000, d.NewPredicted/1000)
			case d.Replication != nil:
				fmt.Printf("  advisor: drift %v, plan unchanged after pinning (%v)\n", d.Drifted, d.Replication)
			default:
				fmt.Printf("  advisor: drift %v, keeping the current plan (%.1f K/s predicted)\n",
					d.Drifted, d.CurrentPredicted/1000)
			}
		},
	}})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Errors) != 0 {
		log.Fatal(res.Errors[0])
	}
	fmt.Printf("\ndrained %d sentences in %v (%d online rescale(s), %d sink tuples)\n",
		streamTuples, res.Duration.Round(time.Millisecond), res.Rescales, res.SinkTuples)
}
