// Slidingwindow demonstrates the event-time window subsystem on the
// public API: a sensor source stamps each reading with an event
// timestamp and punctuates watermarks; a sliding window aggregates
// per-sensor averages; the sink prints each closed window. The input is
// deliberately emitted out of order — the watermark, not arrival order,
// decides when a window is complete, so the printed results are
// identical on every run and no reading is lost.
//
//	go run ./examples/slidingwindow
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"

	"briskstream"
)

const (
	size  = 100 // window span (event-time ms)
	slide = 50  // refresh interval: each reading lands in two windows
	total = 600 // readings to emit
)

func main() {
	t := briskstream.NewTopology("sliding-avg")

	// Source: three sensors, one reading per event-ms, emitted in a
	// shuffled order. The source tracks exactly which event times have
	// left (a bitmap + cursor), so its punctuated low watermark is
	// precise: everything below it has been emitted, nothing is ever
	// dropped as late, results are exact.
	t.Spout("readings", func() briskstream.Spout {
		r := rand.New(rand.NewSource(1))
		order := make([]int, total)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < total; i++ {
			j := i + r.Intn(min(16, total-i))
			order[i], order[j] = order[j], order[i]
		}
		emitted := make([]bool, total)
		low := 0 // all event times below this have been emitted
		i := 0
		return briskstream.SpoutFunc(func(c briskstream.Collector) error {
			if i >= total {
				return io.EOF // the engine flushes event time on EOF
			}
			et := int64(order[i])
			i++
			emitted[et] = true
			for low < total && emitted[low] {
				low++
			}
			out := c.Borrow()
			out.AppendSym(briskstream.InternSym(fmt.Sprintf("sensor-%d", et%3)))
			out.AppendFloat(20 + float64(et%17)) // deterministic "temperature"
			out.Event = et
			c.Send(out)
			if i%32 == 0 && low > 0 {
				c.EmitWatermark(int64(low) - 1)
			}
			return nil
		})
	})

	// Sliding per-sensor average on the window operator.
	t.Operator("avg", func() briskstream.Operator {
		type acc struct {
			sum float64
			n   int64
		}
		return briskstream.NewWindow(briskstream.WindowOp[acc]{
			KeyField: 0,
			Size:     size,
			Slide:    slide,
			Init:     func(a *acc) { *a = acc{} },
			Add: func(a *acc, tp *briskstream.Tuple) {
				a.sum += tp.Float(1)
				a.n++
			},
			Emit: func(c briskstream.Collector, key briskstream.Key, w briskstream.WindowSpan, a *acc) {
				out := c.Borrow()
				out.AppendKey(key)
				out.AppendInt(w.Start)
				out.AppendInt(w.End)
				out.AppendFloat(a.sum / float64(a.n))
				out.AppendInt(a.n)
				out.Event = w.End
				c.Send(out)
			},
		})
	}).Subscribe("readings", briskstream.FieldsKey(0))

	t.Sink("print", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			fmt.Printf("%-9s window [%3d,%3d)  avg %6.2f over %2d readings\n",
				tp.Str(0), tp.Int(1), tp.Int(2), tp.Float(3), tp.Int(4))
			return nil
		})
	}).Subscribe("avg", briskstream.Shuffle)

	res, err := t.Run(briskstream.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Errors) != 0 {
		log.Fatal(res.Errors)
	}
	fmt.Printf("\n%d windows closed from %d readings\n", res.SinkTuples, total)
}
