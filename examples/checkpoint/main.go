// Command checkpoint demonstrates BriskStream's fault tolerance on the
// public API: a windowed word count runs with periodic aligned
// checkpoints persisted to a file store, "crashes" mid-stream (the run
// is cut off without flushing anything), and a second run resumes from
// the latest completed checkpoint — restoring the window and sink state
// and replaying the source from its recorded offset. The demo verifies
// that the recovered output is exactly the output of a run that never
// failed.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"briskstream"
)

// sentences is the finite, deterministic input stream. Replay needs
// determinism: after SeekTo(n), the source must emit exactly what it
// would have emitted after its first n sentences.
var sentences = []string{
	"the quick brown fox",
	"jumps over the lazy dog",
	"the dog barks",
	"a fox is quick",
}

const (
	totalSentences = 400000
	window         = 1024 // event-time units per tumbling window
)

// source emits one sentence per event-millisecond and implements
// briskstream.ReplayableSpout: Offset/SeekTo are just the cursor.
type source struct{ i int64 }

func (s *source) Next(c briskstream.Collector) error {
	if s.i >= totalSentences {
		return io.EOF
	}
	s.i++
	out := c.Borrow()
	out.AppendStr(sentences[s.i%int64(len(sentences))])
	out.Event = s.i
	c.Send(out)
	if s.i%64 == 0 {
		c.EmitWatermark(s.i)
	}
	return nil
}

func (s *source) Offset() int64             { return s.i }
func (s *source) SeekTo(offset int64) error { s.i = offset; return nil }

// collectSink records (word, count, window-end) results and snapshots
// the collected multiset, so recovered output is comparable
// tuple-for-tuple with a failure-free run.
type collectSink struct {
	got map[string]int64
}

func (s *collectSink) Process(c briskstream.Collector, t *briskstream.Tuple) error {
	s.got[fmt.Sprintf("%s=%d@%d", t.Str(0), t.Int(1), t.Event)]++
	return nil
}

func (s *collectSink) Snapshot(enc *briskstream.SnapshotEncoder) error {
	briskstream.SaveMapOrdered(enc, s.got,
		func(e *briskstream.SnapshotEncoder, k string) { e.String(k) },
		func(e *briskstream.SnapshotEncoder, v int64) { e.Int64(v) })
	return nil
}

func (s *collectSink) Restore(dec *briskstream.SnapshotDecoder) error {
	return briskstream.LoadMapOrdered(dec, s.got,
		(*briskstream.SnapshotDecoder).String,
		(*briskstream.SnapshotDecoder).Int64)
}

// build assembles the topology with fresh operator instances (as a
// restarted process would) and returns the sink for inspection.
func build() (*briskstream.Topology, *collectSink) {
	sink := &collectSink{got: map[string]int64{}}
	t := briskstream.NewTopology("checkpointed-wc")
	t.Spout("source", func() briskstream.Spout { return &source{} })
	t.Operator("split", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			// tp.Str returns a view into the tuple arena; interning each
			// word gives the counter a stable symbol key with no copy.
			line := tp.Str(0)
			start := 0
			for i := 0; i <= len(line); i++ {
				if i == len(line) || line[i] == ' ' {
					if i > start {
						out := c.Borrow()
						out.AppendSym(briskstream.InternSym(line[start:i]))
						c.Send(out)
					}
					start = i + 1
				}
			}
			return nil
		})
	}).Subscribe("source", briskstream.Shuffle)
	t.Operator("count", func() briskstream.Operator {
		type acc struct{ n int64 }
		return briskstream.NewWindow(briskstream.WindowOp[acc]{
			KeyField: 0,
			Size:     window,
			Init:     func(a *acc) { a.n = 0 },
			Add:      func(a *acc, tp *briskstream.Tuple) { a.n++ },
			Emit: func(c briskstream.Collector, key briskstream.Key, w briskstream.WindowSpan, a *acc) {
				out := c.Borrow()
				out.AppendKey(key)
				out.AppendInt(a.n)
				out.Event = w.End
				c.Send(out)
			},
			Save: func(enc *briskstream.SnapshotEncoder, a *acc) { enc.Int64(a.n) },
			Load: func(dec *briskstream.SnapshotDecoder, a *acc) error { a.n = dec.Int64(); return nil },
		})
	}).Subscribe("split", briskstream.FieldsKey(0)).Parallelism(2)
	t.Sink("sink", func() briskstream.Operator { return sink }).Subscribe("count", briskstream.Global)
	return t, sink
}

func main() {
	// Failure-free reference.
	refTopo, refSink := build()
	if _, err := refTopo.Run(briskstream.RunConfig{}); err != nil {
		log.Fatal(err)
	}

	// Checkpoints go to a file store: they survive the "crash" below
	// (and would survive a real process death).
	dir, err := os.MkdirTemp("", "briskstream-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := briskstream.NewFileCheckpointStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	co := briskstream.NewCheckpointCoordinator(store)

	// "Crash": the duration bound cuts the run off mid-stream — no final
	// watermark, no window flush, exactly what a failure looks like.
	crashTopo, crashSink := build()
	if _, err := crashTopo.Run(briskstream.RunConfig{
		Duration:           300 * time.Millisecond,
		Checkpoint:         co,
		CheckpointInterval: 50 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed run:   %6d results collected, %d checkpoints completed (dir %s)\n",
		len(crashSink.got), co.Completed(), dir)

	// Recovery: fresh operator instances, same coordinator. Resume
	// restores every task from the latest completed checkpoint and
	// replays the source from its recorded offset.
	recTopo, recSink := build()
	if _, err := recTopo.Run(briskstream.RunConfig{Checkpoint: co, Resume: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered run: %6d results collected\n", len(recSink.got))

	// The point of the exercise: recovered output == failure-free output.
	if len(recSink.got) != len(refSink.got) {
		log.Fatalf("MISMATCH: recovered %d distinct results, failure-free %d", len(recSink.got), len(refSink.got))
	}
	for k, n := range refSink.got {
		if recSink.got[k] != n {
			log.Fatalf("MISMATCH at %q: recovered %d, failure-free %d", k, recSink.got[k], n)
		}
	}
	fmt.Println("recovered output is identical to the failure-free run ✓")
}
