package briskstream

// ablation_bench_test.go measures the design choices DESIGN.md calls
// out, beyond the paper's own figures: the branch-and-bound heuristics
// (redundant sub-problem elimination, warm start), operator fusion, and
// the jumbo-tuple batch size. Each benchmark reports a comparative
// metric so `go test -bench=Ablation` reads as a small ablation study.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/engine"
	"briskstream/internal/fuse"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/tuple"
)

// ablationSetup builds a mid-size WC execution graph and model config.
func ablationSetup(b *testing.B) (*plan.ExecGraph, *model.Config) {
	b.Helper()
	wc := apps.ByName("WC")
	m := numa.ServerA()
	eg, err := plan.Build(wc.Graph, map[string]int{
		"spout": 4, "parser": 2, "splitter": 8, "counter": 40, "sink": 10,
	}, 5)
	if err != nil {
		b.Fatal(err)
	}
	return eg, &model.Config{Machine: m, Stats: wc.Stats, Ingress: model.Saturated}
}

// BenchmarkAblationBnBDedup measures the placement search with
// redundant-sub-problem elimination enabled (the default).
func BenchmarkAblationBnBDedup(b *testing.B) {
	eg, cfg := ablationSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := bnb.Optimize(eg, cfg, bnb.Config{NodeLimit: 3000})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Explored), "nodes")
			b.ReportMetric(float64(r.Deduped), "deduped")
			b.ReportMetric(r.Eval.Throughput/1000, "Kevents/s")
		}
	}
}

// BenchmarkAblationBnBNoDedup disables dedup: same solution, more nodes.
func BenchmarkAblationBnBNoDedup(b *testing.B) {
	eg, cfg := ablationSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := bnb.Optimize(eg, cfg, bnb.Config{NodeLimit: 3000, NoDedup: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Explored), "nodes")
			b.ReportMetric(r.Eval.Throughput/1000, "Kevents/s")
		}
	}
}

// BenchmarkAblationBnBWarmStart seeds the incumbent with a greedy plan.
func BenchmarkAblationBnBWarmStart(b *testing.B) {
	eg, cfg := ablationSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := bnb.Optimize(eg, cfg, bnb.Config{NodeLimit: 3000, WarmStart: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Pruned), "pruned")
			b.ReportMetric(r.Eval.Throughput/1000, "Kevents/s")
		}
	}
}

// fusionPipeline runs the (optionally fused) WC pipeline on the real
// engine for b.N sentences and reports the sink rate.
func fusionPipeline(b *testing.B, fused bool) {
	b.Helper()
	wc := apps.ByName("WC")
	app, ops := wc.Graph, wc.Operators
	if fused {
		res, err := fuse.Apply(wc.Graph, wc.Stats, wc.Operators,
			[]fuse.Pair{{Producer: "parser", Consumer: "splitter"}, {Producer: "counter", Consumer: "sink"}})
		if err != nil {
			b.Fatal(err)
		}
		app, ops = res.Graph, res.Operators
	}
	n := b.N
	spout := func() engine.Spout {
		i := 0
		return engine.SpoutFunc(func(c engine.Collector) error {
			if i >= n {
				return io.EOF
			}
			i++
			out := c.Borrow()
			out.AppendStr("alpha beta gamma delta epsilon zeta eta theta iota kappa")
			out.Event = int64(i)
			c.Send(out)
			if i%64 == 0 {
				c.EmitWatermark(int64(i))
			}
			return nil
		})
	}
	e, err := engine.New(engine.Topology{
		App:       app,
		Spouts:    map[string]func() engine.Spout{"spout": spout},
		Operators: ops,
	}, engine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	res, err := e.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Errors) != 0 {
		b.Fatal(res.Errors)
	}
	// The counter aggregates windows, so the sink sees window closes;
	// sentences/s at the spout compares the shapes on equal terms.
	b.ReportMetric(float64(res.Processed["spout"])/time.Since(start).Seconds(), "sentences/s")
}

// BenchmarkAblationFusionOff runs WC with every stage as its own task.
func BenchmarkAblationFusionOff(b *testing.B) { fusionPipeline(b, false) }

// BenchmarkAblationFusionOn fuses parser+splitter and counter+sink: on a
// host with few cores, trading pipeline parallelism for fewer queue hops
// usually wins — the opposite call the optimizer makes on a 144-core
// box, which is exactly the trade-off Appendix D describes.
func BenchmarkAblationFusionOn(b *testing.B) { fusionPipeline(b, true) }

// BenchmarkAblationBatchSize sweeps the jumbo-tuple size on the real
// engine (Section 5.2's communication amortization).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			cfg := engine.DefaultConfig()
			cfg.BatchSize = batch
			n := b.N
			spout := func() engine.Spout {
				i := 0
				return engine.SpoutFunc(func(c engine.Collector) error {
					if i >= n {
						return io.EOF
					}
					i++
					c.Emit(int64(i))
					return nil
				})
			}
			pass := func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					out := c.Borrow()
					out.CopyValuesFrom(t)
					c.Send(out)
					return nil
				})
			}
			sink := func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
			}
			e, err := engine.New(engine.Topology{
				App: pipelineApp(),
				Spouts: map[string]func() engine.Spout{
					"spout": spout,
				},
				Operators: map[string]func() engine.Operator{"double": pass, "sink": sink},
			}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			res, err := e.Run(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.SinkTuples)/time.Since(start).Seconds(), "tuples/s")
			reportTuplesPerInsert(b, res)
		})
	}
}
