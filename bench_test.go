package briskstream

// bench_test.go regenerates the paper's evaluation artifacts as Go
// benchmarks: one benchmark per table and figure of Section 6. Each
// benchmark runs the corresponding experiment and reports its headline
// number as a custom metric, printing the full report once under -v.
//
// By default the experiments run at reduced ("quick") fidelity so the
// whole suite completes in CI time; set BRISK_FULL=1 for full-fidelity
// runs (the numbers recorded in EXPERIMENTS.md). RLAS plans are cached
// in a process-wide context, so later benchmarks reuse earlier plans.
//
// Engine micro-benchmarks (queue, tuple, engine hot path) live at the
// bottom: they measure the real runtime, not the simulator.

import (
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"briskstream/internal/engine"
	"briskstream/internal/experiments"
	"briskstream/internal/graph"
	"briskstream/internal/queue"
	"briskstream/internal/tuple"
)

// pipelineApp is the three-stage graph used by the engine benchmarks.
func pipelineApp() *graph.Graph {
	g := graph.New("bench")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "double", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "double", Stream: "default"})
	g.AddEdge(graph.Edge{From: "double", To: "sink", Stream: "default"})
	return g
}

var (
	benchCtx     *experiments.Context
	benchCtxOnce sync.Once
	benchVerbose = os.Getenv("BRISK_PRINT") == "1"
)

func ctx() *experiments.Context {
	benchCtxOnce.Do(func() {
		benchCtx = experiments.NewContext()
		benchCtx.Quick = os.Getenv("BRISK_FULL") != "1"
	})
	return benchCtx
}

// headline extracts a representative numeric value from a report (the
// first numeric cell of the first row) to expose as a bench metric.
func headline(r *experiments.Report) float64 {
	for _, row := range r.Rows {
		for _, cell := range row {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Run(id, ctx())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	if rep != nil {
		b.ReportMetric(headline(rep), "headline")
		if benchVerbose {
			b.Log("\n" + rep.String())
		}
	}
}

// --- One benchmark per paper artifact (Section 6) ---

func BenchmarkTable2_MachineSpecs(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig3_ProfileCDF(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkTable3_RMACost(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4_ModelAccuracy(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig6_Speedup(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7_LatencyCDF(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkTable5_TailLatency(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkFig8_Breakdown(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9a_SystemScalability(b *testing.B) {
	benchExperiment(b, "fig9a")
}
func BenchmarkFig9b_AppScalability(b *testing.B)      { benchExperiment(b, "fig9b") }
func BenchmarkFig10_GapsToIdeal(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11_StreamBox(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12_FixedCapability(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13_PlacementStrategies(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14_RandomPlans(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15_CommPattern(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkTable7_CompressRatio(b *testing.B)      { benchExperiment(b, "table7") }
func BenchmarkFig16_FactorAnalysis(b *testing.B)      { benchExperiment(b, "fig16") }

// --- Engine micro-benchmarks (real runtime) ---

// BenchmarkQueuePutGet measures the communication-queue hot path at
// jumbo-tuple granularity on the legacy mutex ring; the SPSC variant
// below is what the engine actually runs. Producer-count scaling
// comparisons live in internal/queue/bench_test.go.
func BenchmarkQueuePutGet(b *testing.B) {
	q := queue.New[*tuple.Jumbo](64)
	j := &tuple.Jumbo{Tuples: []*tuple.Tuple{tuple.New(int64(1))}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(j)
		q.Get()
	}
}

// BenchmarkQueueSPSCPutGet is the same loop on the lock-free
// single-producer/single-consumer ring the engine uses per edge.
func BenchmarkQueueSPSCPutGet(b *testing.B) {
	q := queue.NewRing[*tuple.Jumbo](64)
	j := &tuple.Jumbo{Tuples: []*tuple.Tuple{tuple.New(int64(1))}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(j)
		q.Get()
	}
}

// BenchmarkTupleMarshal measures the serialization cost the Storm-like
// baseline pays on every hop (and BriskStream avoids).
func BenchmarkTupleMarshal(b *testing.B) {
	t := tuple.New("a sentence with several words inside", int64(42), 3.14)
	buf := make([]byte, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tuple.Marshal(t, buf[:0])
		if _, _, err := tuple.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipeline runs a spout->double->sink pipeline for b.N tuples under
// the given engine configuration and reports tuples/sec.
func benchPipeline(b *testing.B, cfg engine.Config) {
	b.Helper()
	topo := engine.Topology{
		App: pipelineApp(),
		Spouts: map[string]func() engine.Spout{"spout": func() engine.Spout {
			i := 0
			n := b.N
			return engine.SpoutFunc(func(c engine.Collector) error {
				if i >= n {
					return io.EOF
				}
				c.Emit(int64(i))
				i++
				return nil
			})
		}},
		Operators: map[string]func() engine.Operator{
			"double": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					out := c.Borrow()
					out.CopyValuesFrom(t)
					c.Send(out)
					return nil
				})
			},
			"sink": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
			},
		},
	}
	e, err := engine.New(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	res, err := e.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Errors) != 0 {
		b.Fatal(res.Errors)
	}
	b.ReportMetric(float64(res.SinkTuples)/time.Since(start).Seconds(), "tuples/s")
	reportTuplesPerInsert(b, res)
}

// reportTuplesPerInsert reports Section 5.2's amortization — tuples
// moved through queues per jumbo insertion — for the spout->double->sink
// pipeline the engine benchmarks share.
func reportTuplesPerInsert(b *testing.B, res *engine.Result) {
	b.Helper()
	if res.QueuePuts == 0 {
		return
	}
	moved := res.Processed["double"] + res.SinkTuples
	b.ReportMetric(float64(moved)/float64(res.QueuePuts), "tuples/insert")
}

// BenchmarkEngineBriskPath measures the BriskStream execution path
// (pass-by-reference + jumbo tuples).
func BenchmarkEngineBriskPath(b *testing.B) { benchPipeline(b, engine.DefaultConfig()) }

// BenchmarkEngineStormPath measures the emulated distributed-engine path
// (per-hop serialization, copies, per-tuple insertions) on the identical
// topology — the per-tuple gap is the Figure 16 engine factor, live.
func BenchmarkEngineStormPath(b *testing.B) {
	cfg := engine.StormLikeConfig()
	cfg.ExtraWorkNs = 0 // measure the real transport costs only
	benchPipeline(b, cfg)
}
