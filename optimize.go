package briskstream

import (
	"fmt"
	"strings"
	"time"

	"briskstream/internal/bnb"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
	"briskstream/internal/rlas"
	"briskstream/internal/sim"
)

// Machine describes the NUMA machine an execution plan targets.
type Machine = numa.Machine

// ServerA returns the paper's HUAWEI KunLun descriptor (8 x 18 cores,
// glue-less interconnect).
func ServerA() *Machine { return numa.ServerA() }

// ServerB returns the paper's HP ProLiant DL980 G7 descriptor (8 x 8
// cores, XNC node controller).
func ServerB() *Machine { return numa.ServerB() }

// HostMachine builds a calibrated descriptor of the machine running
// this process from the NUMA topology probed out of sysfs (a single
// socket holding every CPU where the probe is unavailable). It is the
// default optimization target of the autoscaler: plans meant to
// execute here should be planned for here, not for the paper's
// Table 2 servers.
func HostMachine() *Machine { return numa.DetectHost().Machine() }

// SyntheticMachine builds a two-tray machine for experiments.
func SyntheticMachine(name string, sockets, coresPerSocket int) *Machine {
	return numa.Synthetic(name, sockets, coresPerSocket,
		50, 300, 550, 50*numa.GB, 12*numa.GB, 6*numa.GB)
}

// OperatorStats carries one operator's profiled statistics for the
// performance model: execution time per tuple (ns), memory traffic per
// tuple (bytes), input tuple size (bytes) and per-stream selectivity.
type OperatorStats struct {
	ExecNs      float64
	MemoryBytes float64
	TupleBytes  float64
	Selectivity map[string]float64
}

// OptimizeConfig tunes RLAS.
type OptimizeConfig struct {
	// Machine is the optimization target (required).
	Machine *Machine
	// Stats maps operator name to profiled statistics (required). The
	// selectivity declared on the topology is used when a stat entry
	// leaves Selectivity nil.
	Stats map[string]OperatorStats
	// IngressRate is the offered external rate (tuples/sec); 0 means
	// saturated (the paper's maximum-capacity configuration).
	IngressRate float64
	// CompressRatio is the execution-graph compression r (default 5).
	CompressRatio int
	// SearchNodeLimit caps the branch-and-bound search per placement
	// round (default 1500).
	SearchNodeLimit int
	// MaxIterations caps scaling rounds (default 40).
	MaxIterations int
	// FixedSpouts pins spout replication during bottleneck scaling —
	// required when the plan must be adoptable by a running engine
	// (replay offsets are per-replica, so live sources cannot be split).
	FixedSpouts bool
}

// Plan is an optimized execution plan.
type Plan struct {
	// Replication is the chosen replica count per operator.
	Replication map[string]int
	// PlacementText renders the socket assignment ("S0: op#0, ...").
	PlacementText string
	// PredictedThroughput is the model's estimate (tuples/sec).
	PredictedThroughput float64
	// Bottlenecks lists operators still over-supplied in the final plan.
	Bottlenecks []string
	// Iterations and Elapsed describe the optimization run.
	Iterations int
	Elapsed    time.Duration

	inner *rlas.Result
	stats profile.Set
}

// Optimize runs RLAS on the topology and returns the plan.
func (t *Topology) Optimize(cfg OptimizeConfig) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("briskstream: OptimizeConfig.Machine is required")
	}
	stats, err := t.toProfileSet(cfg.Stats)
	if err != nil {
		return nil, err
	}
	ingress := cfg.IngressRate
	if ingress <= 0 {
		ingress = model.Saturated
	}
	nodeLimit := cfg.SearchNodeLimit
	if nodeLimit <= 0 {
		nodeLimit = 1500
	}
	seed, err := rlas.SeedReplication(t.g, stats, cfg.Machine.TotalCores(), 0.7)
	if err != nil {
		return nil, err
	}
	rcfg := rlas.Config{
		Model:         &model.Config{Machine: cfg.Machine, Stats: stats, Ingress: ingress},
		Compress:      cfg.CompressRatio,
		BnB:           bnb.Config{NodeLimit: nodeLimit},
		MaxIterations: cfg.MaxIterations,
		Initial:       seed,
		FixedSpouts:   cfg.FixedSpouts,
	}
	r, err := rlas.Optimize(t.g, rcfg)
	if err == bnb.ErrNoFeasiblePlacement && ingress == model.Saturated {
		// Machine too small for a saturated run: back off toward the
		// analytic maximum sustainable ingress.
		for _, fill := range []float64{0.9, 0.7, 0.5, 0.3} {
			imax, ierr := rlas.EstimateMaxIngress(t.g, stats, cfg.Machine.TotalCores(), fill)
			if ierr != nil {
				return nil, ierr
			}
			rcfg.Model = &model.Config{Machine: cfg.Machine, Stats: stats, Ingress: imax}
			if r, err = rlas.Optimize(t.g, rcfg); err == nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Replication:         r.Replication,
		PlacementText:       r.Placement.String(r.Graph),
		PredictedThroughput: r.Eval.Throughput,
		Iterations:          r.Iterations,
		Elapsed:             r.Elapsed,
		inner:               r,
		stats:               stats,
	}
	for _, id := range r.Eval.Bottlenecks {
		p.Bottlenecks = append(p.Bottlenecks, r.Graph.Vertex(id).Label())
	}
	return p, nil
}

// toProfileSet merges user statistics with topology-declared
// selectivities into the model's input format.
func (t *Topology) toProfileSet(stats map[string]OperatorStats) (profile.Set, error) {
	if stats == nil {
		return nil, fmt.Errorf("briskstream: OptimizeConfig.Stats is required")
	}
	set := profile.Set{}
	for _, n := range t.g.Nodes() {
		st, ok := stats[n.Name]
		if !ok {
			return nil, fmt.Errorf("briskstream: no stats for operator %q", n.Name)
		}
		sel := st.Selectivity
		if sel == nil {
			sel = n.Selectivity
		}
		set[n.Name] = profile.Stats{Te: st.ExecNs, M: st.MemoryBytes, N: st.TupleBytes, Selectivity: sel}
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// SimulationResult reports a simulated execution.
type SimulationResult struct {
	// Throughput is the steady-state sink rate (tuples/sec).
	Throughput float64
	// AvgLatencyMs approximates mean end-to-end latency.
	AvgLatencyMs float64
	// Utilization maps "op#replica-group" to service utilization.
	Utilization map[string]float64
}

// Simulate predicts the plan's steady-state behaviour on its machine
// without running the engine.
func (t *Topology) Simulate(p *Plan, m *Machine) (*SimulationResult, error) {
	if p == nil || p.inner == nil {
		return nil, fmt.Errorf("briskstream: Simulate requires a plan from Optimize")
	}
	sr, err := sim.Run(p.inner.Graph, p.inner.Placement, &sim.Config{
		Machine: m, Stats: p.stats, Ingress: model.Saturated,
	})
	if err != nil {
		return nil, err
	}
	out := &SimulationResult{
		Throughput:   sr.Throughput,
		AvgLatencyMs: sr.AvgLatencyNs / 1e6,
		Utilization:  map[string]float64{},
	}
	for _, v := range p.inner.Graph.Vertices {
		out.Utilization[v.Label()] = sr.PerVertex[v.ID].Utilization
	}
	return out, nil
}

// Describe renders the plan for human consumption.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicted throughput: %.1f K events/s\n", p.PredictedThroughput/1000)
	fmt.Fprintf(&b, "optimized in %d iterations (%v)\n", p.Iterations, p.Elapsed.Round(time.Millisecond))
	b.WriteString("replication:\n")
	for op, k := range p.Replication {
		fmt.Fprintf(&b, "  %-20s x%d\n", op, k)
	}
	b.WriteString("placement:\n")
	b.WriteString(p.PlacementText)
	return b.String()
}

// ExecGraph exposes the optimized execution graph for advanced callers
// (experiment harnesses); most users only need Replication/Describe.
func (p *Plan) ExecGraph() *plan.ExecGraph { return p.inner.Graph }
