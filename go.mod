module briskstream

go 1.24
