package briskstream

// End-to-end autoscaler test: a word-count stream whose sentence length
// (splitter selectivity) shifts mid-run. The adaptive run starts from a
// plan optimized for deliberately stale statistics, live-profiles the
// engine, detects the drift, and rolls the engine onto the re-optimized
// plan via barrier → snapshot → re-shard → restore — and its final
// output must equal a static failure-free run's output exactly.

import (
	"fmt"
	"io"
	"testing"
	"time"
)

var skewVocab = []string{
	"stream", "process", "socket", "memory", "tuple", "operator",
	"plan", "latency", "remote", "local", "numa", "core",
	"thread", "queue", "batch", "window",
}

// skewSpout emits short sentences (2 words) before pivot and long ones
// (10 words) after. The stream is a pure function of the offset, so
// replay after a restore regenerates exactly the original suffix.
type skewSpout struct {
	limit, pivot int64
	off          int64
	buf          []byte
}

func (s *skewSpout) words(off int64) int {
	if off < s.pivot {
		return 2
	}
	return 10
}

func (s *skewSpout) Next(c Collector) error {
	if s.off >= s.limit {
		return io.EOF
	}
	off := s.off
	s.off++
	s.buf = s.buf[:0]
	for i := 0; i < s.words(off); i++ {
		if i > 0 {
			s.buf = append(s.buf, ' ')
		}
		s.buf = append(s.buf, skewVocab[(off*7+int64(i)*13)%int64(len(skewVocab))]...)
	}
	out := c.Borrow()
	out.AppendStrBytes(s.buf)
	out.Event = off + 1
	c.Send(out)
	if (off+1)%64 == 0 {
		c.EmitWatermark(off + 1)
	}
	return nil
}

func (s *skewSpout) Offset() int64 { return s.off }

func (s *skewSpout) SeekTo(off int64) error {
	if off < 0 || off > s.limit {
		return fmt.Errorf("skewSpout: seek to %d", off)
	}
	s.off = off
	return nil
}

// multisetSink records every (word, window, count) emission; it
// snapshots so a restored run discards post-cut receipts.
type multisetSink struct {
	got map[string]int64
}

func (s *multisetSink) Process(c Collector, tp *Tuple) error {
	s.got[fmt.Sprintf("%s@%d=%d", tp.Str(0), tp.Event, tp.Int(1))]++
	return nil
}

func (s *multisetSink) Snapshot(enc *SnapshotEncoder) error {
	SaveMapOrdered(enc, s.got,
		func(e *SnapshotEncoder, k string) { e.String(k) },
		func(e *SnapshotEncoder, v int64) { e.Int64(v) })
	return nil
}

func (s *multisetSink) Restore(dec *SnapshotDecoder) error {
	return LoadMapOrdered(dec, s.got,
		func(d *SnapshotDecoder) string { return d.String() },
		func(d *SnapshotDecoder) int64 { return d.Int64() })
}

// buildSkewWC assembles the topology on the public API: spout →
// splitter → windowed counter (keyed by word) → recording sink.
func buildSkewWC(limit, pivot int64, sink *multisetSink) *Topology {
	t := NewTopology("skew-wc")
	t.Spout("src", func() Spout { return &skewSpout{limit: limit, pivot: pivot} }).
		Emits(DefaultStream, StrField("sentence"))
	t.Operator("split", func() Operator {
		return OperatorFunc(func(c Collector, tp *Tuple) error {
			sentence := tp.Str(0)
			for i := 0; i < len(sentence); {
				for i < len(sentence) && sentence[i] == ' ' {
					i++
				}
				start := i
				for i < len(sentence) && sentence[i] != ' ' {
					i++
				}
				if i == start {
					continue
				}
				out := c.Borrow()
				out.AppendStr(sentence[start:i])
				c.Send(out)
			}
			return nil
		})
	}).Subscribe("src", Shuffle).Selectivity(DefaultStream, 2).
		Emits(DefaultStream, StrField("word"))
	t.Operator("count", func() Operator {
		type cnt struct {
			n    int64
			sink uint64 // busy-work accumulator; not part of the state
		}
		return NewWindow(WindowOp[cnt]{
			KeyField: 0,
			Size:     512,
			Init:     func(a *cnt) { *a = cnt{} },
			Add: func(a *cnt, tp *Tuple) {
				// Synthetic per-tuple cost: makes the counter the measured
				// bottleneck once the long sentences arrive, so the
				// re-optimized plan genuinely wants more counter replicas.
				h := uint64(1469598103934665603)
				for i := 0; i < 96; i++ {
					h = (h ^ uint64(i)) * 1099511628211
				}
				a.sink ^= h
				a.n++
			},
			Emit: func(c Collector, key Key, w WindowSpan, a *cnt) {
				out := c.Borrow()
				out.AppendKey(key)
				out.AppendInt(a.n)
				out.Event = w.End
				c.Send(out)
			},
			Save: func(enc *SnapshotEncoder, a *cnt) { enc.Int64(a.n) },
			Load: func(dec *SnapshotDecoder, a *cnt) error { a.n = dec.Int64(); return nil },
		})
	}).Subscribe("split", FieldsKey(0)).
		Emits(DefaultStream, StrField("word"), IntField("n"))
	t.Sink("sink", func() Operator { return sink }).Subscribe("count", Shuffle)
	return t
}

// skewStats are the deliberately stale baseline statistics the adaptive
// run is planned with: short sentences and a cheap counter. The live
// regime (selectivity 10, expensive counter) drifts far past them.
func skewStats() map[string]OperatorStats {
	return map[string]OperatorStats{
		"src":   {ExecNs: 450, MemoryBytes: 64, TupleBytes: 24},
		"split": {ExecNs: 400, MemoryBytes: 128, TupleBytes: 24},
		"count": {ExecNs: 150, MemoryBytes: 64, TupleBytes: 12},
		"sink":  {ExecNs: 100, MemoryBytes: 32, TupleBytes: 20, Selectivity: map[string]float64{}},
	}
}

func TestAdaptiveRescaleOutputEqualsStatic(t *testing.T) {
	const limit, pivot = 80000, 20000

	// Static failure-free reference.
	refSink := &multisetSink{got: map[string]int64{}}
	ref := buildSkewWC(limit, pivot, refSink)
	refRes, err := ref.Run(RunConfig{Replication: map[string]int{"src": 1, "split": 2, "count": 2, "sink": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes.Errors) != 0 {
		t.Fatalf("reference run errors: %v", refRes.Errors)
	}
	if len(refSink.got) == 0 {
		t.Fatal("reference run produced no output")
	}

	// Adaptive run: planned with the stale statistics, live-profiled,
	// rescaled online when the advisor clears the gain threshold.
	var decisions []AdaptiveDecision
	adSink := &multisetSink{got: map[string]int64{}}
	ad := buildSkewWC(limit, pivot, adSink)
	res, err := ad.Run(RunConfig{Adaptive: &AdaptiveConfig{
		Machine:     SyntheticMachine("autoscale", 2, 8),
		Stats:       skewStats(),
		Interval:    15 * time.Millisecond,
		SampleEvery: 8,
		Drift:       0.2,
		Gain:        0.05,
		MaxRescales: 2,
		OnDecision:  func(d AdaptiveDecision) { decisions = append(decisions, d) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("adaptive run errors: %v", res.Errors)
	}
	for _, d := range decisions {
		t.Logf("decision: rescaled=%v repl=%v cur=%.0f new=%.0f drifted=%v err=%v",
			d.Rescaled, d.Replication, d.CurrentPredicted, d.NewPredicted, d.Drifted, d.Err)
	}
	if res.Rescales < 1 {
		t.Fatalf("autoscaler performed no rescale (want >= 1); %d decisions recorded", len(decisions))
	}
	if d := diffStringMultisets(refSink.got, adSink.got); d != "" {
		t.Fatalf("adaptive output differs from static output: %s\n(static %d distinct, adaptive %d)",
			d, len(refSink.got), len(adSink.got))
	}
}

func TestAdaptiveConfigRequiresInputs(t *testing.T) {
	sink := &multisetSink{got: map[string]int64{}}
	topo := buildSkewWC(100, 50, sink)
	if _, err := topo.Run(RunConfig{Adaptive: &AdaptiveConfig{}}); err == nil {
		t.Fatal("Adaptive without Machine/Stats must fail")
	}
	if _, err := topo.Run(RunConfig{Adaptive: &AdaptiveConfig{Machine: SyntheticMachine("m", 1, 4)}}); err == nil {
		t.Fatal("Adaptive without Stats must fail")
	}
}

// diffStringMultisets reports the first few discrepancies between two
// multisets, or "" when identical.
func diffStringMultisets(want, got map[string]int64) string {
	var diffs []string
	for k, w := range want {
		if g := got[k]; g != w {
			diffs = append(diffs, fmt.Sprintf("%s: want %d got %d", k, w, g))
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: want 0 got %d", k, g))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	if len(diffs) > 5 {
		diffs = append(diffs[:5], fmt.Sprintf("... and %d more", len(diffs)-5))
	}
	return fmt.Sprintf("%d discrepancies: %v", len(diffs), diffs)
}
