# BriskStream build/test entry points. `make check` is what CI runs;
# the missing-go.mod class of breakage fails `make build` immediately.

GO ?= go

.PHONY: all build test race bench vet fmt-check check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race focuses on the concurrent hot path (queue + engine) plus the
# window/state/checkpoint subsystems and the windowed apps (including
# the end-to-end kill/restore/replay recovery and rescale tests);
# `make race-all` covers every package and takes correspondingly
# longer. Both run with BRISK_VALIDATE_EVERY=1: every tuple is checked
# against its route's declared schema (engine Config.ValidateEvery), so
# an operator whose layout drifts after its first emit fails the race
# suite instead of corrupting state silently. The first pass runs with
# the columnar batch path on (BRISK_BATCH=1, the default), the second
# re-races the packages whose execution path the toggle changes with it
# off, so both the vectorized and the scalar data paths stay race-clean.
race:
	BRISK_VALIDATE_EVERY=1 BRISK_BATCH=1 $(GO) test -race ./internal/queue/ ./internal/engine/ ./internal/window/ ./internal/state/ ./internal/checkpoint/ ./internal/obs/ ./internal/apps/ .
	BRISK_VALIDATE_EVERY=1 BRISK_BATCH=0 $(GO) test -race ./internal/engine/ ./internal/window/ ./internal/apps/

.PHONY: race-all
race-all:
	BRISK_VALIDATE_EVERY=1 $(GO) test -race ./...

# bench runs the queue/dispatch microbenchmarks that gate the SPSC
# rework (mutex ring vs per-edge SPSC fan-in, and the dispatch path).
bench:
	$(GO) test -bench 'PutGet|EngineDispatch' -benchtime 1s -run xxx ./internal/queue/ ./internal/engine/

# bench-json runs the benchmark apps (the paper's four plus the
# windowed TW) on the real engine across the GOMAXPROCS x replication
# x pinned/unpinned matrix and writes machine-readable rows
# (throughput in and out, latency p50/p99, allocs/tuple, and — on the
# single-core rows — the checkpoint-on vs. checkpoint-off ingest
# overhead at 1s intervals, and on the repl-4 rows the columnar on/off
# ablation) to $(BENCH_JSON), tracking the data-path perf trajectory —
# including the multicore replication scaling the paper is about —
# across PRs. The report also carries an "adaptive" comparison: static
# stale plan vs. the autoscaler draining the same skew-shifting stream.
# CI runs it as a non-gating step.
BENCH_JSON ?= BENCH_PR10.json
# 4s per cell: the columnar-vs-scalar ablation decides signs on
# single-digit margins, and 2s runs swing ±10% on a busy host.
BENCH_JSON_DUR ?= 4s
.PHONY: bench-json
bench-json:
	$(GO) run ./cmd/briskbench -bench-json $(BENCH_JSON_DUR) -pin > $(BENCH_JSON).tmp
	mv $(BENCH_JSON).tmp $(BENCH_JSON)

# bench-multicore runs the parallel-sensitive microbenchmarks (SPSC
# ring + reverse recycling ring + engine dispatch) at GOMAXPROCS=4,
# the setting the multicore bench matrix rows use.
.PHONY: bench-multicore
bench-multicore:
	GOMAXPROCS=4 $(GO) test -bench 'PutGet|FreeRing|EngineDispatch' -benchtime 1s -run xxx ./internal/queue/ ./internal/engine/

# race-multicore re-runs the concurrent hot path with real parallelism
# and pinned executors (BRISK_PIN; a no-op where affinity is
# unsupported), the configuration CI's multicore step gates on. -short
# drops the timing-comparative tests (and the duration-windowed app
# suites are excluded entirely): with GOMAXPROCS above the core count
# plus race-detector overhead, wall-clock comparisons flake while the
# interleavings — what this target exists for — only get richer.
.PHONY: race-multicore
race-multicore:
	GOMAXPROCS=4 BRISK_VALIDATE_EVERY=1 BRISK_PIN=1 $(GO) test -race -short ./internal/queue/ ./internal/engine/

# obs-check is the live-telemetry smoke test CI gates on: it runs the
# windowed demo app with /metrics served on a loopback port, scrapes
# /healthz, /metrics and /events mid-run, and validates every
# exposition line with the same parser the unit tests use; the second
# pass does the same for the tracing surface, validating the /traces
# invariants (monotonic hop times, topology-only spans, attribution
# bounded by elapsed time, breakdown summing to the mean e2e).
.PHONY: obs-check
obs-check:
	$(GO) run ./cmd/briskbench -obs-check
	$(GO) run ./cmd/briskbench -trace-check

vet:
	$(GO) vet ./...

# fmt-check gates on gofmt: an unformatted tree fails check (and CI)
# with the offending files listed, instead of drifting silently.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: vet fmt-check build
	BRISK_VALIDATE_EVERY=1 $(GO) test -race ./...
