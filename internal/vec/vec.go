// Package vec holds small generic vectorized kernels over columnar
// tuple batches: selection-vector filters and row forwarding/projection
// helpers the batch-aware operators compose. Filters produce a
// selection vector (row indices into the batch) instead of
// materializing survivors, so a filter→project→emit chain touches each
// dropped row once and copies nothing for it.
package vec

import "briskstream/internal/tuple"

// Emitter is the output half of engine.Collector the kernels need —
// structural, so vec does not depend on the engine package (operators
// pass their Collector straight in).
type Emitter interface {
	// Borrow returns an empty pooled tuple owned by the caller until
	// passed to Send.
	Borrow() *tuple.Tuple
	// Send emits a borrowed tuple, consuming ownership.
	Send(t *tuple.Tuple)
}

// Select appends to sel the row indices for which pred reports true,
// returning the extended selection. Pass b.SelScratch() to reuse the
// batch's scratch vector (valid until the batch is recycled).
func Select(b *tuple.Batch, sel []int32, pred func(r int) bool) []int32 {
	n := b.Len()
	for r := 0; r < n; r++ {
		if pred(r) {
			sel = append(sel, int32(r))
		}
	}
	return sel
}

// SelectStrNonEmpty appends to sel the rows whose string column c is
// non-empty — the common "drop blank lines" filter, kept loop-specific
// so the per-row test is a length compare, not an interface call.
func SelectStrNonEmpty(b *tuple.Batch, c int, sel []int32) []int32 {
	n := b.Len()
	for r := 0; r < n; r++ {
		if b.StrLen(c, r) > 0 {
			sel = append(sel, int32(r))
		}
	}
	return sel
}

// RowForwarder is the optional bulk-forwarding extension of Emitter:
// the engine's collector implements it to land forwarded rows with a
// direct batch-to-batch column copy (no intermediate tuple) whenever
// the downstream edges are columnar. A nil sel forwards every row.
type RowForwarder interface {
	ForwardRows(b *tuple.Batch, sel []int32, stream tuple.StreamID)
}

// ForwardRow re-emits row r of the batch on the given stream: the full
// payload and the row's own timestamp/event/trace metadata. (The engine
// does not stamp ambient context during ProcessBatch — the row's
// metadata travels with it here.)
func ForwardRow(e Emitter, b *tuple.Batch, r int, stream tuple.StreamID) {
	out := e.Borrow()
	b.CopyRowTo(r, out)
	out.Stream = stream
	e.Send(out)
}

// ForwardSel re-emits the selected rows in selection order.
func ForwardSel(e Emitter, b *tuple.Batch, sel []int32, stream tuple.StreamID) {
	if f, ok := e.(RowForwarder); ok {
		f.ForwardRows(b, sel, stream)
		return
	}
	for _, r := range sel {
		ForwardRow(e, b, int(r), stream)
	}
}

// ForwardAll re-emits every row of the batch.
func ForwardAll(e Emitter, b *tuple.Batch, stream tuple.StreamID) {
	if f, ok := e.(RowForwarder); ok {
		f.ForwardRows(b, nil, stream)
		return
	}
	n := b.Len()
	for r := 0; r < n; r++ {
		ForwardRow(e, b, r, stream)
	}
}

// ProjectRow emits the given columns of row r (in cols order) on the
// given stream, stamping the row's metadata.
func ProjectRow(e Emitter, b *tuple.Batch, r int, stream tuple.StreamID, cols ...int) {
	out := e.Borrow()
	for _, c := range cols {
		b.AppendFieldTo(c, r, out)
	}
	out.Stream = stream
	b.StampMeta(r, out)
	e.Send(out)
}

// ProjectSel projects the selected rows in selection order.
func ProjectSel(e Emitter, b *tuple.Batch, sel []int32, stream tuple.StreamID, cols ...int) {
	for _, r := range sel {
		ProjectRow(e, b, int(r), stream, cols...)
	}
}
