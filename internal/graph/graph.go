// Package graph models a streaming application as a logical DAG:
// vertexes are continuously running operators and edges are named data
// streams flowing between them (Section 2.2). The DAG carries the
// declarative facts the optimizer needs — per-output-stream selectivity
// and partitioning scheme — independent of any replication or placement
// decision (those live in package plan).
package graph

import (
	"fmt"
	"sort"
)

// Partitioning selects how a producer's output tuples are distributed
// over the consumer's replicas.
type Partitioning int

const (
	// Shuffle distributes tuples round-robin/randomly across replicas.
	Shuffle Partitioning = iota
	// Fields routes by hash of a key field, so the same key always
	// reaches the same replica (e.g. WC's word -> Counter).
	Fields
	// Broadcast copies every tuple to all replicas.
	Broadcast
	// Global routes all tuples to a single replica.
	Global
)

// String implements fmt.Stringer.
func (p Partitioning) String() string {
	switch p {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case Broadcast:
		return "broadcast"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Partitioning(%d)", int(p))
	}
}

// Edge is one producer->consumer stream subscription.
type Edge struct {
	// From and To are operator names.
	From, To string
	// Stream is the producer output stream the consumer subscribes to.
	Stream string
	// Partitioning selects replica routing.
	Partitioning Partitioning
	// KeyField is the tuple field index used by Fields partitioning.
	KeyField int
}

// Node is one logical operator.
type Node struct {
	// Name uniquely identifies the operator within its graph.
	Name string
	// IsSpout marks source operators (fed by the external ingress I).
	IsSpout bool
	// IsSink marks operators with no consumers whose output rate sums to
	// the application throughput R.
	IsSink bool
	// Selectivity maps each output stream name to the average number of
	// output tuples emitted on that stream per input tuple (Appendix B).
	Selectivity map[string]float64
}

// TotalSelectivity is the summed selectivity over all output streams:
// expected output tuples per input tuple.
func (n *Node) TotalSelectivity() float64 {
	var s float64
	for _, v := range n.Selectivity {
		s += v
	}
	return s
}

// Graph is a logical streaming application topology.
type Graph struct {
	name  string
	nodes map[string]*Node
	order []string // insertion order for deterministic iteration
	out   map[string][]Edge
	in    map[string][]Edge
}

// New creates an empty graph with the given application name.
func New(name string) *Graph {
	return &Graph{
		name:  name,
		nodes: make(map[string]*Node),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// Name returns the application name.
func (g *Graph) Name() string { return g.name }

// AddNode inserts an operator. Selectivity may be nil for sinks.
func (g *Graph) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("graph %s: node with empty name", g.name)
	}
	if _, dup := g.nodes[n.Name]; dup {
		return fmt.Errorf("graph %s: duplicate node %q", g.name, n.Name)
	}
	if n.Selectivity == nil {
		n.Selectivity = map[string]float64{}
	}
	g.nodes[n.Name] = n
	g.order = append(g.order, n.Name)
	return nil
}

// AddEdge subscribes consumer to producer's stream.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.nodes[e.From]; !ok {
		return fmt.Errorf("graph %s: edge from unknown node %q", g.name, e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return fmt.Errorf("graph %s: edge to unknown node %q", g.name, e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("graph %s: self-loop on %q", g.name, e.From)
	}
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To] = append(g.in[e.To], e)
	return nil
}

// Node returns the named operator, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Nodes returns all operators in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.nodes[name])
	}
	return out
}

// Len returns the number of operators.
func (g *Graph) Len() int { return len(g.nodes) }

// Out returns the outgoing edges of an operator.
func (g *Graph) Out(name string) []Edge { return g.out[name] }

// In returns the incoming edges of an operator.
func (g *Graph) In(name string) []Edge { return g.in[name] }

// Spouts returns the source operators in insertion order.
func (g *Graph) Spouts() []*Node {
	var s []*Node
	for _, n := range g.Nodes() {
		if n.IsSpout {
			s = append(s, n)
		}
	}
	return s
}

// Sinks returns the sink operators in insertion order.
func (g *Graph) Sinks() []*Node {
	var s []*Node
	for _, n := range g.Nodes() {
		if n.IsSink {
			s = append(s, n)
		}
	}
	return s
}

// Validate checks structural invariants: at least one spout and one sink,
// spouts have no producers, sinks have no consumers, every non-spout is
// reachable (has at least one producer), the graph is acyclic, and every
// edge's stream has a declared selectivity on the producer.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph %s: empty", g.name)
	}
	if len(g.Spouts()) == 0 {
		return fmt.Errorf("graph %s: no spout", g.name)
	}
	if len(g.Sinks()) == 0 {
		return fmt.Errorf("graph %s: no sink", g.name)
	}
	for _, n := range g.Nodes() {
		if n.IsSpout && len(g.in[n.Name]) > 0 {
			return fmt.Errorf("graph %s: spout %q has producers", g.name, n.Name)
		}
		if n.IsSink && len(g.out[n.Name]) > 0 {
			return fmt.Errorf("graph %s: sink %q has consumers", g.name, n.Name)
		}
		if !n.IsSpout && len(g.in[n.Name]) == 0 {
			return fmt.Errorf("graph %s: operator %q is unreachable", g.name, n.Name)
		}
		if !n.IsSink && len(g.out[n.Name]) == 0 {
			return fmt.Errorf("graph %s: non-sink %q has no consumers", g.name, n.Name)
		}
		for _, e := range g.out[n.Name] {
			if _, ok := n.Selectivity[e.Stream]; !ok {
				return fmt.Errorf("graph %s: %q emits on stream %q with no declared selectivity", g.name, n.Name, e.Stream)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns operator names in a topological order (producers
// before consumers) or an error if the graph has a cycle. Ties are broken
// by insertion order so results are deterministic.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for name := range g.nodes {
		indeg[name] = len(g.in[name])
	}
	var ready []string
	for _, name := range g.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		// Deterministic: iterate out-edges in insertion order.
		for _, e := range g.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("graph %s: cycle detected", g.name)
	}
	return out, nil
}

// ReverseTopoSort returns sinks-first ordering; Algorithm 1 scales
// bottlenecks starting from the sink toward the spout.
func (g *Graph) ReverseTopoSort() ([]string, error) {
	fwd, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	rev := make([]string, len(fwd))
	for i, n := range fwd {
		rev[len(fwd)-1-i] = n
	}
	return rev, nil
}

// Producers returns the distinct producer names of an operator, sorted.
func (g *Graph) Producers(name string) []string {
	set := map[string]bool{}
	for _, e := range g.in[name] {
		set[e.From] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Consumers returns the distinct consumer names of an operator, sorted.
func (g *Graph) Consumers(name string) []string {
	set := map[string]bool{}
	for _, e := range g.out[name] {
		set[e.To] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns every edge, producers in insertion order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, name := range g.order {
		out = append(out, g.out[name]...)
	}
	return out
}
