package graph

import (
	"math/rand"
	"testing"
)

// linear builds spout -> a -> b -> sink.
func linear(t *testing.T) *Graph {
	t.Helper()
	g := New("linear")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&Node{Name: "a", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&Node{Name: "b", Selectivity: map[string]float64{"default": 10}}))
	must(g.AddNode(&Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(Edge{From: "spout", To: "a", Stream: "default"}))
	must(g.AddEdge(Edge{From: "a", To: "b", Stream: "default"}))
	must(g.AddEdge(Edge{From: "b", To: "sink", Stream: "default", Partitioning: Fields, KeyField: 0}))
	return g
}

func TestValidateAcceptsLinear(t *testing.T) {
	g := linear(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
	if len(g.Spouts()) != 1 || g.Spouts()[0].Name != "spout" {
		t.Error("spout detection failed")
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0].Name != "sink" {
		t.Error("sink detection failed")
	}
}

func TestTopoSort(t *testing.T) {
	g := linear(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s violates topo order", e.From, e.To)
		}
	}
	rev, err := g.ReverseTopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] != "sink" || rev[len(rev)-1] != "spout" {
		t.Errorf("reverse order = %v", rev)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyclic")
	g.AddNode(&Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&Node{Name: "a", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&Node{Name: "b", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&Node{Name: "sink", IsSink: true})
	g.AddEdge(Edge{From: "spout", To: "a", Stream: "default"})
	g.AddEdge(Edge{From: "a", To: "b", Stream: "default"})
	g.AddEdge(Edge{From: "b", To: "a", Stream: "default"})
	g.AddEdge(Edge{From: "b", To: "sink", Stream: "default"})
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted cyclic graph")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := New("e").Validate(); err == nil {
			t.Error("empty graph accepted")
		}
	})
	t.Run("no sink", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "spout", IsSpout: true})
		if err := g.Validate(); err == nil {
			t.Error("graph without sink accepted")
		}
	})
	t.Run("unreachable operator", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&Node{Name: "orphan", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&Node{Name: "sink", IsSink: true})
		g.AddEdge(Edge{From: "spout", To: "sink", Stream: "default"})
		// orphan has no in-edges and is not a spout
		if err := g.Validate(); err == nil {
			t.Error("unreachable operator accepted")
		}
	})
	t.Run("missing selectivity", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"other": 1}})
		g.AddNode(&Node{Name: "sink", IsSink: true})
		g.AddEdge(Edge{From: "spout", To: "sink", Stream: "default"})
		if err := g.Validate(); err == nil {
			t.Error("edge with undeclared selectivity accepted")
		}
	})
	t.Run("duplicate node", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "x"})
		if err := g.AddNode(&Node{Name: "x"}); err == nil {
			t.Error("duplicate accepted")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "x"})
		if err := g.AddEdge(Edge{From: "x", To: "x", Stream: "default"}); err == nil {
			t.Error("self loop accepted")
		}
	})
	t.Run("edge to unknown", func(t *testing.T) {
		g := New("g")
		g.AddNode(&Node{Name: "x"})
		if err := g.AddEdge(Edge{From: "x", To: "y", Stream: "default"}); err == nil {
			t.Error("edge to unknown node accepted")
		}
		if err := g.AddEdge(Edge{From: "z", To: "x", Stream: "default"}); err == nil {
			t.Error("edge from unknown node accepted")
		}
	})
}

func TestProducersConsumers(t *testing.T) {
	g := New("diamond")
	for _, n := range []string{"spout", "l", "r", "sink"} {
		node := &Node{Name: n, Selectivity: map[string]float64{"default": 1}}
		node.IsSpout = n == "spout"
		node.IsSink = n == "sink"
		g.AddNode(node)
	}
	g.AddEdge(Edge{From: "spout", To: "l", Stream: "default"})
	g.AddEdge(Edge{From: "spout", To: "r", Stream: "default"})
	g.AddEdge(Edge{From: "l", To: "sink", Stream: "default"})
	g.AddEdge(Edge{From: "r", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Producers("sink"); len(got) != 2 || got[0] != "l" || got[1] != "r" {
		t.Errorf("Producers(sink) = %v", got)
	}
	if got := g.Consumers("spout"); len(got) != 2 || got[0] != "l" || got[1] != "r" {
		t.Errorf("Consumers(spout) = %v", got)
	}
}

func TestTotalSelectivity(t *testing.T) {
	n := &Node{Name: "d", Selectivity: map[string]float64{"a": 0.99, "b": 0.005, "c": 0.005}}
	if got := n.TotalSelectivity(); got != 1.0 {
		t.Errorf("TotalSelectivity = %v", got)
	}
}

func TestPartitioningString(t *testing.T) {
	for p, want := range map[Partitioning]string{Shuffle: "shuffle", Fields: "fields", Broadcast: "broadcast", Global: "global", Partitioning(42): "Partitioning(42)"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

// Property: TopoSort of random DAGs (edges only i->j with i<j) is always a
// valid linear extension and is deterministic.
func TestTopoSortRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		g := New("rand")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			g.AddNode(&Node{Name: names[i], Selectivity: map[string]float64{"default": 1}})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(Edge{From: names[i], To: names[j], Stream: "default"})
				}
			}
		}
		o1, err := g.TopoSort()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o2, _ := g.TopoSort()
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("trial %d: nondeterministic topo sort", trial)
			}
		}
		pos := map[string]int{}
		for i, nm := range o1 {
			pos[nm] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("trial %d: order violation %s->%s", trial, e.From, e.To)
			}
		}
	}
}
