package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP brisk_tuples_total Tuples processed.
# TYPE brisk_tuples_total counter
brisk_tuples_total{op="split",task="split#0"} 123

# HELP brisk_latency_ns Latency.
# TYPE brisk_latency_ns histogram
brisk_latency_ns_bucket{le="1024"} 10
brisk_latency_ns_bucket{le="+Inf"} 12
brisk_latency_ns_sum 4096.5
brisk_latency_ns_count 12

# HELP brisk_depth Queue depth.
# TYPE brisk_depth gauge
brisk_depth 0
brisk_depth_with_ts{a="b"} 1.5e3 1712345678901
`
	// brisk_depth_with_ts needs its own TYPE; patch it in.
	good = strings.Replace(good, "brisk_depth_with_ts",
		"brisk_depth2", 1)
	good = strings.Replace(good, "# TYPE brisk_depth gauge",
		"# TYPE brisk_depth gauge\n# TYPE brisk_depth2 gauge", 1)
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "orphan_metric 1\n",
		"bad metric name":     "# TYPE 9bad gauge\n9bad 1\n",
		"bad value":           "# TYPE m gauge\nm not_a_number\n",
		"unquoted label":      "# TYPE m gauge\nm{a=b} 1\n",
		"unterminated labels": "# TYPE m gauge\nm{a=\"b\" 1\n",
		"bad label name":      "# TYPE m gauge\nm{9a=\"b\"} 1\n",
		"bad escape":          "# TYPE m gauge\nm{a=\"b\\q\"} 1\n",
		"duplicate TYPE":      "# TYPE m gauge\n# TYPE m counter\nm 1\n",
		"unknown type":        "# TYPE m funky\nm 1\n",
		"missing value":       "# TYPE m gauge\nm{a=\"b\"}\n",
		"bad timestamp":       "# TYPE m gauge\nm 1 soon\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: malformed exposition accepted:\n%s", name, data)
		}
	}
}

func TestValidateExpositionInfNaN(t *testing.T) {
	data := "# TYPE m gauge\nm +Inf\nm{x=\"1\"} -Inf\nm{x=\"2\"} NaN\n"
	if err := ValidateExposition([]byte(data)); err != nil {
		t.Fatalf("Inf/NaN sample values rejected: %v", err)
	}
}
