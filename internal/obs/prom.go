package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WriteProm renders every registered series as Prometheus text
// exposition (format version 0.0.4): # HELP / # TYPE comments followed
// by the samples, families sorted by name, series sorted by labels.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, e := range r.snapshotEntries() {
		if e.name != lastFamily {
			if lastFamily != "" {
				fmt.Fprintln(bw)
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind.promType())
			lastFamily = e.name
		}
		switch e.kind {
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", e.name, e.labelStr, formatFloat(e.gaugeFn()))
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", e.name, e.labelStr, e.counterFn())
		case kindHist:
			writeHist(bw, e)
		case kindRateWindow:
			for _, span := range r.windowSpans() {
				fmt.Fprintf(bw, "%s%s %s\n", e.name, withLabel(e.labels, L{Key: "window", Value: span.String()}), formatFloat(e.win.Rate(span)))
			}
		case kindValueWindow:
			for _, span := range r.windowSpans() {
				for _, q := range [...]float64{0.50, 0.90, 0.99} {
					fmt.Fprintf(bw, "%s%s %s\n", e.name,
						withLabel(e.labels, L{Key: "window", Value: span.String()}, L{Key: "quantile", Value: formatFloat(q)}),
						formatFloat(e.win.Quantile(span, q)))
				}
			}
		}
	}
	return bw.Flush()
}

// writeHist renders one histogram series: cumulative _bucket samples
// (non-empty buckets only, plus +Inf), then _sum and _count. Skipping
// empty buckets keeps 190 fixed buckets from bloating the exposition;
// cumulative `le` semantics stay exact.
func writeHist(w io.Writer, e *entry) {
	s := e.hist.Snapshot()
	var cum uint64
	for i := range s.Buckets {
		if s.Buckets[i] == 0 {
			continue
		}
		cum += s.Buckets[i]
		if i == NumBuckets-1 {
			continue // rendered by the +Inf bucket below
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.name,
			withLabel(e.labels, L{Key: "le", Value: formatFloat(BucketBound(i))}), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, withLabel(e.labels, L{Key: "le", Value: "+Inf"}), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", e.name, e.labelStr, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labelStr, cum)
}

func withLabel(labels []L, extra ...L) string {
	all := make([]L, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	return renderLabels(all)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exposition well-formedness checking. This is the minimal parser the
// obs tests and `briskbench -check-exposition` (the CI gate) run over
// every scrape: it accepts the text-format grammar our writer and
// Prometheus both speak and rejects anything structurally malformed.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition checks that data is well-formed Prometheus text
// exposition: every HELP/TYPE comment names a valid family with a
// known type, every sample line parses (name, optional label set with
// proper quoting/escaping, float value, optional timestamp), each
// family's TYPE appears at most once and before its samples, and
// histogram suffixes (_bucket/_sum/_count) belong to a declared
// histogram family. The first violation is returned with its line
// number.
func ValidateExposition(data []byte) error {
	typed := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w: %q", lineNo, err, line)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w: %q", lineNo, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

func validateComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !promNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment")
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("invalid family name in TYPE")
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q", typ)
		}
		if prev, ok := typed[name]; ok && prev != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		typed[name] = typ
	}
	return nil
}

func validateSample(line string, typed map[string]string) error {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return fmt.Errorf("missing metric name or value")
	}
	name := rest[:i]
	if !promNameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		var err error
		rest, err = validateLabelSet(rest)
		if err != nil {
			return err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value [timestamp]")
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	// Family membership: the sample's base name must carry a declared
	// TYPE; histogram/summary child suffixes resolve to their parent.
	base := name
	if _, ok := typed[base]; !ok {
		for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
			parent := strings.TrimSuffix(name, suffix)
			if parent == name {
				continue
			}
			if t, ok := typed[parent]; ok && (t == "histogram" || t == "summary") {
				return nil
			}
		}
		return fmt.Errorf("sample for undeclared family %q (no TYPE before it)", name)
	}
	return nil
}

// validateLabelSet consumes a {k="v",...} prefix and returns the
// remainder of the line.
func validateLabelSet(s string) (string, error) {
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ")
		if len(s) == 0 {
			return "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", fmt.Errorf("malformed label pair")
		}
		if key := strings.TrimSpace(s[:eq]); !promLabelRe.MatchString(key) {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", fmt.Errorf("label value must be quoted")
		}
		s = s[1:]
		// Scan the quoted value honouring \\, \" and \n escapes.
		for {
			if len(s) == 0 {
				return "", fmt.Errorf("unterminated label value")
			}
			switch s[0] {
			case '\\':
				if len(s) < 2 || (s[1] != '\\' && s[1] != '"' && s[1] != 'n') {
					return "", fmt.Errorf("invalid escape in label value")
				}
				s = s[2:]
			case '"':
				s = s[1:]
				goto closed
			default:
				s = s[1:]
			}
		}
	closed:
		s = strings.TrimLeft(s, " ")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
			continue
		}
		if len(s) > 0 && s[0] == '}' {
			return s[1:], nil
		}
		return "", fmt.Errorf("expected ',' or '}' after label value")
	}
}
