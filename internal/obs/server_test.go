package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry(10 * time.Second)
	g := r.Group("test")
	g.Gauge("brisk_test_gauge", "A test gauge.", nil, func() float64 { return 1 })
	j := NewJournal(16)
	j.Emit(Event{Type: "run_start"})

	s, err := Serve("127.0.0.1:0", r, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "brisk_test_gauge 1") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics not well-formed: %v", err)
	}
	if ct := func() string {
		resp, err := http.Get(s.URL() + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		return resp.Header.Get("Content-Type")
	}(); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	code, body = get("/events?since=0")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	var evs struct{ Events []Event }
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("events json: %v\n%s", err, body)
	}
	if len(evs.Events) != 1 || evs.Events[0].Type != "run_start" {
		t.Fatalf("events = %+v", evs.Events)
	}

	code, body = get("/statusz")
	if code != 200 || !strings.Contains(body, "uptime_seconds") {
		t.Fatalf("/statusz = %d\n%s", code, body)
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestServerNilRegistry(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
}
