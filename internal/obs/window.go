package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

func floatBitsAdd(bits uint64, v float64) uint64 {
	return math.Float64bits(math.Float64frombits(bits) + v)
}

func floatFromBits(bits uint64) float64 { return math.Float64frombits(bits) }

// winSlot is one per-second accumulator of a Window. A slot is claimed
// for the current second by CAS on its epoch; the winner zeroes the
// counters. Observations racing the reset may be lost from that one
// second — rolling telemetry tolerates that, the data path staying
// lock-free does not tolerate a mutex.
type winSlot struct {
	epoch   atomic.Int64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	buckets []atomic.Uint64
}

// Window aggregates observations into a ring of per-second slots and
// answers rate and quantile queries over the trailing span (e.g. the
// last 10s or 60s). Observe/Add are safe from any goroutine and
// allocation-free; Sample (the cumulative-counter feed) must come from
// a single sampler at a time (Registry.Tick serializes it).
type Window struct {
	slots  []winSlot
	span   int64 // maximum queryable span, seconds
	valued bool
	now    func() time.Time

	// Sampler state for Sample(cum): guarded by mu, not by the caller.
	mu     sync.Mutex
	last   uint64
	primed bool
}

// NewWindow builds a window able to answer queries up to span back
// (minimum 10s). valued windows additionally keep per-slot histogram
// buckets so they can answer quantiles; count-only windows answer
// rates.
func NewWindow(span time.Duration, valued bool) *Window {
	sec := int64(span / time.Second)
	if sec < 10 {
		sec = 10
	}
	w := &Window{slots: make([]winSlot, sec+2), span: sec, valued: valued, now: time.Now}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		if valued {
			w.slots[i].buckets = make([]atomic.Uint64, NumBuckets)
		}
	}
	return w
}

// slotFor claims (resetting if stale) and returns the slot for the
// given epoch second.
func (w *Window) slotFor(sec int64) *winSlot {
	s := &w.slots[sec%int64(len(w.slots))]
	if e := s.epoch.Load(); e != sec && s.epoch.CompareAndSwap(e, sec) {
		s.count.Store(0)
		s.sum.Store(0)
		for i := range s.buckets {
			s.buckets[i].Store(0)
		}
	}
	return s
}

// Observe records one observation into the current second.
func (w *Window) Observe(v float64) {
	s := w.slotFor(w.now().Unix())
	s.count.Add(1)
	for {
		old := s.sum.Load()
		if s.sum.CompareAndSwap(old, floatBitsAdd(old, v)) {
			break
		}
	}
	if w.valued {
		s.buckets[bucketIndex(v)].Add(1)
	}
}

// Add records n events into the current second (count-only feed).
func (w *Window) Add(n uint64) {
	if n == 0 {
		return
	}
	w.slotFor(w.now().Unix()).count.Add(n)
}

// Sample feeds the window from a cumulative counter: the delta since
// the previous Sample lands in the current second. A counter that went
// backwards (engine restart) restarts the baseline without recording a
// wrapped delta.
func (w *Window) Sample(cum uint64) {
	w.mu.Lock()
	primed, last := w.primed, w.last
	w.primed, w.last = true, cum
	w.mu.Unlock()
	if !primed || cum < last {
		return
	}
	w.Add(cum - last)
}

// reduce folds the slots of the trailing span. Rates use complete
// seconds only (epochs [now-span, now-1]); quantile merges include the
// current partial second for freshness.
func (w *Window) reduce(span time.Duration, includeCurrent bool) (count uint64, sum float64, buckets HistSnapshot) {
	sec := int64(span / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > w.span {
		sec = w.span
	}
	nowSec := w.now().Unix()
	lo := nowSec - sec
	hi := nowSec - 1
	if includeCurrent {
		hi = nowSec
	}
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < lo || e > hi {
			continue
		}
		count += s.count.Load()
		sum += floatFromBits(s.sum.Load())
		for b := range s.buckets {
			buckets.Buckets[b] += s.buckets[b].Load()
		}
	}
	buckets.Count, buckets.Sum = count, sum
	return count, sum, buckets
}

// Rate returns events/second averaged over the trailing span
// (complete seconds only, clamped to the window's configured span).
func (w *Window) Rate(span time.Duration) float64 {
	sec := int64(span / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > w.span {
		sec = w.span
	}
	count, _, _ := w.reduce(time.Duration(sec)*time.Second, false)
	return float64(count) / float64(sec)
}

// Count returns the number of observations in the trailing span
// (including the current partial second).
func (w *Window) Count(span time.Duration) uint64 {
	count, _, _ := w.reduce(span, true)
	return count
}

// Quantile estimates the q-quantile over the trailing span. Only
// valued windows hold the buckets to answer; count-only windows
// return 0.
func (w *Window) Quantile(span time.Duration, q float64) float64 {
	if !w.valued {
		return 0
	}
	_, _, s := w.reduce(span, true)
	return s.Quantile(q)
}

// Mean returns the average observation over the trailing span, or 0
// when empty.
func (w *Window) Mean(span time.Duration) float64 {
	count, sum, _ := w.reduce(span, true)
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
