package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 6; i++ {
		j.Emit(Event{Type: fmt.Sprintf("e%d", i)})
	}
	if j.Seq() != 6 {
		t.Fatalf("seq = %d, want 6", j.Seq())
	}
	evs := j.Events(0)
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4 (ring bound)", len(evs))
	}
	if evs[0].Type != "e3" || evs[3].Type != "e6" {
		t.Fatalf("ring window wrong: %v .. %v", evs[0].Type, evs[3].Type)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seqs not contiguous: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	// Cursor semantics: since the last seen seq, only newer events.
	evs = j.Events(5)
	if len(evs) != 1 || evs[0].Type != "e6" {
		t.Fatalf("Events(5) = %v", evs)
	}
	if got := j.Events(6); len(got) != 0 {
		t.Fatalf("Events(at head) = %v, want empty", got)
	}
}

func TestJournalOnEvent(t *testing.T) {
	j := NewJournal(8)
	var got []Event
	j.SetOnEvent(func(ev Event) { got = append(got, ev) })
	j.Emit(Event{Type: "a"})
	j.Emit(Event{Type: "b", Attrs: map[string]string{"k": "v"}})
	if len(got) != 2 || got[0].Type != "a" || got[1].Attrs["k"] != "v" {
		t.Fatalf("hook saw %v", got)
	}
	if got[0].At.IsZero() || got[0].Seq != 1 {
		t.Fatalf("event not stamped: %+v", got[0])
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				j.Emit(Event{Type: "tick"})
				j.Events(0)
			}
		}()
	}
	wg.Wait()
	if j.Seq() != 4000 {
		t.Fatalf("seq = %d, want 4000", j.Seq())
	}
}
