package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceRingWrapKeepsNewest(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		r.Append(Span{TraceID: uint64(i), AtNs: int64(i), Kind: SpanHop})
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d spans, want the 4 newest", len(got))
	}
	for i, s := range got {
		if want := uint64(7 + i); s.TraceID != want {
			t.Fatalf("span %d: trace %d, want %d", i, s.TraceID, want)
		}
	}
}

func TestTraceRingConcurrentSnapshot(t *testing.T) {
	// One writer, many readers, under -race: readers must only ever see
	// fully-published spans (AtNs always mirrors TraceID here).
	r := NewTraceRing(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Span
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for _, s := range buf {
					if int64(s.TraceID) != s.AtNs {
						t.Errorf("torn span: id %d at %d", s.TraceID, s.AtNs)
						return
					}
				}
			}
		}()
	}
	for i := 1; i <= 100000; i++ {
		r.Append(Span{TraceID: uint64(i), AtNs: int64(i), Kind: SpanHop})
	}
	close(stop)
	wg.Wait()
}

// sampleTracer builds a tracer with a spout->op->sink trace: origin at
// 1000ns, op hop at 3000ns (queue 500, service 1000), sink hop at
// 6000ns (queue 1000, service 1500).
func sampleTracer() *Tracer {
	tr := NewTracer()
	src := tr.AddTask(TraceTask{Label: "spout:0", Op: "spout", Source: true}, 0)
	mid := tr.AddTask(TraceTask{Label: "work:0", Op: "work"}, 0)
	snk := tr.AddTask(TraceTask{Label: "sink:0", Op: "sink", Sink: true}, 0)
	src.Append(Span{TraceID: 7, OriginNs: 1000, AtNs: 1000, Emitted: 1, Kind: SpanSource})
	mid.Append(Span{TraceID: 7, OriginNs: 1000, AtNs: 3000, QueueWaitNs: 500, ServiceNs: 1000, Emitted: 1, Kind: SpanHop})
	snk.Append(Span{TraceID: 7, OriginNs: 1000, AtNs: 6000, QueueWaitNs: 1000, ServiceNs: 1500, Kind: SpanHop})
	return tr
}

func TestTracerAssemblesTraces(t *testing.T) {
	tr := sampleTracer()
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tc := traces[0]
	if tc.ID != 7 || tc.OriginNs != 1000 || tc.E2eNs != 5000 {
		t.Fatalf("trace = %+v, want id 7 origin 1000 e2e 5000", tc)
	}
	if len(tc.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tc.Spans))
	}
	for i := 1; i < len(tc.Spans); i++ {
		if tc.Spans[i].AtNs < tc.Spans[i-1].AtNs {
			t.Fatalf("spans not in hop order: %+v", tc.Spans)
		}
	}
	if tc.Spans[0].Kind != "source" || tc.Spans[0].Op != "spout" {
		t.Fatalf("first span = %+v, want the source", tc.Spans[0])
	}
}

func TestTracerAnalyzeAttribution(t *testing.T) {
	an := sampleTracer().Analyze()
	if an.Traces != 1 {
		t.Fatalf("analysis covers %d traces, want 1", an.Traces)
	}
	if an.MeanE2eNs != 5000 {
		t.Fatalf("mean e2e = %.0f, want 5000", an.MeanE2eNs)
	}
	// work hop: interval 2000 = 500 queue + 1000 service + 500 transfer.
	// sink hop: interval 3000 = 1000 queue + 1500 service + 500 transfer.
	var total float64
	byOp := map[string]OpBreakdown{}
	for _, op := range an.Ops {
		byOp[op.Op] = op
		total += op.QueueNs + op.ServiceNs + op.TransferNs
	}
	if w := byOp["work"]; w.QueueNs != 500 || w.ServiceNs != 1000 || w.TransferNs != 500 {
		t.Fatalf("work breakdown = %+v", w)
	}
	if s := byOp["sink"]; s.QueueNs != 1000 || s.ServiceNs != 1500 || s.TransferNs != 500 {
		t.Fatalf("sink breakdown = %+v", s)
	}
	// The construction guarantees attribution sums to end-to-end.
	if total != an.MeanE2eNs {
		t.Fatalf("attributed %.0f ns, e2e %.0f ns", total, an.MeanE2eNs)
	}
	var share float64
	for _, op := range an.Ops {
		share += op.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %.4f, want 1", share)
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteChrome(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("complete event without numeric ts: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	// 3 thread_name metas, 3 service slices, 2 queue-wait slices.
	if meta != 3 || complete != 5 {
		t.Fatalf("got %d meta + %d complete events, want 3 + 5", meta, complete)
	}
}

func TestWriteJSONEmptyTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Traces == nil || len(doc.Traces) != 0 {
		t.Fatalf("want an empty (non-null) traces array, got %s", buf.String())
	}
}
