package obs

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []float64{-5, 0, 0.5, 1, 1.1, 1.25, 2, 3, 1000, 1e6, 1e12, math.Ldexp(1, 60), math.Inf(1)}
	for _, v := range cases {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, i)
		}
		// Buckets are half-open [lower, upper): a value equal to a
		// bound belongs to the bucket above it.
		if i < NumBuckets-1 && v >= BucketBound(i) {
			t.Errorf("bucketIndex(%g) = %d but bound %g <= value", v, i, BucketBound(i))
		}
		if i > 0 && v < BucketBound(i-1) {
			t.Errorf("bucketIndex(%g) = %d but previous bound %g > value", v, i, BucketBound(i-1))
		}
	}
	if bucketIndex(math.NaN()) != 0 {
		t.Errorf("NaN must land in the underflow bucket")
	}
}

func TestBucketBoundsMonotonic(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if !(BucketBound(i) > BucketBound(i-1)) {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, BucketBound(i), BucketBound(i-1))
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..10000: quantiles must land within the ±25% bucket
	// resolution of the true value.
	for v := 1; v <= 10000; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 10000
		if got < want*0.95 || got > want*1.30 {
			t.Errorf("q%.2f = %g, want within [%g, %g]", q, got, want*0.95, want*1.30)
		}
	}
	if s := h.Sum(); math.Abs(s-50005000) > 1 {
		t.Errorf("sum = %g, want 50005000", s)
	}
}

func TestHistogramSnapshotDeltaMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Observe(500)
	s1 := h.Snapshot()
	h.Observe(50)
	s2 := h.Snapshot()
	d := s2.Delta(s1)
	if d.Count != 1 || d.Sum != 50 {
		t.Fatalf("delta = %+v, want count 1 sum 50", d)
	}
	m := s1
	m.Merge(d)
	if m.Count != s2.Count || m.Sum != s2.Sum || m.Buckets != s2.Buckets {
		t.Fatalf("merge(s1, delta) != s2")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const G, N = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(float64(g*N + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d, want %d", h.Count(), G*N)
	}
	var bucketTotal uint64
	s := h.Snapshot()
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != G*N {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, G*N)
	}
}

func TestObserveAllocFree(t *testing.T) {
	h := NewHistogram()
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(42) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}
