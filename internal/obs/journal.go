package obs

import (
	"sync"
	"time"
)

// Event is one structured lifecycle event: run start/stop, checkpoint
// begin/complete/timeout, advisor decisions, rescale begin/end,
// intern-table watermark crossings. Events are for humans and
// harnesses watching a run, not for the data path — emitting one may
// allocate.
type Event struct {
	// Seq is the journal-assigned monotonically increasing sequence
	// number (the /events?since= cursor).
	Seq uint64 `json:"seq"`
	// At is the emission time (stamped by the journal when zero).
	At time.Time `json:"at"`
	// Type names the event, e.g. "run_start", "checkpoint_complete",
	// "rescale_begin".
	Type string `json:"type"`
	// Task is the task label the event concerns, when task-scoped.
	Task string `json:"task,omitempty"`
	// Attrs carries event-specific details as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Journal is a bounded ring of lifecycle events. Emit overwrites the
// oldest entry once full; Events returns entries after a cursor, so a
// poller never misses events that still fit the ring.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	size    int
	seq     uint64
	onEvent func(Event)
}

// NewJournal builds a journal retaining up to size events (default
// 1024 when size <= 0).
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = 1024
	}
	return &Journal{buf: make([]Event, 0, size), size: size}
}

// SetOnEvent arms a synchronous observer invoked (outside the journal
// lock) for every event. Set it before emission starts; the hook must
// be fast and must not block.
func (j *Journal) SetOnEvent(fn func(Event)) {
	j.mu.Lock()
	j.onEvent = fn
	j.mu.Unlock()
}

// Emit appends one event, stamping Seq and (when zero) At.
func (j *Journal) Emit(ev Event) {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	if len(j.buf) < j.size {
		j.buf = append(j.buf, ev)
	} else {
		j.buf[int((ev.Seq-1)%uint64(j.size))] = ev
	}
	fn := j.onEvent
	j.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Seq returns the sequence number of the most recent event (0 when
// empty).
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns the retained events with Seq > since, oldest first.
func (j *Journal) Events(since uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	// The ring holds seqs (seq-len, seq]; walk them in order.
	lo := uint64(1)
	if j.seq > uint64(len(j.buf)) {
		lo = j.seq - uint64(len(j.buf)) + 1
	}
	if since+1 > lo {
		lo = since + 1
	}
	for s := lo; s <= j.seq; s++ {
		out = append(out, j.buf[int((s-1)%uint64(j.size))])
	}
	return out
}
