package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// L is one metric label (key/value pair). Label sets are fixed at
// registration; scrapes never build label strings on the fly.
type L struct {
	Key, Value string
}

type metricKind int

const (
	kindGauge metricKind = iota
	kindCounter
	kindHist
	kindRateWindow
	kindValueWindow
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHist:
		return "histogram"
	default:
		return "gauge"
	}
}

// entry is one registered series: a name + label set bound to a value
// source (pull function, histogram, or window).
type entry struct {
	name, help string
	kind       metricKind
	labelStr   string // pre-rendered {k="v",...} or ""
	labels     []L
	gaugeFn    func() float64
	counterFn  func() uint64
	hist       *Histogram
	win        *Window
	src        func() uint64 // cumulative source feeding a rate window
}

// Group is a named sub-registry. The engine registers its series in
// one group so the adaptive loop — which builds a fresh engine per
// segment — can Clear and re-register without disturbing process-level
// series.
type Group struct {
	r       *Registry
	name    string
	entries []*entry
}

// Registry holds labeled metric series and renders them as Prometheus
// text exposition and as a JSON status snapshot. All methods are safe
// for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	groups map[string]*Group
	order  []string
	span   time.Duration
	start  time.Time

	tickMu sync.Mutex // serializes rate-window sampling
}

// NewRegistry builds a registry whose rolling windows answer up to
// span back (default 60s when span <= 0).
func NewRegistry(span time.Duration) *Registry {
	if span <= 0 {
		span = 60 * time.Second
	}
	return &Registry{groups: map[string]*Group{}, span: span, start: time.Now()}
}

// Span returns the configured maximum rolling-window span.
func (r *Registry) Span() time.Duration { return r.span }

// windowSpans returns the spans rolling metrics are published over:
// 10s and the configured span (deduplicated, clamped).
func (r *Registry) windowSpans() []time.Duration {
	short := 10 * time.Second
	if r.span <= short {
		return []time.Duration{r.span}
	}
	return []time.Duration{short, r.span}
}

// Group returns the named group, creating it on first use.
func (r *Registry) Group(name string) *Group {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.groups[name]; ok {
		return g
	}
	g := &Group{r: r, name: name}
	r.groups[name] = g
	r.order = append(r.order, name)
	return g
}

// Clear drops every series in the group (the registry keeps the group
// itself, so re-registration reuses it).
func (g *Group) Clear() {
	g.r.mu.Lock()
	g.entries = nil
	g.r.mu.Unlock()
}

func renderLabels(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (g *Group) add(e *entry) {
	g.r.mu.Lock()
	g.entries = append(g.entries, e)
	g.r.mu.Unlock()
}

// Gauge registers a pull-based gauge: fn is called at scrape time.
func (g *Group) Gauge(name, help string, labels []L, fn func() float64) {
	g.add(&entry{name: name, help: help, kind: kindGauge, labels: labels, labelStr: renderLabels(labels), gaugeFn: fn})
}

// Counter registers a pull-based monotonic counter over an existing
// cumulative source (typically an engine atomic).
func (g *Group) Counter(name, help string, labels []L, fn func() uint64) {
	g.add(&entry{name: name, help: help, kind: kindCounter, labels: labels, labelStr: renderLabels(labels), counterFn: fn})
}

// Histogram registers and returns a push-based histogram series.
func (g *Group) Histogram(name, help string, labels []L) *Histogram {
	h := NewHistogram()
	g.add(&entry{name: name, help: help, kind: kindHist, labels: labels, labelStr: renderLabels(labels), hist: h})
	return h
}

// RateWindow registers a rolling event-rate metric fed from the
// cumulative source src (sampled once per second by Tick); it renders
// as a gauge family with a window label per published span.
func (g *Group) RateWindow(name, help string, labels []L, src func() uint64) *Window {
	w := NewWindow(g.r.span, false)
	g.add(&entry{name: name, help: help, kind: kindRateWindow, labels: labels, labelStr: renderLabels(labels), win: w, src: src})
	return w
}

// ValueWindow registers a rolling value distribution (Observe-fed);
// it renders as a gauge family with window and quantile labels.
func (g *Group) ValueWindow(name, help string, labels []L) *Window {
	w := NewWindow(g.r.span, true)
	g.add(&entry{name: name, help: help, kind: kindValueWindow, labels: labels, labelStr: renderLabels(labels), win: w})
	return w
}

// Tick samples every rate window from its cumulative source. The
// server calls it once per second and before every scrape; calls are
// serialized and idempotent within a second.
func (r *Registry) Tick() {
	r.tickMu.Lock()
	defer r.tickMu.Unlock()
	for _, e := range r.snapshotEntries() {
		if e.kind == kindRateWindow && e.src != nil {
			e.win.Sample(e.src())
		}
	}
}

// snapshotEntries copies the current entry list under the read lock,
// sorted by (name, labels) for deterministic rendering.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.RLock()
	var out []*entry
	for _, name := range r.order {
		out = append(out, r.groups[name].entries...)
	}
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelStr < out[j].labelStr
	})
	return out
}

// Status returns a JSON-encodable snapshot of every series: scalar
// values, histogram summaries (count/sum/p50/p90/p99) and rolling
// rates/quantiles per published span.
func (r *Registry) Status() map[string]any {
	series := []map[string]any{}
	for _, e := range r.snapshotEntries() {
		row := map[string]any{"name": e.name}
		if e.labelStr != "" {
			row["labels"] = e.labelStr
		}
		switch e.kind {
		case kindGauge:
			row["value"] = e.gaugeFn()
		case kindCounter:
			row["value"] = e.counterFn()
		case kindHist:
			s := e.hist.Snapshot()
			row["count"] = s.Count
			row["sum"] = s.Sum
			row["p50"] = s.Quantile(0.50)
			row["p90"] = s.Quantile(0.90)
			row["p99"] = s.Quantile(0.99)
		case kindRateWindow:
			rates := map[string]float64{}
			for _, span := range r.windowSpans() {
				rates[span.String()] = e.win.Rate(span)
			}
			row["rate"] = rates
		case kindValueWindow:
			qs := map[string]map[string]float64{}
			for _, span := range r.windowSpans() {
				qs[span.String()] = map[string]float64{
					"p50": e.win.Quantile(span, 0.50),
					"p90": e.win.Quantile(span, 0.90),
					"p99": e.win.Quantile(span, 0.99),
				}
			}
			row["quantiles"] = qs
		}
		series = append(series, row)
	}
	return map[string]any{
		"uptime_seconds": time.Since(r.start).Seconds(),
		"series":         series,
	}
}
