package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a Window deterministically.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) now() time.Time     { return time.Unix(c.sec.Load(), 0) }
func (c *fakeClock) advance(secs int64) { c.sec.Add(secs) }
func (c *fakeClock) set(sec int64)      { c.sec.Store(sec) }
func newFakeClock(sec int64) *fakeClock { c := &fakeClock{}; c.set(sec); return c }
func withClock(w *Window, c *fakeClock) { w.now = c.now }
func newTestWindow(valued bool) (*Window, *fakeClock) {
	w := NewWindow(60*time.Second, valued)
	c := newFakeClock(1000)
	withClock(w, c)
	return w, c
}

func TestWindowRate(t *testing.T) {
	w, c := newTestWindow(false)
	// 100 events/sec for 10 complete seconds.
	for s := 0; s < 10; s++ {
		w.Add(100)
		c.advance(1)
	}
	if got := w.Rate(10 * time.Second); got != 100 {
		t.Fatalf("rate(10s) = %g, want 100", got)
	}
	// Over 60s the same 1000 events average down.
	if got := w.Rate(60 * time.Second); got < 16 || got > 17 {
		t.Fatalf("rate(60s) = %g, want ~16.7", got)
	}
}

func TestWindowSlotExpiry(t *testing.T) {
	w, c := newTestWindow(false)
	w.Add(500)
	c.advance(1)
	if got := w.Rate(10 * time.Second); got != 50 {
		t.Fatalf("rate just after = %g, want 50", got)
	}
	c.advance(61) // the slot ages out of every span
	if got := w.Rate(10 * time.Second); got != 0 {
		t.Fatalf("rate after expiry = %g, want 0", got)
	}
	if got := w.Count(60 * time.Second); got != 0 {
		t.Fatalf("count after expiry = %d, want 0", got)
	}
}

func TestWindowSlotReuseResets(t *testing.T) {
	w, c := newTestWindow(false)
	w.Add(100)
	// Advance exactly one ring revolution: the same slot index is
	// claimed for a new epoch and must restart from zero.
	c.advance(int64(len(w.slots)))
	w.Add(7)
	c.advance(1)
	if got := w.Rate(10 * time.Second); got*10 != 7 {
		t.Fatalf("rate after slot reuse = %g, want 0.7", got)
	}
}

func TestWindowSampleDeltas(t *testing.T) {
	w, c := newTestWindow(false)
	w.Sample(1000) // priming sample records nothing
	w.Sample(1300)
	c.advance(1)
	if got := w.Rate(time.Second); got != 300 {
		t.Fatalf("rate = %g, want 300", got)
	}
	// A counter reset (new engine) re-primes instead of wrapping.
	w.Sample(50)
	w.Sample(150)
	c.advance(1)
	if got := w.Count(10 * time.Second); got != 400 {
		t.Fatalf("count = %d, want 400 (300 + 100)", got)
	}
}

func TestWindowQuantiles(t *testing.T) {
	w, c := newTestWindow(true)
	for s := 0; s < 5; s++ {
		for v := 1; v <= 1000; v++ {
			w.Observe(float64(v))
		}
		c.advance(1)
	}
	p50 := w.Quantile(10*time.Second, 0.5)
	if p50 < 450 || p50 > 650 {
		t.Fatalf("p50 = %g, want ~500", p50)
	}
	p99 := w.Quantile(10*time.Second, 0.99)
	if p99 < 950 || p99 > 1250 {
		t.Fatalf("p99 = %g, want ~990", p99)
	}
	if m := w.Mean(10 * time.Second); m < 499 || m > 502 {
		t.Fatalf("mean = %g, want ~500.5", m)
	}
	// Span clamping: a query beyond the configured span must not panic
	// and answers over the full window.
	if got := w.Quantile(10*time.Minute, 0.5); got != p50 {
		t.Fatalf("clamped quantile = %g, want %g", got, p50)
	}
}

func TestWindowConcurrent(t *testing.T) {
	w, c := newTestWindow(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					w.Observe(float64(i%1000 + 1))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.advance(1)
			w.Rate(10 * time.Second)
			w.Quantile(60*time.Second, 0.99)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestWindowObserveAllocFree(t *testing.T) {
	w, _ := newTestWindow(true)
	allocs := testing.AllocsPerRun(1000, func() { w.Observe(42) })
	if allocs != 0 {
		t.Fatalf("Window.Observe allocates %.1f/op, want 0", allocs)
	}
}
