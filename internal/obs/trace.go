package obs

// Per-tuple distributed tracing for the in-process topology. The engine
// stamps every k-th spout tuple with a trace id + origin timestamp and
// each hop appends one fixed-size span record into its task's TraceRing:
// a lock-free single-writer ring of seqlock-versioned slots. Appending
// is a handful of atomic word stores (no allocation, no locks), so the
// hot path stays allocation-free; readers (the /traces endpoint, the
// bottleneck analyzer) snapshot rings concurrently and simply skip any
// slot that is mid-overwrite. All slot words are atomics so the race
// detector agrees with the protocol instead of flagging it.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Span kinds. A source span marks the trace origin (the spout stamp);
// a hop span records one operator invocation downstream.
const (
	SpanSource uint8 = iota + 1
	SpanHop
)

// Span is one hop of a traced tuple: which task it crossed, how long
// its batch waited in the communication queue, how long the operator
// invocation took, and how many output tuples it produced. AtNs is the
// wall clock (UnixNano) at hop completion; OriginNs the trace's spout
// stamp, so AtNs-OriginNs is elapsed end-to-end time at this hop.
type Span struct {
	TraceID     uint64
	OriginNs    int64
	AtNs        int64
	QueueWaitNs int64
	ServiceNs   int64
	Emitted     uint64
	Kind        uint8
}

// traceSlot is one ring entry: a seqlock version word plus the span
// payload. ver is 2*seq+1 while a write is in progress and 2*seq+2 once
// slot contents for sequence seq are published; a reader that observes
// an odd or changed version discards the slot.
type traceSlot struct {
	ver atomic.Uint64
	w   [7]atomic.Uint64
}

// TraceRing is a fixed-capacity single-writer ring of span records.
// Exactly one goroutine (the owning task) may Append; any number may
// Snapshot concurrently.
type TraceRing struct {
	mask  uint64
	head  atomic.Uint64
	slots []traceSlot
}

// DefaultTraceRingCap is the per-task span capacity used when
// Tracer.AddTask is given a non-positive capacity.
const DefaultTraceRingCap = 1024

// NewTraceRing creates a ring holding the most recent capacity spans
// (rounded up to a power of two).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// Append records a span, overwriting the oldest entry once the ring is
// full. Owner-goroutine only; allocation-free.
func (r *TraceRing) Append(s Span) {
	h := r.head.Add(1) - 1
	sl := &r.slots[h&r.mask]
	sl.ver.Store(2*h + 1)
	sl.w[0].Store(s.TraceID)
	sl.w[1].Store(uint64(s.OriginNs))
	sl.w[2].Store(uint64(s.AtNs))
	sl.w[3].Store(uint64(s.QueueWaitNs))
	sl.w[4].Store(uint64(s.ServiceNs))
	sl.w[5].Store(s.Emitted)
	sl.w[6].Store(uint64(s.Kind))
	sl.ver.Store(2*h + 2)
}

// Len returns how many spans have ever been appended (not capped at the
// ring capacity).
func (r *TraceRing) Len() uint64 { return r.head.Load() }

// Snapshot appends every currently readable span to out and returns it.
// Safe to call from any goroutine; slots being overwritten concurrently
// are skipped, never torn.
func (r *TraceRing) Snapshot(out []Span) []Span {
	head := r.head.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if head > n {
		lo = head - n
	}
	for seq := lo; seq < head; seq++ {
		sl := &r.slots[seq&r.mask]
		want := 2*seq + 2
		if sl.ver.Load() != want {
			continue
		}
		s := Span{
			TraceID:     sl.w[0].Load(),
			OriginNs:    int64(sl.w[1].Load()),
			AtNs:        int64(sl.w[2].Load()),
			QueueWaitNs: int64(sl.w[3].Load()),
			ServiceNs:   int64(sl.w[4].Load()),
			Emitted:     sl.w[5].Load(),
			Kind:        uint8(sl.w[6].Load()),
		}
		if sl.ver.Load() != want {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TraceTask describes one engine task to the tracer: display label,
// logical operator, replica index and socket placement, plus whether
// the task is a source (spout) or a sink.
type TraceTask struct {
	Label   string `json:"task"`
	Op      string `json:"op"`
	Replica int    `json:"replica"`
	Socket  int    `json:"socket"`
	Source  bool   `json:"source,omitempty"`
	Sink    bool   `json:"sink,omitempty"`
}

// Tracer owns the per-task span rings of one running topology and
// assembles them into traces, Chrome trace-event output and the
// critical-path breakdown. Engine.RegisterTrace resets it and registers
// the fresh engine's tasks, mirroring RegisterObs across adaptive
// segments; scrapes racing a re-registration see either the old or the
// new task set, never a mix.
type Tracer struct {
	mu    sync.Mutex
	tasks []TraceTask
	rings []*TraceRing
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Reset drops all registered tasks and their rings (called when a fresh
// engine re-binds, so a rescaled segment starts from a clean slate).
func (tr *Tracer) Reset() {
	tr.mu.Lock()
	tr.tasks = tr.tasks[:0]
	tr.rings = tr.rings[:0]
	tr.mu.Unlock()
}

// AddTask registers a task and returns its span ring (ringCap <= 0
// selects DefaultTraceRingCap). The returned ring is the task's to
// write; the tracer reads it during snapshots.
func (tr *Tracer) AddTask(meta TraceTask, ringCap int) *TraceRing {
	if ringCap <= 0 {
		ringCap = DefaultTraceRingCap
	}
	r := NewTraceRing(ringCap)
	tr.mu.Lock()
	tr.tasks = append(tr.tasks, meta)
	tr.rings = append(tr.rings, r)
	tr.mu.Unlock()
	return r
}

// Len reports how many spans were ever appended across all registered
// rings (not capped at ring capacity).
func (tr *Tracer) Len() uint64 {
	tr.mu.Lock()
	rings := append([]*TraceRing(nil), tr.rings...)
	tr.mu.Unlock()
	var n uint64
	for _, r := range rings {
		n += r.Len()
	}
	return n
}

// taggedSpan pairs a span with the task it came from.
type taggedSpan struct {
	Span
	task int
}

// snapshot collects every readable span across all rings along with a
// copy of the task table.
func (tr *Tracer) snapshot() ([]TraceTask, []taggedSpan) {
	tr.mu.Lock()
	tasks := append([]TraceTask(nil), tr.tasks...)
	rings := append([]*TraceRing(nil), tr.rings...)
	tr.mu.Unlock()
	var all []taggedSpan
	var buf []Span
	for i, r := range rings {
		buf = r.Snapshot(buf[:0])
		for _, s := range buf {
			all = append(all, taggedSpan{Span: s, task: i})
		}
	}
	return tasks, all
}

// TraceSpan is the exported form of one hop, with the task metadata
// folded in.
type TraceSpan struct {
	Task        string `json:"task"`
	Op          string `json:"op"`
	Replica     int    `json:"replica"`
	Socket      int    `json:"socket"`
	Kind        string `json:"kind"`
	AtNs        int64  `json:"at_ns"`
	QueueWaitNs int64  `json:"queue_wait_ns"`
	ServiceNs   int64  `json:"service_ns"`
	Emitted     uint64 `json:"emitted"`
}

// Trace is one assembled end-to-end trace: the sampled root tuple's id,
// origin, elapsed end-to-end time (last hop minus origin) and its spans
// in hop-completion order.
type Trace struct {
	ID       uint64      `json:"id"`
	OriginNs int64       `json:"origin_ns"`
	E2eNs    int64       `json:"e2e_ns"`
	Spans    []TraceSpan `json:"spans"`
}

func spanKindName(k uint8) string {
	if k == SpanSource {
		return "source"
	}
	return "hop"
}

// Traces assembles the most recent limit traces (newest origin first).
// limit <= 0 means no cap.
func (tr *Tracer) Traces(limit int) []Trace {
	tasks, all := tr.snapshot()
	byID := make(map[uint64][]taggedSpan)
	for _, s := range all {
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	traces := make([]Trace, 0, len(byID))
	for id, spans := range byID {
		sort.Slice(spans, func(i, j int) bool { return spans[i].AtNs < spans[j].AtNs })
		t := Trace{ID: id, OriginNs: spans[0].OriginNs}
		for _, s := range spans {
			meta := TraceTask{Label: fmt.Sprintf("task#%d", s.task)}
			if s.task < len(tasks) {
				meta = tasks[s.task]
			}
			t.Spans = append(t.Spans, TraceSpan{
				Task:        meta.Label,
				Op:          meta.Op,
				Replica:     meta.Replica,
				Socket:      meta.Socket,
				Kind:        spanKindName(s.Kind),
				AtNs:        s.AtNs,
				QueueWaitNs: s.QueueWaitNs,
				ServiceNs:   s.ServiceNs,
				Emitted:     s.Emitted,
			})
		}
		if last := spans[len(spans)-1].AtNs; last > t.OriginNs {
			t.E2eNs = last - t.OriginNs
		}
		traces = append(traces, t)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].OriginNs > traces[j].OriginNs })
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	return traces
}

// WriteJSON writes the assembled traces plus the current breakdown as a
// JSON document: {"traces": [...], "analysis": {...}}.
func (tr *Tracer) WriteJSON(w io.Writer, limit int) error {
	doc := struct {
		Traces   []Trace  `json:"traces"`
		Analysis Analysis `json:"analysis"`
	}{Traces: tr.Traces(limit), Analysis: tr.Analyze()}
	if doc.Traces == nil {
		doc.Traces = []Trace{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// chromeEvent is one Chrome trace-event record. Each trace renders as a
// "process" (pid = trace id) whose "threads" are the tasks it crossed,
// so Perfetto's timeline shows queue-wait and service side by side per
// hop.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the most recent limit traces in Chrome trace-event
// (Perfetto-loadable) JSON-array format. Timestamps are microseconds
// relative to the oldest included origin. Each hop emits a "queue-wait"
// slice and a service slice on its task's track.
func (tr *Tracer) WriteChrome(w io.Writer, limit int) error {
	traces := tr.Traces(limit)
	var base int64
	for _, t := range traces {
		if base == 0 || (t.OriginNs != 0 && t.OriginNs < base) {
			base = t.OriginNs
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }
	events := make([]chromeEvent, 0, len(traces)*4)
	for _, t := range traces {
		tids := map[string]int{}
		for _, s := range t.Spans {
			tid, ok := tids[s.Task]
			if !ok {
				tid = len(tids)
				tids[s.Task] = tid
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: t.ID, Tid: tid,
					Args: map[string]any{"name": s.Task},
				})
			}
			start := s.AtNs - s.ServiceNs
			if s.QueueWaitNs > 0 {
				events = append(events, chromeEvent{
					Name: "queue-wait", Ph: "X",
					Ts: us(start - s.QueueWaitNs), Dur: float64(s.QueueWaitNs) / 1e3,
					Pid: t.ID, Tid: tid,
				})
			}
			name := s.Op
			if name == "" {
				name = s.Task
			}
			if s.Kind == "source" {
				name = name + " (source)"
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: us(start), Dur: float64(s.ServiceNs) / 1e3,
				Pid: t.ID, Tid: tid,
				Args: map[string]any{
					"trace":         t.ID,
					"emitted":       s.Emitted,
					"queue_wait_us": float64(s.QueueWaitNs) / 1e3,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// OpBreakdown is one operator's share of the end-to-end latency across
// the analyzed traces: mean queue-wait, service and transfer (residual:
// batching linger + handoff) nanoseconds attributed per trace, and the
// operator's fraction of the total attributed time.
type OpBreakdown struct {
	Op         string  `json:"op"`
	Traces     int     `json:"traces"`
	QueueNs    float64 `json:"queue_ns"`
	ServiceNs  float64 `json:"service_ns"`
	TransferNs float64 `json:"transfer_ns"`
	Share      float64 `json:"share"`
}

// Analysis is the critical-path breakdown: how many complete traces it
// covers, their mean end-to-end latency, and the per-operator
// attribution ranked by total attributed time (the bottleneck report).
type Analysis struct {
	Traces    int           `json:"traces"`
	MeanE2eNs float64       `json:"mean_e2e_ns"`
	Ops       []OpBreakdown `json:"ops"`
}

// Analyze aggregates the current spans into the per-operator critical
// path breakdown. For each trace, every hop's wall-clock interval since
// the previous hop (or origin) splits into queue-wait + service +
// transfer (the clamped residual), so the per-operator parts sum to the
// trace's end-to-end latency up to clock-skew clamping.
func (tr *Tracer) Analyze() Analysis {
	traces := tr.Traces(0)
	type acc struct {
		queue, service, transfer float64
		traces                   int
	}
	ops := map[string]*acc{}
	order := []string{}
	var e2eSum float64
	complete := 0
	for _, t := range traces {
		if len(t.Spans) < 2 || t.E2eNs <= 0 {
			continue // origin-only or clockless trace: nothing to attribute
		}
		complete++
		e2eSum += float64(t.E2eNs)
		seen := map[string]bool{}
		prev := t.OriginNs
		for _, s := range t.Spans {
			if s.Kind == "source" {
				continue
			}
			hop := s.AtNs - prev
			if hop < 0 {
				hop = 0
			}
			prev = s.AtNs
			// Clamp the parts into the hop interval: a duplicate delivery
			// (fan-out re-visiting a task it already crossed) reports the
			// full batch queue wait again, but only the residual interval
			// is on the critical path. With the clamp, queue + service +
			// transfer telescopes to exactly the trace's end-to-end time.
			queue := min(s.QueueWaitNs, hop)
			service := min(s.ServiceNs, hop-queue)
			transfer := hop - queue - service
			op := s.Op
			if op == "" {
				op = s.Task
			}
			a := ops[op]
			if a == nil {
				a = &acc{}
				ops[op] = a
				order = append(order, op)
			}
			a.queue += float64(queue)
			a.service += float64(service)
			a.transfer += float64(transfer)
			if !seen[op] {
				seen[op] = true
				a.traces++
			}
		}
	}
	an := Analysis{Traces: complete}
	if complete == 0 {
		return an
	}
	an.MeanE2eNs = e2eSum / float64(complete)
	var total float64
	for _, op := range order {
		a := ops[op]
		total += a.queue + a.service + a.transfer
	}
	n := float64(complete)
	for _, op := range order {
		a := ops[op]
		b := OpBreakdown{
			Op:         op,
			Traces:     a.traces,
			QueueNs:    a.queue / n,
			ServiceNs:  a.service / n,
			TransferNs: a.transfer / n,
		}
		if total > 0 {
			b.Share = (a.queue + a.service + a.transfer) / total
		}
		an.Ops = append(an.Ops, b)
	}
	sort.Slice(an.Ops, func(i, j int) bool {
		return an.Ops[i].Share > an.Ops[j].Share
	})
	return an
}
