package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryExpositionValidates(t *testing.T) {
	r := NewRegistry(60 * time.Second)
	g := r.Group("test")
	var n atomic.Uint64
	n.Store(42)
	g.Counter("brisk_things_total", "Things counted.", []L{{Key: "op", Value: "split"}, {Key: "task", Value: "split#0"}}, n.Load)
	g.Gauge("brisk_depth", "A depth.", nil, func() float64 { return 3.5 })
	h := g.Histogram("brisk_latency_ns", "Latency.", []L{{Key: "op", Value: "sink"}})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v) * 1000)
	}
	g.RateWindow("brisk_rate_tps", "A rate.", nil, n.Load)
	vw := g.ValueWindow("brisk_rolling_ns", "Rolling latency.", nil)
	vw.Observe(5000)
	r.Tick()

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`brisk_things_total{op="split",task="split#0"} 42`,
		`# TYPE brisk_latency_ns histogram`,
		`brisk_latency_ns_bucket{op="sink",le="+Inf"} 100`,
		`brisk_latency_ns_count{op="sink"} 100`,
		`brisk_rate_tps{window="10s"}`,
		`brisk_rate_tps{window="1m0s"}`,
		`brisk_rolling_ns{window="10s",quantile="0.5"}`,
		`brisk_depth 3.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRegistryEveryLineWellFormed(t *testing.T) {
	// Label values with quotes, backslashes and newlines must escape
	// cleanly and still validate line by line.
	r := NewRegistry(0)
	g := r.Group("test")
	g.Gauge("tricky", "Tricky labels.", []L{{Key: "path", Value: `a\b"c` + "\nd"}}, func() float64 { return 1 })
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
}

func TestGroupClearDropsSeries(t *testing.T) {
	r := NewRegistry(0)
	g := r.Group("engine")
	g.Gauge("stale_metric", "Old engine.", nil, func() float64 { return 1 })
	r.Group("process").Gauge("kept_metric", "Process level.", nil, func() float64 { return 2 })
	g.Clear()
	g.Gauge("fresh_metric", "New engine.", nil, func() float64 { return 3 })
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "stale_metric") {
		t.Errorf("cleared series still exposed:\n%s", out)
	}
	for _, want := range []string{"kept_metric", "fresh_metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q after Clear:\n%s", want, out)
		}
	}
}

func TestStatusJSONEncodes(t *testing.T) {
	r := NewRegistry(0)
	g := r.Group("test")
	g.Counter("c_total", "C.", nil, func() uint64 { return 7 })
	h := g.Histogram("h_ns", "H.", nil)
	h.Observe(100)
	g.RateWindow("r_tps", "R.", nil, func() uint64 { return 1 })
	g.ValueWindow("v_ns", "V.", nil).Observe(50)
	b, err := json.Marshal(r.Status())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uptime_seconds", "c_total", "h_ns", "p99"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("status missing %q: %s", want, b)
		}
	}
}
