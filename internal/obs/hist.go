// Package obs is BriskStream's live telemetry layer: lock-free
// instruments (log-bucketed mergeable histograms and rolling-window
// aggregators) in a labeled registry, a bounded journal of structured
// lifecycle events, and an HTTP exporter serving hand-rolled Prometheus
// text exposition plus /statusz, /healthz, /events and net/http/pprof —
// all on the standard library.
//
// The instruments are built for the engine's hot path: Observe is
// allocation-free and lock-free (atomic bucket counters), and every
// engine metric is a pull-based view over counters the engine already
// maintains, so a scrape never touches task-goroutine-private state.
package obs

import (
	"math"
	"sync/atomic"
)

// Log-scale bucket layout shared by Histogram and the valued Window
// slots: bucket 0 collects observations below 1, then four geometric
// sub-buckets per power of two (±12.5% relative resolution) up to
// 2^expMax, with one overflow bucket above. The layout is fixed so
// histograms merge by adding counters — across tasks, across engines,
// across window slots.
const (
	expMax = 47
	// NumBuckets is the fixed bucket count of every obs histogram.
	NumBuckets = 2 + expMax*4
)

// bucketIndex maps an observation to its bucket. NaN and negatives
// land in the underflow bucket; +Inf and anything ≥ 2^47 in overflow.
func bucketIndex(v float64) int {
	if !(v >= 1) {
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	if exp >= expMax {
		return NumBuckets - 1
	}
	return 1 + exp*4 + int(bits>>50&3)
}

// BucketBound returns the inclusive upper bound of bucket i (the
// Prometheus `le` value); the overflow bucket's bound is +Inf.
func BucketBound(i int) float64 {
	switch {
	case i <= 0:
		return 1
	case i >= NumBuckets-1:
		return math.Inf(1)
	}
	k := i - 1
	return math.Ldexp(1+float64(k%4+1)/4, k/4)
}

// Histogram is a fixed-layout log-bucketed histogram safe for
// concurrent Observe from any goroutine. Observe is allocation-free
// and lock-free; readers take consistent-enough snapshots by loading
// the bucket counters (a scrape racing an Observe may see the bucket
// before the total — quantiles therefore derive the total from the
// buckets themselves).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	buckets [NumBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one observation. It never allocates and never blocks
// (the sum accumulation is a CAS loop on one word).
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistSnapshot is a point-in-time copy of a Histogram, the unit of
// merging, deltas and quantile estimation.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's current counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Delta returns s - prev per counter (the observations recorded
// between the two snapshots, given prev was taken first).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Merge adds o's counters into s (fixed shared layout makes this
// exact, not approximate).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile from the buckets, reporting the
// upper bound of the bucket holding the target rank (≤ +25% relative
// overestimate by construction; the overflow bucket reports its lower
// bound). The total is derived from the buckets so a snapshot racing
// an Observe stays internally consistent.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total uint64
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if total == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			if i == NumBuckets-1 {
				return math.Ldexp(1, expMax)
			}
			return BucketBound(i)
		}
	}
	return 0
}

// Quantile estimates the q-quantile over all observations so far.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }
