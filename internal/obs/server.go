package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Server is the live telemetry exporter: /metrics (Prometheus text
// exposition), /statusz (JSON snapshot), /healthz, /events (journal
// tail, ?since= cursor), /traces (sampled traces as JSON or Chrome
// trace-event format, ?fmt=chrome) and net/http/pprof under
// /debug/pprof/. It also owns the 1 Hz sampler that feeds the
// registry's rate windows.
type Server struct {
	reg  *Registry
	jr   *Journal
	tr   *Tracer
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	// samplerDone closes when the 1 Hz sampler goroutine has exited, so
	// Close can guarantee no tick races the listener teardown.
	samplerDone chan struct{}

	// status holds caller-supplied /statusz extensions (e.g. the
	// adaptive loop's rescale outcomes), evaluated per request.
	statusMu sync.Mutex
	status   map[string]func() any
}

// Serve starts the exporter on addr (":0" picks a free port — read it
// back with Addr). The registry, journal and tracer may be nil; the
// matching endpoints then serve empty documents.
func Serve(addr string, reg *Registry, jr *Journal, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, jr: jr, tr: tr, ln: ln,
		done: make(chan struct{}), samplerDone: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	if reg != nil {
		go s.sample()
	} else {
		close(s.samplerDone)
	}
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the exporter's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// SetStatus registers (or, with a nil fn, removes) a caller-supplied
// /statusz key evaluated per request. Safe to call while serving.
func (s *Server) SetStatus(key string, fn func() any) {
	s.statusMu.Lock()
	if s.status == nil {
		s.status = map[string]func() any{}
	}
	if fn == nil {
		delete(s.status, key)
	} else {
		s.status[key] = fn
	}
	s.statusMu.Unlock()
}

// Close stops the sampler first (waiting for its goroutine, so no last
// tick races the teardown), then shuts the HTTP server down gracefully:
// in-flight scrapes get up to two seconds to finish their bodies before
// the listener is torn down hard.
func (s *Server) Close() error {
	close(s.done)
	<-s.samplerDone
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// sample drives the registry's rate windows at 1 Hz until Close.
func (s *Server) sample() {
	defer close(s.samplerDone)
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			s.reg.Tick()
		case <-s.done:
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	s.reg.Tick() // fold the freshest counter deltas into the windows
	_ = s.reg.WriteProm(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := map[string]any{}
	if s.reg != nil {
		s.reg.Tick()
		st = s.reg.Status()
	}
	if s.jr != nil {
		st["events_seq"] = s.jr.Seq()
	}
	if s.tr != nil {
		st["bottlenecks"] = s.tr.Analyze()
	}
	s.statusMu.Lock()
	ext := make(map[string]func() any, len(s.status))
	for k, fn := range s.status {
		ext[k] = fn
	}
	s.statusMu.Unlock()
	keys := make([]string, 0, len(ext))
	for k := range ext {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st[k] = ext[k]()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var events []Event
	var seq uint64
	if s.jr != nil {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		events = s.jr.Events(since)
		// The resume cursor: everything at or below seq is either in
		// this response or was already consumed, so a poller can pass
		// ?since=<seq> next time without losing or re-reading events.
		seq = since
		for _, ev := range events {
			if ev.Seq > seq {
				seq = ev.Seq
			}
		}
	}
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"events": events, "seq": seq})
}

// handleTraces serves the tracer's recent traces. Default is a JSON
// document {"traces": [...], "analysis": {...}}; ?fmt=chrome emits the
// Chrome trace-event array (load it at ui.perfetto.dev). ?limit= caps
// the trace count (default 100, 0 = all).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	if s.tr == nil {
		if r.URL.Query().Get("fmt") == "chrome" {
			_, _ = w.Write([]byte("[]\n"))
			return
		}
		_, _ = w.Write([]byte(`{"traces":[]}` + "\n"))
		return
	}
	if r.URL.Query().Get("fmt") == "chrome" {
		_ = s.tr.WriteChrome(w, limit)
		return
	}
	_ = s.tr.WriteJSON(w, limit)
}
