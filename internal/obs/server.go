package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the live telemetry exporter: /metrics (Prometheus text
// exposition), /statusz (JSON snapshot), /healthz, /events (journal
// tail, ?since= cursor) and net/http/pprof under /debug/pprof/. It
// also owns the 1 Hz sampler that feeds the registry's rate windows.
type Server struct {
	reg  *Registry
	jr   *Journal
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the exporter on addr (":0" picks a free port — read it
// back with Addr). The registry and journal may be nil; the matching
// endpoints then serve empty documents.
func Serve(addr string, reg *Registry, jr *Journal) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, jr: jr, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	if reg != nil {
		go s.sample()
	}
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the exporter's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the sampler and the HTTP server.
func (s *Server) Close() error {
	close(s.done)
	return s.srv.Close()
}

// sample drives the registry's rate windows at 1 Hz until Close.
func (s *Server) sample() {
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			s.reg.Tick()
		case <-s.done:
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	s.reg.Tick() // fold the freshest counter deltas into the windows
	_ = s.reg.WriteProm(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := map[string]any{}
	if s.reg != nil {
		s.reg.Tick()
		st = s.reg.Status()
	}
	if s.jr != nil {
		st["events_seq"] = s.jr.Seq()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var events []Event
	if s.jr != nil {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		events = s.jr.Events(since)
	}
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"events": events})
}
