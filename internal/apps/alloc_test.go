package apps

// Acceptance guards for the typed-slot refactor: the WC, SD and TW app
// emit paths — source generation and the hot operator stages — perform
// zero allocations per tuple in steady state. (FD reaches zero too with
// pre-interned entities and a reusable record buffer; LR's hot path is
// all-integer slots. The engine dispatch path has its own guard in
// internal/engine.)

import (
	"testing"

	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

// drainCollector is a minimal engine.Collector that recycles every
// emission straight back to its pool, isolating the app-side emit path
// from engine dispatch (which has its own allocation guard).
type drainCollector struct {
	pool *tuple.Pool
}

func newDrainCollector() *drainCollector { return &drainCollector{pool: tuple.NewPool()} }

func (d *drainCollector) Emit(values ...tuple.Value) {
	out := d.pool.Get()
	for _, v := range values {
		out.Append(v)
	}
	d.Send(out)
}

func (d *drainCollector) EmitTo(stream string, values ...tuple.Value) { d.Emit(values...) }
func (d *drainCollector) Borrow() *tuple.Tuple                        { return d.pool.Get() }
func (d *drainCollector) Send(t *tuple.Tuple)                         { t.Release() }
func (d *drainCollector) EmitWatermark(wm int64)                      {}

// assertZeroAllocs warms fn, then requires exactly zero allocations per
// run. Race-instrumented builds skip: the detector's own shadow
// bookkeeping allocates.
func assertZeroAllocs(t *testing.T, name string, warmup int, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skipf("%s: allocation guard is meaningless under the race detector", name)
	}
	for i := 0; i < warmup; i++ {
		fn()
	}
	if avg := testing.AllocsPerRun(5000, fn); avg > 0 {
		t.Errorf("%s allocates %.3f/op in steady state, want 0", name, avg)
	}
}

// windowHarness wires a window/session operator to a detached timer
// service and returns a step function that processes one keyed tuple
// and advances the watermark every wmEvery steps (so windows open,
// fire and recycle during the measurement — the full app emit cycle).
func windowHarness(t *testing.T, op engine.Operator, c engine.Collector, fill func(et int64, in *tuple.Tuple), wmEvery, lag int64) func() {
	t.Helper()
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(c, engine.EventTimer, at) }
	in := &tuple.Tuple{}
	et := int64(0)
	return func() {
		et++
		in.Reset()
		in.Event = et
		fill(et, in)
		if err := op.Process(c, in); err != nil {
			t.Fatal(err)
		}
		if et%wmEvery == 0 {
			if err := tm.AdvanceWatermark(et-lag, fire); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWCEmitPathAllocFree(t *testing.T) {
	c := newDrainCollector()
	app := WordCount()

	sp := app.Spouts["spout"]()
	assertZeroAllocs(t, "WC spout.Next", 2000, func() {
		if err := sp.Next(c); err != nil {
			t.Fatal(err)
		}
	})

	split := app.Operators["splitter"]()
	sentence := &tuple.Tuple{}
	sentence.AppendStr("stream process socket memory tuple operator plan latency remote local")
	assertZeroAllocs(t, "WC splitter.Process", 2000, func() {
		if err := split.Process(c, sentence); err != nil {
			t.Fatal(err)
		}
	})

	counter := app.Operators["counter"]()
	step := windowHarness(t, counter, c, func(et int64, in *tuple.Tuple) {
		in.AppendSym(wcVocabSyms[et%int64(len(wcVocabSyms))])
	}, wcWatermarkEvery, 0)
	assertZeroAllocs(t, "WC counter window cycle", 3*wcWindow, step)
}

func TestSDEmitPathAllocFree(t *testing.T) {
	c := newDrainCollector()
	app := SpikeDetection()

	sp := app.Spouts["spout"]()
	assertZeroAllocs(t, "SD spout.Next", 2000, func() {
		if err := sp.Next(c); err != nil {
			t.Fatal(err)
		}
	})

	avg := app.Operators["moving_avg"]()
	step := windowHarness(t, avg, c, func(et int64, in *tuple.Tuple) {
		in.AppendSym(sdDeviceSyms[et%int64(len(sdDeviceSyms))])
		in.AppendFloat(20 + float64(et%7))
	}, sdWatermarkEvery, 0)
	assertZeroAllocs(t, "SD moving_avg window cycle", 3*sdWindowSpan, step)

	detect := app.Operators["spike_detect"]()
	stat := &tuple.Tuple{}
	stat.AppendSym(sdDeviceSyms[0])
	stat.AppendFloat(25)
	stat.AppendFloat(22)
	assertZeroAllocs(t, "SD spike_detect.Process", 2000, func() {
		if err := detect.Process(c, stat); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTWEmitPathAllocFree(t *testing.T) {
	c := newDrainCollector()
	app := TrendingWords()

	sp := app.Spouts["spout"]()
	assertZeroAllocs(t, "TW spout.Next", 2000, func() {
		if err := sp.Next(c); err != nil {
			t.Fatal(err)
		}
	})

	sess := app.Operators["sessionize"]()
	step := windowHarness(t, sess, c, func(et int64, in *tuple.Tuple) {
		// Bursty mentions over a small hot set: sessions open, extend and
		// close across the measurement, exercising merge and fire.
		in.AppendSym(wcVocabSyms[(et/7)%6])
	}, twWatermarkEvery, 0)
	assertZeroAllocs(t, "TW sessionize cycle", 20000, step)
}

func TestFDEmitPathAllocFree(t *testing.T) {
	c := newDrainCollector()
	app := FraudDetection()

	sp := app.Spouts["spout"]()
	assertZeroAllocs(t, "FD spout.Next", 2000, func() {
		if err := sp.Next(c); err != nil {
			t.Fatal(err)
		}
	})

	predict := app.Operators["predict"]()
	warm := &tuple.Tuple{}
	i := int64(0)
	step := func() {
		i++
		warm.Reset()
		warm.AppendSym(fdEntitySyms[i%int64(len(fdEntitySyms))])
		warm.AppendStr("cust-00001,42,17,3,12,30,1,9999999")
		if err := predict.Process(c, warm); err != nil {
			t.Fatal(err)
		}
	}
	// Warm over the full entity population so the state map stops
	// growing, then measure.
	assertZeroAllocs(t, "FD predict.Process", 2*len(fdEntitySyms), step)
}
