package apps

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

var sdSpoutSeq atomic.Int64

// SD event-time parameters. The spout's synthetic event clock advances
// one millisecond per reading across ~512 devices, so a device sees a
// reading every ~512 event-ms; a sliding window of sdWindowSpan with
// slide sdSlide covers ~16 readings per device — the same horizon the
// pre-windowed implementation kept as a 16-reading ring buffer.
const (
	sdWindowSpan     = 8192
	sdSlide          = 2048
	sdWatermarkEvery = 64
)

// sdThreshold flags a spike when a window's peak reading exceeds its
// average by this factor.
const sdThreshold = 1.03

// sdDeviceSyms pre-interns the 512 device ids: device ids are the
// textbook low-cardinality key, so readings carry a symbol and the
// per-device window state never copies or hashes the id text.
var sdDeviceSyms = func() []tuple.Sym {
	names := make([]string, 512)
	for i := range names {
		names[i] = fmt.Sprintf("mote-%03d", i)
	}
	return tuple.InternSyms(names...)
}()

// sdSpout generates sensor readings; replayable like wcSpout (the
// stream is a pure function of (seed, offset)).
type sdSpout struct {
	seed   int64
	r      *rand.Rand
	device tuple.Sym
	value  float64
	et     int64
}

func newSDSpout(seed int64) *sdSpout {
	return &sdSpout{seed: seed, r: rng(seed)}
}

func (s *sdSpout) draw() {
	s.device = sdDeviceSyms[s.r.Intn(len(sdDeviceSyms))]
	s.value = 20 + s.r.Float64()*5 // temperature-like signal
	if s.r.Intn(100) == 0 {
		s.value *= 1.5 // occasional genuine spike
	}
	s.et++
}

// Next implements engine.Spout.
func (s *sdSpout) Next(c engine.Collector) error {
	s.draw()
	out := c.Borrow()
	out.AppendSym(s.device)
	out.AppendFloat(s.value)
	out.Event = s.et
	c.Send(out)
	if s.et%sdWatermarkEvery == 0 {
		c.EmitWatermark(s.et)
	}
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *sdSpout) Offset() int64 { return s.et }

// SeekTo implements engine.ReplayableSpout.
func (s *sdSpout) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: sd spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.et = 0
	for s.et < offset {
		s.draw()
	}
	return nil
}

// sdSpikeDetect emits a signal per closed window whether or not a spike
// triggered; the batch path reads the peak/avg columns in place.
type sdSpikeDetect struct{}

func (sdSpikeDetect) Process(c engine.Collector, t *tuple.Tuple) error {
	peak, avg := t.Float(1), t.Float(2)
	out := c.Borrow()
	out.AppendSym(t.Sym(0))
	out.AppendFloat(peak)
	out.AppendBool(peak > sdThreshold*avg)
	c.Send(out)
	return nil
}

func (sdSpikeDetect) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	n := b.Len()
	for r := 0; r < n; r++ {
		peak, avg := b.Float(1, r), b.Float(2, r)
		out := c.Borrow()
		out.AppendSym(b.Sym(0, r))
		out.AppendFloat(peak)
		out.AppendBool(peak > sdThreshold*avg)
		b.StampMeta(r, out)
		c.Send(out)
	}
	return nil
}

// SpikeDetection builds the SD application of Figure 18b: Spout emits
// sensor readings (device id, value) with event timestamps; Parser
// validates; MovingAverage aggregates per-device sliding event-time
// windows and emits (device, peak, avg) per closed window;
// SpikeDetection emits a signal per window with a flag set when peak >
// threshold x average; Sink counts results.
//
// As with WC, the declared model statistics keep the paper's
// calibration; the executable operators carry the windowed semantics.
func SpikeDetection() *App {
	g := graph.New("SD")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "moving_avg", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "spike_detect", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "moving_avg", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "moving_avg", To: "spike_detect", Stream: "default"})
	mustEdge(g, graph.Edge{From: "spike_detect", To: "sink", Stream: "default"})

	return &App{
		Name:  "SD",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout { return newSDSpout(3000 + sdSpoutSeq.Add(1)) },
		},
		Operators: map[string]func() engine.Operator{
			"parser": func() engine.Operator { return arityParser{min: 2} },
			"moving_avg": func() engine.Operator {
				type stats struct {
					sum  float64
					peak float64
					n    int64
				}
				return window.New(window.Op[stats]{
					KeyField: 0,
					Size:     sdWindowSpan,
					Slide:    sdSlide,
					Init:     func(a *stats) { *a = stats{} },
					Add: func(a *stats, t *tuple.Tuple) {
						v := t.Float(1)
						a.sum += v
						a.n++
						if v > a.peak {
							a.peak = v
						}
					},
					// Vectorized pre-accumulation: sum/count/peak fold per
					// batch (reading the value column in place), one merge
					// per touched window. All three are order-insensitive,
					// so the partials are exactly equivalent to per-row
					// Adds.
					AddRow: func(a *stats, b *tuple.Batch, r int) {
						v := b.Float(1, r)
						a.sum += v
						a.n++
						if v > a.peak {
							a.peak = v
						}
					},
					Merge: func(a *stats, p *stats) {
						a.sum += p.sum
						a.n += p.n
						if p.peak > a.peak {
							a.peak = p.peak
						}
					},
					Emit: func(c engine.Collector, key tuple.Key, w window.Span, a *stats) {
						out := c.Borrow()
						out.AppendKey(key)
						out.AppendFloat(a.peak)
						out.AppendFloat(a.sum / float64(a.n))
						out.Event = w.End
						c.Send(out)
					},
					Save: func(enc *checkpoint.Encoder, a *stats) {
						enc.Float64(a.sum)
						enc.Float64(a.peak)
						enc.Int64(a.n)
					},
					Load: func(dec *checkpoint.Decoder, a *stats) error {
						a.sum = dec.Float64()
						a.peak = dec.Float64()
						a.n = dec.Int64()
						return nil
					},
				})
			},
			"spike_detect": func() engine.Operator { return sdSpikeDetect{} },
			"sink":         func() engine.Operator { return nopSink{} },
		},
		Schemas: map[string]map[string]*tuple.Schema{
			"spout":        {"default": tuple.NewSchema(tuple.SymField("device"), tuple.FloatField("value"))},
			"parser":       {"default": tuple.NewSchema(tuple.SymField("device"), tuple.FloatField("value"))},
			"moving_avg":   {"default": tuple.NewSchema(tuple.SymField("device"), tuple.FloatField("peak"), tuple.FloatField("avg"))},
			"spike_detect": {"default": tuple.NewSchema(tuple.SymField("device"), tuple.FloatField("peak"), tuple.BoolField("spike"))},
		},
		// Sensor readings are small (~40 B); the window maintenance in
		// MovingAverage dominates. Calibrated to land near the paper's
		// 12.8M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":        {Te: 1100, M: 80, N: 40, Selectivity: map[string]float64{"default": 1}},
			"parser":       {Te: 700, M: 80, N: 40, Selectivity: map[string]float64{"default": 1}},
			"moving_avg":   {Te: 4800, M: 300, N: 40, Selectivity: map[string]float64{"default": 1}},
			"spike_detect": {Te: 3200, M: 100, N: 48, Selectivity: map[string]float64{"default": 1}},
			"sink":         {Te: 300, M: 50, N: 25, Selectivity: map[string]float64{}},
		},
	}
}
