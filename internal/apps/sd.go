package apps

import (
	"fmt"
	"sync/atomic"

	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

var sdSpoutSeq atomic.Int64

// sdWindow is the moving-average window length (sensor readings).
const sdWindow = 16

// sdThreshold flags a spike when a reading exceeds the moving average by
// this factor.
const sdThreshold = 1.03

// SpikeDetection builds the SD application of Figure 18b: Spout emits
// sensor readings (device id, value); Parser validates; MovingAverage
// maintains a per-device sliding window and emits (device, value, avg);
// SpikeDetection emits a signal for every input tuple with a flag set
// when value > threshold x average (selectivity 1, Appendix B); Sink
// counts results.
func SpikeDetection() *App {
	g := graph.New("SD")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "moving_avg", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "spike_detect", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "moving_avg", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "moving_avg", To: "spike_detect", Stream: "default"})
	mustEdge(g, graph.Edge{From: "spike_detect", To: "sink", Stream: "default"})

	return &App{
		Name:  "SD",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout {
				r := rng(3000 + sdSpoutSeq.Add(1))
				return engine.SpoutFunc(func(c engine.Collector) error {
					device := fmt.Sprintf("mote-%03d", r.Intn(512))
					value := 20 + r.Float64()*5 // temperature-like signal
					if r.Intn(100) == 0 {
						value *= 1.5 // occasional genuine spike
					}
					emit(c, tuple.DefaultStreamID, device, value)
					return nil
				})
			},
		},
		Operators: map[string]func() engine.Operator{
			"parser": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					if len(t.Values) < 2 {
						return nil
					}
					forward(c, t, tuple.DefaultStreamID)
					return nil
				})
			},
			"moving_avg": func() engine.Operator {
				type window struct {
					vals [sdWindow]float64
					n    int
					next int
					sum  float64
				}
				wins := make(map[string]*window)
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					device := t.String(0)
					v := t.Float(1)
					w := wins[device]
					if w == nil {
						w = &window{}
						wins[device] = w
					}
					if w.n == sdWindow {
						w.sum -= w.vals[w.next]
					} else {
						w.n++
					}
					w.vals[w.next] = v
					w.next = (w.next + 1) % sdWindow
					w.sum += v
					emit(c, tuple.DefaultStreamID, t.Values[0], t.Values[1], w.sum/float64(w.n))
					return nil
				})
			},
			"spike_detect": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					v, avg := t.Float(1), t.Float(2)
					// Signal emitted whether or not a spike triggered.
					emit(c, tuple.DefaultStreamID, t.Values[0], t.Values[1], v > sdThreshold*avg)
					return nil
				})
			},
			"sink": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
			},
		},
		// Sensor readings are small (~40 B); the window maintenance in
		// MovingAverage dominates. Calibrated to land near the paper's
		// 12.8M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":        {Te: 1100, M: 80, N: 40, Selectivity: map[string]float64{"default": 1}},
			"parser":       {Te: 700, M: 80, N: 40, Selectivity: map[string]float64{"default": 1}},
			"moving_avg":   {Te: 4800, M: 300, N: 40, Selectivity: map[string]float64{"default": 1}},
			"spike_detect": {Te: 3200, M: 100, N: 48, Selectivity: map[string]float64{"default": 1}},
			"sink":         {Te: 300, M: 50, N: 25, Selectivity: map[string]float64{}},
		},
	}
}
