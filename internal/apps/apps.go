// Package apps provides the four benchmark applications of the paper's
// evaluation (Section 6.1, Appendix B), taken from the earlier multicore
// DSPS study [Zhang et al., ICDE'17]: word count (WC), fraud detection
// (FD), spike detection (SD) and linear road (LR). Each application
// bundles its logical topology, executable operator implementations for
// the engine, a deterministic workload generator, and canned operator
// statistics calibrated so the model reproduces the paper's Server A
// throughput magnitudes (Table 4).
package apps

import (
	"math/rand"

	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

// App is one runnable benchmark application.
type App struct {
	// Name is the short identifier used throughout the paper: "WC",
	// "FD", "SD" or "LR".
	Name string
	// Graph is the logical topology.
	Graph *graph.Graph
	// Spouts and Operators build the executable implementation for the
	// engine, keyed by operator name.
	Spouts    map[string]func() engine.Spout
	Operators map[string]func() engine.Operator
	// Schemas declares the typed tuple layout of every operator's
	// output streams (operator name → stream name → schema); the engine
	// validates the first tuple per route against it.
	Schemas map[string]map[string]*tuple.Schema
	// Stats are the canned per-operator statistics (Te in Server A
	// reference nanoseconds, N/M in bytes, per-stream selectivity) that
	// instantiate the performance model, standing in for the paper's
	// overseer/classmexer profiling runs.
	Stats profile.Set
}

// Topology packages the app for the engine (graph, builders, schemas).
func (a *App) Topology(replication map[string]int) engine.Topology {
	return engine.Topology{
		App:         a.Graph,
		Spouts:      a.Spouts,
		Operators:   a.Operators,
		Replication: replication,
		Schemas:     a.Schemas,
	}
}

// All returns the four applications of the paper's evaluation in the
// paper's order. Model-accuracy experiments iterate this set, keeping
// them comparable with the published tables.
func All() []*App {
	return []*App{WordCount(), FraudDetection(), SpikeDetection(), LinearRoad()}
}

// Benchmarks returns every packaged application: the paper's four plus
// the repo's own additions (TW, the sessionized top-K trending-words
// workload benchmarking the window subsystem).
func Benchmarks() []*App {
	return append(All(), TrendingWords())
}

// ByName returns the application with the given name, or nil.
func ByName(name string) *App {
	for _, a := range Benchmarks() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// rng returns a deterministic per-replica random source: replicated
// spouts must not emit identical streams, and runs must be reproducible.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// forward re-emits all of t's typed fields on the given stream: the
// pass-through/dispatcher shape (slot array copy plus arena byte copy,
// no boxing, no allocation).
func forward(c engine.Collector, t *tuple.Tuple, stream tuple.StreamID) {
	out := c.Borrow()
	out.Stream = stream
	out.CopyValuesFrom(t)
	c.Send(out)
}

func mustNode(g *graph.Graph, n *graph.Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

func mustEdge(g *graph.Graph, e graph.Edge) {
	if err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

func mustValid(g *graph.Graph) *graph.Graph {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
