// Package apps provides the four benchmark applications of the paper's
// evaluation (Section 6.1, Appendix B), taken from the earlier multicore
// DSPS study [Zhang et al., ICDE'17]: word count (WC), fraud detection
// (FD), spike detection (SD) and linear road (LR). Each application
// bundles its logical topology, executable operator implementations for
// the engine, a deterministic workload generator, and canned operator
// statistics calibrated so the model reproduces the paper's Server A
// throughput magnitudes (Table 4).
package apps

import (
	"math/rand"

	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/vec"
)

// App is one runnable benchmark application.
type App struct {
	// Name is the short identifier used throughout the paper: "WC",
	// "FD", "SD" or "LR".
	Name string
	// Graph is the logical topology.
	Graph *graph.Graph
	// Spouts and Operators build the executable implementation for the
	// engine, keyed by operator name.
	Spouts    map[string]func() engine.Spout
	Operators map[string]func() engine.Operator
	// Schemas declares the typed tuple layout of every operator's
	// output streams (operator name → stream name → schema); the engine
	// validates the first tuple per route against it.
	Schemas map[string]map[string]*tuple.Schema
	// Stats are the canned per-operator statistics (Te in Server A
	// reference nanoseconds, N/M in bytes, per-stream selectivity) that
	// instantiate the performance model, standing in for the paper's
	// overseer/classmexer profiling runs.
	Stats profile.Set
}

// Topology packages the app for the engine (graph, builders, schemas).
func (a *App) Topology(replication map[string]int) engine.Topology {
	return engine.Topology{
		App:         a.Graph,
		Spouts:      a.Spouts,
		Operators:   a.Operators,
		Replication: replication,
		Schemas:     a.Schemas,
	}
}

// All returns the four applications of the paper's evaluation in the
// paper's order. Model-accuracy experiments iterate this set, keeping
// them comparable with the published tables.
func All() []*App {
	return []*App{WordCount(), FraudDetection(), SpikeDetection(), LinearRoad()}
}

// Benchmarks returns every packaged application: the paper's four plus
// the repo's own additions (TW, the sessionized top-K trending-words
// workload benchmarking the window subsystem).
func Benchmarks() []*App {
	return append(All(), TrendingWords())
}

// ByName returns the application with the given name, or nil.
func ByName(name string) *App {
	for _, a := range Benchmarks() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// rng returns a deterministic per-replica random source: replicated
// spouts must not emit identical streams, and runs must be reproducible.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// forward re-emits all of t's typed fields on the given stream: the
// pass-through/dispatcher shape (slot array copy plus arena byte copy,
// no boxing, no allocation).
func forward(c engine.Collector, t *tuple.Tuple, stream tuple.StreamID) {
	out := c.Borrow()
	out.Stream = stream
	out.CopyValuesFrom(t)
	c.Send(out)
}

// nopSink is the shared discarding sink: the engine does all sink-side
// accounting (result counts, end-to-end latency), the operator only
// absorbs input. Batch-aware so sink input edges go columnar — the
// engine accounts per row off the batch's own timestamp lane, leaving
// ProcessBatch nothing to do.
type nopSink struct{}

func (nopSink) Process(engine.Collector, *tuple.Tuple) error      { return nil }
func (nopSink) ProcessBatch(engine.Collector, *tuple.Batch) error { return nil }

// arityParser drops records with fewer than min fields and forwards the
// rest — the validating-parser shape SD and FD share. Batches are
// layout-homogeneous (the builder splits on layout change), so the
// batch path decides once for all rows: too few columns drops the whole
// batch, otherwise every row forwards.
type arityParser struct{ min int }

func (p arityParser) Process(c engine.Collector, t *tuple.Tuple) error {
	if t.Len() < p.min {
		return nil // drop malformed records
	}
	forward(c, t, tuple.DefaultStreamID)
	return nil
}

func (p arityParser) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	if b.Cols() < p.min {
		return nil
	}
	vec.ForwardAll(c, b, tuple.DefaultStreamID)
	return nil
}

// passOp forwards every input on the default stream: the validating
// pass-through shape, batch-aware — a columnar input re-emits each row
// with the row's own metadata.
type passOp struct{}

func (passOp) Process(c engine.Collector, t *tuple.Tuple) error {
	forward(c, t, tuple.DefaultStreamID)
	return nil
}

func (passOp) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	vec.ForwardAll(c, b, tuple.DefaultStreamID)
	return nil
}

func mustNode(g *graph.Graph, n *graph.Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

func mustEdge(g *graph.Graph, e graph.Edge) {
	if err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

func mustValid(g *graph.Graph) *graph.Graph {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
