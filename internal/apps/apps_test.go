package apps

import (
	"testing"
	"time"

	"briskstream/internal/engine"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/tuple"
)

func TestAllAppsValidate(t *testing.T) {
	apps := All()
	if len(apps) != 4 {
		t.Fatalf("expected 4 applications, got %d", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
		if err := a.Graph.Validate(); err != nil {
			t.Errorf("%s graph invalid: %v", a.Name, err)
		}
		if err := a.Stats.Validate(); err != nil {
			t.Errorf("%s stats invalid: %v", a.Name, err)
		}
		// Every operator in the graph has stats and an implementation.
		for _, n := range a.Graph.Nodes() {
			if _, ok := a.Stats[n.Name]; !ok {
				t.Errorf("%s: no stats for %q", a.Name, n.Name)
			}
			if n.IsSpout {
				if _, ok := a.Spouts[n.Name]; !ok {
					t.Errorf("%s: no spout impl for %q", a.Name, n.Name)
				}
			} else if _, ok := a.Operators[n.Name]; !ok {
				t.Errorf("%s: no operator impl for %q", a.Name, n.Name)
			}
		}
		// Declared graph selectivity must match profiled stats
		// selectivity (they are the same source of truth here).
		for _, n := range a.Graph.Nodes() {
			for stream, sel := range n.Selectivity {
				if got := a.Stats[n.Name].Selectivity[stream]; got != sel {
					t.Errorf("%s %s stream %s: graph sel %v != stats sel %v",
						a.Name, n.Name, stream, sel, got)
				}
			}
		}
	}
	for _, want := range []string{"WC", "FD", "SD", "LR"} {
		if !names[want] {
			t.Errorf("missing app %s", want)
		}
	}
	if ByName("WC") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestWCTopologyShape(t *testing.T) {
	wc := WordCount()
	if wc.Graph.Len() != 5 {
		t.Errorf("WC has %d operators, want 5", wc.Graph.Len())
	}
	order, err := wc.Graph.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"spout", "parser", "splitter", "counter", "sink"}
	for i, op := range want {
		if order[i] != op {
			t.Errorf("topo[%d] = %s, want %s", i, order[i], op)
		}
	}
	if wc.Stats["splitter"].Te != 1612.8 || wc.Stats["counter"].Te != 612.3 {
		t.Error("WC splitter/counter Te must match the paper's Table 3 local values")
	}
}

func TestLRTopologyShape(t *testing.T) {
	lr := LinearRoad()
	if lr.Graph.Len() != 12 {
		t.Errorf("LR has %d operators, want 12", lr.Graph.Len())
	}
	// toll_notify consumes four streams (Table 8).
	if got := len(lr.Graph.In("toll_notify")); got != 4 {
		t.Errorf("toll_notify has %d input edges, want 4", got)
	}
	if got := len(lr.Graph.Producers("toll_notify")); got != 4 {
		t.Errorf("toll_notify has %d distinct producers, want 4", got)
	}
	// Four operators feed the sink.
	if got := len(lr.Graph.Producers("sink")); got != 4 {
		t.Errorf("sink has %d producers, want 4", got)
	}
}

// runApp executes an app on the real engine for a bounded duration.
func runApp(t *testing.T, a *App, d time.Duration) *engine.Result {
	t.Helper()
	topo := engine.Topology{
		App:       a.Graph,
		Spouts:    a.Spouts,
		Operators: a.Operators,
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 16
	cfg.QueueCapacity = 16
	e, err := engine.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("%s: runtime errors: %v", a.Name, res.Errors)
	}
	return res
}

func TestWCEndToEnd(t *testing.T) {
	res := runApp(t, WordCount(), 150*time.Millisecond)
	if res.SinkTuples == 0 {
		t.Fatal("WC produced no output")
	}
	// Selectivity: sink receives ~10x the parsed sentences.
	sentences := res.Processed["splitter"]
	if sentences == 0 {
		t.Fatal("splitter processed nothing")
	}
	ratio := float64(res.Processed["counter"]) / float64(sentences)
	if ratio < 9 || ratio > 11 {
		t.Errorf("counter/splitter ratio = %v, want ~10", ratio)
	}
}

func TestFDEndToEnd(t *testing.T) {
	res := runApp(t, FraudDetection(), 150*time.Millisecond)
	if res.SinkTuples == 0 {
		t.Fatal("FD produced no output")
	}
	// Selectivity 1 end to end: sink count tracks predict count within
	// in-flight slack.
	if res.Processed["predict"] == 0 {
		t.Fatal("predict processed nothing")
	}
}

func TestSDEndToEnd(t *testing.T) {
	res := runApp(t, SpikeDetection(), 150*time.Millisecond)
	if res.SinkTuples == 0 {
		t.Fatal("SD produced no output")
	}
	if res.Processed["moving_avg"] == 0 || res.Processed["spike_detect"] == 0 {
		t.Fatal("SD middle operators idle")
	}
}

func TestLREndToEnd(t *testing.T) {
	res := runApp(t, LinearRoad(), 250*time.Millisecond)
	if res.SinkTuples == 0 {
		t.Fatal("LR produced no output")
	}
	for _, op := range []string{"dispatcher", "avg_speed", "las_avg_speed", "count_vehicle", "toll_notify"} {
		if res.Processed[op] == 0 {
			t.Errorf("LR operator %s idle", op)
		}
	}
	// The query path (rare): balance and daily queries must flow.
	if res.Processed["account_balance"] == 0 && res.Processed["daily_expen"] == 0 {
		t.Error("no historical queries processed; dispatcher routing may be broken")
	}
}

func TestLRReplicatedRun(t *testing.T) {
	a := LinearRoad()
	topo := engine.Topology{
		App:       a.Graph,
		Spouts:    a.Spouts,
		Operators: a.Operators,
		Replication: map[string]int{
			"avg_speed": 2, "count_vehicle": 2, "toll_notify": 2,
		},
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 16
	e, err := engine.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(200 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples == 0 {
		t.Fatal("replicated LR produced no output")
	}
}

func TestBenchmarksIncludeTrendingWords(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 5 {
		t.Fatalf("Benchmarks() has %d apps, want 5 (paper's four + TW)", len(bs))
	}
	tw := ByName("TW")
	if tw == nil {
		t.Fatal("ByName(TW) = nil")
	}
	if err := tw.Graph.Validate(); err != nil {
		t.Errorf("TW graph invalid: %v", err)
	}
	if err := tw.Stats.Validate(); err != nil {
		t.Errorf("TW stats invalid: %v", err)
	}
	for _, n := range tw.Graph.Nodes() {
		if _, ok := tw.Stats[n.Name]; !ok {
			t.Errorf("TW: no stats for %q", n.Name)
		}
		if n.IsSpout {
			if _, ok := tw.Spouts[n.Name]; !ok {
				t.Errorf("TW: no spout impl for %q", n.Name)
			}
		} else if _, ok := tw.Operators[n.Name]; !ok {
			t.Errorf("TW: no operator impl for %q", n.Name)
		}
	}
}

func TestTWEndToEnd(t *testing.T) {
	res := runApp(t, TrendingWords(), 250*time.Millisecond)
	if res.SinkTuples == 0 {
		t.Fatal("TW produced no ranked output")
	}
	if res.Processed["sessionize"] == 0 {
		t.Fatal("sessionize processed nothing")
	}
	if res.Processed["rank"] == 0 {
		t.Fatal("rank received no closed sessions; session windows never fired")
	}
	// Ranked output arrives in batches of at most twK per rank window.
	if res.SinkTuples > res.Processed["rank"]*twK {
		t.Errorf("sink received %d tuples from %d sessions; top-K should bound it", res.SinkTuples, res.Processed["rank"])
	}
}

func TestTWReplicatedRun(t *testing.T) {
	a := TrendingWords()
	topo := engine.Topology{
		App:       a.Graph,
		Spouts:    a.Spouts,
		Operators: a.Operators,
		// Sessionize replicates (fields-partitioned by word); rank is
		// global so extra replicas would idle, keep it at 1.
		Replication: map[string]int{"spout": 2, "sessionize": 2},
	}
	e, err := engine.New(topo, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(250 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples == 0 {
		t.Fatal("replicated TW produced no output")
	}
}

func TestAppsModelEvaluable(t *testing.T) {
	// Every app must evaluate under the model on both paper servers.
	for _, a := range All() {
		for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
			eg, err := plan.Build(a.Graph, nil, 1)
			if err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			cfg := &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated}
			r, err := model.Evaluate(eg, plan.CollocateAll(eg), cfg, model.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, m.Name, err)
			}
			if r.Throughput <= 0 {
				t.Errorf("%s on %s: zero modelled throughput", a.Name, m.Name)
			}
		}
	}
}

func TestSpoutsAreDeterministicPerReplica(t *testing.T) {
	// Two spout instances from the same app must differ (distinct
	// seeds), but runs are reproducible overall via seeded sources.
	wc := WordCount()
	s1 := wc.Spouts["spout"]()
	s2 := wc.Spouts["spout"]()
	var got1, got2 []string
	c1 := &captureCollector{out: &got1}
	c2 := &captureCollector{out: &got2}
	for i := 0; i < 5; i++ {
		s1.Next(c1)
		s2.Next(c2)
	}
	same := true
	for i := range got1 {
		if got1[i] != got2[i] {
			same = false
		}
	}
	if same {
		t.Error("two spout replicas emitted identical streams")
	}
}

type captureCollector struct{ out *[]string }

func (c *captureCollector) Emit(values ...tuple.Value) {
	*c.out = append(*c.out, values[0].(string))
}

func (c *captureCollector) EmitTo(stream string, values ...tuple.Value) {
	*c.out = append(*c.out, values[0].(string))
}

func (c *captureCollector) Borrow() *tuple.Tuple { return tuple.New() }

func (c *captureCollector) EmitWatermark(wm int64) {}

func (c *captureCollector) Send(t *tuple.Tuple) {
	*c.out = append(*c.out, t.Str(0))
}
