package apps

// End-to-end elastic rescale: kill a checkpointed WC run mid-flight,
// re-shard the completed checkpoint's keyed state onto a different
// replication, restore it on a freshly built engine with the new
// replica counts, replay the sources, and require the final output to
// equal a static failure-free run's output exactly. This is the
// execution half of the adaptive loop: checkpoint/restore as the
// state-migration mechanism for online re-planning.

import (
	"fmt"
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
)

// buildRescaleEngine wires WC with the given replication, a bounded
// deterministic spout, and a recording sink.
func buildRescaleEngine(t *testing.T, repl map[string]int, co *checkpoint.Coordinator, limit int64) (*engine.Engine, *recordingSink, engine.Topology) {
	t.Helper()
	app := WordCount()
	sink := newRecordingSink()
	ops := make(map[string]func() engine.Operator, len(app.Operators))
	for name, mk := range app.Operators {
		ops[name] = mk
	}
	ops["sink"] = func() engine.Operator { return sink }
	r := map[string]int{"spout": 1}
	for op, n := range repl {
		r[op] = n
	}
	topo := engine.Topology{
		App:         app.Graph,
		Spouts:      map[string]func() engine.Spout{"spout": func() engine.Spout { return &limitSpout{inner: newWCSpout(424242), limit: limit} }},
		Operators:   ops,
		Replication: r,
	}
	cfg := engine.DefaultConfig()
	if co != nil {
		cfg.Checkpoint = co
		cfg.CheckpointInterval = 2 * time.Millisecond
	}
	e, err := engine.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sink, topo
}

func TestRescaleOutputEqualsStatic(t *testing.T) {
	const limit = 80000
	oldRepl := map[string]int{"parser": 1, "splitter": 2, "counter": 2, "sink": 1}

	// Static failure-free reference at the original replication.
	refEngine, refSink, _ := buildRescaleEngine(t, oldRepl, nil, limit)
	res, err := refEngine.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("reference run errors: %v", res.Errors)
	}
	if len(refSink.got) == 0 {
		t.Fatal("reference run produced no sink output")
	}

	for _, tc := range []struct {
		name    string
		newRepl map[string]int
	}{
		{"counter_up_2_to_4", map[string]int{"parser": 1, "splitter": 2, "counter": 4, "sink": 1}},
		{"counter_down_2_to_1", map[string]int{"parser": 1, "splitter": 2, "counter": 1, "sink": 1}},
		{"counter_and_stateless_splitter", map[string]int{"parser": 2, "splitter": 3, "counter": 3, "sink": 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Checkpointed run at the old replication, killed mid-flight.
			co := checkpoint.NewCoordinator(nil)
			e, _, topo := buildRescaleEngine(t, oldRepl, co, limit)
			done := make(chan *engine.Result, 1)
			go func() {
				r, _ := e.Run(0)
				done <- r
			}()
			deadline := time.Now().Add(30 * time.Second)
			for co.Completed() < 2 && time.Now().Before(deadline) {
				select {
				case r := <-done:
					done <- r
					deadline = time.Now()
				default:
					time.Sleep(500 * time.Microsecond)
				}
			}
			e.Kill()
			killRes := <-done
			if len(killRes.Errors) != 0 {
				t.Fatalf("killed run errors: %v", killRes.Errors)
			}
			cp, err := co.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if cp == nil {
				t.Fatal("no checkpoint completed before the kill — nothing to rescale from")
			}

			// Re-shard the cut onto the new replication and restore it on
			// a freshly built engine.
			cp2, err := engine.ReshardCheckpoint(cp, topo, tc.newRepl)
			if err != nil {
				t.Fatal(err)
			}
			e2, sink2, _ := buildRescaleEngine(t, tc.newRepl, nil, limit)
			if err := e2.RestoreFrom(cp2); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: killed at sink=%d tuples, rescaling from checkpoint %d", tc.name, killRes.SinkTuples, cp.ID)
			res2, err := e2.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res2.Errors) != 0 {
				t.Fatalf("rescaled run errors: %v", res2.Errors)
			}
			if d := diffMultisets(refSink.got, sink2.got); d != "" {
				t.Fatalf("rescaled output differs from static output: %s\n(static %d distinct keys, rescaled %d)",
					d, len(refSink.got), len(sink2.got))
			}
		})
	}
}

func TestReshardCheckpointRejectsSpoutRescale(t *testing.T) {
	cp := &checkpoint.Checkpoint{ID: 1, Tasks: map[string][]byte{}}
	app := WordCount()
	topo := engine.Topology{App: app.Graph, Operators: app.Operators}
	// Frame a minimal fake checkpoint: one spout replica, one of each op.
	enc := checkpoint.NewEncoder()
	enc.Bool(false)
	enc.Bool(false)
	cp.Tasks["spout#0"] = enc.Bytes()
	for _, op := range []string{"parser", "splitter", "counter", "sink"} {
		e := checkpoint.NewEncoder()
		e.Int64(0)
		e.Bool(false)
		cp.Tasks[fmt.Sprintf("%s#0", op)] = e.Bytes()
	}
	if _, err := engine.ReshardCheckpoint(cp, topo, map[string]int{"spout": 2}); err == nil {
		t.Fatal("rescaling a spout must be rejected")
	}
	if _, err := engine.ReshardCheckpoint(cp, topo, map[string]int{"splitter": 2}); err != nil {
		t.Fatalf("stateless operator rescale: %v", err)
	}
}
