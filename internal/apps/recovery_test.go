package apps

// End-to-end recovery: kill a checkpointed run of WC and TW mid-flight,
// restore from the latest completed checkpoint, replay the sources from
// their recorded offsets, and require the recovered output to equal the
// failure-free run's output exactly. The sink participates in the
// checkpoint (it snapshots its received multiset), so "output equals"
// is exact — not modulo duplicates.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// limitSpout bounds a replayable spout to a finite stream: io.EOF once
// the inner offset reaches limit. Offset/SeekTo forward, so the engine
// checkpoints and replays the wrapped source transparently.
type limitSpout struct {
	inner engine.ReplayableSpout
	limit int64
}

func (s *limitSpout) Next(c engine.Collector) error {
	if s.inner.Offset() >= s.limit {
		return io.EOF
	}
	return s.inner.Next(c)
}

func (s *limitSpout) Offset() int64             { return s.inner.Offset() }
func (s *limitSpout) SeekTo(offset int64) error { return s.inner.SeekTo(offset) }

// recordingSink counts every received tuple by a canonical (values,
// event) key and snapshots the multiset, making final sink output
// comparable across failure-free and recovered runs.
type recordingSink struct {
	got map[string]int64
}

func newRecordingSink() *recordingSink { return &recordingSink{got: map[string]int64{}} }

func (s *recordingSink) Process(c engine.Collector, t *tuple.Tuple) error {
	s.got[fmt.Sprintf("%v@%d", t, t.Event)]++
	return nil
}

func (s *recordingSink) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, s.got,
		func(e *checkpoint.Encoder, k string) { e.String(k) },
		func(e *checkpoint.Encoder, v int64) { e.Int64(v) })
	return nil
}

func (s *recordingSink) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, s.got,
		(*checkpoint.Decoder).String,
		(*checkpoint.Decoder).Int64)
}

// recoveryCase describes one app under test.
type recoveryCase struct {
	name  string
	limit int64
	mk    func() (*graph.Graph, engine.ReplayableSpout, map[string]func() engine.Operator, map[string]int)
}

func recoveryCases() []recoveryCase {
	return []recoveryCase{
		{
			name:  "WC",
			limit: 80000,
			mk: func() (*graph.Graph, engine.ReplayableSpout, map[string]func() engine.Operator, map[string]int) {
				app := WordCount()
				return app.Graph, newWCSpout(424242), app.Operators,
					map[string]int{"parser": 1, "splitter": 2, "counter": 2, "sink": 1}
			},
		},
		{
			name:  "TW",
			limit: 120000,
			mk: func() (*graph.Graph, engine.ReplayableSpout, map[string]func() engine.Operator, map[string]int) {
				app := TrendingWords()
				return app.Graph, newTWSpout(515151), app.Operators,
					map[string]int{"sessionize": 2, "rank": 1, "sink": 1}
			},
		},
		{
			// FD has no windows — its state is the predict operator's
			// per-entity map — so it covers the plain-Snapshotter path.
			name:  "FD",
			limit: 60000,
			mk: func() (*graph.Graph, engine.ReplayableSpout, map[string]func() engine.Operator, map[string]int) {
				app := FraudDetection()
				return app.Graph, newFDSpout(616161), app.Operators,
					map[string]int{"parser": 1, "predict": 2, "sink": 1}
			},
		},
	}
}

// buildRecoveryEngine wires one app instance with a fresh bounded spout
// and recording sink.
func buildRecoveryEngine(t *testing.T, rc recoveryCase, co *checkpoint.Coordinator) (*engine.Engine, *recordingSink) {
	t.Helper()
	g, inner, operators, repl := rc.mk()
	sink := newRecordingSink()
	ops := make(map[string]func() engine.Operator, len(operators))
	for name, mk := range operators {
		ops[name] = mk
	}
	ops["sink"] = func() engine.Operator { return sink }
	repl["spout"] = 1 // one bounded deterministic source
	cfg := engine.DefaultConfig()
	if co != nil {
		cfg.Checkpoint = co
		cfg.CheckpointInterval = 2 * time.Millisecond
	}
	e, err := engine.New(engine.Topology{
		App:         g,
		Spouts:      map[string]func() engine.Spout{"spout": func() engine.Spout { return &limitSpout{inner: inner, limit: rc.limit} }},
		Operators:   ops,
		Replication: repl,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sink
}

func diffMultisets(want, got map[string]int64) string {
	for k, n := range want {
		if got[k] != n {
			return fmt.Sprintf("key %q: want %d, got %d", k, n, got[k])
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("unexpected key %q (count %d)", k, n)
		}
	}
	return ""
}

func TestRecoveryOutputEqualsFailureFree(t *testing.T) {
	for _, rc := range recoveryCases() {
		t.Run(rc.name, func(t *testing.T) {
			// Failure-free reference run.
			refEngine, refSink := buildRecoveryEngine(t, rc, nil)
			res, err := refEngine.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Errors) != 0 {
				t.Fatalf("reference run errors: %v", res.Errors)
			}
			if len(refSink.got) == 0 {
				t.Fatal("reference run produced no sink output")
			}

			// Checkpointed run, killed mid-flight.
			co := checkpoint.NewCoordinator(nil)
			e, sink := buildRecoveryEngine(t, rc, co)
			done := make(chan *engine.Result, 1)
			go func() {
				r, _ := e.Run(0)
				done <- r
			}()
			deadline := time.Now().Add(30 * time.Second)
			for co.Completed() < 2 && time.Now().Before(deadline) {
				select {
				case r := <-done:
					// The stream finished before the kill fired; recovery
					// below still restores and replays the tail.
					done <- r
					deadline = time.Now()
				default:
					time.Sleep(500 * time.Microsecond)
				}
			}
			e.Kill()
			killRes := <-done
			if len(killRes.Errors) != 0 {
				t.Fatalf("killed run errors: %v", killRes.Errors)
			}
			if co.Completed() == 0 {
				t.Fatal("no checkpoint completed before the kill — nothing to recover from")
			}

			// Recover: restore the cut, replay the sources, run to EOF.
			id, err := e.Restore()
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: killed at sink=%d tuples, recovering from checkpoint %d (%d completed)",
				rc.name, killRes.SinkTuples, id, co.Completed())
			res2, err := e.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res2.Errors) != 0 {
				t.Fatalf("recovery run errors: %v", res2.Errors)
			}
			if d := diffMultisets(refSink.got, sink.got); d != "" {
				t.Fatalf("recovered output differs from failure-free output: %s\n(failure-free %d distinct keys, recovered %d)",
					d, len(refSink.got), len(sink.got))
			}
		})
	}
}
