package apps

import (
	"fmt"
	"math/rand"
	"slices"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/state"
	"briskstream/internal/tuple"
	"briskstream/internal/vec"
	"briskstream/internal/window"
)

var lrSpoutSeq atomic.Int64

// LR event-time parameters: the input clock advances one event-ms per
// record; the benchmark's "minute statistics" — average segment speed
// over the last five minutes, distinct vehicles per minute — are scaled
// onto that synthetic clock as sliding windows of lrStatSpan sliding by
// lrStatSlide (avg speed) and tumbling windows of lrStatSlide (vehicle
// counts).
const (
	lrStatSpan       = 4096
	lrStatSlide      = 1024
	lrWatermarkEvery = 64
)

// LR stream names (Table 8).
const (
	lrPosition = "position_report"
	lrBalance  = "balance_stream"
	lrDaily    = "daliy_exp_request" // spelled as in the paper's Table 8
	lrAvg      = "avg_stream"
	lrLas      = "las_stream"
	lrDetect   = "detect_stream"
	lrCounts   = "counts_stream"
	lrNotify   = "notify_stream"
	lrToll     = "toll_nofity_stream" // spelled as in the paper's Table 8
)

// Interned stream ids, resolved once at package init so the operators'
// per-tuple stream dispatch is an integer compare (the engine's routing
// tables are keyed the same way).
var (
	lrPositionID = tuple.Intern(lrPosition)
	lrBalanceID  = tuple.Intern(lrBalance)
	lrDailyID    = tuple.Intern(lrDaily)
	lrAvgID      = tuple.Intern(lrAvg)
	lrLasID      = tuple.Intern(lrLas)
	lrDetectID   = tuple.Intern(lrDetect)
	lrCountsID   = tuple.Intern(lrCounts)
	lrNotifyID   = tuple.Intern(lrNotify)
	lrTollID     = tuple.Intern(lrToll)
)

// Input record types on the LR input stream.
const (
	lrTypePosition = int64(0)
	lrTypeBalance  = int64(2)
	lrTypeDaily    = int64(3)
)

// LinearRoad builds the LR application of Figure 18c — the Linear Road
// benchmark's continuous queries over a simulated expressway: variable
// tolling from segment statistics (average speed, vehicle counts),
// accident detection and notification, and historical account queries.
// The segment statistics are event-time windows on keyed state:
// avg_speed is a sliding window, count_vehicle a tumbling distinct
// count, both per segment (the benchmark's minute statistics on the
// synthetic event clock).
//
// Stream selectivities follow Table 8. Entries the paper prints as
// "(approx) 0.0" are rare-but-nonzero events (accidents, account
// queries); we use small positive values so every code path is
// exercised: dispatcher balance/daily requests 0.3%/0.2% of input,
// accident detection 0.1% of position reports. Daily_expen and
// Account_balance answer each (rare) query they receive.
func LinearRoad() *App {
	g := graph.New("LR")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "dispatcher", Selectivity: map[string]float64{
		lrPosition: 0.99, lrBalance: 0.003, lrDaily: 0.002,
	}})
	mustNode(g, &graph.Node{Name: "avg_speed", Selectivity: map[string]float64{lrAvg: 1}})
	mustNode(g, &graph.Node{Name: "las_avg_speed", Selectivity: map[string]float64{lrLas: 1}})
	mustNode(g, &graph.Node{Name: "accident_detect", Selectivity: map[string]float64{lrDetect: 0.001}})
	mustNode(g, &graph.Node{Name: "count_vehicle", Selectivity: map[string]float64{lrCounts: 1}})
	mustNode(g, &graph.Node{Name: "toll_notify", Selectivity: map[string]float64{lrToll: 1}})
	mustNode(g, &graph.Node{Name: "accident_notify", Selectivity: map[string]float64{lrNotify: 0.001}})
	mustNode(g, &graph.Node{Name: "daily_expen", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "account_balance", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})

	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "dispatcher", Stream: "default"})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "avg_speed", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 5})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "accident_detect", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "count_vehicle", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 5})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "toll_notify", Stream: lrPosition})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "accident_notify", Stream: lrPosition})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "account_balance", Stream: lrBalance, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "daily_expen", Stream: lrDaily, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "avg_speed", To: "las_avg_speed", Stream: lrAvg, Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "las_avg_speed", To: "toll_notify", Stream: lrLas})
	mustEdge(g, graph.Edge{From: "accident_detect", To: "toll_notify", Stream: lrDetect})
	mustEdge(g, graph.Edge{From: "accident_detect", To: "accident_notify", Stream: lrDetect})
	mustEdge(g, graph.Edge{From: "count_vehicle", To: "toll_notify", Stream: lrCounts})
	mustEdge(g, graph.Edge{From: "toll_notify", To: "sink", Stream: lrToll})
	mustEdge(g, graph.Edge{From: "accident_notify", To: "sink", Stream: lrNotify})
	mustEdge(g, graph.Edge{From: "daily_expen", To: "sink", Stream: "default"})
	mustEdge(g, graph.Edge{From: "account_balance", To: "sink", Stream: "default"})

	// The input record schema: (type, vehicle, speed, xway, lane,
	// segment, position), all integers (Table 8's position report shape
	// with the record type prefixed).
	record := tuple.NewSchema(
		tuple.IntField("type"), tuple.IntField("vehicle"), tuple.IntField("speed"),
		tuple.IntField("xway"), tuple.IntField("lane"), tuple.IntField("segment"),
		tuple.IntField("position"))
	return &App{
		Name:      "LR",
		Graph:     mustValid(g),
		Spouts:    map[string]func() engine.Spout{"spout": lrSpout},
		Operators: lrOperators(),
		Schemas: map[string]map[string]*tuple.Schema{
			"spout":  {"default": record},
			"parser": {"default": record},
			"dispatcher": {
				lrPosition: record, lrBalance: record, lrDaily: record,
			},
			"avg_speed":       {lrAvg: tuple.NewSchema(tuple.IntField("segment"), tuple.FloatField("avg_speed"))},
			"las_avg_speed":   {lrLas: tuple.NewSchema(tuple.IntField("segment"), tuple.FloatField("las_speed"))},
			"accident_detect": {lrDetect: tuple.NewSchema(tuple.IntField("segment"), tuple.IntField("position"))},
			"count_vehicle":   {lrCounts: tuple.NewSchema(tuple.IntField("segment"), tuple.IntField("vehicles"))},
			"toll_notify":     {lrToll: tuple.NewSchema(tuple.IntField("id"), tuple.FloatField("toll"))},
			"accident_notify": {lrNotify: tuple.NewSchema(tuple.IntField("vehicle"), tuple.IntField("segment"))},
			"daily_expen":     {"default": tuple.NewSchema(tuple.IntField("vehicle"), tuple.FloatField("expenditure"))},
			"account_balance": {"default": tuple.NewSchema(tuple.IntField("vehicle"), tuple.FloatField("balance"))},
		},
		// Position reports are ~120 B; toll notification is the hot
		// operator (three input streams). Calibrated to land near the
		// paper's 8.7M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":           {Te: 1300, M: 240, N: 120, Selectivity: map[string]float64{"default": 1}},
			"parser":          {Te: 900, M: 240, N: 120, Selectivity: map[string]float64{"default": 1}},
			"dispatcher":      {Te: 1100, M: 240, N: 120, Selectivity: map[string]float64{lrPosition: 0.99, lrBalance: 0.003, lrDaily: 0.002}},
			"avg_speed":       {Te: 3200, M: 260, N: 120, Selectivity: map[string]float64{lrAvg: 1}},
			"las_avg_speed":   {Te: 2600, M: 120, N: 40, Selectivity: map[string]float64{lrLas: 1}},
			"accident_detect": {Te: 2200, M: 260, N: 120, Selectivity: map[string]float64{lrDetect: 0.001}},
			"count_vehicle":   {Te: 3000, M: 260, N: 120, Selectivity: map[string]float64{lrCounts: 1}},
			"toll_notify":     {Te: 4200, M: 280, N: 100, Selectivity: map[string]float64{lrToll: 1}},
			"accident_notify": {Te: 1200, M: 240, N: 110, Selectivity: map[string]float64{lrNotify: 0.001}},
			"daily_expen":     {Te: 1800, M: 120, N: 60, Selectivity: map[string]float64{"default": 1}},
			"account_balance": {Te: 1600, M: 120, N: 60, Selectivity: map[string]float64{"default": 1}},
			"sink":            {Te: 250, M: 80, N: 40, Selectivity: map[string]float64{}},
		},
	}
}

// lrSpout generates typed input records:
// (type, vehicle, speed, xway, lane, segment, position), stamped with
// the synthetic event clock and punctuated with watermarks. It is
// replayable like wcSpout: the record stream is a pure function of
// (seed, offset).
type lrSpoutT struct {
	seed int64
	r    *rand.Rand
	et   int64

	typ, vehicle, speed, xway, lane, segment, position int64
}

func newLRSpout(seed int64) *lrSpoutT {
	return &lrSpoutT{seed: seed, r: rng(seed)}
}

func lrSpout() engine.Spout { return newLRSpout(4000 + lrSpoutSeq.Add(1)) }

func (s *lrSpoutT) draw() {
	s.typ = lrTypePosition
	switch p := s.r.Intn(1000); {
	case p < 3:
		s.typ = lrTypeBalance
	case p < 5:
		s.typ = lrTypeDaily
	}
	s.vehicle = int64(s.r.Intn(50000))
	s.speed = int64(s.r.Intn(100))
	if s.r.Intn(500) == 0 {
		s.speed = 0 // stopped vehicle: potential accident
	}
	s.xway = int64(s.r.Intn(2))
	s.lane = int64(s.r.Intn(4))
	s.segment = int64(s.r.Intn(100))
	s.position = int64(s.r.Intn(528000))
	s.et++
}

// Next implements engine.Spout.
func (s *lrSpoutT) Next(c engine.Collector) error {
	s.draw()
	out := c.Borrow()
	out.AppendInt(s.typ)
	out.AppendInt(s.vehicle)
	out.AppendInt(s.speed)
	out.AppendInt(s.xway)
	out.AppendInt(s.lane)
	out.AppendInt(s.segment)
	out.AppendInt(s.position)
	out.Event = s.et
	c.Send(out)
	if s.et%lrWatermarkEvery == 0 {
		c.EmitWatermark(s.et)
	}
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *lrSpoutT) Offset() int64 { return s.et }

// SeekTo implements engine.ReplayableSpout.
func (s *lrSpoutT) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: lr spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.et = 0
	for s.et < offset {
		s.draw()
	}
	return nil
}

// LR's non-window stateful operators. Each snapshots its maps in sorted
// key order so a recovered LR run re-applies replayed records against
// exactly the state it had at the cut — without this, balances would
// double-increment and stop counters would flag spurious accidents on
// replay. (LR's toll output still depends on the arrival interleaving
// of its three input streams, so unlike WC/TW/FD its output is not a
// pure function of the input; state recovery is exact, output equality
// is not a testable property here.)

// lrLasAvg smooths the latest average speed per segment (EWMA).
type lrLasAvg struct {
	lav map[int64]float64
}

func (o *lrLasAvg) Process(c engine.Collector, t *tuple.Tuple) error {
	seg := t.Int(0)
	avg := t.Float(1)
	prev, ok := o.lav[seg]
	if !ok {
		prev = avg
	}
	cur := 0.8*prev + 0.2*avg
	o.lav[seg] = cur
	out := c.Borrow()
	out.Stream = lrLasID
	out.AppendInt(seg)
	out.AppendFloat(cur)
	c.Send(out)
	return nil
}

func (o *lrLasAvg) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, o.lav,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v float64) { e.Float64(v) })
	return nil
}

func (o *lrLasAvg) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, o.lav,
		(*checkpoint.Decoder).Int64,
		(*checkpoint.Decoder).Float64)
}

// lrVState is one vehicle's stop-detection state.
type lrVState struct {
	pos     int64
	stopped int
}

// lrAccidentDetect marks an accident when a vehicle reports speed 0 at
// the same position four consecutive times; per-vehicle state lives in
// a pooled keyed store.
type lrAccidentDetect struct {
	vehicles *state.Map[int64, lrVState]
}

func (o *lrAccidentDetect) Process(c engine.Collector, t *tuple.Tuple) error {
	v, speed, seg, pos := t.Int(1), t.Int(2), t.Int(5), t.Int(6)
	s, created := o.vehicles.GetOrCreate(v)
	if created {
		*s = lrVState{}
	}
	if speed == 0 && s.pos == pos {
		s.stopped++
		if s.stopped == 4 {
			out := c.Borrow()
			out.Stream = lrDetectID
			out.AppendInt(seg)
			out.AppendInt(pos)
			c.Send(out)
		}
	} else {
		s.stopped = 0
		s.pos = pos
	}
	return nil
}

func (o *lrAccidentDetect) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveOrdered(enc, o.vehicles,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v *lrVState) {
			e.Int64(v.pos)
			e.Int64(int64(v.stopped))
		})
	return nil
}

func (o *lrAccidentDetect) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadOrdered(dec, o.vehicles,
		(*checkpoint.Decoder).Int64,
		func(d *checkpoint.Decoder, v *lrVState) {
			v.pos = d.Int64()
			v.stopped = int(d.Int64())
		})
}

// lrTollNotify computes variable tolls from the latest per-segment
// statistics and accident flags.
type lrTollNotify struct {
	lav      map[int64]float64
	cnt      map[int64]int64
	accident map[int64]bool
}

func (o *lrTollNotify) Process(c engine.Collector, t *tuple.Tuple) error {
	switch t.Stream {
	case lrLasID:
		o.lav[t.Int(0)] = t.Float(1)
		o.notify(c, t.Int(0), 0.0) // statistics update notification
	case lrCountsID:
		o.cnt[t.Int(0)] = t.Int(1)
		o.notify(c, t.Int(0), 0.0)
	case lrDetectID:
		o.accident[t.Int(0)] = true
		// No toll is charged in accident segments; no notification is
		// emitted for the detect stream.
	default: // position report
		o.notify(c, t.Int(1), o.toll(t.Int(5)))
	}
	return nil
}

func (o *lrTollNotify) notify(c engine.Collector, id int64, toll float64) {
	out := c.Borrow()
	out.Stream = lrTollID
	out.AppendInt(id)
	out.AppendFloat(toll)
	c.Send(out)
}

// notifyRow is notify for a batch row: the row's own metadata is
// stamped before the send (ownership passes to Send).
func (o *lrTollNotify) notifyRow(c engine.Collector, b *tuple.Batch, r int, id int64, toll float64) {
	out := c.Borrow()
	out.Stream = lrTollID
	out.AppendInt(id)
	out.AppendFloat(toll)
	b.StampMeta(r, out)
	c.Send(out)
}

func (o *lrTollNotify) toll(seg int64) float64 {
	if !o.accident[seg] && o.lav[seg] < 40 && o.cnt[seg] > 50 {
		base := float64(o.cnt[seg] - 50)
		return 2 * base * base / 100
	}
	return 0
}

// ProcessBatch is the columnar twin of Process: one stream check per
// batch, then tight per-row loops over the integer columns. Output
// notifications stamp each row's own metadata (the engine does not
// stamp ambient context during a vectorized invocation).
func (o *lrTollNotify) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	n := b.Len()
	switch b.Stream {
	case lrLasID:
		for r := 0; r < n; r++ {
			seg := b.Int(0, r)
			o.lav[seg] = b.Float(1, r)
			o.notifyRow(c, b, r, seg, 0.0)
		}
	case lrCountsID:
		for r := 0; r < n; r++ {
			seg := b.Int(0, r)
			o.cnt[seg] = b.Int(1, r)
			o.notifyRow(c, b, r, seg, 0.0)
		}
	case lrDetectID:
		for r := 0; r < n; r++ {
			o.accident[b.Int(0, r)] = true
		}
	default: // position reports
		for r := 0; r < n; r++ {
			o.notifyRow(c, b, r, b.Int(1, r), o.toll(b.Int(5, r)))
		}
	}
	return nil
}

func (o *lrTollNotify) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, o.lav,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v float64) { e.Float64(v) })
	checkpoint.SaveMapOrdered(enc, o.cnt,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v int64) { e.Int64(v) })
	checkpoint.SaveMapOrdered(enc, o.accident,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v bool) { e.Bool(v) })
	return nil
}

func (o *lrTollNotify) Restore(dec *checkpoint.Decoder) error {
	if err := checkpoint.LoadMapOrdered(dec, o.lav,
		(*checkpoint.Decoder).Int64, (*checkpoint.Decoder).Float64); err != nil {
		return err
	}
	if err := checkpoint.LoadMapOrdered(dec, o.cnt,
		(*checkpoint.Decoder).Int64, (*checkpoint.Decoder).Int64); err != nil {
		return err
	}
	return checkpoint.LoadMapOrdered(dec, o.accident,
		(*checkpoint.Decoder).Int64, (*checkpoint.Decoder).Bool)
}

// lrAccidentNotify notifies vehicles entering a segment with a known
// accident.
type lrAccidentNotify struct {
	accidents map[int64]bool
}

func (o *lrAccidentNotify) Process(c engine.Collector, t *tuple.Tuple) error {
	if t.Stream == lrDetectID {
		o.accidents[t.Int(0)] = true
		return nil
	}
	// Position report: notify vehicles entering a segment with a known
	// accident (rare).
	if seg := t.Int(5); o.accidents[seg] {
		out := c.Borrow()
		out.Stream = lrNotifyID
		out.AppendInt(t.Int(1))
		out.AppendInt(seg)
		c.Send(out)
	}
	return nil
}

// ProcessBatch is the columnar twin of Process: the accident set is
// usually empty and notifications are rare, so the common case is one
// map-length check (detect batches) or a tight scan over the segment
// column that emits nothing.
func (o *lrAccidentNotify) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	n := b.Len()
	if b.Stream == lrDetectID {
		for r := 0; r < n; r++ {
			o.accidents[b.Int(0, r)] = true
		}
		return nil
	}
	if len(o.accidents) == 0 {
		return nil
	}
	for r := 0; r < n; r++ {
		if seg := b.Int(5, r); o.accidents[seg] {
			out := c.Borrow()
			out.Stream = lrNotifyID
			out.AppendInt(b.Int(1, r))
			out.AppendInt(seg)
			b.StampMeta(r, out)
			c.Send(out)
		}
	}
	return nil
}

func (o *lrAccidentNotify) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, o.accidents,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v bool) { e.Bool(v) })
	return nil
}

func (o *lrAccidentNotify) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, o.accidents,
		(*checkpoint.Decoder).Int64, (*checkpoint.Decoder).Bool)
}

// lrAccountBalance answers (rare) balance queries from running account
// state.
type lrAccountBalance struct {
	balances map[int64]float64
}

func (o *lrAccountBalance) Process(c engine.Collector, t *tuple.Tuple) error {
	v := t.Int(1)
	o.balances[v] += 0.5
	out := c.Borrow()
	out.AppendInt(v)
	out.AppendFloat(o.balances[v])
	c.Send(out)
	return nil
}

func (o *lrAccountBalance) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, o.balances,
		func(e *checkpoint.Encoder, k int64) { e.Int64(k) },
		func(e *checkpoint.Encoder, v float64) { e.Float64(v) })
	return nil
}

func (o *lrAccountBalance) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, o.balances,
		(*checkpoint.Decoder).Int64, (*checkpoint.Decoder).Float64)
}

// lrDispatch routes records by type: position reports (the bulk) on
// lrPosition, the rare balance/daily queries on their own streams.
type lrDispatch struct{}

func (lrDispatch) Process(c engine.Collector, t *tuple.Tuple) error {
	switch t.Int(0) {
	case lrTypeBalance:
		forward(c, t, lrBalanceID)
	case lrTypeDaily:
		forward(c, t, lrDailyID)
	default:
		forward(c, t, lrPositionID)
	}
	return nil
}

// ProcessBatch splits the batch into per-type selection vectors over
// the record-type column and bulk-forwards each on its stream — the
// dominant position selection covers (nearly) every row and rides the
// collector's batch-to-batch fast path; the rare query selections are
// only scanned for when the first pass saw a non-position row.
func (lrDispatch) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	n := b.Len()
	sel := vec.Select(b, b.SelScratch(), func(r int) bool {
		ty := b.Int(0, r)
		return ty != lrTypeBalance && ty != lrTypeDaily
	})
	vec.ForwardSel(c, b, sel, lrPositionID)
	if len(sel) == n {
		return nil
	}
	if sel = vec.Select(b, sel[:0], func(r int) bool { return b.Int(0, r) == lrTypeBalance }); len(sel) > 0 {
		vec.ForwardSel(c, b, sel, lrBalanceID)
	}
	if sel = vec.Select(b, sel[:0], func(r int) bool { return b.Int(0, r) == lrTypeDaily }); len(sel) > 0 {
		vec.ForwardSel(c, b, sel, lrDailyID)
	}
	return nil
}

func lrOperators() map[string]func() engine.Operator {
	pass := func() engine.Operator { return passOp{} }
	sink := func() engine.Operator { return nopSink{} }
	return map[string]func() engine.Operator{
		"parser":     pass,
		"dispatcher": func() engine.Operator { return lrDispatch{} },
		"avg_speed": func() engine.Operator {
			// Per-segment average speed over the trailing lrStatSpan,
			// refreshed every lrStatSlide — LR's five-minute speed
			// statistic on keyed window state.
			type segStat struct {
				sum   int64
				count int64
			}
			return window.New(window.Op[segStat]{
				KeyField: 5,
				Size:     lrStatSpan,
				Slide:    lrStatSlide,
				Init:     func(a *segStat) { *a = segStat{} },
				Add: func(a *segStat, t *tuple.Tuple) {
					a.sum += t.Int(2)
					a.count++
				},
				// Vectorized pre-accumulation over the speed column;
				// sum/count are order-insensitive.
				AddRow: func(a *segStat, b *tuple.Batch, r int) {
					a.sum += b.Int(2, r)
					a.count++
				},
				Merge: func(a *segStat, p *segStat) {
					a.sum += p.sum
					a.count += p.count
				},
				Emit: func(c engine.Collector, key tuple.Key, w window.Span, a *segStat) {
					out := c.Borrow()
					out.Stream = lrAvgID
					out.AppendKey(key)
					out.AppendFloat(float64(a.sum) / float64(a.count))
					out.Event = w.End
					c.Send(out)
				},
				Save: func(enc *checkpoint.Encoder, a *segStat) {
					enc.Int64(a.sum)
					enc.Int64(a.count)
				},
				Load: func(dec *checkpoint.Decoder, a *segStat) error {
					a.sum = dec.Int64()
					a.count = dec.Int64()
					return nil
				},
			})
		},
		"las_avg_speed": func() engine.Operator {
			return &lrLasAvg{lav: map[int64]float64{}}
		},
		"accident_detect": func() engine.Operator {
			return &lrAccidentDetect{vehicles: state.NewMap[int64, lrVState]()}
		},
		"count_vehicle": func() engine.Operator {
			// Distinct vehicles per segment per minute: a tumbling
			// window of lrStatSlide keyed by segment; the accumulator's
			// distinct-set keeps its buckets across window lives.
			type distinct struct {
				seen map[int64]bool
			}
			return window.New(window.Op[distinct]{
				KeyField: 5,
				Size:     lrStatSlide,
				Init: func(a *distinct) {
					if a.seen == nil {
						a.seen = make(map[int64]bool)
					} else {
						clear(a.seen)
					}
				},
				Add: func(a *distinct, t *tuple.Tuple) { a.seen[t.Int(1)] = true },
				// Vectorized distinct count: the per-batch partial set
				// unions into the window's set, equivalent to per-row
				// inserts.
				AddRow: func(a *distinct, b *tuple.Batch, r int) { a.seen[b.Int(1, r)] = true },
				Merge: func(a *distinct, p *distinct) {
					for v := range p.seen {
						a.seen[v] = true
					}
				},
				Emit: func(c engine.Collector, key tuple.Key, w window.Span, a *distinct) {
					out := c.Borrow()
					out.Stream = lrCountsID
					out.AppendKey(key)
					out.AppendInt(int64(len(a.seen)))
					out.Event = w.End
					c.Send(out)
				},
				Save: func(enc *checkpoint.Encoder, a *distinct) {
					// Deterministic encoding of the distinct set: sorted
					// vehicle ids.
					ids := make([]int64, 0, len(a.seen))
					for v := range a.seen {
						ids = append(ids, v)
					}
					slices.Sort(ids)
					enc.Len(len(ids))
					for _, v := range ids {
						enc.Int64(v)
					}
				},
				Load: func(dec *checkpoint.Decoder, a *distinct) error {
					n := dec.Len()
					for i := 0; i < n && dec.Err() == nil; i++ {
						a.seen[dec.Int64()] = true
					}
					return dec.Err()
				},
			})
		},
		"toll_notify": func() engine.Operator {
			return &lrTollNotify{lav: map[int64]float64{}, cnt: map[int64]int64{}, accident: map[int64]bool{}}
		},
		"accident_notify": func() engine.Operator {
			return &lrAccidentNotify{accidents: map[int64]bool{}}
		},
		"daily_expen": func() engine.Operator {
			// Historical daily expenditure lookup: deterministic
			// pseudo-history keyed by vehicle.
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				v := t.Int(1)
				out := c.Borrow()
				out.AppendInt(v)
				out.AppendFloat(float64((v*7919)%500) / 10)
				c.Send(out)
				return nil
			})
		},
		"account_balance": func() engine.Operator {
			return &lrAccountBalance{balances: map[int64]float64{}}
		},
		"sink": sink,
	}
}
