package apps

import (
	"sync/atomic"

	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/state"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

var lrSpoutSeq atomic.Int64

// LR event-time parameters: the input clock advances one event-ms per
// record; the benchmark's "minute statistics" — average segment speed
// over the last five minutes, distinct vehicles per minute — are scaled
// onto that synthetic clock as sliding windows of lrStatSpan sliding by
// lrStatSlide (avg speed) and tumbling windows of lrStatSlide (vehicle
// counts).
const (
	lrStatSpan       = 4096
	lrStatSlide      = 1024
	lrWatermarkEvery = 64
)

// LR stream names (Table 8).
const (
	lrPosition = "position_report"
	lrBalance  = "balance_stream"
	lrDaily    = "daliy_exp_request" // spelled as in the paper's Table 8
	lrAvg      = "avg_stream"
	lrLas      = "las_stream"
	lrDetect   = "detect_stream"
	lrCounts   = "counts_stream"
	lrNotify   = "notify_stream"
	lrToll     = "toll_nofity_stream" // spelled as in the paper's Table 8
)

// Interned stream ids, resolved once at package init so the operators'
// per-tuple stream dispatch is an integer compare (the engine's routing
// tables are keyed the same way).
var (
	lrPositionID = tuple.Intern(lrPosition)
	lrBalanceID  = tuple.Intern(lrBalance)
	lrDailyID    = tuple.Intern(lrDaily)
	lrAvgID      = tuple.Intern(lrAvg)
	lrLasID      = tuple.Intern(lrLas)
	lrDetectID   = tuple.Intern(lrDetect)
	lrCountsID   = tuple.Intern(lrCounts)
	lrNotifyID   = tuple.Intern(lrNotify)
	lrTollID     = tuple.Intern(lrToll)
)

// Input record types on the LR input stream.
const (
	lrTypePosition = int64(0)
	lrTypeBalance  = int64(2)
	lrTypeDaily    = int64(3)
)

// LinearRoad builds the LR application of Figure 18c — the Linear Road
// benchmark's continuous queries over a simulated expressway: variable
// tolling from segment statistics (average speed, vehicle counts),
// accident detection and notification, and historical account queries.
// The segment statistics are event-time windows on keyed state:
// avg_speed is a sliding window, count_vehicle a tumbling distinct
// count, both per segment (the benchmark's minute statistics on the
// synthetic event clock).
//
// Stream selectivities follow Table 8. Entries the paper prints as
// "(approx) 0.0" are rare-but-nonzero events (accidents, account
// queries); we use small positive values so every code path is
// exercised: dispatcher balance/daily requests 0.3%/0.2% of input,
// accident detection 0.1% of position reports. Daily_expen and
// Account_balance answer each (rare) query they receive.
func LinearRoad() *App {
	g := graph.New("LR")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "dispatcher", Selectivity: map[string]float64{
		lrPosition: 0.99, lrBalance: 0.003, lrDaily: 0.002,
	}})
	mustNode(g, &graph.Node{Name: "avg_speed", Selectivity: map[string]float64{lrAvg: 1}})
	mustNode(g, &graph.Node{Name: "las_avg_speed", Selectivity: map[string]float64{lrLas: 1}})
	mustNode(g, &graph.Node{Name: "accident_detect", Selectivity: map[string]float64{lrDetect: 0.001}})
	mustNode(g, &graph.Node{Name: "count_vehicle", Selectivity: map[string]float64{lrCounts: 1}})
	mustNode(g, &graph.Node{Name: "toll_notify", Selectivity: map[string]float64{lrToll: 1}})
	mustNode(g, &graph.Node{Name: "accident_notify", Selectivity: map[string]float64{lrNotify: 0.001}})
	mustNode(g, &graph.Node{Name: "daily_expen", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "account_balance", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})

	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "dispatcher", Stream: "default"})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "avg_speed", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 5})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "accident_detect", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "count_vehicle", Stream: lrPosition, Partitioning: graph.Fields, KeyField: 5})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "toll_notify", Stream: lrPosition})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "accident_notify", Stream: lrPosition})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "account_balance", Stream: lrBalance, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "dispatcher", To: "daily_expen", Stream: lrDaily, Partitioning: graph.Fields, KeyField: 1})
	mustEdge(g, graph.Edge{From: "avg_speed", To: "las_avg_speed", Stream: lrAvg, Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "las_avg_speed", To: "toll_notify", Stream: lrLas})
	mustEdge(g, graph.Edge{From: "accident_detect", To: "toll_notify", Stream: lrDetect})
	mustEdge(g, graph.Edge{From: "accident_detect", To: "accident_notify", Stream: lrDetect})
	mustEdge(g, graph.Edge{From: "count_vehicle", To: "toll_notify", Stream: lrCounts})
	mustEdge(g, graph.Edge{From: "toll_notify", To: "sink", Stream: lrToll})
	mustEdge(g, graph.Edge{From: "accident_notify", To: "sink", Stream: lrNotify})
	mustEdge(g, graph.Edge{From: "daily_expen", To: "sink", Stream: "default"})
	mustEdge(g, graph.Edge{From: "account_balance", To: "sink", Stream: "default"})

	return &App{
		Name:      "LR",
		Graph:     mustValid(g),
		Spouts:    map[string]func() engine.Spout{"spout": lrSpout},
		Operators: lrOperators(),
		// Position reports are ~120 B; toll notification is the hot
		// operator (three input streams). Calibrated to land near the
		// paper's 8.7M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":           {Te: 1300, M: 240, N: 120, Selectivity: map[string]float64{"default": 1}},
			"parser":          {Te: 900, M: 240, N: 120, Selectivity: map[string]float64{"default": 1}},
			"dispatcher":      {Te: 1100, M: 240, N: 120, Selectivity: map[string]float64{lrPosition: 0.99, lrBalance: 0.003, lrDaily: 0.002}},
			"avg_speed":       {Te: 3200, M: 260, N: 120, Selectivity: map[string]float64{lrAvg: 1}},
			"las_avg_speed":   {Te: 2600, M: 120, N: 40, Selectivity: map[string]float64{lrLas: 1}},
			"accident_detect": {Te: 2200, M: 260, N: 120, Selectivity: map[string]float64{lrDetect: 0.001}},
			"count_vehicle":   {Te: 3000, M: 260, N: 120, Selectivity: map[string]float64{lrCounts: 1}},
			"toll_notify":     {Te: 4200, M: 280, N: 100, Selectivity: map[string]float64{lrToll: 1}},
			"accident_notify": {Te: 1200, M: 240, N: 110, Selectivity: map[string]float64{lrNotify: 0.001}},
			"daily_expen":     {Te: 1800, M: 120, N: 60, Selectivity: map[string]float64{"default": 1}},
			"account_balance": {Te: 1600, M: 120, N: 60, Selectivity: map[string]float64{"default": 1}},
			"sink":            {Te: 250, M: 80, N: 40, Selectivity: map[string]float64{}},
		},
	}
}

// lrSpout generates typed input records:
// (type, vehicle, speed, xway, lane, segment, position), stamped with
// the synthetic event clock and punctuated with watermarks.
func lrSpout() engine.Spout {
	r := rng(4000 + lrSpoutSeq.Add(1))
	et := int64(0)
	return engine.SpoutFunc(func(c engine.Collector) error {
		typ := lrTypePosition
		switch p := r.Intn(1000); {
		case p < 3:
			typ = lrTypeBalance
		case p < 5:
			typ = lrTypeDaily
		}
		vehicle := int64(r.Intn(50000))
		speed := int64(r.Intn(100))
		if r.Intn(500) == 0 {
			speed = 0 // stopped vehicle: potential accident
		}
		et++
		out := c.Borrow()
		out.Values = append(out.Values, typ, vehicle, speed,
			int64(r.Intn(2)),   // xway
			int64(r.Intn(4)),   // lane
			int64(r.Intn(100)), // segment
			int64(r.Intn(528000)))
		out.Event = et
		c.Send(out)
		if et%lrWatermarkEvery == 0 {
			c.EmitWatermark(et)
		}
		return nil
	})
}

func lrOperators() map[string]func() engine.Operator {
	pass := func() engine.Operator {
		return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
			forward(c, t, tuple.DefaultStreamID)
			return nil
		})
	}
	sink := func() engine.Operator {
		return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
	}
	return map[string]func() engine.Operator{
		"parser": pass,
		"dispatcher": func() engine.Operator {
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				switch t.Int(0) {
				case lrTypeBalance:
					forward(c, t, lrBalanceID)
				case lrTypeDaily:
					forward(c, t, lrDailyID)
				default:
					forward(c, t, lrPositionID)
				}
				return nil
			})
		},
		"avg_speed": func() engine.Operator {
			// Per-segment average speed over the trailing lrStatSpan,
			// refreshed every lrStatSlide — LR's five-minute speed
			// statistic on keyed window state.
			type segStat struct {
				sum   int64
				count int64
			}
			return window.New(window.Op[segStat]{
				KeyField: 5,
				Size:     lrStatSpan,
				Slide:    lrStatSlide,
				Init:     func(a *segStat) { *a = segStat{} },
				Add: func(a *segStat, t *tuple.Tuple) {
					a.sum += t.Int(2)
					a.count++
				},
				Emit: func(c engine.Collector, key tuple.Value, w window.Span, a *segStat) {
					out := c.Borrow()
					out.Stream = lrAvgID
					out.Values = append(out.Values, key, float64(a.sum)/float64(a.count))
					out.Event = w.End
					c.Send(out)
				},
			})
		},
		"las_avg_speed": func() engine.Operator {
			// Exponentially smoothed latest average speed per segment.
			lav := map[int64]float64{}
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				seg := t.Int(0)
				avg := t.Float(1)
				prev, ok := lav[seg]
				if !ok {
					prev = avg
				}
				cur := 0.8*prev + 0.2*avg
				lav[seg] = cur
				emit(c, lrLasID, t.Values[0], cur)
				return nil
			})
		},
		"accident_detect": func() engine.Operator {
			// A vehicle reporting speed 0 at the same position four
			// consecutive times marks an accident in its segment. The
			// per-vehicle state lives in a pooled keyed store.
			type vstate struct {
				pos     int64
				stopped int
			}
			vehicles := state.NewMap[int64, vstate]()
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				v, speed, seg, pos := t.Int(1), t.Int(2), t.Int(5), t.Int(6)
				s, created := vehicles.GetOrCreate(v)
				if created {
					*s = vstate{}
				}
				if speed == 0 && s.pos == pos {
					s.stopped++
					if s.stopped == 4 {
						emit(c, lrDetectID, seg, pos)
					}
				} else {
					s.stopped = 0
					s.pos = pos
				}
				return nil
			})
		},
		"count_vehicle": func() engine.Operator {
			// Distinct vehicles per segment per minute: a tumbling
			// window of lrStatSlide keyed by segment; the accumulator's
			// distinct-set keeps its buckets across window lives.
			type distinct struct {
				seen map[int64]bool
			}
			return window.New(window.Op[distinct]{
				KeyField: 5,
				Size:     lrStatSlide,
				Init: func(a *distinct) {
					if a.seen == nil {
						a.seen = make(map[int64]bool)
					} else {
						clear(a.seen)
					}
				},
				Add: func(a *distinct, t *tuple.Tuple) { a.seen[t.Int(1)] = true },
				Emit: func(c engine.Collector, key tuple.Value, w window.Span, a *distinct) {
					out := c.Borrow()
					out.Stream = lrCountsID
					out.Values = append(out.Values, key, int64(len(a.seen)))
					out.Event = w.End
					c.Send(out)
				},
			})
		},
		"toll_notify": func() engine.Operator {
			lav := map[int64]float64{}
			cnt := map[int64]int64{}
			accident := map[int64]bool{}
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				switch t.Stream {
				case lrLasID:
					lav[t.Int(0)] = t.Float(1)
					emit(c, lrTollID, t.Values[0], 0.0) // statistics update notification
				case lrCountsID:
					cnt[t.Int(0)] = t.Int(1)
					emit(c, lrTollID, t.Values[0], 0.0)
				case lrDetectID:
					accident[t.Int(0)] = true
					// No toll is charged in accident segments; no
					// notification is emitted for the detect stream.
				default: // position report
					seg := t.Int(5)
					toll := 0.0
					if !accident[seg] && lav[seg] < 40 && cnt[seg] > 50 {
						base := float64(cnt[seg] - 50)
						toll = 2 * base * base / 100
					}
					emit(c, lrTollID, t.Values[1], toll)
				}
				return nil
			})
		},
		"accident_notify": func() engine.Operator {
			accidents := map[int64]bool{}
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				if t.Stream == lrDetectID {
					accidents[t.Int(0)] = true
					return nil
				}
				// Position report: notify vehicles entering a segment
				// with a known accident (rare).
				if seg := t.Int(5); accidents[seg] {
					emit(c, lrNotifyID, t.Values[1], seg)
				}
				return nil
			})
		},
		"daily_expen": func() engine.Operator {
			// Historical daily expenditure lookup: deterministic
			// pseudo-history keyed by vehicle.
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				v := t.Int(1)
				emit(c, tuple.DefaultStreamID, t.Values[1], float64((v*7919)%500)/10)
				return nil
			})
		},
		"account_balance": func() engine.Operator {
			balances := map[int64]float64{}
			return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
				v := t.Int(1)
				balances[v] += 0.5
				emit(c, tuple.DefaultStreamID, t.Values[1], balances[v])
				return nil
			})
		},
		"sink": sink,
	}
}
