//go:build !race

package apps

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
