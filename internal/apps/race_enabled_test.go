//go:build race

package apps

// raceEnabled reports that the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, so the exact-zero
// allocation guards are meaningless under it and skip themselves.
const raceEnabled = true
