package apps

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

var twSpoutSeq atomic.Int64

// TW parameters. The spout emits word mentions on a synthetic event
// clock with bursty per-word activity (a hot set rotates every
// twBurstLen events), so mentions of one word cluster into sessions.
// The sessionizer closes a word's session after twGap quiet event-ms;
// the ranker tallies closed sessions over tumbling twRankWindow spans
// and emits the top twK trending words per span.
// twGap sits between the hot-word mention interval (a hot word is
// mentioned every ~7 events while its burst lasts) and the background
// interval (any given word appears in the 20% background traffic every
// ~160 events), so hot bursts form multi-mention sessions while
// background mentions close as near-singletons.
const (
	twGap            = 64
	twRankWindow     = 4096
	twK              = 5
	twBurstLen       = 512
	twHotSet         = 6
	twWatermarkEvery = 32
)

// twRankedID is the interned output stream of the ranker.
var twRankedID = tuple.Intern("ranked")

// twSpout generates bursty word mentions; replayable like wcSpout (the
// hot-set rotation is part of the deterministic draw sequence, so
// SeekTo rebuilds it along with the random state). Words travel as
// pre-interned symbols.
type twSpout struct {
	seed int64
	r    *rand.Rand
	hot  []tuple.Sym
	word tuple.Sym
	et   int64
}

func newTWSpout(seed int64) *twSpout {
	s := &twSpout{seed: seed, r: rng(seed), hot: make([]tuple.Sym, twHotSet)}
	s.rotate()
	return s
}

func (s *twSpout) rotate() {
	for i := range s.hot {
		s.hot[i] = wcVocabSyms[s.r.Intn(len(wcVocabSyms))]
	}
}

func (s *twSpout) draw() {
	if s.et%twBurstLen == 0 {
		s.rotate() // new hot set: old words' sessions go quiet
	}
	if s.r.Intn(100) < 80 {
		s.word = s.hot[s.r.Intn(len(s.hot))] // bursty mention
	} else {
		s.word = wcVocabSyms[s.r.Intn(len(wcVocabSyms))]
	}
	s.et++
}

// Next implements engine.Spout.
func (s *twSpout) Next(c engine.Collector) error {
	s.draw()
	out := c.Borrow()
	out.AppendSym(s.word)
	out.Event = s.et
	c.Send(out)
	if s.et%twWatermarkEvery == 0 {
		c.EmitWatermark(s.et)
	}
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *twSpout) Offset() int64 { return s.et }

// SeekTo implements engine.ReplayableSpout.
func (s *twSpout) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: tw spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.et = 0
	s.rotate() // the constructor's initial rotation is part of the draw sequence
	for s.et < offset {
		s.draw()
	}
	return nil
}

// TrendingWords builds TW, the windowed addition to the benchmark
// suite: sessionized top-K trending words. Spout emits (word) mention
// events with bursty temporal locality; Sessionize groups each word's
// mentions into gap-separated session windows (fields-partitioned so a
// word always sessionizes on the same replica) and emits (word,
// mentions, start, end) per closed session; Rank tallies session
// intensity over tumbling event-time windows and emits the top-K
// (rank, word, mentions) per window (globally, so one replica sees all
// sessions); Sink counts results.
//
// TW is not part of the paper's four-app evaluation (All()); it ships
// as the window subsystem's benchmark and is included in Benchmarks()
// so `briskbench -bench-json` tracks the session/window path.
func TrendingWords() *App {
	g := graph.New("TW")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sessionize", Selectivity: map[string]float64{"default": 0.15}})
	mustNode(g, &graph.Node{Name: "rank", Selectivity: map[string]float64{"ranked": 0.01}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "sessionize", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "sessionize", To: "rank", Stream: "default", Partitioning: graph.Global})
	mustEdge(g, graph.Edge{From: "rank", To: "sink", Stream: "ranked"})

	return &App{
		Name:  "TW",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout { return newTWSpout(7000 + twSpoutSeq.Add(1)) },
		},
		Operators: map[string]func() engine.Operator{
			"sessionize": func() engine.Operator {
				type mentions struct{ n int64 }
				return window.NewSession(window.SessionOp[mentions]{
					KeyField: 0,
					Gap:      twGap,
					Init:     func(a *mentions) { a.n = 0 },
					Add:      func(a *mentions, t *tuple.Tuple) { a.n++ },
					Merge:    func(dst, src *mentions) { dst.n += src.n },
					Emit: func(c engine.Collector, key tuple.Key, w window.Span, a *mentions) {
						out := c.Borrow()
						out.AppendKey(key)
						out.AppendInt(a.n)
						out.AppendInt(w.Start)
						out.AppendInt(w.End)
						out.Event = w.End
						c.Send(out)
					},
					Save: func(enc *checkpoint.Encoder, a *mentions) { enc.Int64(a.n) },
					Load: func(dec *checkpoint.Decoder, a *mentions) error { a.n = dec.Int64(); return nil },
				})
			},
			"rank": func() engine.Operator {
				type entry struct {
					word     string
					mentions int64
				}
				type board struct{ items []entry }
				return window.New(window.Op[board]{
					KeyField: -1, // global: rank across all words
					Size:     twRankWindow,
					Init:     func(a *board) { a.items = a.items[:0] },
					Add: func(a *board, t *tuple.Tuple) {
						// The word is a symbol, so Str returns the stable
						// interned name — safe to keep in the accumulator
						// without cloning.
						a.items = append(a.items, entry{word: t.Str(0), mentions: t.Int(1)})
					},
					Save: func(enc *checkpoint.Encoder, a *board) {
						// Board entries are encoded in arrival order; the
						// ranker sorts at emit time, but byte-stability
						// needs a canonical order here too.
						sorted := slices.Clone(a.items)
						slices.SortFunc(sorted, func(x, y entry) int {
							if d := cmp.Compare(x.word, y.word); d != 0 {
								return d
							}
							return cmp.Compare(x.mentions, y.mentions)
						})
						enc.Len(len(sorted))
						for _, it := range sorted {
							enc.String(it.word)
							enc.Int64(it.mentions)
						}
					},
					Load: func(dec *checkpoint.Decoder, a *board) error {
						n := dec.Len()
						a.items = a.items[:0]
						for i := 0; i < n && dec.Err() == nil; i++ {
							a.items = append(a.items, entry{word: dec.String(), mentions: dec.Int64()})
						}
						return dec.Err()
					},
					Emit: func(c engine.Collector, _ tuple.Key, w window.Span, a *board) {
						// Sum a word's sessions within the span, then
						// rank by total mentions (ties by word).
						slices.SortFunc(a.items, func(x, y entry) int {
							switch {
							case x.word < y.word:
								return -1
							case x.word > y.word:
								return 1
							}
							return 0
						})
						merged := a.items[:0]
						for _, it := range a.items {
							if n := len(merged); n > 0 && merged[n-1].word == it.word {
								merged[n-1].mentions += it.mentions
							} else {
								merged = append(merged, it)
							}
						}
						slices.SortFunc(merged, func(x, y entry) int {
							switch {
							case x.mentions > y.mentions:
								return -1
							case x.mentions < y.mentions:
								return 1
							case x.word < y.word:
								return -1
							case x.word > y.word:
								return 1
							}
							return 0
						})
						for i, it := range merged {
							if i == twK {
								break
							}
							out := c.Borrow()
							out.Stream = twRankedID
							out.AppendInt(int64(i + 1))
							out.AppendSym(tuple.InternSym(it.word))
							out.AppendInt(it.mentions)
							out.Event = w.End
							c.Send(out)
						}
					},
				})
			},
			"sink": func() engine.Operator { return nopSink{} },
		},
		Schemas: map[string]map[string]*tuple.Schema{
			"spout": {"default": tuple.NewSchema(tuple.SymField("word"))},
			"sessionize": {"default": tuple.NewSchema(
				tuple.SymField("word"), tuple.IntField("mentions"),
				tuple.IntField("start"), tuple.IntField("end"))},
			"rank": {"ranked": tuple.NewSchema(
				tuple.IntField("rank"), tuple.SymField("word"), tuple.IntField("mentions"))},
		},
		// Session maintenance dominates; calibration is indicative (TW
		// has no paper reference row).
		Stats: profile.Set{
			"spout":      {Te: 600, M: 60, N: 30, Selectivity: map[string]float64{"default": 1}},
			"sessionize": {Te: 2400, M: 200, N: 30, Selectivity: map[string]float64{"default": 0.15}},
			"rank":       {Te: 1800, M: 160, N: 50, Selectivity: map[string]float64{"ranked": 0.01}},
			"sink":       {Te: 150, M: 60, N: 40, Selectivity: map[string]float64{}},
		},
	}
}
