package apps

import (
	"slices"
	"sync/atomic"

	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

var twSpoutSeq atomic.Int64

// TW parameters. The spout emits word mentions on a synthetic event
// clock with bursty per-word activity (a hot set rotates every
// twBurstLen events), so mentions of one word cluster into sessions.
// The sessionizer closes a word's session after twGap quiet event-ms;
// the ranker tallies closed sessions over tumbling twRankWindow spans
// and emits the top twK trending words per span.
// twGap sits between the hot-word mention interval (a hot word is
// mentioned every ~7 events while its burst lasts) and the background
// interval (any given word appears in the 20% background traffic every
// ~160 events), so hot bursts form multi-mention sessions while
// background mentions close as near-singletons.
const (
	twGap            = 64
	twRankWindow     = 4096
	twK              = 5
	twBurstLen       = 512
	twHotSet         = 6
	twWatermarkEvery = 32
)

// twRankedID is the interned output stream of the ranker.
var twRankedID = tuple.Intern("ranked")

// TrendingWords builds TW, the windowed addition to the benchmark
// suite: sessionized top-K trending words. Spout emits (word) mention
// events with bursty temporal locality; Sessionize groups each word's
// mentions into gap-separated session windows (fields-partitioned so a
// word always sessionizes on the same replica) and emits (word,
// mentions, start, end) per closed session; Rank tallies session
// intensity over tumbling event-time windows and emits the top-K
// (rank, word, mentions) per window (globally, so one replica sees all
// sessions); Sink counts results.
//
// TW is not part of the paper's four-app evaluation (All()); it ships
// as the window subsystem's benchmark and is included in Benchmarks()
// so `briskbench -bench-json` tracks the session/window path.
func TrendingWords() *App {
	g := graph.New("TW")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sessionize", Selectivity: map[string]float64{"default": 0.15}})
	mustNode(g, &graph.Node{Name: "rank", Selectivity: map[string]float64{"ranked": 0.01}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "sessionize", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "sessionize", To: "rank", Stream: "default", Partitioning: graph.Global})
	mustEdge(g, graph.Edge{From: "rank", To: "sink", Stream: "ranked"})

	return &App{
		Name:  "TW",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout {
				r := rng(7000 + twSpoutSeq.Add(1))
				et := int64(0)
				hot := make([]string, twHotSet)
				rotate := func() {
					for i := range hot {
						hot[i] = wcVocabulary[r.Intn(len(wcVocabulary))]
					}
				}
				rotate()
				return engine.SpoutFunc(func(c engine.Collector) error {
					if et%twBurstLen == 0 {
						rotate() // new hot set: old words' sessions go quiet
					}
					var word string
					if r.Intn(100) < 80 {
						word = hot[r.Intn(len(hot))] // bursty mention
					} else {
						word = wcVocabulary[r.Intn(len(wcVocabulary))]
					}
					et++
					out := c.Borrow()
					out.Values = append(out.Values, word)
					out.Event = et
					c.Send(out)
					if et%twWatermarkEvery == 0 {
						c.EmitWatermark(et)
					}
					return nil
				})
			},
		},
		Operators: map[string]func() engine.Operator{
			"sessionize": func() engine.Operator {
				type mentions struct{ n int64 }
				return window.NewSession(window.SessionOp[mentions]{
					KeyField: 0,
					Gap:      twGap,
					Init:     func(a *mentions) { a.n = 0 },
					Add:      func(a *mentions, t *tuple.Tuple) { a.n++ },
					Merge:    func(dst, src *mentions) { dst.n += src.n },
					Emit: func(c engine.Collector, key tuple.Value, w window.Span, a *mentions) {
						out := c.Borrow()
						out.Values = append(out.Values, key, a.n, w.Start, w.End)
						out.Event = w.End
						c.Send(out)
					},
				})
			},
			"rank": func() engine.Operator {
				type entry struct {
					word     string
					mentions int64
				}
				type board struct{ items []entry }
				return window.New(window.Op[board]{
					KeyField: -1, // global: rank across all words
					Size:     twRankWindow,
					Init:     func(a *board) { a.items = a.items[:0] },
					Add: func(a *board, t *tuple.Tuple) {
						a.items = append(a.items, entry{word: t.String(0), mentions: t.Int(1)})
					},
					Emit: func(c engine.Collector, _ tuple.Value, w window.Span, a *board) {
						// Sum a word's sessions within the span, then
						// rank by total mentions (ties by word).
						slices.SortFunc(a.items, func(x, y entry) int {
							switch {
							case x.word < y.word:
								return -1
							case x.word > y.word:
								return 1
							}
							return 0
						})
						merged := a.items[:0]
						for _, it := range a.items {
							if n := len(merged); n > 0 && merged[n-1].word == it.word {
								merged[n-1].mentions += it.mentions
							} else {
								merged = append(merged, it)
							}
						}
						slices.SortFunc(merged, func(x, y entry) int {
							switch {
							case x.mentions > y.mentions:
								return -1
							case x.mentions < y.mentions:
								return 1
							case x.word < y.word:
								return -1
							case x.word > y.word:
								return 1
							}
							return 0
						})
						for i, it := range merged {
							if i == twK {
								break
							}
							out := c.Borrow()
							out.Stream = twRankedID
							out.Values = append(out.Values, int64(i+1), it.word, it.mentions)
							out.Event = w.End
							c.Send(out)
						}
					},
				})
			},
			"sink": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
			},
		},
		// Session maintenance dominates; calibration is indicative (TW
		// has no paper reference row).
		Stats: profile.Set{
			"spout":      {Te: 600, M: 60, N: 30, Selectivity: map[string]float64{"default": 1}},
			"sessionize": {Te: 2400, M: 200, N: 30, Selectivity: map[string]float64{"default": 0.15}},
			"rank":       {Te: 1800, M: 160, N: 50, Selectivity: map[string]float64{"ranked": 0.01}},
			"sink":       {Te: 150, M: 60, N: 40, Selectivity: map[string]float64{}},
		},
	}
}
