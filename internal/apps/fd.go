package apps

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

var fdSpoutSeq atomic.Int64

// fdSpout generates transaction records; replayable like wcSpout (the
// stream is a pure function of (seed, offset)).
type fdSpout struct {
	seed   int64
	r      *rand.Rand
	entity string
	record string
	n      int64
}

func newFDSpout(seed int64) *fdSpout {
	return &fdSpout{seed: seed, r: rng(seed)}
}

func (s *fdSpout) draw() {
	s.entity = fmt.Sprintf("cust-%05d", s.r.Intn(10000))
	s.record = fmt.Sprintf("%s,%d,%d,%d,%d,%d,%d,%d",
		s.entity, s.r.Intn(100000), s.r.Intn(9999), s.r.Intn(100),
		s.r.Intn(24), s.r.Intn(60), s.r.Intn(2), s.r.Int63())
	s.n++
}

// Next implements engine.Spout.
func (s *fdSpout) Next(c engine.Collector) error {
	s.draw()
	emit(c, tuple.DefaultStreamID, s.entity, s.record)
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *fdSpout) Offset() int64 { return s.n }

// SeekTo implements engine.ReplayableSpout.
func (s *fdSpout) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: fd spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.n = 0
	for s.n < offset {
		s.draw()
	}
	return nil
}

// fdPredict scores records against per-entity transition state (last
// amount bucket seen) and snapshots that state, so FD recovers exactly:
// a replayed record meets the same per-entity history it met originally.
type fdPredict struct {
	last map[string]int64
}

// Process implements engine.Operator.
func (p *fdPredict) Process(c engine.Collector, t *tuple.Tuple) error {
	entity := t.String(0)
	record := t.String(1)
	// Score: a cheap stand-in for a Markov-model probability lookup —
	// bucket the record hash and compare with the entity's previous
	// bucket.
	var h int64
	for i := 0; i < len(record); i++ {
		h = h*31 + int64(record[i])
	}
	bucket := (h%97 + 97) % 97
	prev, seen := p.last[entity]
	p.last[entity] = bucket
	fraud := seen && (bucket-prev) > 80
	// A signal is emitted for every input tuple regardless of the
	// detection outcome.
	emit(c, tuple.DefaultStreamID, t.Values[0], fraud)
	return nil
}

// Snapshot implements checkpoint.Snapshotter (sorted keys: byte-stable).
func (p *fdPredict) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, p.last,
		func(e *checkpoint.Encoder, k string) { e.String(k) },
		func(e *checkpoint.Encoder, v int64) { e.Int64(v) })
	return nil
}

// Restore implements checkpoint.Snapshotter.
func (p *fdPredict) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, p.last,
		(*checkpoint.Decoder).String,
		(*checkpoint.Decoder).Int64)
}

// FraudDetection builds the FD application of Figure 18a: Spout emits
// credit-card transaction records; Parser extracts the entity id and the
// transaction record; Predict scores the record against a per-entity
// Markov-model-like state machine and emits a signal for every input
// tuple regardless of whether fraud is flagged (selectivity 1, Appendix
// B); Sink counts results.
//
// The transaction record is a multi-hundred-byte string, which makes FD
// communication-heavy: the paper observes that optimized LR/FD plans
// completely avoid cross-tray producer-consumer placements (Section 6.4).
func FraudDetection() *App {
	g := graph.New("FD")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "predict", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "predict", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "predict", To: "sink", Stream: "default"})

	return &App{
		Name:  "FD",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout { return newFDSpout(2000 + fdSpoutSeq.Add(1)) },
		},
		Operators: map[string]func() engine.Operator{
			"parser": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
					if len(t.Values) < 2 {
						return nil // drop malformed records
					}
					forward(c, t, tuple.DefaultStreamID)
					return nil
				})
			},
			"predict": func() engine.Operator {
				return &fdPredict{last: make(map[string]int64)}
			},
			"sink": func() engine.Operator {
				return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
			},
		},
		// Transaction records are ~250 B (4 cache lines); Predict pays a
		// model-lookup-dominated Te. Calibrated to land near the paper's
		// 7.2M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":   {Te: 1500, M: 500, N: 250, Selectivity: map[string]float64{"default": 1}},
			"parser":  {Te: 800, M: 500, N: 250, Selectivity: map[string]float64{"default": 1}},
			"predict": {Te: 11000, M: 700, N: 250, Selectivity: map[string]float64{"default": 1}},
			"sink":    {Te: 300, M: 60, N: 30, Selectivity: map[string]float64{}},
		},
	}
}
