package apps

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

var fdSpoutSeq atomic.Int64

// fdEntitySyms pre-interns the 10000 customer ids (a bounded entity
// population): the entity field travels as a symbol, so Predict's
// per-entity state keys on a stable interned name and the emit path
// never formats or copies the id.
var fdEntitySyms = func() []tuple.Sym {
	names := make([]string, 10000)
	for i := range names {
		names[i] = fmt.Sprintf("cust-%05d", i)
	}
	return tuple.InternSyms(names...)
}()

// fdSpout generates transaction records; replayable like wcSpout (the
// stream is a pure function of (seed, offset)). The multi-hundred-byte
// record is composed into a reusable buffer and carried as an arena
// string, so generation allocates nothing in steady state.
type fdSpout struct {
	seed   int64
	r      *rand.Rand
	entity tuple.Sym
	record []byte
	n      int64
}

func newFDSpout(seed int64) *fdSpout {
	return &fdSpout{seed: seed, r: rng(seed)}
}

func (s *fdSpout) draw() {
	s.entity = fdEntitySyms[s.r.Intn(len(fdEntitySyms))]
	b := append(s.record[:0], s.entity.Name()...)
	for _, v := range [...]int64{
		int64(s.r.Intn(100000)), int64(s.r.Intn(9999)), int64(s.r.Intn(100)),
		int64(s.r.Intn(24)), int64(s.r.Intn(60)), int64(s.r.Intn(2)), s.r.Int63(),
	} {
		b = append(b, ',')
		b = strconv.AppendInt(b, v, 10)
	}
	s.record = b
	s.n++
}

// Next implements engine.Spout.
func (s *fdSpout) Next(c engine.Collector) error {
	s.draw()
	out := c.Borrow()
	out.AppendSym(s.entity)
	out.AppendStrBytes(s.record)
	c.Send(out)
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *fdSpout) Offset() int64 { return s.n }

// SeekTo implements engine.ReplayableSpout.
func (s *fdSpout) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: fd spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.n = 0
	for s.n < offset {
		s.draw()
	}
	return nil
}

// fdPredict scores records against per-entity transition state (last
// amount bucket seen) and snapshots that state, so FD recovers exactly:
// a replayed record meets the same per-entity history it met originally.
type fdPredict struct {
	last map[string]int64
}

// Process implements engine.Operator.
func (p *fdPredict) Process(c engine.Collector, t *tuple.Tuple) error {
	// The entity is a symbol: Str returns the stable interned name, so
	// it is a safe map key without cloning. The record is an arena view,
	// only read within this call.
	entity := t.Str(0)
	record := t.Str(1)
	// Score: a cheap stand-in for a Markov-model probability lookup —
	// bucket the record hash and compare with the entity's previous
	// bucket.
	var h int64
	for i := 0; i < len(record); i++ {
		h = h*31 + int64(record[i])
	}
	bucket := (h%97 + 97) % 97
	prev, seen := p.last[entity]
	p.last[entity] = bucket
	fraud := seen && (bucket-prev) > 80
	// A signal is emitted for every input tuple regardless of the
	// detection outcome.
	out := c.Borrow()
	out.AppendSym(t.Sym(0))
	out.AppendBool(fraud)
	c.Send(out)
	return nil
}

// Snapshot implements checkpoint.Snapshotter (sorted keys: byte-stable).
func (p *fdPredict) Snapshot(enc *checkpoint.Encoder) error {
	checkpoint.SaveMapOrdered(enc, p.last,
		func(e *checkpoint.Encoder, k string) { e.String(k) },
		func(e *checkpoint.Encoder, v int64) { e.Int64(v) })
	return nil
}

// Restore implements checkpoint.Snapshotter.
func (p *fdPredict) Restore(dec *checkpoint.Decoder) error {
	return checkpoint.LoadMapOrdered(dec, p.last,
		(*checkpoint.Decoder).String,
		(*checkpoint.Decoder).Int64)
}

// FraudDetection builds the FD application of Figure 18a: Spout emits
// credit-card transaction records; Parser extracts the entity id and the
// transaction record; Predict scores the record against a per-entity
// Markov-model-like state machine and emits a signal for every input
// tuple regardless of whether fraud is flagged (selectivity 1, Appendix
// B); Sink counts results.
//
// The transaction record is a multi-hundred-byte string, which makes FD
// communication-heavy: the paper observes that optimized LR/FD plans
// completely avoid cross-tray producer-consumer placements (Section 6.4).
func FraudDetection() *App {
	g := graph.New("FD")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "predict", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "predict", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "predict", To: "sink", Stream: "default"})

	return &App{
		Name:  "FD",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout { return newFDSpout(2000 + fdSpoutSeq.Add(1)) },
		},
		Operators: map[string]func() engine.Operator{
			"parser": func() engine.Operator { return arityParser{min: 2} },
			"predict": func() engine.Operator {
				return &fdPredict{last: make(map[string]int64)}
			},
			"sink": func() engine.Operator { return nopSink{} },
		},
		Schemas: map[string]map[string]*tuple.Schema{
			"spout":   {"default": tuple.NewSchema(tuple.SymField("entity"), tuple.StrField("record"))},
			"parser":  {"default": tuple.NewSchema(tuple.SymField("entity"), tuple.StrField("record"))},
			"predict": {"default": tuple.NewSchema(tuple.SymField("entity"), tuple.BoolField("fraud"))},
		},
		// Transaction records are ~250 B (4 cache lines); Predict pays a
		// model-lookup-dominated Te. Calibrated to land near the paper's
		// 7.2M events/s on Server A (Table 4).
		Stats: profile.Set{
			"spout":   {Te: 1500, M: 500, N: 250, Selectivity: map[string]float64{"default": 1}},
			"parser":  {Te: 800, M: 500, N: 250, Selectivity: map[string]float64{"default": 1}},
			"predict": {Te: 11000, M: 700, N: 250, Selectivity: map[string]float64{"default": 1}},
			"sink":    {Te: 300, M: 60, N: 30, Selectivity: map[string]float64{}},
		},
	}
}
