package apps

// Batch/scalar equivalence: one bounded, deterministic topology run
// three ways — scalar path, columnar path (only batch-aware consumers
// get batches), and forced-columnar path (every edge carries batches,
// scalar consumers are fed through the engine's row adapter) — must
// deliver identical sink multisets. WC covers the vectorized
// filter/tokenize/window-count chain, TW the session/window operators
// that opt out of batches, FD the plain stateful path; together they
// pin the columnar dispatch, consume, punctuation-ordering and
// row-materialization semantics to the scalar baseline.

import (
	"testing"

	"briskstream/internal/engine"
)

func runBatchMode(t *testing.T, rc recoveryCase, mode func(cfg *engine.Config)) map[string]int64 {
	t.Helper()
	g, inner, operators, repl := rc.mk()
	sink := newRecordingSink()
	ops := make(map[string]func() engine.Operator, len(operators))
	for name, mk := range operators {
		ops[name] = mk
	}
	ops["sink"] = func() engine.Operator { return sink }
	repl["spout"] = 1
	cfg := engine.DefaultConfig()
	mode(&cfg)
	e, err := engine.New(engine.Topology{
		App:         g,
		Spouts:      map[string]func() engine.Spout{"spout": func() engine.Spout { return &limitSpout{inner: inner, limit: rc.limit} }},
		Operators:   ops,
		Replication: repl,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("run errors: %v", res.Errors)
	}
	return sink.got
}

func TestBatchScalarEquivalence(t *testing.T) {
	for _, rc := range recoveryCases() {
		t.Run(rc.name, func(t *testing.T) {
			scalar := runBatchMode(t, rc, func(cfg *engine.Config) { cfg.Columnar = false })
			columnar := runBatchMode(t, rc, func(cfg *engine.Config) { cfg.Columnar = true })
			if d := diffMultisets(scalar, columnar); d != "" {
				t.Fatalf("columnar output differs from scalar: %s", d)
			}
			forced := runBatchMode(t, rc, func(cfg *engine.Config) { cfg.Columnar = true; cfg.ColumnarAll = true })
			if d := diffMultisets(scalar, forced); d != "" {
				t.Fatalf("forced-columnar output differs from scalar: %s", d)
			}
		})
	}
}
