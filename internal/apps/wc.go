package apps

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/vec"
	"briskstream/internal/window"
)

// wcVocabulary is the word pool for generated sentences. Realistic word
// lengths matter: the sentence tuple spans multiple cache lines, which
// is why the Splitter's remote fetch enjoys a prefetch discount in
// Table 3 while the single-line Counter tuple does not.
var wcVocabulary = []string{
	"stream", "process", "socket", "memory", "tuple", "operator", "plan",
	"latency", "remote", "local", "numa", "core", "thread", "queue",
	"batch", "window", "shuffle", "branch", "bound", "model", "rate",
	"output", "input", "scale", "brisk", "storm", "flink", "graph",
	"vertex", "edge", "cache", "line",
}

// wcVocabSyms pre-interns the vocabulary: words are the canonical
// low-cardinality hot strings, so WC and TW route and count them as
// symbols — a 4-byte compare, no copy, no boxing.
var wcVocabSyms = tuple.InternSyms(wcVocabulary...)

// wcSpoutSeq gives each WC spout replica a distinct deterministic seed.
var wcSpoutSeq atomic.Int64

// WC event-time parameters: each sentence advances the synthetic event
// clock by one millisecond, the spout punctuates a watermark every
// wcWatermarkEvery sentences, and the counter aggregates per word over
// tumbling windows of wcWindow event-milliseconds.
const (
	wcWindow         = 1024
	wcWatermarkEvery = 64
)

// wcSpout generates ten-word sentences on the synthetic event clock. It
// is replayable: the stream is a pure function of (seed, offset), so
// SeekTo regenerates the random draws of the first n sentences and the
// replay emits exactly the sentences the original run emitted.
type wcSpout struct {
	seed  int64
	r     *rand.Rand
	words []string
	buf   []byte // reusable sentence buffer: Next emits without allocating
	et    int64
}

func newWCSpout(seed int64) *wcSpout {
	return &wcSpout{seed: seed, r: rng(seed), words: make([]string, 10)}
}

// draw advances the stream one sentence: fills the word buffer and
// ticks the event clock. It is the unit of replay.
func (s *wcSpout) draw() {
	for i := range s.words {
		s.words[i] = wcVocabulary[s.r.Intn(len(wcVocabulary))]
	}
	s.et++
}

// Next implements engine.Spout.
func (s *wcSpout) Next(c engine.Collector) error {
	s.draw()
	s.buf = s.buf[:0]
	for i, w := range s.words {
		if i > 0 {
			s.buf = append(s.buf, ' ')
		}
		s.buf = append(s.buf, w...)
	}
	out := c.Borrow()
	out.AppendStrBytes(s.buf)
	out.Event = s.et
	c.Send(out)
	if s.et%wcWatermarkEvery == 0 {
		// Events are in order, so the last emitted event time is a
		// sound low watermark.
		c.EmitWatermark(s.et)
	}
	return nil
}

// Offset implements engine.ReplayableSpout.
func (s *wcSpout) Offset() int64 { return s.et }

// SeekTo implements engine.ReplayableSpout by regenerating the stream
// prefix, leaving the random state exactly where the original run's
// offset-th sentence left it.
func (s *wcSpout) SeekTo(offset int64) error {
	if offset < 0 {
		return fmt.Errorf("apps: wc spout seek to %d", offset)
	}
	s.r = rng(s.seed)
	s.et = 0
	for s.et < offset {
		s.draw()
	}
	return nil
}

// wcParser drops invalid (empty) sentences, selectivity 1 on this
// workload. The batch path runs a selection-vector filter: one pass
// marks the surviving rows, one pass forwards them — dropped rows are
// never materialized.
type wcParser struct{}

func (wcParser) Process(c engine.Collector, t *tuple.Tuple) error {
	if len(t.Str(0)) == 0 {
		return nil // drop invalid tuples
	}
	forward(c, t, tuple.DefaultStreamID)
	return nil
}

func (wcParser) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	sel := vec.SelectStrNonEmpty(b, 0, b.SelScratch())
	vec.ForwardSel(c, b, sel, tuple.DefaultStreamID)
	return nil
}

// wcSplitter tokenizes each sentence in place and emits every word as
// an interned symbol: no strings.Fields slice, no per-word boxing — the
// whole split path is allocation-free. The batch path reads the
// sentence column straight out of the shared arena (one contiguous
// byte run per batch) and stamps each word with its source row's
// metadata.
type wcSplitter struct{}

func (wcSplitter) Process(c engine.Collector, t *tuple.Tuple) error {
	sentence := t.Str(0)
	for i := 0; i < len(sentence); {
		for i < len(sentence) && sentence[i] == ' ' {
			i++
		}
		start := i
		for i < len(sentence) && sentence[i] != ' ' {
			i++
		}
		if i == start {
			continue
		}
		out := c.Borrow()
		out.AppendSym(tuple.InternSym(sentence[start:i]))
		c.Send(out)
	}
	return nil
}

func (wcSplitter) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	n := b.Len()
	for r := 0; r < n; r++ {
		sentence := b.Str(0, r)
		for i := 0; i < len(sentence); {
			for i < len(sentence) && sentence[i] == ' ' {
				i++
			}
			start := i
			for i < len(sentence) && sentence[i] != ' ' {
				i++
			}
			if i == start {
				continue
			}
			out := c.Borrow()
			out.AppendSym(tuple.InternSym(sentence[start:i]))
			b.StampMeta(r, out)
			c.Send(out)
		}
	}
	return nil
}

// WordCount builds the WC application of Figure 2: Spout emits sentences
// of ten random words (stamped with a synthetic event time and
// punctuated with watermarks); Parser drops invalid tuples (selectivity
// 1 on this workload); Splitter splits each sentence into words
// (selectivity 10); Counter aggregates occurrences per word over
// tumbling event-time windows (fields-partitioned so one word is always
// counted by the same replica) and emits (word, count) per closed
// window; Sink counts results.
//
// The declared graph/model statistics keep the paper's calibration (a
// per-word running count, selectivity 1): the performance model
// reproduces Table 3/4 as published, while the executable counter
// demonstrates the windowed path on the same topology shape.
func WordCount() *App {
	g := graph.New("WC")
	mustNode(g, &graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "splitter", Selectivity: map[string]float64{"default": 10}})
	mustNode(g, &graph.Node{Name: "counter", Selectivity: map[string]float64{"default": 1}})
	mustNode(g, &graph.Node{Name: "sink", IsSink: true})
	mustEdge(g, graph.Edge{From: "spout", To: "parser", Stream: "default"})
	mustEdge(g, graph.Edge{From: "parser", To: "splitter", Stream: "default"})
	mustEdge(g, graph.Edge{From: "splitter", To: "counter", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	mustEdge(g, graph.Edge{From: "counter", To: "sink", Stream: "default"})

	return &App{
		Name:  "WC",
		Graph: mustValid(g),
		Spouts: map[string]func() engine.Spout{
			"spout": func() engine.Spout { return newWCSpout(1000 + wcSpoutSeq.Add(1)) },
		},
		Operators: map[string]func() engine.Operator{
			"parser":   func() engine.Operator { return wcParser{} },
			"splitter": func() engine.Operator { return wcSplitter{} },
			"counter": func() engine.Operator {
				type count struct{ n int64 }
				return window.New(window.Op[count]{
					KeyField: 0,
					Size:     wcWindow,
					Init:     func(a *count) { a.n = 0 },
					Add:      func(a *count, t *tuple.Tuple) { a.n++ },
					AddRow:   func(a *count, b *tuple.Batch, r int) { a.n++ },
					Merge:    func(a *count, p *count) { a.n += p.n },
					Emit: func(c engine.Collector, key tuple.Key, w window.Span, a *count) {
						out := c.Borrow()
						out.AppendKey(key)
						out.AppendInt(a.n)
						out.Event = w.End
						c.Send(out)
					},
					Save: func(enc *checkpoint.Encoder, a *count) { enc.Int64(a.n) },
					Load: func(dec *checkpoint.Decoder, a *count) error { a.n = dec.Int64(); return nil },
				})
			},
			"sink": func() engine.Operator { return nopSink{} },
		},
		Schemas: map[string]map[string]*tuple.Schema{
			"spout":    {"default": tuple.NewSchema(tuple.StrField("sentence"))},
			"parser":   {"default": tuple.NewSchema(tuple.StrField("sentence"))},
			"splitter": {"default": tuple.NewSchema(tuple.SymField("word"))},
			"counter":  {"default": tuple.NewSchema(tuple.SymField("word"), tuple.IntField("count"))},
		},
		// Calibration: Splitter and Counter Te are the paper's measured
		// local values (Table 3: 1612.8 and 612.3 ns/tuple). Sentence
		// tuples are ~70 B (multi-line), word tuples ~16 B (single
		// line). With these statistics RLAS on Server A lands near the
		// paper's 96.4M events/s (Table 4).
		Stats: profile.Set{
			"spout":    {Te: 450, M: 140, N: 70, Selectivity: map[string]float64{"default": 1}},
			"parser":   {Te: 350, M: 140, N: 70, Selectivity: map[string]float64{"default": 1}},
			"splitter": {Te: 1612.8, M: 300, N: 70, Selectivity: map[string]float64{"default": 10}},
			"counter":  {Te: 612.3, M: 80, N: 16, Selectivity: map[string]float64{"default": 1}},
			"sink":     {Te: 100, M: 48, N: 24, Selectivity: map[string]float64{}},
		},
	}
}
