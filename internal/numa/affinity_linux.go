//go:build linux

package numa

import (
	"fmt"
	"syscall"
	"unsafe"
)

// cpuSetWords sizes the affinity mask at 1024 CPUs (the kernel's
// conventional CPU_SETSIZE), in 64-bit words.
const cpuSetWords = 1024 / 64

type cpuSet [cpuSetWords]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < cpuSetWords*64 {
		s[cpu/64] |= 1 << (uint(cpu) % 64)
	}
}

func (s *cpuSet) list() []int {
	var cpus []int
	for w, word := range s {
		for b := 0; word != 0; b++ {
			if word&1 != 0 {
				cpus = append(cpus, w*64+b)
			}
			word >>= 1
		}
	}
	return cpus
}

// PinSupported reports whether thread CPU affinity works here.
func PinSupported() bool { return true }

// Affinity returns the CPU set the calling thread may run on. Callers
// that pin must be on a locked OS thread (runtime.LockOSThread), or the
// result describes an arbitrary thread.
func Affinity() ([]int, error) {
	var s cpuSet
	// tid 0 = the calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(unsafe.Sizeof(s)), uintptr(unsafe.Pointer(&s)))
	if errno != 0 {
		return nil, fmt.Errorf("numa: sched_getaffinity: %w", errno)
	}
	return s.list(), nil
}

// SetAffinity binds the calling thread to the given CPU set. The caller
// must hold runtime.LockOSThread for the binding to stay with its
// goroutine, and should restore the previous mask (from Affinity)
// before unlocking, so the thread returns clean to the runtime's pool.
func SetAffinity(cpus []int) error {
	if len(cpus) == 0 {
		return fmt.Errorf("numa: empty CPU set")
	}
	var s cpuSet
	for _, c := range cpus {
		s.set(c)
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(s)), uintptr(unsafe.Pointer(&s)))
	if errno != 0 {
		return fmt.Errorf("numa: sched_setaffinity(%v): %w", cpus, errno)
	}
	return nil
}
