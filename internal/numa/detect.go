package numa

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Host is the physical NUMA topology of the machine the process runs
// on, as opposed to Machine, which is the performance model's abstract
// descriptor. Host knows which CPUs belong to which socket — what
// thread pinning needs — and can derive a Machine for the optimizer
// when none of the paper's calibrated servers applies.
type Host struct {
	// Name labels the probe source ("sysfs" or "fallback").
	Name string
	// Sockets lists the NUMA nodes in node-id order.
	Sockets []HostSocket
	// distance holds one sysfs distance row per entry of Sockets (nil
	// when the probe found none). Row columns are indexed by kernel
	// node id — nodeIDs maps a socket index back to its node id, since
	// memory-only nodes are skipped but still occupy a column.
	distance [][]int
	nodeIDs  []int
}

// HostSocket is one NUMA node: its socket id and the CPUs it owns.
type HostSocket struct {
	ID   SocketID
	CPUs []int
}

// NumCPU is the total CPU count across all sockets.
func (h *Host) NumCPU() int {
	n := 0
	for _, s := range h.Sockets {
		n += len(s.CPUs)
	}
	return n
}

// CPUsOf returns the CPU set of a socket; socket ids beyond the host's
// range wrap around, so placements computed for a larger machine map
// onto whatever hardware is present.
func (h *Host) CPUsOf(s SocketID) []int {
	if len(h.Sockets) == 0 {
		return nil
	}
	i := int(s) % len(h.Sockets)
	if i < 0 {
		i = 0
	}
	return h.Sockets[i].CPUs
}

// String renders a short human-readable summary.
func (h *Host) String() string {
	return fmt.Sprintf("host (%s): %d sockets, %d CPUs", h.Name, len(h.Sockets), h.NumCPU())
}

// detectOnce caches the sysfs probe: topology cannot change while the
// process runs, and DetectHost is called on engine construction.
var detectOnce = sync.OnceValue(detectHost)

// DetectHost probes the NUMA topology of this machine from
// /sys/devices/system/node (Linux). Where that is unreadable — other
// OSes, restricted containers — it falls back to a single synthetic
// socket owning all CPUs, so callers never need a platform branch. The
// result is cached for the process lifetime.
func DetectHost() *Host {
	return detectOnce()
}

const sysNodePath = "/sys/devices/system/node"

func detectHost() *Host {
	entries, err := os.ReadDir(sysNodePath)
	if err != nil {
		return fallbackHost()
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return fallbackHost()
	}
	sort.Ints(ids)
	h := &Host{Name: "sysfs"}
	for _, id := range ids {
		dir := filepath.Join(sysNodePath, fmt.Sprintf("node%d", id))
		raw, err := os.ReadFile(filepath.Join(dir, "cpulist"))
		if err != nil {
			return fallbackHost()
		}
		cpus, err := ParseCPUList(strings.TrimSpace(string(raw)))
		if err != nil {
			return fallbackHost()
		}
		if len(cpus) == 0 {
			continue // memory-only node: nothing to pin to
		}
		sock := HostSocket{ID: SocketID(len(h.Sockets)), CPUs: cpus}
		h.Sockets = append(h.Sockets, sock)
		h.nodeIDs = append(h.nodeIDs, id)
		if row, err := parseDistance(filepath.Join(dir, "distance")); err == nil {
			h.distance = append(h.distance, row)
		}
	}
	if len(h.Sockets) == 0 {
		return fallbackHost()
	}
	// The distance matrix is only usable if every populated node
	// contributed a row wide enough to cover every populated node's
	// column (columns are in kernel node-id space).
	maxID := h.nodeIDs[len(h.nodeIDs)-1]
	if len(h.distance) != len(h.Sockets) {
		h.distance = nil
	} else {
		for _, row := range h.distance {
			if len(row) <= maxID {
				h.distance = nil
				break
			}
		}
	}
	return h
}

// fallbackHost is the portable single-socket topology: all CPUs on one
// synthetic node.
func fallbackHost() *Host {
	cpus := make([]int, runtime.NumCPU())
	for i := range cpus {
		cpus[i] = i
	}
	return &Host{
		Name:     "fallback",
		Sockets:  []HostSocket{{ID: 0, CPUs: cpus}},
		distance: [][]int{{10}},
		nodeIDs:  []int{0},
	}
}

// ParseCPUList parses the kernel's cpulist format: comma-separated
// entries that are either single CPU numbers or inclusive ranges, e.g.
// "0-3,8-11" or "0,2,4". An empty string is an empty (memory-only) set.
func ParseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("numa: bad cpulist entry %q", part)
		}
		b := a
		if found {
			if b, err = strconv.Atoi(hi); err != nil || b < a {
				return nil, fmt.Errorf("numa: bad cpulist range %q", part)
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus, nil
}

// parseDistance parses one node's sysfs distance row ("10 21 21 ...").
func parseDistance(path string) ([]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(raw))
	row := make([]int, 0, len(fields))
	for _, f := range fields {
		d, err := strconv.Atoi(f)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("numa: bad distance %q in %s", f, path)
		}
		row = append(row, d)
	}
	return row, nil
}

// nsPerDistanceUnit scales a sysfs distance (local = 10 by convention)
// into the model's nanosecond latency: distance 10 maps to the 50 ns
// local latency both paper servers report.
const nsPerDistanceUnit = 5.0

// Machine derives a performance-model descriptor for this host: compute
// capacity from the CPU counts, latencies scaled from the sysfs
// distance matrix when present, and bandwidths degrading with the same
// ratios. It is the optimization target rlas/the autoscaler use when no
// calibrated paper server is requested; the result always passes
// Validate.
// minModelCores floors the modeled CoresPerSocket. The optimizer
// treats CoresPerSocket as placement slots — one executor each — so a
// small host (a 1-CPU container, say) would make every multi-vertex
// graph infeasible, when in reality the Go runtime timeshares
// goroutines over however many CPUs exist. The paper's calibrated
// servers carry 24–36 slots per socket; flooring keeps plans from
// tiny hosts feasible, and over-provisioning relative to the physical
// box is already the status quo when targeting those models.
const minModelCores = 16

func (h *Host) Machine() *Machine {
	n := len(h.Sockets)
	if n == 0 {
		return Uniform("host", 1, max(runtime.NumCPU(), minModelCores))
	}
	phys := 0
	for _, s := range h.Sockets {
		phys = max(phys, len(s.CPUs))
	}
	cores := max(phys, minModelCores)
	const localBW = 20 * GB
	m := &Machine{
		Name:            fmt.Sprintf("host (%d sockets x %d cpus)", n, max(phys, 1)),
		Sockets:         n,
		CoresPerSocket:  cores,
		ClockGHz:        2.0,
		CyclesPerSocket: float64(cores) * 1e9,
		LocalBandwidth:  localBW,
		Latency:         make([][]float64, n),
		Bandwidth:       make([][]float64, n),
		TrayOf:          twoTrays(n),
	}
	for i := 0; i < n; i++ {
		m.Latency[i] = make([]float64, n)
		m.Bandwidth[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d := h.distanceOf(i, j)
			m.Latency[i][j] = float64(d) * nsPerDistanceUnit
			// Bandwidth degrades inversely with distance relative to local.
			m.Bandwidth[i][j] = localBW * 10 / float64(d)
		}
	}
	if err := m.Validate(); err != nil {
		// A malformed sysfs matrix (asymmetric, remote < local) falls
		// back to the no-NUMA-effect model rather than failing callers.
		u := Uniform(m.Name, n, cores)
		return u
	}
	return m
}

// distanceOf reads the symmetrized sysfs distance for a socket pair,
// defaulting to the 10/21 local/remote convention without a matrix.
func (h *Host) distanceOf(i, j int) int {
	if i == j {
		return 10
	}
	if h.distance != nil {
		// Symmetrize with the max so Validate's symmetric-latency check
		// holds even if the kernel reports lopsided distances.
		return max(h.distance[i][h.nodeIDs[j]], h.distance[j][h.nodeIDs[i]])
	}
	return 21
}
