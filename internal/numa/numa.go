// Package numa describes shared-memory multi-socket (NUMA) machines.
//
// Everything RLAS needs to know about a machine is captured by the
// Machine descriptor: per-socket compute capacity C, local DRAM
// bandwidth B, the remote channel bandwidth matrix Q(i,j), the worst-case
// memory access latency matrix L(i,j) and the cache line size S
// (Table 1 of the BriskStream paper). The package ships descriptors for
// the two eight-socket servers evaluated in the paper (Table 2) and a
// constructor for synthetic machines used in parameter sweeps.
package numa

import (
	"fmt"
	"strings"
)

// CacheLineSize is S in the paper's model: the granularity of a remote
// memory transfer, in bytes.
const CacheLineSize = 64

// SocketID identifies a CPU socket on a machine.
type SocketID int

// Machine describes a NUMA machine in exactly the terms the BriskStream
// performance model consumes. All latencies are in nanoseconds, all
// bandwidths in bytes per second, and compute capacity in nanoseconds of
// CPU time available per wall-clock second per socket (i.e. cores x 1e9,
// scaled by relative clock speed when comparing machines).
type Machine struct {
	// Name labels the machine in reports (e.g. "Server A").
	Name string
	// Sockets is the number of CPU sockets.
	Sockets int
	// CoresPerSocket is the number of physical cores per socket
	// (hyper-threading disabled, as in the paper).
	CoresPerSocket int
	// ClockGHz is the nominal core frequency in GHz.
	ClockGHz float64
	// CyclesPerSocket is C: attainable CPU nanoseconds per second per
	// socket. A socket with k cores supplies k*1e9 ns of CPU time per
	// second; operators' Te is expressed in (frequency-normalized)
	// nanoseconds, so C already folds in the clock rate.
	CyclesPerSocket float64
	// LocalBandwidth is B: maximum attainable local DRAM bandwidth of one
	// socket, bytes/sec.
	LocalBandwidth float64
	// Latency is L(i,j): worst-case memory access latency from socket i
	// to socket j in nanoseconds. Latency[i][i] is the local latency.
	Latency [][]float64
	// Bandwidth is Q(i,j): maximum attainable remote channel bandwidth
	// from socket i to socket j, bytes/sec. Bandwidth[i][i] is B.
	Bandwidth [][]float64
	// TrayOf maps a socket to its CPU tray (0 = upper, 1 = lower). Both
	// paper servers have two trays of four sockets; crossing the tray
	// boundary is the expensive "max hops" case.
	TrayOf []int
}

// GB is one gigabyte per second, the unit Table 2 uses for bandwidth.
const GB = 1e9

// Validate checks internal consistency of the descriptor.
func (m *Machine) Validate() error {
	if m.Sockets <= 0 {
		return fmt.Errorf("numa: machine %q has %d sockets", m.Name, m.Sockets)
	}
	if m.CoresPerSocket <= 0 {
		return fmt.Errorf("numa: machine %q has %d cores per socket", m.Name, m.CoresPerSocket)
	}
	if len(m.Latency) != m.Sockets || len(m.Bandwidth) != m.Sockets {
		return fmt.Errorf("numa: machine %q matrix dimensions do not match %d sockets", m.Name, m.Sockets)
	}
	for i := 0; i < m.Sockets; i++ {
		if len(m.Latency[i]) != m.Sockets || len(m.Bandwidth[i]) != m.Sockets {
			return fmt.Errorf("numa: machine %q row %d has wrong width", m.Name, i)
		}
		for j := 0; j < m.Sockets; j++ {
			if m.Latency[i][j] <= 0 {
				return fmt.Errorf("numa: machine %q latency[%d][%d] = %v", m.Name, i, j, m.Latency[i][j])
			}
			if m.Bandwidth[i][j] <= 0 {
				return fmt.Errorf("numa: machine %q bandwidth[%d][%d] = %v", m.Name, i, j, m.Bandwidth[i][j])
			}
			if m.Latency[i][j] != m.Latency[j][i] {
				return fmt.Errorf("numa: machine %q latency matrix not symmetric at (%d,%d)", m.Name, i, j)
			}
		}
		if m.Latency[i][i] > m.Latency[i][(i+1)%m.Sockets] && m.Sockets > 1 {
			return fmt.Errorf("numa: machine %q local latency exceeds remote", m.Name)
		}
	}
	if len(m.TrayOf) != m.Sockets {
		return fmt.Errorf("numa: machine %q TrayOf has %d entries", m.Name, len(m.TrayOf))
	}
	if m.CyclesPerSocket <= 0 || m.LocalBandwidth <= 0 {
		return fmt.Errorf("numa: machine %q has non-positive capacity", m.Name)
	}
	return nil
}

// TotalCores is the machine-wide core count.
func (m *Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// SameTray reports whether two sockets share a CPU tray.
func (m *Machine) SameTray(i, j SocketID) bool { return m.TrayOf[i] == m.TrayOf[j] }

// Local reports whether i and j are the same socket.
func (m *Machine) Local(i, j SocketID) bool { return i == j }

// L returns the worst-case memory access latency from socket i to j (ns).
func (m *Machine) L(i, j SocketID) float64 { return m.Latency[i][j] }

// Q returns the attainable channel bandwidth from socket i to j (bytes/s).
func (m *Machine) Q(i, j SocketID) float64 { return m.Bandwidth[i][j] }

// Hops classifies the NUMA distance between two sockets: 0 for local,
// 1 within a tray and 2 across trays. The paper's Table 2 reports exactly
// these three latency classes for both servers.
func (m *Machine) Hops(i, j SocketID) int {
	switch {
	case i == j:
		return 0
	case m.SameTray(i, j):
		return 1
	default:
		return 2
	}
}

// FetchCost is the paper's Formula 2: the per-tuple remote fetch time in
// nanoseconds for a tuple of n bytes moved from socket i to socket j.
// Collocated operators pay nothing extra (the local fetch is already part
// of Te).
func (m *Machine) FetchCost(n int, i, j SocketID) float64 {
	if i == j {
		return 0
	}
	lines := (n + CacheLineSize - 1) / CacheLineSize
	return float64(lines) * m.Latency[i][j]
}

// Restrict returns a copy of the machine with only the first n sockets
// enabled. It is used by the scalability experiments (Figure 9) which
// enable 1, 2, 4 and 8 sockets.
func (m *Machine) Restrict(n int) (*Machine, error) {
	if n <= 0 || n > m.Sockets {
		return nil, fmt.Errorf("numa: cannot restrict %q to %d sockets", m.Name, n)
	}
	r := &Machine{
		Name:            fmt.Sprintf("%s[%d sockets]", m.Name, n),
		Sockets:         n,
		CoresPerSocket:  m.CoresPerSocket,
		ClockGHz:        m.ClockGHz,
		CyclesPerSocket: m.CyclesPerSocket,
		LocalBandwidth:  m.LocalBandwidth,
		Latency:         make([][]float64, n),
		Bandwidth:       make([][]float64, n),
		TrayOf:          append([]int(nil), m.TrayOf[:n]...),
	}
	for i := 0; i < n; i++ {
		r.Latency[i] = append([]float64(nil), m.Latency[i][:n]...)
		r.Bandwidth[i] = append([]float64(nil), m.Bandwidth[i][:n]...)
	}
	return r, nil
}

// String renders a short human-readable summary.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d sockets x %d cores @ %.2f GHz, local B/W %.1f GB/s",
		m.Name, m.Sockets, m.CoresPerSocket, m.ClockGHz, m.LocalBandwidth/GB)
	return b.String()
}

// matrix builds a Sockets x Sockets matrix where the value for a pair of
// sockets is chosen by NUMA distance class: local, one hop (same tray) or
// max hops (cross tray).
func matrix(sockets int, trayOf []int, local, oneHop, maxHops float64) [][]float64 {
	m := make([][]float64, sockets)
	for i := range m {
		m[i] = make([]float64, sockets)
		for j := range m[i] {
			switch {
			case i == j:
				m[i][j] = local
			case trayOf[i] == trayOf[j]:
				m[i][j] = oneHop
			default:
				m[i][j] = maxHops
			}
		}
	}
	return m
}

func twoTrays(sockets int) []int {
	t := make([]int, sockets)
	for i := range t {
		if i >= (sockets+1)/2 {
			t[i] = 1
		}
	}
	return t
}

// ServerA returns the HUAWEI KunLun descriptor from Table 2: a glue-less
// eight-socket machine (8 x 18-core Xeon E7-8890 at 1.2 GHz). Remote
// bandwidth degrades sharply with NUMA distance (13.2 GB/s one hop,
// 5.8 GB/s across trays).
func ServerA() *Machine {
	trays := twoTrays(8)
	m := &Machine{
		Name:            "Server A (HUAWEI KunLun)",
		Sockets:         8,
		CoresPerSocket:  18,
		ClockGHz:        1.2,
		CyclesPerSocket: 18 * 1e9,
		LocalBandwidth:  54.3 * GB,
		Latency:         matrix(8, trays, 50, 307.7, 548.0),
		Bandwidth:       matrix(8, trays, 54.3*GB, 13.2*GB, 5.8*GB),
		TrayOf:          trays,
	}
	return m
}

// ServerB returns the HP ProLiant DL980 G7 descriptor from Table 2: a
// glue-assisted (XNC node controller) eight-socket machine (8 x 8-core
// Xeon E7-2860 at 2.27 GHz). Thanks to the XNC, remote bandwidth is nearly
// uniform regardless of distance (10.6 vs 10.8 GB/s), though latency still
// grows across trays.
func ServerB() *Machine {
	trays := twoTrays(8)
	m := &Machine{
		Name:           "Server B (HP ProLiant DL980 G7)",
		Sockets:        8,
		CoresPerSocket: 8,
		ClockGHz:       2.27,
		// Server B cores are ~1.89x faster per core than Server A's
		// power-saving 1.2 GHz parts; Te statistics are profiled on
		// Server A, so Server B's effective capacity per socket is
		// scaled by the clock ratio.
		CyclesPerSocket: 8 * 1e9 * (2.27 / 1.2),
		LocalBandwidth:  24.2 * GB,
		Latency:         matrix(8, trays, 50, 185.2, 349.6),
		Bandwidth:       matrix(8, trays, 24.2*GB, 10.6*GB, 10.8*GB),
		TrayOf:          trays,
	}
	return m
}

// Synthetic builds a two-tray machine with the given shape for sweeps and
// tests. Latencies and bandwidths interpolate between the two paper
// servers' characteristics.
func Synthetic(name string, sockets, coresPerSocket int, localLat, hopLat, maxLat, localBW, hopBW, maxBW float64) *Machine {
	trays := twoTrays(sockets)
	return &Machine{
		Name:            name,
		Sockets:         sockets,
		CoresPerSocket:  coresPerSocket,
		ClockGHz:        2.0,
		CyclesPerSocket: float64(coresPerSocket) * 1e9,
		LocalBandwidth:  localBW,
		Latency:         matrix(sockets, trays, localLat, hopLat, maxLat),
		Bandwidth:       matrix(sockets, trays, localBW, hopBW, maxBW),
		TrayOf:          trays,
	}
}

// Uniform builds a machine with no NUMA effect: remote access costs the
// same as local. Used to isolate the contribution of NUMA awareness in
// ablation tests.
func Uniform(name string, sockets, coresPerSocket int) *Machine {
	return Synthetic(name, sockets, coresPerSocket, 50, 50, 50, 50*GB, 50*GB, 50*GB)
}
