package numa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestServerAMatchesTable2(t *testing.T) {
	a := ServerA()
	if err := a.Validate(); err != nil {
		t.Fatalf("ServerA invalid: %v", err)
	}
	if a.Sockets != 8 || a.CoresPerSocket != 18 {
		t.Fatalf("ServerA shape = %dx%d, want 8x18", a.Sockets, a.CoresPerSocket)
	}
	if got := a.TotalCores(); got != 144 {
		t.Fatalf("ServerA TotalCores = %d, want 144", got)
	}
	if got := a.L(0, 0); got != 50 {
		t.Errorf("local latency = %v, want 50", got)
	}
	if got := a.L(0, 1); got != 307.7 {
		t.Errorf("1-hop latency = %v, want 307.7", got)
	}
	if got := a.L(0, 4); got != 548.0 {
		t.Errorf("max-hop latency = %v, want 548.0", got)
	}
	if got := a.Q(0, 1); got != 13.2*GB {
		t.Errorf("1-hop bandwidth = %v, want 13.2 GB/s", got)
	}
	if got := a.Q(0, 7); got != 5.8*GB {
		t.Errorf("max-hop bandwidth = %v, want 5.8 GB/s", got)
	}
}

func TestServerBMatchesTable2(t *testing.T) {
	b := ServerB()
	if err := b.Validate(); err != nil {
		t.Fatalf("ServerB invalid: %v", err)
	}
	if b.Sockets != 8 || b.CoresPerSocket != 8 {
		t.Fatalf("ServerB shape = %dx%d, want 8x8", b.Sockets, b.CoresPerSocket)
	}
	if got := b.L(0, 1); got != 185.2 {
		t.Errorf("1-hop latency = %v, want 185.2", got)
	}
	if got := b.L(0, 4); got != 349.6 {
		t.Errorf("max-hop latency = %v, want 349.6", got)
	}
	// The XNC makes remote bandwidth nearly uniform (second takeaway of
	// Table 2): max-hop bandwidth is not lower than 1-hop bandwidth.
	if b.Q(0, 4) < b.Q(0, 1) {
		t.Errorf("ServerB cross-tray bandwidth %v < in-tray %v; XNC should equalize", b.Q(0, 4), b.Q(0, 1))
	}
}

func TestHopsClassification(t *testing.T) {
	a := ServerA()
	tests := []struct {
		i, j SocketID
		want int
	}{
		{0, 0, 0}, {3, 3, 0},
		{0, 1, 1}, {0, 3, 1}, {1, 2, 1},
		{4, 7, 1}, {5, 6, 1},
		{0, 4, 2}, {3, 4, 2}, {0, 7, 2}, {2, 5, 2},
	}
	for _, tc := range tests {
		if got := a.Hops(tc.i, tc.j); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestFetchCostFormula2(t *testing.T) {
	a := ServerA()
	// Collocated: free.
	if got := a.FetchCost(1024, 2, 2); got != 0 {
		t.Errorf("collocated fetch cost = %v, want 0", got)
	}
	// One cache line remote, one hop.
	if got := a.FetchCost(1, 0, 1); got != 307.7 {
		t.Errorf("1-byte 1-hop fetch = %v, want 307.7", got)
	}
	// 65 bytes => 2 cache lines.
	if got := a.FetchCost(65, 0, 1); got != 2*307.7 {
		t.Errorf("65-byte 1-hop fetch = %v, want %v", got, 2*307.7)
	}
	// Cross-tray costs more than in-tray for the same size.
	if a.FetchCost(128, 0, 4) <= a.FetchCost(128, 0, 1) {
		t.Errorf("cross-tray fetch should exceed in-tray fetch")
	}
}

// Property: fetch cost is monotonically non-decreasing in tuple size and
// in NUMA distance class.
func TestFetchCostMonotonic(t *testing.T) {
	a := ServerA()
	f := func(n uint16, add uint8) bool {
		small := int(n)
		large := small + int(add)
		for _, pair := range [][2]SocketID{{0, 0}, {0, 1}, {0, 4}} {
			if a.FetchCost(small, pair[0], pair[1]) > a.FetchCost(large, pair[0], pair[1]) {
				return false
			}
		}
		// Distance monotonicity for a fixed size.
		return a.FetchCost(large, 0, 0) <= a.FetchCost(large, 0, 1) &&
			a.FetchCost(large, 0, 1) <= a.FetchCost(large, 0, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRestrict(t *testing.T) {
	a := ServerA()
	for _, n := range []int{1, 2, 4, 8} {
		r, err := a.Restrict(n)
		if err != nil {
			t.Fatalf("Restrict(%d): %v", n, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Restrict(%d) invalid: %v", n, err)
		}
		if r.Sockets != n {
			t.Errorf("Restrict(%d).Sockets = %d", n, r.Sockets)
		}
		if r.TotalCores() != n*18 {
			t.Errorf("Restrict(%d).TotalCores = %d, want %d", n, r.TotalCores(), n*18)
		}
	}
	if _, err := a.Restrict(0); err == nil {
		t.Error("Restrict(0) should fail")
	}
	if _, err := a.Restrict(9); err == nil {
		t.Error("Restrict(9) should fail")
	}
	// Restricting must not alias the original matrices.
	r, _ := a.Restrict(4)
	r.Latency[0][1] = 1
	if a.Latency[0][1] == 1 {
		t.Error("Restrict aliases parent latency matrix")
	}
}

func TestSyntheticAndUniform(t *testing.T) {
	s := Synthetic("sweep", 4, 6, 50, 200, 400, 30*GB, 10*GB, 5*GB)
	if err := s.Validate(); err != nil {
		t.Fatalf("synthetic invalid: %v", err)
	}
	u := Uniform("flat", 4, 6)
	if err := u.Validate(); err != nil {
		t.Fatalf("uniform invalid: %v", err)
	}
	if u.FetchCost(256, 0, 3) != u.FetchCost(256, 0, 1) {
		t.Error("uniform machine should have distance-independent cost")
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	bad := ServerA()
	bad.Latency[0][1] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	bad2 := ServerA()
	bad2.Latency[0][1] = 100
	// asymmetric now (Latency[1][0] still 307.7)
	if err := bad2.Validate(); err == nil {
		t.Error("asymmetric latency accepted")
	}
	bad3 := ServerA()
	bad3.Sockets = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero sockets accepted")
	}
	bad4 := ServerA()
	bad4.TrayOf = bad4.TrayOf[:3]
	if err := bad4.Validate(); err == nil {
		t.Error("short TrayOf accepted")
	}
}

// Property: on random synthetic machines, Validate accepts what the
// constructor produces.
func TestSyntheticAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		sockets := 1 + rng.Intn(8)
		cores := 1 + rng.Intn(32)
		m := Synthetic("r", sockets, cores, 40+rng.Float64()*20, 150+rng.Float64()*200, 300+rng.Float64()*300,
			(10+rng.Float64()*50)*GB, (5+rng.Float64()*10)*GB, (2+rng.Float64()*9)*GB)
		if err := m.Validate(); err != nil {
			t.Fatalf("synthetic machine %d invalid: %v", i, err)
		}
	}
}
