package numa

import (
	"reflect"
	"runtime"
	"testing"
)

// TestPinAndRestore binds the test's locked thread to one CPU and back,
// verifying both syscall directions and that a restored mask equals the
// original — the invariant the engine's task teardown depends on.
func TestPinAndRestore(t *testing.T) {
	if !PinSupported() {
		t.Skip("thread affinity unsupported on this platform")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	orig, err := Affinity()
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) == 0 {
		t.Fatal("empty original affinity")
	}
	if err := SetAffinity(orig[:1]); err != nil {
		t.Fatal(err)
	}
	got, err := Affinity()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig[:1]) {
		t.Fatalf("pinned affinity = %v, want %v", got, orig[:1])
	}
	if err := SetAffinity(orig); err != nil {
		t.Fatal(err)
	}
	if got, _ = Affinity(); !reflect.DeepEqual(got, orig) {
		t.Fatalf("restored affinity = %v, want %v", got, orig)
	}
}

func TestSetAffinityRejectsEmpty(t *testing.T) {
	if err := SetAffinity(nil); err == nil {
		t.Fatal("SetAffinity(nil) did not fail")
	}
}
