package numa

import (
	"reflect"
	"runtime"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-1,4-5", []int{0, 1, 4, 5}},
		{"0,2,4", []int{0, 2, 4}},
		{"", nil},
		{"7-7", []int{7}},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if err != nil {
			t.Fatalf("ParseCPUList(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"x", "3-1", "-1", "1-"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Fatalf("ParseCPUList(%q) did not fail", bad)
		}
	}
}

func TestDetectHost(t *testing.T) {
	h := DetectHost()
	if len(h.Sockets) == 0 {
		t.Fatal("DetectHost returned no sockets")
	}
	if h.NumCPU() <= 0 {
		t.Fatalf("DetectHost reports %d CPUs", h.NumCPU())
	}
	seen := map[int]bool{}
	for _, s := range h.Sockets {
		if len(s.CPUs) == 0 {
			t.Fatalf("socket %d has no CPUs", s.ID)
		}
		for _, c := range s.CPUs {
			if seen[c] {
				t.Fatalf("CPU %d appears on two sockets", c)
			}
			seen[c] = true
		}
	}
	// Socket ids beyond the host wrap instead of failing: placements
	// computed for the paper's 8-socket servers must map onto any box.
	for s := SocketID(0); s < 16; s++ {
		if len(h.CPUsOf(s)) == 0 {
			t.Fatalf("CPUsOf(%d) is empty", s)
		}
	}
}

func TestHostMachineValidates(t *testing.T) {
	m := DetectHost().Machine()
	if err := m.Validate(); err != nil {
		t.Fatalf("host machine invalid: %v", err)
	}
	if m.TotalCores() <= 0 {
		t.Fatalf("host machine has %d cores", m.TotalCores())
	}
}

func TestFallbackHostMachineValidates(t *testing.T) {
	h := fallbackHost()
	if got := h.NumCPU(); got != runtime.NumCPU() {
		t.Fatalf("fallback host has %d CPUs, want %d", got, runtime.NumCPU())
	}
	if err := h.Machine().Validate(); err != nil {
		t.Fatalf("fallback machine invalid: %v", err)
	}
}

func TestSyntheticMultiSocketHostMachine(t *testing.T) {
	// A hand-built 2-socket host with an asymmetric distance matrix:
	// Machine() must symmetrize and still validate.
	h := &Host{
		Name: "test",
		Sockets: []HostSocket{
			{ID: 0, CPUs: []int{0, 1}},
			{ID: 1, CPUs: []int{2, 3}},
		},
		distance: [][]int{{10, 21}, {25, 10}},
		nodeIDs:  []int{0, 1},
	}
	m := h.Machine()
	if err := m.Validate(); err != nil {
		t.Fatalf("machine invalid: %v", err)
	}
	// CoresPerSocket is floored to the minimum model slot count so
	// small hosts stay plannable; a 2-CPU socket models as 16 slots.
	if m.Sockets != 2 || m.CoresPerSocket != 16 {
		t.Fatalf("machine shape = %dx%d, want 2x16", m.Sockets, m.CoresPerSocket)
	}
	// max(21, 25) = 25 units -> 125 ns, both directions.
	if m.Latency[0][1] != 125 || m.Latency[1][0] != 125 {
		t.Fatalf("remote latency = %v/%v, want 125", m.Latency[0][1], m.Latency[1][0])
	}
	if m.Latency[0][0] != 50 {
		t.Fatalf("local latency = %v, want 50", m.Latency[0][0])
	}
}
