//go:build !linux

package numa

import "fmt"

// PinSupported reports whether thread CPU affinity works here. Off
// Linux the engine runs unpinned: Config.Pin degrades to a no-op.
func PinSupported() bool { return false }

// Affinity is unsupported off Linux.
func Affinity() ([]int, error) {
	return nil, fmt.Errorf("numa: thread affinity not supported on this platform")
}

// SetAffinity is unsupported off Linux.
func SetAffinity(cpus []int) error {
	return fmt.Errorf("numa: thread affinity not supported on this platform")
}
