package adaptive

import (
	"fmt"
	"sort"

	"briskstream/internal/profile"
	"briskstream/internal/rlas"
)

// Live ingestion: the engine-facing half of the advisor. Instead of
// bare processed-count observations (Record), a running engine hands
// over full profile snapshots — sampled service times, input sizes,
// emit counts, queue depths — and the advisor derives the model's
// statistics from measured deltas (profile.FromEngine) rather than
// from the consumer-rate attribution heuristic.

// RecordEngine ingests one engine profile snapshot. It also feeds the
// processed counters into the observation history, so Rates and the
// rate-based fallbacks keep working.
func (a *Advisor) RecordEngine(s profile.EngineSnapshot) error {
	if len(a.engHistory) > 0 && !s.At.After(a.engHistory[len(a.engHistory)-1].At) {
		return fmt.Errorf("adaptive: engine snapshots must be monotonically timestamped")
	}
	processed := map[string]uint64{}
	for op, t := range s.ByOp() {
		processed[op] = t.Processed
	}
	if err := a.Record(Observation{Processed: processed, At: s.At}); err != nil {
		return err
	}
	a.engHistory = append(a.engHistory, s)
	if len(a.engHistory) > 16 {
		a.engHistory = a.engHistory[1:]
	}
	return nil
}

// engineStats reduces the two most recent engine snapshots into a
// profile.Set, or reports false when fewer than two were recorded.
func (a *Advisor) engineStats() (profile.Set, bool, error) {
	if len(a.engHistory) < 2 {
		return nil, false, nil
	}
	prev, cur := a.engHistory[len(a.engHistory)-2], a.engHistory[len(a.engHistory)-1]
	set, err := profile.FromEngine(a.stats, prev, cur)
	if err != nil {
		return nil, false, err
	}
	return set, true, nil
}

// Backpressured lists operators whose input batches spent more than
// Config.Backpressure times the operator's own processing time waiting
// in communication queues over the last snapshot interval — the
// queue-wait signal the per-jumbo enqueue/dequeue stamping supplies.
// Sustained queueing of this magnitude means the operator is
// under-provisioned regardless of whether its Te or selectivity moved,
// so Drifted folds these into the re-optimization trigger. Returns nil
// with fewer than two engine snapshots or a non-positive threshold.
func (a *Advisor) Backpressured() []string {
	if a.cfg.Backpressure <= 0 || len(a.engHistory) < 2 {
		return nil
	}
	prev, cur := a.engHistory[len(a.engHistory)-2], a.engHistory[len(a.engHistory)-1]
	pOps := prev.ByOp()
	var out []string
	for op, c := range cur.ByOp() {
		p := pOps[op]
		if c.QueueWaitNs <= p.QueueWaitNs || c.Processed <= p.Processed {
			continue
		}
		dWait := float64(c.QueueWaitNs - p.QueueWaitNs)
		dProc := float64(c.Processed - p.Processed)
		// Service time per tuple: live-measured when the interval holds
		// profile samples, the baseline Te otherwise.
		te := a.stats[op].Te
		if ds := c.ServiceSamples - p.ServiceSamples; ds > 0 {
			te = float64(c.ServiceNs-p.ServiceNs) / float64(ds)
		}
		if te <= 0 {
			continue
		}
		if dWait > a.cfg.Backpressure*te*dProc {
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out
}

// Adopt rebases the advisor onto a newly rolled-out plan: the plan
// becomes the current one, its statistics become the drift baseline,
// and the observation history is discarded (counters restart at zero
// when the engine restarts, so old snapshots no longer difference).
func (a *Advisor) Adopt(current *rlas.Result, stats profile.Set) {
	a.current = current
	if stats != nil {
		a.stats = stats.Clone()
	}
	a.history = nil
	a.engHistory = nil
}

// Current returns the plan the advisor is watching.
func (a *Advisor) Current() *rlas.Result { return a.current }
