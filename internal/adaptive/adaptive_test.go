package adaptive

import (
	"testing"
	"time"

	"briskstream/internal/bnb"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
	"briskstream/internal/rlas"
)

// chainApp builds spout -> expand -> sink where expand's profiled
// selectivity is 10 (splitter-like).
func chainApp(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("adaptive")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "expand", Selectivity: map[string]float64{"default": 10}}))
	must(g.AddNode(&graph.Node{Name: "consume", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "expand", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "expand", To: "consume", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "consume", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func chainStats() profile.Set {
	return profile.Set{
		"spout":   {Te: 400, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"expand":  {Te: 1500, M: 128, N: 64, Selectivity: map[string]float64{"default": 10}},
		"consume": {Te: 800, M: 64, N: 32, Selectivity: map[string]float64{"default": 1}},
		"sink":    {Te: 100, M: 32, N: 32, Selectivity: map[string]float64{}},
	}
}

func optimize(t *testing.T, g *graph.Graph, st profile.Set, m *numa.Machine) *rlas.Result {
	t.Helper()
	seed, err := rlas.SeedReplication(g, st, m.TotalCores(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rlas.Optimize(g, rlas.Config{
		Model:         &model.Config{Machine: m, Stats: st, Ingress: model.Saturated},
		BnB:           bnb.Config{NodeLimit: 500},
		Initial:       seed,
		MaxIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// observe feeds two snapshots implying the given per-op rates.
func observe(t *testing.T, a *Advisor, rates map[string]uint64) {
	t.Helper()
	base := time.Unix(1000, 0)
	first := map[string]uint64{}
	for op := range rates {
		first[op] = 0
	}
	if err := a.Record(Observation{Processed: first, At: base}); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(Observation{Processed: rates, At: base.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}
}

func testMachine() *numa.Machine {
	return numa.Synthetic("adapt", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
}

func TestRatesFromSnapshots(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rates(); err == nil {
		t.Error("rates with < 2 observations accepted")
	}
	observe(t, a, map[string]uint64{"spout": 1000, "expand": 1000, "consume": 10000, "sink": 10000})
	rates, err := a.Rates()
	if err != nil {
		t.Fatal(err)
	}
	if rates["consume"] != 10000 {
		t.Errorf("consume rate = %v", rates["consume"])
	}
}

func TestObservedSelectivityTracksWorkload(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	// Workload changed: expand now emits 2 per input instead of 10.
	observe(t, a, map[string]uint64{"spout": 1000, "expand": 1000, "consume": 2000, "sink": 2000})
	obs, err := a.ObservedStats()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs["expand"].TotalSelectivity(); got != 2 {
		t.Errorf("observed expand selectivity = %v, want 2", got)
	}
	// consume unchanged (1:1).
	if got := obs["consume"].TotalSelectivity(); got != 1 {
		t.Errorf("observed consume selectivity = %v, want 1", got)
	}
	drifted, err := a.Drifted()
	if err != nil {
		t.Fatal(err)
	}
	if len(drifted) != 1 || drifted[0] != "expand" {
		t.Errorf("drifted = %v, want [expand]", drifted)
	}
}

func TestNoDriftNoReoptimization(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	// Rates consistent with the profile (selectivity 10).
	observe(t, a, map[string]uint64{"spout": 1000, "expand": 1000, "consume": 10000, "sink": 10000})
	rec, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Reoptimize {
		t.Error("re-optimization recommended with no drift")
	}
	if len(rec.DriftedOperators) != 0 {
		t.Errorf("drift reported: %v", rec.DriftedOperators)
	}
}

func TestDriftTriggersReoptimization(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	stats := chainStats()
	cur := optimize(t, g, stats, m)

	a, err := New(g, stats, cur, Config{Machine: m, Gain: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Selectivity collapsed 10 -> 1: the plan's many consume replicas
	// are now wasted and the expand stage starves them; a fresh plan
	// rebalances and should predict better throughput.
	observe(t, a, map[string]uint64{"spout": 1000, "expand": 1000, "consume": 1000, "sink": 1000})
	rec, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.DriftedOperators) == 0 {
		t.Fatal("no drift detected after 10x selectivity change")
	}
	if !rec.Reoptimize {
		t.Fatalf("re-optimization not recommended (current %v, new %v)",
			rec.CurrentPredicted, rec.NewPredicted)
	}
	if rec.Plan == nil {
		t.Fatal("no plan attached")
	}
	if rec.NewPredicted <= rec.CurrentPredicted {
		t.Errorf("new plan %v not better than current %v", rec.NewPredicted, rec.CurrentPredicted)
	}
}

func TestRecordValidation(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(2000, 0)
	if err := a.Record(Observation{Processed: map[string]uint64{}, At: now}); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(Observation{Processed: map[string]uint64{}, At: now}); err == nil {
		t.Error("non-increasing timestamp accepted")
	}
	if _, err := New(g, chainStats(), cur, Config{}); err == nil {
		t.Error("missing machine accepted")
	}
}

func TestHistoryBounded(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, _ := New(g, chainStats(), cur, Config{Machine: m})
	base := time.Unix(3000, 0)
	for i := 0; i < 100; i++ {
		a.Record(Observation{Processed: map[string]uint64{"spout": uint64(i)}, At: base.Add(time.Duration(i) * time.Second)})
	}
	if len(a.history) > 16 {
		t.Errorf("history grew to %d entries", len(a.history))
	}
}
