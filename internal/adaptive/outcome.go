package adaptive

import (
	"sync"
	"time"
)

// Outcome records one online rescale: the relative throughput gain the
// model predicted when it recommended the rollover, and the gain
// actually measured once the rescaled engine reached steady state.
// Comparing the two is how the advisor's performance model is audited —
// a model that keeps over-promising should have its Gain threshold
// raised, one that under-promises is leaving rescales on the table.
type Outcome struct {
	// At is when the realized gain was measured (not when the rescale
	// was decided).
	At time.Time
	// PredictedGain is NewPredicted/CurrentPredicted - 1 at decision
	// time.
	PredictedGain float64
	// RealizedGain is the measured post-rescale throughput over the
	// pre-rescale throughput, minus 1. Negative means the rollover made
	// things worse.
	RealizedGain float64
}

// outcomes is guarded separately from the Advisor's single-goroutine
// history: outcomes are written by the supervise loop but read by
// metric scrapes on the obs server's goroutine.
type outcomeLog struct {
	mu   sync.Mutex
	list []Outcome
}

// RecordOutcome appends one realized rescale outcome.
func (a *Advisor) RecordOutcome(o Outcome) {
	a.outcomes.mu.Lock()
	a.outcomes.list = append(a.outcomes.list, o)
	a.outcomes.mu.Unlock()
}

// Outcomes returns a copy of every recorded rescale outcome, oldest
// first.
func (a *Advisor) Outcomes() []Outcome {
	a.outcomes.mu.Lock()
	defer a.outcomes.mu.Unlock()
	return append([]Outcome(nil), a.outcomes.list...)
}
