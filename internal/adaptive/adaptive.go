// Package adaptive implements online plan maintenance, the dynamic
// scenario Section 5.3 defers to: stream rates and operator selectivity
// drift over time, so the profiled statistics feeding RLAS go stale and
// the application needs re-optimization. The Advisor ingests periodic
// rate snapshots from a running engine (or simulator), re-estimates
// per-operator selectivity from observed rates, detects drift against
// the statistics the current plan was optimized with, and — when the
// model predicts a sufficiently better plan under the fresh statistics —
// recommends re-optimization.
//
// The Advisor never migrates a running job itself (BriskStream plans are
// generated for the lifetime of an application); it produces the new
// plan for the operator to roll over.
package adaptive

import (
	"fmt"
	"math"
	"sort"
	"time"

	"briskstream/internal/bnb"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
	"briskstream/internal/rlas"
)

// Observation is one snapshot of cumulative processed counts.
type Observation struct {
	Processed map[string]uint64
	At        time.Time
}

// Config tunes the advisor.
type Config struct {
	// Machine is the target machine of re-optimizations.
	Machine *numa.Machine
	// Drift is the relative selectivity change that counts as stale
	// statistics (default 0.2 = 20%).
	Drift float64
	// Gain is the minimum predicted relative throughput improvement
	// that justifies re-optimization (default 0.1 = 10%).
	Gain float64
	// Backpressure is the queue-wait-to-service-time ratio past which an
	// operator counts as backpressured: when its input batches spent
	// more than Backpressure times the operator's own processing time
	// waiting in queues over the last profiling interval, the operator
	// is treated as drifted even if Te and selectivity still match the
	// baseline — sustained queueing means the plan under-provisioned it.
	// Default 4; negative disables the signal.
	Backpressure float64
	// Optimizer tunes the RLAS run used for recommendations.
	Optimizer OptimizerConfig
}

// OptimizerConfig tunes the RLAS search inside Evaluate.
type OptimizerConfig struct {
	Compress      int
	NodeLimit     int
	MaxIterations int
	// FixedSpouts pins spout replication during the scaling loop — set
	// it when recommendations must be adoptable by a live engine, whose
	// source replica count (and replay offsets) cannot change online.
	FixedSpouts bool
}

// Advisor watches one application.
type Advisor struct {
	app     *graph.Graph
	stats   profile.Set // statistics the current plan was built with
	current *rlas.Result
	cfg     Config

	history    []Observation
	engHistory []profile.EngineSnapshot
	outcomes   outcomeLog // predicted-vs-realized gains of adopted rescales
}

// New creates an advisor for an application running under the given
// plan, which was optimized with the given statistics.
func New(app *graph.Graph, stats profile.Set, current *rlas.Result, cfg Config) (*Advisor, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("adaptive: machine required")
	}
	if cfg.Drift <= 0 {
		cfg.Drift = 0.2
	}
	if cfg.Gain <= 0 {
		cfg.Gain = 0.1
	}
	if cfg.Backpressure == 0 {
		cfg.Backpressure = 4
	}
	if cfg.Optimizer.Compress <= 0 {
		cfg.Optimizer.Compress = 5
	}
	if cfg.Optimizer.NodeLimit <= 0 {
		cfg.Optimizer.NodeLimit = 1000
	}
	if cfg.Optimizer.MaxIterations <= 0 {
		cfg.Optimizer.MaxIterations = 20
	}
	return &Advisor{app: app, stats: stats.Clone(), current: current, cfg: cfg}, nil
}

// Record ingests a snapshot. Snapshots must be monotonically timestamped.
func (a *Advisor) Record(o Observation) error {
	if len(a.history) > 0 && !o.At.After(a.history[len(a.history)-1].At) {
		return fmt.Errorf("adaptive: observation timestamps must increase")
	}
	a.history = append(a.history, o)
	if len(a.history) > 16 {
		a.history = a.history[1:]
	}
	return nil
}

// Rates derives per-operator processing rates (tuples/sec) from the two
// most recent observations.
func (a *Advisor) Rates() (map[string]float64, error) {
	if len(a.history) < 2 {
		return nil, fmt.Errorf("adaptive: need at least two observations")
	}
	prev, cur := a.history[len(a.history)-2], a.history[len(a.history)-1]
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return nil, fmt.Errorf("adaptive: non-positive observation window")
	}
	rates := map[string]float64{}
	for op, n := range cur.Processed {
		rates[op] = float64(n-prev.Processed[op]) / dt
	}
	return rates, nil
}

// ObservedStats re-estimates operator statistics from live data. When
// the advisor has engine profile snapshots (RecordEngine), the measured
// deltas win: Te, N, and selectivity come straight from the engine's
// sampled counters via profile.FromEngine. Otherwise it falls back to
// the rate heuristic: for every operator whose consumers each have it
// as their only producer, the observed total selectivity is the ratio
// of consumer arrival rate to its own processing rate, redistributed
// over its output streams in the proportions of the original profile;
// Te/M/N are retained.
func (a *Advisor) ObservedStats() (profile.Set, error) {
	if set, ok, err := a.engineStats(); err != nil {
		return nil, err
	} else if ok {
		return set, nil
	}
	rates, err := a.Rates()
	if err != nil {
		return nil, err
	}
	out := a.stats.Clone()
	for _, n := range a.app.Nodes() {
		rate := rates[n.Name]
		if rate <= 0 || n.IsSink {
			continue
		}
		// Sum consumer arrival attributable to this operator: only
		// well-defined when each consumer has this operator as its only
		// producer.
		var consumed float64
		attributable := true
		consumers := a.app.Consumers(n.Name)
		if len(consumers) == 0 {
			continue
		}
		for _, c := range consumers {
			if len(a.app.Producers(c)) != 1 {
				attributable = false
				break
			}
			consumed += rates[c]
		}
		if !attributable {
			continue
		}
		observedSel := consumed / rate
		st := out[n.Name]
		prevTotal := st.TotalSelectivity()
		if prevTotal <= 0 {
			continue
		}
		scale := observedSel / prevTotal
		sel := map[string]float64{}
		for s, v := range st.Selectivity {
			sel[s] = v * scale
		}
		st.Selectivity = sel
		out[n.Name] = st
	}
	return out, nil
}

// Drifted lists operators whose observed statistics deviate from the
// profiled baseline by more than the configured drift threshold —
// total selectivity always, per-tuple execution time when it was
// live-measured (engine snapshots) — plus any operator the measured
// queue-wait marks as backpressured (see Config.Backpressure), sorted
// by name.
func (a *Advisor) Drifted() ([]string, error) {
	observed, err := a.ObservedStats()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for op, st := range observed {
		base := a.stats[op]
		old := base.TotalSelectivity()
		selDrift := old > 0 && math.Abs(st.TotalSelectivity()-old)/old > a.cfg.Drift
		teDrift := base.Te > 0 && math.Abs(st.Te-base.Te)/base.Te > a.cfg.Drift
		if selDrift || teDrift {
			seen[op] = true
			out = append(out, op)
		}
	}
	for _, op := range a.Backpressured() {
		if !seen[op] {
			out = append(out, op)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Recommendation is the advisor's verdict.
type Recommendation struct {
	// Reoptimize reports whether rolling over to Plan is worthwhile.
	Reoptimize bool
	// Plan is the new RLAS result under the observed statistics (nil
	// when Reoptimize is false).
	Plan *rlas.Result
	// CurrentPredicted and NewPredicted are the modelled throughputs of
	// the running plan and the recommended plan under the observed
	// statistics.
	CurrentPredicted, NewPredicted float64
	// DriftedOperators lists what changed.
	DriftedOperators []string
}

// Evaluate re-optimizes under the observed statistics and compares
// against the running plan evaluated under the same statistics.
func (a *Advisor) Evaluate() (*Recommendation, error) {
	drifted, err := a.Drifted()
	if err != nil {
		return nil, err
	}
	observed, err := a.ObservedStats()
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{DriftedOperators: drifted}

	// Current plan under fresh statistics.
	mcfg := &model.Config{Machine: a.cfg.Machine, Stats: observed, Ingress: model.Saturated}
	curEval, err := model.Evaluate(a.current.Graph, a.current.Placement, mcfg, model.Options{})
	if err != nil {
		return nil, err
	}
	rec.CurrentPredicted = curEval.Throughput

	if len(drifted) == 0 {
		return rec, nil // nothing changed; skip the expensive search
	}

	seed, err := rlas.SeedReplication(a.app, observed, a.cfg.Machine.TotalCores(), 0.7)
	if err != nil {
		return nil, err
	}
	fresh, err := rlas.Optimize(a.app, rlas.Config{
		Model:         mcfg,
		Compress:      a.cfg.Optimizer.Compress,
		BnB:           bnb.Config{NodeLimit: a.cfg.Optimizer.NodeLimit},
		Initial:       seed,
		MaxIterations: a.cfg.Optimizer.MaxIterations,
		FixedSpouts:   a.cfg.Optimizer.FixedSpouts,
	})
	if err != nil {
		return nil, err
	}
	rec.NewPredicted = fresh.Eval.Throughput
	if rec.NewPredicted > rec.CurrentPredicted*(1+a.cfg.Gain) {
		rec.Reoptimize = true
		rec.Plan = fresh
	}
	return rec, nil
}
