package adaptive

import (
	"testing"
	"time"

	"briskstream/internal/profile"
)

// snap builds one engine snapshot whose per-op counters are consistent
// with the chainApp profile (selectivity 10, baseline Te), with the
// given cumulative queue-wait per op.
func snap(at time.Time, scale uint64, wait map[string]uint64) profile.EngineSnapshot {
	st := chainStats()
	mk := func(op string, processed uint64) profile.TaskSnapshot {
		te := uint64(st[op].Te)
		return profile.TaskSnapshot{
			Op:             op,
			Processed:      processed,
			Emitted:        uint64(float64(processed) * st[op].TotalSelectivity()),
			ServiceNs:      processed * te,
			ServiceSamples: processed,
			QueueWaitNs:    wait[op],
			QueueWaitBatch: processed / 64,
		}
	}
	return profile.EngineSnapshot{At: at, Tasks: []profile.TaskSnapshot{
		mk("spout", 1000*scale),
		mk("expand", 1000*scale),
		mk("consume", 10000*scale),
		mk("sink", 10000*scale),
	}}
}

func TestBackpressuredFlagsQueueingOperator(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Backpressured(); got != nil {
		t.Fatalf("backpressured with no snapshots: %v", got)
	}

	// consume processed 10000 tuples at Te=800ns (8ms of service) but its
	// input waited 100ms in queues — far past the 4x threshold. expand's
	// wait stays well under its service time.
	base := time.Unix(5000, 0)
	if err := a.RecordEngine(snap(base, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordEngine(snap(base.Add(time.Second), 2, map[string]uint64{
		"expand":  1_000_000,   // 1ms wait vs 1.5ms service: fine
		"consume": 100_000_000, // 100ms wait vs 8ms service: backpressured
	})); err != nil {
		t.Fatal(err)
	}
	got := a.Backpressured()
	if len(got) != 1 || got[0] != "consume" {
		t.Fatalf("backpressured = %v, want [consume]", got)
	}

	// The signal reaches Drifted even though Te and selectivity match the
	// baseline exactly.
	drifted, err := a.Drifted()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range drifted {
		if op == "consume" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drifted = %v, want consume included via backpressure", drifted)
	}
}

func TestBackpressureDisabled(t *testing.T) {
	g := chainApp(t)
	m := testMachine()
	cur := optimize(t, g, chainStats(), m)
	a, err := New(g, chainStats(), cur, Config{Machine: m, Backpressure: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(6000, 0)
	if err := a.RecordEngine(snap(base, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordEngine(snap(base.Add(time.Second), 2, map[string]uint64{
		"consume": 100_000_000,
	})); err != nil {
		t.Fatal(err)
	}
	if got := a.Backpressured(); got != nil {
		t.Fatalf("negative threshold should disable the signal, got %v", got)
	}
}
