package window

// Snapshot/restore tests: a window operator checkpointed mid-stream and
// restored into a fresh instance must continue exactly like the
// original, and the encoding must be byte-stable (the same state always
// serializes to the same bytes).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

// snapCountOp is countOp plus the Save/Load codec checkpointing needs.
func snapCountOp(size, slide, lateness int64, out *[]emission) engine.Operator {
	return New(Op[countAcc]{
		KeyField: 0,
		Size:     size,
		Slide:    slide,
		Lateness: lateness,
		Init:     func(a *countAcc) { *a = countAcc{} },
		Add: func(a *countAcc, t *tuple.Tuple) {
			a.count++
			a.sum += t.Int(1)
		},
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *countAcc) {
			*out = append(*out, emission{key: key, w: w, count: a.count, sum: a.sum})
		},
		Save: func(enc *checkpoint.Encoder, a *countAcc) {
			enc.Int64(a.count)
			enc.Int64(a.sum)
		},
		Load: func(dec *checkpoint.Decoder, a *countAcc) error {
			a.count = dec.Int64()
			a.sum = dec.Int64()
			return nil
		},
	})
}

// drive processes events through op, advancing the watermark (with lag)
// every wmEvery events.
func drive(t *testing.T, op engine.Operator, tm *engine.Timers, events []event, wmEvery int, lag int64) {
	t.Helper()
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }
	in := &tuple.Tuple{}
	maxEt := int64(-1 << 62)
	for i, ev := range events {
		in.Reset()
		in.AppendStr(ev.key)
		in.AppendInt(1)
		in.Event = ev.et
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
		if ev.et > maxEt {
			maxEt = ev.et
		}
		if (i+1)%wmEvery == 0 {
			if err := tm.AdvanceWatermark(maxEt-lag, fire); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func finish(t *testing.T, op engine.Operator, tm *engine.Timers) {
	t.Helper()
	th := op.(engine.TimerHandler)
	if err := tm.AdvanceWatermark(engine.WatermarkMax, func(at int64) error {
		return th.OnTimer(nil, engine.EventTimer, at)
	}); err != nil {
		t.Fatal(err)
	}
}

func randomEvents(seed int64, n int, keys []string, spread int64) []event {
	r := rand.New(rand.NewSource(seed))
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{key: keys[r.Intn(len(keys))], et: int64(i) + r.Int63n(spread)}
	}
	return evs
}

func TestWindowSnapshotRestoreContinues(t *testing.T) {
	for _, cfg := range []struct {
		name                  string
		size, slide, lateness int64
	}{
		{"tumbling", 64, 0, 0},
		{"sliding", 96, 32, 16},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			keys := []string{"a", "b", "c", "d"}
			events := randomEvents(11, 4000, keys, 24)
			half := len(events) / 2

			// Reference: one operator sees the whole stream.
			var want []emission
			ref := snapCountOp(cfg.size, cfg.slide, cfg.lateness, &want)
			tmRef := engine.NewTimers()
			ref.(engine.TimerAware).SetTimers(tmRef)
			drive(t, ref, tmRef, events, 16, 8)
			finish(t, ref, tmRef)

			// Original: first half, then snapshot (twice — byte-stability).
			var gotA []emission
			opA := snapCountOp(cfg.size, cfg.slide, cfg.lateness, &gotA)
			tmA := engine.NewTimers()
			opA.(engine.TimerAware).SetTimers(tmA)
			drive(t, opA, tmA, events[:half], 16, 8)
			enc := checkpoint.NewEncoder()
			if err := opA.(checkpoint.Snapshotter).Snapshot(enc); err != nil {
				t.Fatal(err)
			}
			snap := append([]byte(nil), enc.Bytes()...)
			enc2 := checkpoint.NewEncoder()
			if err := opA.(checkpoint.Snapshotter).Snapshot(enc2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, enc2.Bytes()) {
				t.Fatal("two snapshots of the same state differ byte-wise")
			}

			// Restored: a fresh operator rebuilt at the cut. Its timer
			// service starts fresh too (the engine resets timers before
			// applying a restore) but carries the cut's watermark.
			gotB := append([]emission(nil), gotA...)
			opB := snapCountOp(cfg.size, cfg.slide, cfg.lateness, &gotB)
			tmB := engine.NewTimers()
			opB.(engine.TimerAware).SetTimers(tmB)
			if err := opB.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(snap)); err != nil {
				t.Fatal(err)
			}
			// Replay the watermark the original had reached (restores are
			// followed by source replay, which re-advances event time).
			if wm := tmA.Watermark(); wm > engine.WatermarkMin {
				if err := tmB.AdvanceWatermark(wm, func(at int64) error {
					return opB.(engine.TimerHandler).OnTimer(nil, engine.EventTimer, at)
				}); err != nil {
					t.Fatal(err)
				}
			}
			drive(t, opB, tmB, events[half:], 16, 8)
			finish(t, opB, tmB)

			if fmt.Sprint(gotB) != fmt.Sprint(want) {
				t.Fatalf("restored continuation diverged:\n got %d emissions %v\nwant %d emissions %v",
					len(gotB), gotB, len(want), want)
			}
		})
	}
}

func TestWindowSnapshotWithoutCodecFails(t *testing.T) {
	var out []emission
	op := countOp(64, 0, 0, &out) // no Save/Load
	if err := op.(checkpoint.Snapshotter).Snapshot(checkpoint.NewEncoder()); err == nil {
		t.Fatal("Snapshot without Save/Load must fail")
	}
	if err := op.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(nil)); err == nil {
		t.Fatal("Restore without Save/Load must fail")
	}
}

// sessEmission records one closed session.
type sessEmission struct {
	key tuple.Key
	w   Span
	n   int64
}

func snapSessionOp(gap, lateness int64, out *[]sessEmission) engine.Operator {
	type acc struct{ n int64 }
	return NewSession(SessionOp[acc]{
		KeyField: 0,
		Gap:      gap,
		Lateness: lateness,
		Init:     func(a *acc) { a.n = 0 },
		Add:      func(a *acc, t *tuple.Tuple) { a.n++ },
		Merge:    func(dst, src *acc) { dst.n += src.n },
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *acc) {
			*out = append(*out, sessEmission{key: key, w: w, n: a.n})
		},
		Save: func(enc *checkpoint.Encoder, a *acc) { enc.Int64(a.n) },
		Load: func(dec *checkpoint.Decoder, a *acc) error { a.n = dec.Int64(); return nil },
	})
}

func TestSessionSnapshotRestoreContinues(t *testing.T) {
	keys := []string{"x", "y", "z"}
	// Bursty events so sessions open, extend, merge and close.
	r := rand.New(rand.NewSource(23))
	events := make([]event, 3000)
	base := int64(0)
	for i := range events {
		if r.Intn(10) == 0 {
			base += 40 // quiet gap: sessions close
		}
		base += r.Int63n(6)
		events[i] = event{key: keys[r.Intn(len(keys))], et: base}
	}
	half := len(events) / 2

	var want []sessEmission
	ref := snapSessionOp(16, 0, &want)
	tmRef := engine.NewTimers()
	ref.(engine.TimerAware).SetTimers(tmRef)
	drive(t, ref, tmRef, events, 8, 4)
	finish(t, ref, tmRef)

	var gotA []sessEmission
	opA := snapSessionOp(16, 0, &gotA)
	tmA := engine.NewTimers()
	opA.(engine.TimerAware).SetTimers(tmA)
	drive(t, opA, tmA, events[:half], 8, 4)
	enc := checkpoint.NewEncoder()
	if err := opA.(checkpoint.Snapshotter).Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	snap := append([]byte(nil), enc.Bytes()...)
	enc2 := checkpoint.NewEncoder()
	if err := opA.(checkpoint.Snapshotter).Snapshot(enc2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, enc2.Bytes()) {
		t.Fatal("two session snapshots of the same state differ byte-wise")
	}

	gotB := append([]sessEmission(nil), gotA...)
	opB := snapSessionOp(16, 0, &gotB)
	tmB := engine.NewTimers()
	opB.(engine.TimerAware).SetTimers(tmB)
	if err := opB.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(snap)); err != nil {
		t.Fatal(err)
	}
	if wm := tmA.Watermark(); wm > engine.WatermarkMin {
		if err := tmB.AdvanceWatermark(wm, func(at int64) error {
			return opB.(engine.TimerHandler).OnTimer(nil, engine.EventTimer, at)
		}); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, opB, tmB, events[half:], 8, 4)
	finish(t, opB, tmB)

	if fmt.Sprint(gotB) != fmt.Sprint(want) {
		t.Fatalf("restored session continuation diverged:\n got %v\nwant %v", gotB, want)
	}
}

// Typed keys must be byte-stable and identity-preserving across a
// snapshot round-trip: for every key kind, a restored operator's keys
// must equal the keys replayed tuples produce (one accumulator per
// key, no splitting — the old int→int64 canonicalization hack is gone
// because the slot representation has exactly one integer kind), and
// re-snapshotting the restored state must reproduce the original bytes
// exactly.
func TestWindowSnapshotTypedKeysByteStableRoundTrip(t *testing.T) {
	fill := map[string]func(in *tuple.Tuple){
		"int":    func(in *tuple.Tuple) { in.AppendInt(7) },
		"float":  func(in *tuple.Tuple) { in.AppendFloat(2.5) },
		"bool":   func(in *tuple.Tuple) { in.AppendBool(true) },
		"string": func(in *tuple.Tuple) { in.AppendStr("typed-key") },
		"symbol": func(in *tuple.Tuple) { in.AppendSym(tuple.InternSym("typed-key-sym")) },
	}
	for name, appendKey := range fill {
		t.Run(name, func(t *testing.T) {
			var got []emission
			op := snapCountOp(64, 0, 0, &got)
			tm := engine.NewTimers()
			op.(engine.TimerAware).SetTimers(tm)
			in := &tuple.Tuple{}
			feedOne := func(et int64, target engine.Operator) {
				in.Reset()
				appendKey(in)
				in.AppendInt(1)
				in.Event = et
				if err := target.Process(nil, in); err != nil {
					t.Fatal(err)
				}
			}
			feedOne(10, op)
			feedOne(11, op)
			enc := checkpoint.NewEncoder()
			if err := op.(checkpoint.Snapshotter).Snapshot(enc); err != nil {
				t.Fatal(err)
			}
			snap := append([]byte(nil), enc.Bytes()...)

			restored := append([]emission(nil), got...)
			op2 := snapCountOp(64, 0, 0, &restored)
			tm2 := engine.NewTimers()
			op2.(engine.TimerAware).SetTimers(tm2)
			if err := op2.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(snap)); err != nil {
				t.Fatal(err)
			}
			// Byte stability: the restored state re-encodes to the exact
			// original bytes.
			enc2 := checkpoint.NewEncoder()
			if err := op2.(checkpoint.Snapshotter).Snapshot(enc2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, enc2.Bytes()) {
				t.Fatalf("restored state re-encodes differently:\n %x\n %x", snap, enc2.Bytes())
			}
			// Key identity: a replayed tuple folds into the restored
			// accumulator instead of opening a second one.
			feedOne(12, op2)
			if err := tm2.AdvanceWatermark(engine.WatermarkMax, func(at int64) error {
				return op2.(engine.TimerHandler).OnTimer(nil, engine.EventTimer, at)
			}); err != nil {
				t.Fatal(err)
			}
			if len(restored) != 1 || restored[0].count != 3 {
				t.Fatalf("%s key split across the round-trip: emissions %v, want one window with count 3", name, restored)
			}
		})
	}
}

func TestValidateSnapshotReportsMissingCodecs(t *testing.T) {
	var out []emission
	bad := countOp(64, 0, 0, &out) // no Save/Load
	if err := bad.(checkpoint.Validator).ValidateSnapshot(); err == nil {
		t.Fatal("window without codecs must fail validation")
	}
	good := snapCountOp(64, 0, 0, &out)
	if err := good.(checkpoint.Validator).ValidateSnapshot(); err != nil {
		t.Fatal(err)
	}
	var sout []sessEmission
	badS := NewSession(SessionOp[struct{ n int64 }]{
		KeyField: 0, Gap: 8,
		Init:  func(a *struct{ n int64 }) {},
		Add:   func(a *struct{ n int64 }, t *tuple.Tuple) {},
		Merge: func(dst, src *struct{ n int64 }) {},
		Emit:  func(c engine.Collector, key tuple.Key, w Span, a *struct{ n int64 }) {},
	})
	if err := badS.(checkpoint.Validator).ValidateSnapshot(); err == nil {
		t.Fatal("session without codecs must fail validation")
	}
	goodS := snapSessionOp(8, 0, &sout)
	if err := goodS.(checkpoint.Validator).ValidateSnapshot(); err != nil {
		t.Fatal(err)
	}
}
