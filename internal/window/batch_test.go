package window

// Vectorized-path equivalence: the same event stream must produce
// identical emissions whether it is fed per tuple (Process), per batch
// through the grouped pre-accumulation path, or per batch through the
// direct accumulation path the feedback heuristic switches to on
// high-cardinality keys — and the heuristic itself must actually flip
// between the modes on the distributions built to trigger it.

import (
	"math/rand"
	"testing"

	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

func countOpBatch(size, slide, lateness int64, out *[]emission) engine.Operator {
	return New(Op[countAcc]{
		KeyField: 0,
		Size:     size,
		Slide:    slide,
		Lateness: lateness,
		Init:     func(a *countAcc) { *a = countAcc{} },
		Add: func(a *countAcc, t *tuple.Tuple) {
			a.count++
			a.sum += t.Int(1)
		},
		AddRow: func(a *countAcc, b *tuple.Batch, r int) {
			a.count++
			a.sum += b.Int(1, r)
		},
		Merge: func(a *countAcc, p *countAcc) {
			a.count += p.count
			a.sum += p.sum
		},
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *countAcc) {
			*out = append(*out, emission{key: key, w: w, count: a.count, sum: a.sum})
		},
	})
}

// feedBatches drives events through ProcessBatch in batches of
// batchRows, advancing the watermark between batches like feed does
// between wmEvery events, then flushes with the final watermark.
func feedBatches(t *testing.T, op engine.Operator, events []event, batchRows int, lag int64) {
	t.Helper()
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	bop := op.(engine.BatchOperator)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }
	maxEt := int64(-1 << 62)
	b := tuple.NewBatch(batchRows)
	in := &tuple.Tuple{}
	flush := func() {
		if b.Len() == 0 {
			return
		}
		if err := bop.ProcessBatch(nil, b); err != nil {
			t.Fatal(err)
		}
		b.Reset()
		if err := tm.AdvanceWatermark(maxEt-lag, fire); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		in.Reset()
		in.AppendStr(ev.key)
		in.AppendInt(1)
		in.Event = ev.et
		b.Append(in)
		if ev.et > maxEt {
			maxEt = ev.et
		}
		if b.Full() {
			flush()
		}
	}
	flush()
	if err := tm.AdvanceWatermark(engine.WatermarkMax, fire); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPathsMatchScalar(t *testing.T) {
	cases := []struct {
		name         string
		keys         int
		size, slide  int64
		wantDirect   bool // heuristic's expected steady-state mode
		forcedDirect bool // additionally pin direct from batch one
	}{
		// Few keys over many rows: grouping folds heavily and must stay.
		{name: "grouped-tumbling", keys: 4, size: 64, slide: 0},
		{name: "grouped-sliding", keys: 4, size: 64, slide: 16},
		// Keys outnumber batch rows: grouping folds nothing, the
		// feedback must switch to direct accumulation.
		{name: "direct-tumbling", keys: 500, size: 64, slide: 0, wantDirect: true},
		{name: "direct-sliding", keys: 500, size: 64, slide: 16, wantDirect: true},
		// Direct mode pinned from the first batch, so every row takes
		// the direct branch regardless of where the heuristic lands.
		{name: "forced-direct", keys: 4, size: 64, slide: 16, forcedDirect: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			keys := make([]string, tc.keys)
			for i := range keys {
				keys[i] = "k" + string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('a'+i/260))
			}
			events := make([]event, 4000)
			for i := range events {
				events[i] = event{key: keys[r.Intn(len(keys))], et: int64(i) + r.Int63n(8)}
			}

			var scalar, batched []emission
			feed(t, countOp(tc.size, tc.slide, 8, &scalar), events, 32, 16)
			bop := countOpBatch(tc.size, tc.slide, 8, &batched)
			wop := bop.(*windowOp[countAcc])
			if tc.forcedDirect {
				wop.direct, wop.probeLeft = true, 1<<30
			}
			feedBatches(t, bop, events, 32, 16)

			assertSameEmissions(t, scalar, batched)
			if !tc.forcedDirect && wop.direct != tc.wantDirect {
				t.Errorf("heuristic landed direct=%v, want %v", wop.direct, tc.wantDirect)
			}
		})
	}
}
