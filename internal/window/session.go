package window

import (
	"fmt"
	"slices"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/state"
	"briskstream/internal/tuple"
)

// SessionOp configures keyed session windows: per key, consecutive
// events closer than Gap belong to one session; a session closes (and
// fires) once the watermark passes its last event plus Gap. Unlike
// fixed windows, sessions merge — an event bridging two sessions fuses
// them, which is why a Merge function is required.
type SessionOp[A any] struct {
	// KeyField is the tuple field to key by; negative sessionizes the
	// whole stream as one group.
	KeyField int
	// Gap is the inactivity gap (event-time units) that closes a
	// session. Required.
	Gap int64
	// Lateness delays each session's fire time past its end.
	Lateness int64
	// Init resets a (possibly recycled) accumulator.
	Init func(acc *A)
	// Add folds one tuple into the accumulator.
	Add func(acc *A, t *tuple.Tuple)
	// Merge folds src into dst when a bridging event fuses two
	// sessions. src is recycled afterward.
	Merge func(dst, src *A)
	// Emit publishes one closed session; w.End is last event + Gap. The
	// key is the typed group key (KindNone when unkeyed).
	Emit func(c engine.Collector, key tuple.Key, w Span, acc *A)
	// Save and Load (de)serialize one accumulator for checkpointing
	// (see Op.Save/Op.Load: optional, required together under
	// checkpointing, and must round-trip).
	Save func(enc *checkpoint.Encoder, acc *A)
	Load func(dec *checkpoint.Decoder, acc *A) error
}

// session is one open session window.
type session[A any] struct {
	start, end int64 // [start, end) with end = last event + gap
	acc        A
}

// sessList is the per-key list of open sessions, sorted by start.
// Sessions per key are few (gap merging collapses them), so linear
// scans beat any index. key is the canonical (owned) copy of the map
// key — the stable key every fire-bucket registration uses, so borrowed
// arena-view keys never outlive their tuple.
type sessList[A any] struct {
	s   []session[A]
	key tuple.Key
}

// skBucket lists keys with a session scheduled to fire at one instant.
type skBucket struct{ keys []tuple.Key }

type sessionOp[A any] struct {
	cfg    SessionOp[A]
	tm     *engine.Timers
	byKey  *state.Map[tuple.Key, sessList[A]]
	byFire *state.Map[int64, skBucket]
	late   uint64
}

// NewSession builds the session-window operator; it panics on an
// invalid configuration (see New).
func NewSession[A any](cfg SessionOp[A]) engine.Operator {
	if cfg.Gap <= 0 {
		panic("window: session Gap must be positive")
	}
	if cfg.Lateness < 0 {
		panic("window: negative Lateness")
	}
	if cfg.Init == nil || cfg.Add == nil || cfg.Merge == nil || cfg.Emit == nil {
		panic("window: Init, Add, Merge and Emit are required for sessions")
	}
	return &sessionOp[A]{
		cfg:    cfg,
		byKey:  state.NewMap[tuple.Key, sessList[A]](),
		byFire: state.NewMap[int64, skBucket](),
	}
}

// SetTimers implements engine.TimerAware.
func (op *sessionOp[A]) SetTimers(tm *engine.Timers) { op.tm = tm }

func (op *sessionOp[A]) watermark() int64 {
	if op.tm == nil {
		return engine.WatermarkMin
	}
	return op.tm.Watermark()
}

// Process implements engine.Operator: place the event's own [et,
// et+Gap) proto-session, merging every open session it overlaps.
func (op *sessionOp[A]) Process(c engine.Collector, t *tuple.Tuple) error {
	et := t.Event
	var key tuple.Key
	if op.cfg.KeyField >= 0 {
		if op.cfg.KeyField >= t.Len() {
			return fmt.Errorf("window: key field %d but tuple has %d values", op.cfg.KeyField, t.Len())
		}
		key = t.Key(op.cfg.KeyField)
	}
	if et+op.cfg.Gap+op.cfg.Lateness <= op.watermark() {
		// Even a session containing only this event would already have
		// fired; any session it could have extended has, too.
		op.late++
		return nil
	}

	sl := op.byKey.Get(key)
	if sl == nil {
		// New key: canonicalize the borrowed key before it is stored (a
		// no-op, and allocation-free, for every non-string kind).
		key = key.Canon()
		sl, _ = op.byKey.GetOrCreate(key)
		sl.s = sl.s[:0]
		sl.key = key
	}
	// Build the event's [et, et+Gap) proto-session in a claimed slot at
	// the end of the key's list — not in a local, which would escape to
	// the heap through the Init/Add calls. Reviving recycled capacity
	// (rather than appending a zero value) hands Init an accumulator
	// with its previous life's internals, per the pooling contract.
	n := len(sl.s)
	if cap(sl.s) > n {
		sl.s = sl.s[:n+1]
	} else {
		sl.s = append(sl.s, session[A]{})
	}
	ns := &sl.s[n]
	ns.start, ns.end = et, et+op.cfg.Gap
	op.cfg.Init(&ns.acc)
	op.cfg.Add(&ns.acc, t)

	// Merge overlapping sessions (at most a contiguous run, list is
	// sorted by start), compacting the kept prefix in place.
	// Accumulators merge in start order so the result is
	// permutation-independent for commutative aggregates.
	kept := sl.s[:0]
	for i := 0; i < n; i++ {
		s := &sl.s[i]
		if s.start < ns.end && ns.start < s.end {
			if s.start < ns.start {
				// s precedes: fold ns into s's position keeping order.
				op.cfg.Merge(&s.acc, &ns.acc)
				ns.acc = s.acc
				ns.start = s.start
			} else {
				op.cfg.Merge(&ns.acc, &s.acc)
			}
			if s.end > ns.end {
				ns.end = s.end
			}
		} else {
			kept = append(kept, *s)
		}
	}
	merged := *ns
	sl.s = append(kept, merged)
	slices.SortFunc(sl.s, func(a, b session[A]) int {
		switch {
		case a.start < b.start:
			return -1
		case a.start > b.start:
			return 1
		}
		return 0
	})
	op.scheduleFire(sl.key, merged.end+op.cfg.Lateness)
	return nil
}

// scheduleFire registers the (possibly updated) fire time for a key's
// session (callers pass the canonical stored key, never a borrowed
// arena view). Superseded registrations for earlier ends become stale;
// the fire path validates the end before emitting.
func (op *sessionOp[A]) scheduleFire(key tuple.Key, at int64) {
	b, fresh := op.byFire.GetOrCreate(at)
	if fresh {
		b.keys = b.keys[:0]
		if op.tm != nil {
			op.tm.RegisterEvent(at)
		}
	}
	b.keys = append(b.keys, key)
}

// OnTimer implements engine.TimerHandler: close every session whose
// (end + lateness) is exactly this instant — extended sessions have a
// later end and simply ignore the stale timer.
func (op *sessionOp[A]) OnTimer(c engine.Collector, kind engine.TimerKind, at int64) error {
	if kind != engine.EventTimer {
		return nil
	}
	b := op.byFire.Get(at)
	if b == nil {
		return nil
	}
	slices.SortFunc(b.keys, tuple.Key.Compare)
	var prev tuple.Key
	for i, key := range b.keys {
		if i > 0 && key == prev {
			continue // duplicate registration for the same key
		}
		prev = key
		sl := op.byKey.Get(key)
		if sl == nil {
			continue
		}
		kept := sl.s[:0]
		for j := range sl.s {
			s := &sl.s[j]
			if s.end+op.cfg.Lateness == at {
				op.cfg.Emit(c, key, Span{s.start, s.end}, &s.acc)
			} else {
				kept = append(kept, *s)
			}
		}
		sl.s = kept
		if len(sl.s) == 0 {
			op.byKey.Delete(key)
		}
	}
	op.byFire.Delete(at)
	return nil
}

// FlushOpen closes every open session in (fire time, key) order.
func (op *sessionOp[A]) FlushOpen(c engine.Collector) error {
	fires := make([]int64, 0, op.byFire.Len())
	op.byFire.Range(func(at int64, _ *skBucket) bool {
		fires = append(fires, at)
		return true
	})
	slices.Sort(fires)
	for _, at := range fires {
		if err := op.OnTimer(c, engine.EventTimer, at); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSnapshot implements checkpoint.Validator (see
// windowOp.ValidateSnapshot).
func (op *sessionOp[A]) ValidateSnapshot() error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs SessionOp.Save and SessionOp.Load")
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter: every key's open
// sessions (sorted by key, and per key by start — the list invariant),
// plus the late counter. The fire-time index is rebuilt by Restore.
func (op *sessionOp[A]) Snapshot(enc *checkpoint.Encoder) error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs SessionOp.Save and SessionOp.Load")
	}
	enc.Uint64(op.late)
	enc.Len(op.byKey.Len())
	op.byKey.RangeSorted(tuple.Key.Compare, func(key tuple.Key, sl *sessList[A]) bool {
		enc.Key(key)
		enc.Len(len(sl.s))
		for i := range sl.s {
			enc.Int64(sl.s[i].start)
			enc.Int64(sl.s[i].end)
			op.cfg.Save(enc, &sl.s[i].acc)
		}
		return true
	})
	return nil
}

// Restore implements checkpoint.Snapshotter, replacing the operator's
// state and re-arming each restored session's fire timer.
func (op *sessionOp[A]) Restore(dec *checkpoint.Decoder) error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs SessionOp.Save and SessionOp.Load")
	}
	op.byKey.Clear()
	op.byFire.Clear()
	op.late = dec.Uint64()
	nk := dec.Len()
	for i := 0; i < nk && dec.Err() == nil; i++ {
		key := dec.Key()
		sl, created := op.byKey.GetOrCreate(key)
		if !created {
			return fmt.Errorf("window: duplicate session key in snapshot")
		}
		sl.s = sl.s[:0]
		sl.key = key
		ns := dec.Len()
		for j := 0; j < ns && dec.Err() == nil; j++ {
			s := session[A]{start: dec.Int64(), end: dec.Int64()}
			op.cfg.Init(&s.acc)
			if err := op.cfg.Load(dec, &s.acc); err != nil {
				return err
			}
			sl.s = append(sl.s, s)
			op.scheduleFire(key, s.end+op.cfg.Lateness)
		}
	}
	return dec.Err()
}

// LateCount reports dropped late tuples.
func (op *sessionOp[A]) LateCount() uint64 { return op.late }

// OpenSessions reports the number of open sessions across keys.
func (op *sessionOp[A]) OpenSessions() int {
	n := 0
	op.byKey.Range(func(_ tuple.Key, sl *sessList[A]) bool {
		n += len(sl.s)
		return true
	})
	return n
}
