package window

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

func sessionCountOp(gap, lateness int64, out *[]emission) engine.Operator {
	return NewSession(SessionOp[countAcc]{
		KeyField: 0,
		Gap:      gap,
		Lateness: lateness,
		Init:     func(a *countAcc) { *a = countAcc{} },
		Add: func(a *countAcc, t *tuple.Tuple) {
			a.count++
			a.sum += t.Int(1)
		},
		Merge: func(dst, src *countAcc) {
			dst.count += src.count
			dst.sum += src.sum
		},
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *countAcc) {
			*out = append(*out, emission{key: key, w: w, count: a.count, sum: a.sum})
		},
	})
}

// sessionReference computes expected sessions: per key, sort event
// times, split where consecutive events are >= gap apart.
func sessionReference(events []event, gap int64) map[string]int64 {
	byKey := map[string][]int64{}
	for _, ev := range events {
		byKey[ev.key] = append(byKey[ev.key], ev.et)
	}
	want := map[string]int64{} // "key/start/end" -> count
	for k, ets := range byKey {
		slices.Sort(ets)
		start, count := ets[0], int64(1)
		last := ets[0]
		for _, et := range ets[1:] {
			if et-last >= gap {
				want[fmt.Sprintf("%s/%d/%d", k, start, last+gap)] = count
				start, count = et, 0
			}
			count++
			last = et
		}
		want[fmt.Sprintf("%s/%d/%d", k, start, last+gap)] = count
	}
	return want
}

func TestSessionMergesBridgingEvents(t *testing.T) {
	var out []emission
	op := sessionCountOp(50, 0, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(key string, et int64) {
		in.Reset()
		in.AppendStr(key)
		in.AppendInt(1)
		in.Event = et
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
	}
	// Two separate sessions for "a"...
	add("a", 0)
	add("a", 100)
	if got := op.(*sessionOp[countAcc]).OpenSessions(); got != 2 {
		t.Fatalf("open sessions = %d, want 2", got)
	}
	// ...bridged into one by an event overlapping both ([60,110) meets
	// [100,150), then [20,70) meets both [0,50) and [60,150)).
	add("a", 60)
	add("a", 20)
	if got := op.(*sessionOp[countAcc]).OpenSessions(); got != 1 {
		t.Fatalf("open sessions after bridge = %d, want 1", got)
	}
	tm.AdvanceWatermark(engine.WatermarkMax, fire)
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out[0].w != (Span{0, 150}) || out[0].count != 4 {
		t.Fatalf("merged session = %+v, want [0,150) count 4", out[0])
	}
}

func TestSessionFiresOnGapNotAtEnd(t *testing.T) {
	var out []emission
	op := sessionCountOp(50, 0, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(et int64) {
		in.Reset()
		in.AppendStr("k")
		in.AppendInt(1)
		in.Event = et
		op.Process(nil, in)
	}
	add(0)
	add(30) // extends the session to [0, 80)
	tm.AdvanceWatermark(60, fire)
	if len(out) != 0 {
		t.Fatalf("session fired early (stale timer at 50 must be ignored): %+v", out)
	}
	tm.AdvanceWatermark(80, fire)
	if len(out) != 1 || out[0].w != (Span{0, 80}) || out[0].count != 2 {
		t.Fatalf("out = %+v", out)
	}
	// A fresh event after the close starts a new session.
	add(200)
	tm.AdvanceWatermark(engine.WatermarkMax, fire)
	if len(out) != 2 || out[1].w != (Span{200, 250}) {
		t.Fatalf("out = %+v", out)
	}
}

func TestSessionLateDrop(t *testing.T) {
	var out []emission
	op := sessionCountOp(50, 0, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(et int64) {
		in.Reset()
		in.AppendStr("k")
		in.AppendInt(1)
		in.Event = et
		op.Process(nil, in)
	}
	add(0)
	tm.AdvanceWatermark(100, fire) // session [0,50) fired
	add(10)                        // 10+50 <= 100: late, dropped
	tm.AdvanceWatermark(engine.WatermarkMax, fire)
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if lc := op.(LateCounter).LateCount(); lc != 1 {
		t.Fatalf("late = %d, want 1", lc)
	}
}

// TestSessionPropertyDeterministic: random bursty streams, two bounded
// shuffles — identical, reference-matching, ordered output.
func TestSessionPropertyDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	keys := []string{"w1", "w2", "w3", "w4"}
	const gap = 40
	for trial := 0; trial < 5; trial++ {
		// Bursty: sessions are clusters with intra-gap spacing.
		var base []event
		for _, k := range keys {
			cursor := int64(r.Intn(100))
			for s := 0; s < 6; s++ {
				for e := 0; e < 1+r.Intn(8); e++ {
					base = append(base, event{key: k, et: cursor})
					cursor += int64(r.Intn(int(gap)))
				}
				cursor += gap + int64(r.Intn(200)) // inactivity: close the session
			}
		}
		permA := append([]event(nil), base...)
		r.Shuffle(len(permA), func(i, j int) { permA[i], permA[j] = permA[j], permA[i] })
		permB := append([]event(nil), base...)
		r.Shuffle(len(permB), func(i, j int) { permB[i], permB[j] = permB[j], permB[i] })

		want := sessionReference(base, gap)
		run := func(events []event) []emission {
			var out []emission
			op := sessionCountOp(gap, 0, &out)
			tm := engine.NewTimers()
			op.(engine.TimerAware).SetTimers(tm)
			th := op.(engine.TimerHandler)
			in := &tuple.Tuple{}
			for _, ev := range events {
				in.Reset()
				in.AppendStr(ev.key)
				in.AppendInt(1)
				in.Event = ev.et
				if err := op.Process(nil, in); err != nil {
					t.Fatal(err)
				}
			}
			// Full shuffles need the watermark held back until the end.
			if err := tm.AdvanceWatermark(engine.WatermarkMax, func(at int64) error {
				return th.OnTimer(nil, engine.EventTimer, at)
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		outA, outB := run(permA), run(permB)
		if len(outA) != len(want) {
			t.Fatalf("trial %d: %d sessions, want %d", trial, len(outA), len(want))
		}
		for _, e := range outA {
			id := fmt.Sprintf("%s/%d/%d", e.key, e.w.Start, e.w.End)
			if want[id] != e.count {
				t.Fatalf("trial %d: session %s count %d, want %d", trial, id, e.count, want[id])
			}
		}
		assertOrdered(t, outA)
		assertSameEmissions(t, outA, outB)
	}
}
