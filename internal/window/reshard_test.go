package window

// Re-sharding property tests: a keyed window snapshot taken at
// replication r and re-encoded at replication r' must preserve every
// (key, value) pair exactly once, assign each key to the shard its hash
// selects (the owner the engine's fields routing will deliver to), and
// produce shards that are valid, byte-stable Restore payloads.

import (
	"bytes"
	"fmt"
	"testing"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

func TestReshardPreservesEveryPairAndOwnership(t *testing.T) {
	const oldRepl = 3
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	events := randomEvents(7, 4000, keys, 50)

	// Partition the stream across oldRepl operator instances exactly
	// like the engine's fields routing would, with no watermark driver:
	// every window stays open, so the snapshots hold the full state.
	var sinkhole []emission
	ops := make([]engine.Operator, oldRepl)
	for i := range ops {
		ops[i] = snapCountOp(100, 100, 0, &sinkhole)
	}
	in := &tuple.Tuple{}
	for _, ev := range events {
		in.Reset()
		in.AppendStr(ev.key)
		in.AppendInt(1)
		in.Event = ev.et
		owner := tuple.StrKey(ev.key).Hash() % uint64(oldRepl)
		if err := ops[owner].Process(nil, in); err != nil {
			t.Fatal(err)
		}
	}
	old := make([][]byte, oldRepl)
	for i, op := range ops {
		enc := checkpoint.NewEncoder()
		if err := op.(checkpoint.Snapshotter).Snapshot(enc); err != nil {
			t.Fatal(err)
		}
		old[i] = bytes.Clone(enc.Bytes())
	}

	// The expected union of (key, start) -> (count, sum).
	type pair struct {
		key   string
		start int64
	}
	type val struct{ count, sum int64 }
	want := map[pair]val{}
	for _, payload := range old {
		dec := checkpoint.NewDecoder(payload)
		dec.Uint64() // late counter
		n := dec.Len()
		for i := 0; i < n; i++ {
			p := pair{key: dec.Key().Str(), start: dec.Int64()}
			v := val{count: dec.Int64(), sum: dec.Int64()}
			if _, dup := want[p]; dup {
				t.Fatalf("duplicate %v in source snapshots", p)
			}
			want[p] = v
		}
		if err := dec.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if len(want) == 0 {
		t.Fatal("test produced no open windows")
	}

	for _, newRepl := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("to_%d", newRepl), func(t *testing.T) {
			rs := snapCountOp(100, 100, 0, &sinkhole).(checkpoint.Resharder)
			shards, err := rs.Reshard(old, newRepl)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != newRepl {
				t.Fatalf("got %d shards, want %d", len(shards), newRepl)
			}
			seen := map[pair]val{}
			for s, payload := range shards {
				dec := checkpoint.NewDecoder(payload)
				dec.Uint64()
				n := dec.Len()
				for i := 0; i < n; i++ {
					key := dec.Key()
					p := pair{key: key.Str(), start: dec.Int64()}
					v := val{count: dec.Int64(), sum: dec.Int64()}
					if owner := int(key.Hash() % uint64(newRepl)); owner != s {
						t.Fatalf("key %q landed in shard %d, its owner is %d", p.key, s, owner)
					}
					if _, dup := seen[p]; dup {
						t.Fatalf("%v assigned to more than one shard", p)
					}
					seen[p] = v
				}
				if err := dec.Err(); err != nil {
					t.Fatalf("shard %d: %v", s, err)
				}
				if dec.Remaining() != 0 {
					t.Fatalf("shard %d has %d trailing bytes", s, dec.Remaining())
				}

				// Each shard must restore into a fresh operator and
				// re-snapshot to identical bytes (valid + deterministic).
				fresh := snapCountOp(100, 100, 0, &sinkhole)
				if err := fresh.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(payload)); err != nil {
					t.Fatalf("shard %d restore: %v", s, err)
				}
				enc := checkpoint.NewEncoder()
				if err := fresh.(checkpoint.Snapshotter).Snapshot(enc); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(enc.Bytes(), payload) {
					t.Fatalf("shard %d is not byte-stable through restore", s)
				}
			}
			if len(seen) != len(want) {
				t.Fatalf("reshard kept %d pairs, want %d", len(seen), len(want))
			}
			for p, v := range want {
				if seen[p] != v {
					t.Fatalf("pair %v: got %+v, want %+v", p, seen[p], v)
				}
			}
		})
	}
}

func TestReshardRejectsMissingCodecsAndBadCounts(t *testing.T) {
	var sinkhole []emission
	good := snapCountOp(100, 100, 0, &sinkhole).(checkpoint.Resharder)
	if _, err := good.Reshard(nil, 0); err == nil {
		t.Fatal("Reshard to 0 replicas must fail")
	}
	bad := New(Op[countAcc]{
		KeyField: 0, Size: 100,
		Init: func(a *countAcc) { *a = countAcc{} },
		Add:  func(a *countAcc, t *tuple.Tuple) { a.count++ },
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *countAcc) {},
	}).(checkpoint.Resharder)
	if _, err := bad.Reshard(nil, 2); err == nil {
		t.Fatal("Reshard without Save/Load must fail")
	}
}
