// Package window implements event-time windowed aggregation over keyed
// streams: tumbling and sliding windows (Op) and session windows
// (SessionOp), driven by the engine's watermark punctuations and
// per-task timer service. This is the abstraction the paper's
// evaluation workloads kept hand-rolling — WC's word counts, SD's
// rolling per-device statistics, LR's per-segment minute statistics are
// all "aggregate per key per bounded time span" — now with real
// event-time semantics: out-of-order input is placed by the event
// timestamp it carries, results fire when the watermark (not the wall
// clock, not arrival order) says a window is complete, and every fire
// is deterministically ordered, so a topology's windowed output is a
// pure function of the event stream.
//
// # Mechanics
//
// A window operator implements engine.Operator plus the engine's
// TimerAware/TimerHandler hooks. Process assigns each tuple to its
// window(s) by Tuple.Event and folds it into a pooled per-(key, window)
// accumulator (state.Map — no per-tuple allocation in steady state).
// The first tuple of a window registers an event-time timer at the
// window's fire time (end + allowed lateness); when the task's
// watermark passes it, the engine calls OnTimer on the task goroutine
// and the operator emits every window firing at that instant in
// ascending key order, then recycles their state. A tuple arriving
// behind the watermark skips panes that already fired; one none of
// whose windows remain open is dropped and counted (LateCount).
//
// Operators without a timer service (isolated profiling harnesses) can
// still run: windows accumulate and are drained explicitly via
// FlushOpen.
package window

import (
	"cmp"
	"fmt"
	"slices"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/state"
	"briskstream/internal/tuple"
)

// Span is one window's half-open event-time interval [Start, End).
type Span struct{ Start, End int64 }

// Op configures a keyed tumbling or sliding window aggregation. A is
// the accumulator type; entries are pooled, so Init must fully reset an
// accumulator (clearing, not reallocating, any internal maps/slices —
// that is what keeps the hot path allocation-free).
type Op[A any] struct {
	// KeyField is the tuple field to key by; negative keys the whole
	// stream into one group (a global window).
	KeyField int
	// Size is the window length in event-time units. Required.
	Size int64
	// Slide is the pane offset for sliding windows; 0 (or Size) makes
	// the window tumbling. Size must be a multiple of nothing — any
	// positive Slide works, each event lands in ceil(Size/Slide) spans.
	Slide int64
	// Lateness delays each window's fire time past its end, tolerating
	// that much event-time disorder beyond what the watermark already
	// promises. Tuples for windows that have fired are dropped.
	Lateness int64
	// Init resets a (possibly recycled) accumulator.
	Init func(acc *A)
	// Add folds one tuple into the accumulator. The tuple is only valid
	// during the call (the engine recycles it); values read out of it
	// are immutable and may be kept.
	Add func(acc *A, t *tuple.Tuple)
	// Emit publishes one completed window. The key is the typed group
	// key (KindNone for global windows); re-emit it with
	// Tuple.AppendKey. Emissions inherit the firing watermark as their
	// event timestamp unless Emit assigns its own (stamping the window
	// end is conventional).
	Emit func(c engine.Collector, key tuple.Key, w Span, acc *A)
	// Save and Load (de)serialize one accumulator for checkpointing;
	// both optional, but required together once the topology runs with
	// checkpointing enabled — the operator's Snapshot fails without
	// them. Load receives an Init-reset accumulator. The pair must
	// round-trip: Load(Save(acc)) must rebuild an accumulator that
	// aggregates identically.
	Save func(enc *checkpoint.Encoder, acc *A)
	Load func(dec *checkpoint.Decoder, acc *A) error

	// AddRow and Merge enable the vectorized (columnar batch) path;
	// both optional, but required together — with only one set the
	// operator reports WantsBatches false and the engine keeps the edge
	// scalar. AddRow folds row r of a batch into an accumulator —
	// either a per-batch partial (an Init-reset A, later Merge-folded
	// into the window's live accumulator) or, when the runtime's
	// feedback heuristic finds grouping unprofitable, the live
	// accumulator directly. The pair must be equivalent to calling Add
	// once per row: for any rows and any split into partials,
	// Merge(acc, fold-with-AddRow(rows)) must leave acc exactly as the
	// Add calls would — the batch/scalar equivalence property tests
	// hold operators to this.
	AddRow func(acc *A, b *tuple.Batch, row int)
	Merge  func(acc *A, part *A)
}

// winKey identifies one (key, window start) accumulator.
type winKey struct {
	key   tuple.Key
	start int64
}

// bucket lists the windows sharing one fire timestamp.
type bucket struct{ keys []winKey }

// windowOp is the runtime for Op.
type windowOp[A any] struct {
	cfg    Op[A]
	tm     *engine.Timers
	wins   *state.Map[winKey, A]
	byFire *state.Map[int64, bucket]
	spans  []Span // per-tuple scratch
	late   uint64

	// Per-batch vectorization scratch, reused across ProcessBatch calls
	// so the steady state allocates nothing: groups indexes the batch's
	// distinct (key, window) pairs into parts (the partial
	// accumulators), pkeys remembers them in first-seen order. Keys in
	// groups may borrow the batch's arena — the map is cleared before
	// the next batch, never read after ProcessBatch returns.
	groups map[winKey]int
	pkeys  []winKey
	parts  []A
	rowBuf tuple.Tuple // scalar-fallback scratch for forced-columnar edges

	// Grouping-amortization feedback. Pre-accumulating a batch into
	// partials pays only when several rows fold into the same (key,
	// window) — otherwise the scratch map is a second probe per row-span
	// on top of the live-pane probe it was meant to save. Each grouped
	// batch measures its fold ratio; a streak of unprofitable batches
	// flips ProcessBatch to direct accumulation (AddRow straight into
	// the live panes), and a periodic re-probe batch flips back when the
	// key distribution has narrowed.
	direct    bool
	dirStreak int
	probeLeft int
}

// New builds the operator. It panics on an invalid configuration —
// builders run at topology wiring time, where a panic is a programming
// error, not a data-path condition.
func New[A any](cfg Op[A]) engine.Operator {
	if cfg.Size <= 0 {
		panic("window: Size must be positive")
	}
	if cfg.Slide < 0 || cfg.Slide > cfg.Size {
		panic("window: Slide must be in (0, Size]")
	}
	if cfg.Slide == 0 {
		cfg.Slide = cfg.Size // tumbling
	}
	if cfg.Lateness < 0 {
		panic("window: negative Lateness")
	}
	if cfg.Init == nil || cfg.Add == nil || cfg.Emit == nil {
		panic("window: Init, Add and Emit are required")
	}
	return &windowOp[A]{
		cfg:    cfg,
		wins:   state.NewMap[winKey, A](),
		byFire: state.NewMap[int64, bucket](),
	}
}

// SetTimers implements engine.TimerAware.
func (op *windowOp[A]) SetTimers(tm *engine.Timers) { op.tm = tm }

// watermark returns the task watermark, or -inf without a timer service
// (isolated harnesses: nothing is ever late, nothing auto-fires).
func (op *windowOp[A]) watermark() int64 {
	if op.tm == nil {
		return engine.WatermarkMin
	}
	return op.tm.Watermark()
}

// Process implements engine.Operator.
func (op *windowOp[A]) Process(c engine.Collector, t *tuple.Tuple) error {
	et := t.Event
	var key tuple.Key
	if op.cfg.KeyField >= 0 {
		if op.cfg.KeyField >= t.Len() {
			return fmt.Errorf("window: key field %d but tuple has %d values", op.cfg.KeyField, t.Len())
		}
		key = t.Key(op.cfg.KeyField)
	}
	wm := op.watermark()

	// Assign: all spans with start in (et-Size, et] on the Slide grid.
	op.spans = op.spans[:0]
	for start := floorDiv(et, op.cfg.Slide) * op.cfg.Slide; start > et-op.cfg.Size; start -= op.cfg.Slide {
		op.spans = append(op.spans, Span{start, start + op.cfg.Size})
	}

	accepted := false
	canonical := false
	for _, sp := range op.spans {
		fireAt := sp.End + op.cfg.Lateness
		if fireAt <= wm {
			continue // this window already fired; skip the pane
		}
		accepted = true
		wk := winKey{key: key, start: sp.Start}
		acc := op.wins.Get(wk)
		if acc == nil {
			// New window: the stored key must outlive this tuple, so the
			// borrowed arena-view key is canonicalized once per tuple (a
			// no-op — and no allocation — for every non-string kind;
			// intern hot string keys as symbols to avoid the clone).
			if !canonical {
				key = key.Canon()
				wk.key = key
				canonical = true
			}
			acc, _ = op.wins.GetOrCreate(wk)
			op.cfg.Init(acc)
			b, fresh := op.byFire.GetOrCreate(fireAt)
			if fresh {
				b.keys = b.keys[:0] // recycled bucket: drop its old life
				if op.tm != nil {
					op.tm.RegisterEvent(fireAt)
				}
			}
			b.keys = append(b.keys, wk)
		}
		op.cfg.Add(acc, t)
	}
	if !accepted {
		op.late++ // every assigned window had fired: the tuple is dropped
	}
	return nil
}

// WantsBatches implements engine.BatchGater: without the AddRow/Merge
// hooks the vectorized path would only re-run the scalar fallback with
// an extra materialization copy, so the operator asks the engine to
// keep its input edges scalar.
func (op *windowOp[A]) WantsBatches() bool {
	return op.cfg.AddRow != nil && op.cfg.Merge != nil
}

// pane returns the live accumulator for wk, creating it on first touch:
// the possibly arena-borrowed key is canonicalized before it outlives
// its tuple or batch, the accumulator Init-reset, and the window's fire
// timer registered — exactly the scalar Process's new-window protocol.
func (op *windowOp[A]) pane(wk winKey) *A {
	acc := op.wins.Get(wk)
	if acc != nil {
		return acc
	}
	wk.key = wk.key.Canon()
	acc, _ = op.wins.GetOrCreate(wk)
	op.cfg.Init(acc)
	fireAt := wk.start + op.cfg.Size + op.cfg.Lateness
	bkt, fresh := op.byFire.GetOrCreate(fireAt)
	if fresh {
		bkt.keys = bkt.keys[:0] // recycled bucket: drop its old life
		if op.tm != nil {
			op.tm.RegisterEvent(fireAt)
		}
	}
	bkt.keys = append(bkt.keys, wk)
	return acc
}

// Grouping-feedback thresholds: a grouped batch is profitable when its
// row-span entries outnumber its distinct groups by at least 3:2
// (below that the scratch map costs more probes than it saves);
// groupLoseStreak consecutive unprofitable batches switch to direct
// accumulation, re-probed every groupReprobeEvery direct batches so a
// narrowing key distribution can switch back.
const (
	groupLoseStreak   = 4
	groupReprobeEvery = 256
)

// ProcessBatch implements engine.BatchOperator. The default mode groups
// the batch's rows by (key, window) into per-batch partial accumulators
// (AddRow), then merges each partial into its live window once (Merge):
// one scratch-map probe and one Merge per distinct (key, window)
// replace one state.Map probe per row-span, which is where the
// vectorized win comes from on skewed or low-cardinality keys. When the
// measured fold ratio says rows rarely share a pane (high-cardinality
// keys — the scratch map then only doubles the probes), the feedback
// heuristic switches to direct mode: AddRow straight into the live
// panes, no intermediate partials. Both modes read the watermark once —
// it only advances between batches, never inside one — and pane
// placement, late-drop counting and timer registration match the scalar
// Process exactly.
func (op *windowOp[A]) ProcessBatch(c engine.Collector, b *tuple.Batch) error {
	if op.cfg.AddRow == nil || op.cfg.Merge == nil {
		// Forced-columnar edge (Config.ColumnarAll) without the hooks:
		// run the scalar path row by row off an operator-owned scratch.
		for r := 0; r < b.Len(); r++ {
			b.CopyRowTo(r, &op.rowBuf)
			if err := op.Process(c, &op.rowBuf); err != nil {
				return err
			}
		}
		return nil
	}
	if op.cfg.KeyField >= 0 && op.cfg.KeyField >= b.Cols() {
		return fmt.Errorf("window: key field %d but batch has %d columns", op.cfg.KeyField, b.Cols())
	}
	wm := op.watermark()
	n := b.Len()

	if op.direct {
		if op.probeLeft--; op.probeLeft <= 0 {
			op.direct, op.dirStreak = false, 0 // re-probe grouped next batch
		}
		for r := 0; r < n; r++ {
			et := b.Event(r)
			var key tuple.Key
			if op.cfg.KeyField >= 0 {
				key = b.Key(op.cfg.KeyField, r)
			}
			accepted := false
			for start := floorDiv(et, op.cfg.Slide) * op.cfg.Slide; start > et-op.cfg.Size; start -= op.cfg.Slide {
				if start+op.cfg.Size+op.cfg.Lateness <= wm {
					continue // this window already fired; skip the pane
				}
				accepted = true
				op.cfg.AddRow(op.pane(winKey{key: key, start: start}), b, r)
			}
			if !accepted {
				op.late++ // every assigned window had fired: the row is dropped
			}
		}
		return nil
	}

	if op.groups == nil {
		op.groups = make(map[winKey]int)
	}
	clear(op.groups)
	op.pkeys = op.pkeys[:0]
	entries := 0
	for r := 0; r < n; r++ {
		et := b.Event(r)
		var key tuple.Key
		if op.cfg.KeyField >= 0 {
			key = b.Key(op.cfg.KeyField, r)
		}
		accepted := false
		for start := floorDiv(et, op.cfg.Slide) * op.cfg.Slide; start > et-op.cfg.Size; start -= op.cfg.Slide {
			if start+op.cfg.Size+op.cfg.Lateness <= wm {
				continue // this window already fired; skip the pane
			}
			accepted = true
			entries++
			wk := winKey{key: key, start: start}
			gi, ok := op.groups[wk]
			if !ok {
				gi = len(op.pkeys)
				op.groups[wk] = gi
				op.pkeys = append(op.pkeys, wk)
				if gi == len(op.parts) {
					op.parts = append(op.parts, *new(A))
				}
				op.cfg.Init(&op.parts[gi])
			}
			op.cfg.AddRow(&op.parts[gi], b, r)
		}
		if !accepted {
			op.late++ // every assigned window had fired: the row is dropped
		}
	}
	for gi, wk := range op.pkeys {
		op.cfg.Merge(op.pane(wk), &op.parts[gi])
	}
	// Feedback: a near-full batch whose entries barely outnumber its
	// groups folded almost nothing (tiny batches are too noisy to judge).
	if entries >= 16 {
		if 2*entries < 3*len(op.pkeys) {
			if op.dirStreak++; op.dirStreak >= groupLoseStreak {
				op.direct, op.probeLeft = true, groupReprobeEvery
			}
		} else {
			op.dirStreak = 0
		}
	}
	return nil
}

// OnTimer implements engine.TimerHandler: fire every window scheduled
// at this instant, in ascending key order (all share a start — fixed
// window sizes make equal fire times equal spans), then recycle.
func (op *windowOp[A]) OnTimer(c engine.Collector, kind engine.TimerKind, at int64) error {
	if kind != engine.EventTimer {
		return nil
	}
	b := op.byFire.Get(at)
	if b == nil {
		return nil // shared per-task wheel: someone else's timer
	}
	slices.SortFunc(b.keys, func(x, y winKey) int {
		if d := cmp.Compare(x.start, y.start); d != 0 {
			return d
		}
		return x.key.Compare(y.key)
	})
	for _, wk := range b.keys {
		acc := op.wins.Get(wk)
		if acc == nil {
			continue
		}
		op.cfg.Emit(c, wk.key, Span{wk.start, wk.start + op.cfg.Size}, acc)
		op.wins.Delete(wk)
	}
	op.byFire.Delete(at)
	return nil
}

// FlushOpen emits every open window in (fire time, key) order and
// clears the state. Harnesses without watermark infrastructure
// (operator profiling, batch drains) use it as the end-of-input flush.
func (op *windowOp[A]) FlushOpen(c engine.Collector) error {
	fires := make([]int64, 0, op.byFire.Len())
	op.byFire.Range(func(at int64, _ *bucket) bool {
		fires = append(fires, at)
		return true
	})
	slices.Sort(fires)
	for _, at := range fires {
		if err := op.OnTimer(c, engine.EventTimer, at); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSnapshot implements checkpoint.Validator: under
// checkpointing the engine rejects the topology at build time when the
// codecs are missing, instead of failing at the first barrier.
func (op *windowOp[A]) ValidateSnapshot() error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs Op.Save and Op.Load")
	}
	return nil
}

// compareWinKeys orders accumulators deterministically for snapshot
// encoding: by window start, then by key.
func compareWinKeys(a, b winKey) int {
	if d := cmp.Compare(a.start, b.start); d != 0 {
		return d
	}
	return a.key.Compare(b.key)
}

// Snapshot implements checkpoint.Snapshotter: the open (key, window)
// accumulators and the late counter, encoded in (start, key) order so
// the same state always serializes to the same bytes. The fire-time
// index is not encoded — Restore rebuilds it (and re-registers the
// event timers) from the windows themselves.
func (op *windowOp[A]) Snapshot(enc *checkpoint.Encoder) error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs Op.Save and Op.Load")
	}
	enc.Uint64(op.late)
	enc.Len(op.wins.Len())
	op.wins.RangeSorted(compareWinKeys, func(wk winKey, acc *A) bool {
		enc.Key(wk.key)
		enc.Int64(wk.start)
		op.cfg.Save(enc, acc)
		return true
	})
	return nil
}

// Restore implements checkpoint.Snapshotter, replacing the operator's
// state with the snapshot's and re-arming one event timer per distinct
// fire time.
func (op *windowOp[A]) Restore(dec *checkpoint.Decoder) error {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return fmt.Errorf("window: checkpointing needs Op.Save and Op.Load")
	}
	op.wins.Clear()
	op.byFire.Clear()
	op.late = dec.Uint64()
	n := dec.Len()
	for i := 0; i < n && dec.Err() == nil; i++ {
		key := dec.Key()
		start := dec.Int64()
		wk := winKey{key: key, start: start}
		acc, created := op.wins.GetOrCreate(wk)
		if !created {
			return fmt.Errorf("window: duplicate (key, start) in snapshot")
		}
		op.cfg.Init(acc)
		if err := op.cfg.Load(dec, acc); err != nil {
			return err
		}
		fireAt := start + op.cfg.Size + op.cfg.Lateness
		b, fresh := op.byFire.GetOrCreate(fireAt)
		if fresh {
			b.keys = b.keys[:0]
			if op.tm != nil {
				op.tm.RegisterEvent(fireAt)
			}
		}
		b.keys = append(b.keys, wk)
	}
	return dec.Err()
}

// Reshard implements checkpoint.Resharder: it re-partitions the union
// of the old replicas' snapshot payloads across n new replicas, routing
// every (key, window) accumulator to shard key.Hash() % n — the owner
// the engine's fields partitioning will route that key's tuples to
// after the rescale. Each output shard is a valid Restore payload with
// its entries in the canonical (start, key) order; the late counter
// (global, not keyed) is carried on shard 0.
func (op *windowOp[A]) Reshard(old [][]byte, n int) ([][]byte, error) {
	if op.cfg.Save == nil || op.cfg.Load == nil {
		return nil, fmt.Errorf("window: resharding needs Op.Save and Op.Load")
	}
	if n <= 0 {
		return nil, fmt.Errorf("window: reshard to %d replicas", n)
	}
	type entry struct {
		wk  winKey
		acc []byte
	}
	shards := make([][]entry, n)
	var late uint64
	var acc A
	ebuf := checkpoint.NewEncoder()
	for _, payload := range old {
		dec := checkpoint.NewDecoder(payload)
		late += dec.Uint64()
		cnt := dec.Len()
		for i := 0; i < cnt && dec.Err() == nil; i++ {
			key := dec.Key()
			start := dec.Int64()
			op.cfg.Init(&acc)
			if err := op.cfg.Load(dec, &acc); err != nil {
				return nil, err
			}
			ebuf.Reset()
			op.cfg.Save(ebuf, &acc)
			s := int(key.Hash() % uint64(n))
			shards[s] = append(shards[s], entry{winKey{key: key, start: start}, slices.Clone(ebuf.Bytes())})
		}
		if err := dec.Err(); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, n)
	for s := range shards {
		slices.SortFunc(shards[s], func(a, b entry) int { return compareWinKeys(a.wk, b.wk) })
		enc := checkpoint.NewEncoder()
		if s == 0 {
			enc.Uint64(late)
		} else {
			enc.Uint64(0)
		}
		enc.Len(len(shards[s]))
		for _, e := range shards[s] {
			enc.Key(e.wk.key)
			enc.Int64(e.wk.start)
			enc.Raw(e.acc)
		}
		out[s] = enc.Bytes()
	}
	return out, nil
}

// LateCount reports tuples dropped entirely: every window they were
// assigned to had already fired. A tuple that still lands in at least
// one open sliding pane is not counted. (The session operator counts
// the same unit: whole dropped tuples.)
func (op *windowOp[A]) LateCount() uint64 { return op.late }

// OpenWindows reports the number of accumulating (key, window) pairs.
func (op *windowOp[A]) OpenWindows() int { return op.wins.Len() }

// Flusher is implemented by the window operators: FlushOpen drains all
// open state, emitting in deterministic order. Profiling harnesses use
// it in place of watermark-driven firing.
type Flusher interface {
	FlushOpen(c engine.Collector) error
}

// LateCounter exposes the late-drop counter of a window operator.
type LateCounter interface {
	LateCount() uint64
}

// floorDiv is integer division rounding toward negative infinity, so
// window starts align on the grid for negative event times too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
