package window

// Property tests: tumbling and sliding windows produce correct,
// deterministically-ordered results under event time with out-of-order
// input, and the steady-state aggregation path does not allocate.

import (
	"fmt"
	"math/rand"
	"testing"

	"briskstream/internal/engine"
	"briskstream/internal/tuple"
)

// event is one test input.
type event struct {
	key string
	et  int64
}

// emission records one fired window.
type emission struct {
	key   tuple.Key
	w     Span
	count int64
	sum   int64
}

// countOp builds a counting/summing window op whose emissions append to
// *out (the collector is unused — window tests do not need an engine).
type countAcc struct {
	count int64
	sum   int64
}

func countOp(size, slide, lateness int64, out *[]emission) engine.Operator {
	return New(Op[countAcc]{
		KeyField: 0,
		Size:     size,
		Slide:    slide,
		Lateness: lateness,
		Init:     func(a *countAcc) { *a = countAcc{} },
		Add: func(a *countAcc, t *tuple.Tuple) {
			a.count++
			a.sum += t.Int(1)
		},
		Emit: func(c engine.Collector, key tuple.Key, w Span, a *countAcc) {
			*out = append(*out, emission{key: key, w: w, count: a.count, sum: a.sum})
		},
	})
}

// feed drives events through the operator with a watermark that lags
// the maximum seen event time by lag (advanced every wmEvery events),
// then flushes with the final watermark. It returns the op for
// inspection.
func feed(t *testing.T, op engine.Operator, events []event, wmEvery int, lag int64) {
	t.Helper()
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }
	maxEt := int64(-1 << 62)
	in := &tuple.Tuple{}
	for i, ev := range events {
		in.Reset()
		in.AppendStr(ev.key)
		in.AppendInt(1)
		in.Event = ev.et
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
		if ev.et > maxEt {
			maxEt = ev.et
		}
		if (i+1)%wmEvery == 0 {
			if err := tm.AdvanceWatermark(maxEt-lag, fire); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tm.AdvanceWatermark(engine.WatermarkMax, fire); err != nil {
		t.Fatal(err)
	}
}

// reference computes the expected (key, window) -> count grouping for
// fixed-size windows, assuming nothing is late.
func reference(events []event, size, slide int64) map[string]int64 {
	if slide == 0 {
		slide = size
	}
	want := map[string]int64{}
	for _, ev := range events {
		for start := floorDiv(ev.et, slide) * slide; start > ev.et-size; start -= slide {
			want[fmt.Sprintf("%s/%d", ev.key, start)]++
		}
	}
	return want
}

// genEvents builds a random stream and returns two independent
// bounded-displacement shuffles of it (events move at most maxShift
// positions, so a lagging watermark never makes anything late).
func genEvents(r *rand.Rand, n int, keys []string, maxEt int64, maxShift int) ([]event, []event) {
	base := make([]event, n)
	for i := range base {
		base[i] = event{key: keys[r.Intn(len(keys))], et: r.Int63n(maxEt)}
	}
	shuffle := func(seed int64) []event {
		rr := rand.New(rand.NewSource(seed))
		out := append([]event(nil), base...)
		for i := range out {
			j := i + rr.Intn(min(maxShift, len(out)-i))
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	return shuffle(1), shuffle(2)
}

func assertSameEmissions(t *testing.T, a, b []emission) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("emission counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func assertOrdered(t *testing.T, got []emission) {
	t.Helper()
	for i := 1; i < len(got); i++ {
		p, q := got[i-1], got[i]
		if p.w.End > q.w.End {
			t.Fatalf("emissions %d,%d out of window order: %+v then %+v", i-1, i, p, q)
		}
		if p.w.End == q.w.End && p.key.Compare(q.key) >= 0 {
			t.Fatalf("emissions %d,%d out of key order: %+v then %+v", i-1, i, p, q)
		}
	}
}

func assertMatchesReference(t *testing.T, got []emission, want map[string]int64, total int64) {
	t.Helper()
	var counted int64
	for _, e := range got {
		id := fmt.Sprintf("%s/%d", e.key, e.w.Start)
		if want[id] != e.count {
			t.Fatalf("window %s: count %d, want %d", id, e.count, want[id])
		}
		if e.sum != e.count {
			t.Fatalf("window %s: sum %d != count %d (per-event value is 1)", id, e.sum, e.count)
		}
		counted += e.count
	}
	if counted != total {
		t.Fatalf("emitted %d event-assignments, want %d", counted, total)
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d windows, want %d", len(got), len(want))
	}
}

func runWindowProperty(t *testing.T, size, slide int64, assignsPer int64) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	keys := []string{"alpha", "beta", "gamma", "delta", "eps"}
	for trial := 0; trial < 5; trial++ {
		const n = 1500
		permA, permB := genEvents(r, n, keys, 5000, 64)
		want := reference(permA, size, slide)

		var outA, outB []emission
		// Lag must cover shuffle displacement in event time; events span
		// 5000 units over 1500 positions, so 64 positions never exceed
		// ~5000 of displacement — use a full-range lag to keep every
		// tuple on time while still firing windows mid-stream.
		opA := countOp(size, slide, 0, &outA)
		feed(t, opA, permA, 100, 5000)
		opB := countOp(size, slide, 0, &outB)
		feed(t, opB, permB, 37, 5000)

		if lc := opA.(LateCounter).LateCount(); lc != 0 {
			t.Fatalf("trial %d: %d tuples dropped late; generator promised none", trial, lc)
		}
		assertMatchesReference(t, outA, want, n*assignsPer)
		assertOrdered(t, outA)
		// Same multiset of events, different arrival order and watermark
		// cadence: byte-identical output sequence.
		assertSameEmissions(t, outA, outB)
	}
}

func TestTumblingCorrectDeterministicOrdered(t *testing.T) {
	runWindowProperty(t, 250, 0, 1)
}

func TestSlidingCorrectDeterministicOrdered(t *testing.T) {
	// Slide 50 on size 200: every event lands in 4 panes.
	runWindowProperty(t, 200, 50, 4)
}

func TestLateTuplesDroppedNotResurrected(t *testing.T) {
	var out []emission
	op := countOp(100, 0, 0, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(key string, et int64) {
		in.Reset()
		in.AppendStr(key)
		in.AppendInt(1)
		in.Event = et
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 10)
	add("a", 90)
	tm.AdvanceWatermark(150, fire) // window [0,100) fires with count 2
	if len(out) != 1 || out[0].count != 2 {
		t.Fatalf("out = %+v", out)
	}
	add("a", 50) // behind the watermark, window fired: dropped
	add("a", 160)
	tm.AdvanceWatermark(engine.WatermarkMax, fire)
	if len(out) != 2 || out[1].w.Start != 100 || out[1].count != 1 {
		t.Fatalf("out = %+v", out)
	}
	if lc := op.(LateCounter).LateCount(); lc != 1 {
		t.Fatalf("late count = %d, want 1", lc)
	}
}

// TestPartiallyLateTupleKeepsOpenPanes: a sliding-window tuple whose
// oldest panes have fired still lands in the open ones and is not
// counted late; only a tuple with no open pane left counts.
func TestPartiallyLateTupleKeepsOpenPanes(t *testing.T) {
	var out []emission
	op := countOp(100, 50, 0, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(et int64) {
		in.Reset()
		in.AppendStr("k")
		in.AppendInt(1)
		in.Event = et
		op.Process(nil, in)
	}
	add(10)
	tm.AdvanceWatermark(160, fire) // windows ending <= 160 fired
	add(120)                       // [50,150) fired, [100,200) open: accepted, not late
	if lc := op.(LateCounter).LateCount(); lc != 0 {
		t.Fatalf("partially late tuple counted as dropped (late=%d)", lc)
	}
	add(40) // [-50,50) and [0,100) both fired: fully dropped
	if lc := op.(LateCounter).LateCount(); lc != 1 {
		t.Fatalf("late = %d, want 1", lc)
	}
	tm.AdvanceWatermark(engine.WatermarkMax, fire)
	var got int64
	for _, e := range out {
		if e.w == (Span{100, 200}) {
			got = e.count
		}
	}
	if got != 1 {
		t.Fatalf("open pane [100,200) count = %d, want the partially-late tuple in it", got)
	}
}

func TestLatenessExtendsFireTime(t *testing.T) {
	var out []emission
	op := countOp(100, 0, 25, &out)
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)
	th := op.(engine.TimerHandler)
	fire := func(at int64) error { return th.OnTimer(nil, engine.EventTimer, at) }

	in := &tuple.Tuple{}
	add := func(et int64) {
		in.Reset()
		in.AppendStr("k")
		in.AppendInt(1)
		in.Event = et
		op.Process(nil, in)
	}
	add(10)
	tm.AdvanceWatermark(110, fire) // past end (100) but inside lateness
	if len(out) != 0 {
		t.Fatalf("window fired before end+lateness: %+v", out)
	}
	add(90) // still accepted: fire time 125 > watermark 110
	tm.AdvanceWatermark(125, fire)
	if len(out) != 1 || out[0].count != 2 {
		t.Fatalf("out = %+v", out)
	}
	if lc := op.(LateCounter).LateCount(); lc != 0 {
		t.Fatalf("late count = %d", lc)
	}
}

func TestFlushOpenDrainsWithoutWatermarks(t *testing.T) {
	// No timer service at all — the profiling-harness path.
	var out []emission
	op := countOp(100, 0, 0, &out)
	in := &tuple.Tuple{}
	for i := 0; i < 10; i++ {
		in.Reset()
		in.AppendStr(fmt.Sprintf("k%d", i%3))
		in.AppendInt(1)
		in.Event = int64(i * 40)
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
	}
	if err := op.(Flusher).FlushOpen(nil); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range out {
		total += e.count
	}
	if total != 10 {
		t.Fatalf("flushed %d events, want 10", total)
	}
	assertOrdered(t, out)
}

// TestWindowedAddPathAllocFree guards the acceptance criterion: the
// steady-state windowed-aggregation path (existing window, existing
// key) performs no per-tuple allocation.
func TestWindowedAddPathAllocFree(t *testing.T) {
	var out []emission
	op := countOp(1_000_000, 0, 0, &out) // one huge window: no fires during measurement
	tm := engine.NewTimers()
	op.(engine.TimerAware).SetTimers(tm)

	keys := []string{"alpha", "beta", "gamma", "delta"}
	in := &tuple.Tuple{}
	i := 0
	emitOne := func() {
		in.Reset()
		in.AppendStr(keys[i%len(keys)])
		in.AppendInt(1)
		in.Event = int64(i % 1000)
		if err := op.Process(nil, in); err != nil {
			t.Fatal(err)
		}
		i++
	}
	for n := 0; n < 100; n++ {
		emitOne() // open the windows
	}
	avg := testing.AllocsPerRun(5000, emitOne)
	if avg > 0 {
		t.Errorf("windowed add path allocates %.3f/tuple in steady state, want 0", avg)
	}
}
