package queue

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("Get = %d, want %d", v, i)
		}
	}
}

func TestCapacityFloor(t *testing.T) {
	if New[int](0).Cap() != 1 {
		t.Error("capacity floor should be 1")
	}
	if New[int](-3).Cap() != 1 {
		t.Error("negative capacity should clamp to 1")
	}
}

func TestTryPutTryGet(t *testing.T) {
	q := New[string](1)
	ok, err := q.TryPut("a")
	if !ok || err != nil {
		t.Fatalf("TryPut = %v, %v", ok, err)
	}
	ok, err = q.TryPut("b")
	if ok || err != nil {
		t.Fatalf("TryPut on full = %v, %v; want false, nil", ok, err)
	}
	v, ok, err := q.TryGet()
	if !ok || err != nil || v != "a" {
		t.Fatalf("TryGet = %q, %v, %v", v, ok, err)
	}
	_, ok, err = q.TryGet()
	if ok || err != nil {
		t.Fatalf("TryGet on empty = %v, %v; want false, nil", ok, err)
	}
}

func TestBackPressureBlocksProducer(t *testing.T) {
	q := New[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		q.Put(2) // must block until the consumer drains
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put on full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("producer never unblocked")
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	q := New[int](1)
	got := make(chan int)
	go func() {
		v, _ := q.Get()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Put(42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never unblocked")
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := New[int](4)
	q.Put(1)
	q.Put(2)
	q.Close()
	if err := q.Put(3); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if v, err := q.Get(); err != nil || v != 1 {
		t.Errorf("drain 1: %v %v", v, err)
	}
	if v, err := q.Get(); err != nil || v != 2 {
		t.Errorf("drain 2: %v %v", v, err)
	}
	if _, err := q.Get(); err != ErrClosed {
		t.Errorf("Get after drain = %v, want ErrClosed", err)
	}
	if _, _, err := q.TryGet(); err != ErrClosed {
		t.Errorf("TryGet after drain = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestCloseUnblocksWaiters(t *testing.T) {
	q := New[int](1)
	q.Put(1)
	putErr := make(chan error, 1)
	go func() { putErr <- q.Put(2) }()

	empty := New[int](1)
	getErr := make(chan error, 1)
	go func() { _, err := empty.Get(); getErr <- err }()

	time.Sleep(10 * time.Millisecond)
	q.Close()
	empty.Close()
	if err := <-putErr; err != ErrClosed {
		t.Errorf("blocked Put after Close = %v, want ErrClosed", err)
	}
	if err := <-getErr; err != ErrClosed {
		t.Errorf("blocked Get after Close = %v, want ErrClosed", err)
	}
}

// No tuples are lost or duplicated under concurrent producers.
func TestConcurrentNoLoss(t *testing.T) {
	const producers = 4
	const perProducer = 2000
	q := New[int](8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(p*perProducer + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	go func() { wg.Wait(); q.Close() }()

	seen := make(map[int]bool, producers*perProducer)
	lastPerProducer := make([]int, producers)
	for i := range lastPerProducer {
		lastPerProducer[i] = -1
	}
	for {
		v, err := q.Get()
		if err == ErrClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
		// Per-producer order must be preserved.
		p, i := v/perProducer, v%perProducer
		if i <= lastPerProducer[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, i, lastPerProducer[p])
		}
		lastPerProducer[p] = i
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d elements, want %d", len(seen), producers*perProducer)
	}
	puts, gets := q.Stats()
	if puts != uint64(producers*perProducer) || gets != puts {
		t.Fatalf("stats puts=%d gets=%d", puts, gets)
	}
}

func TestReferencesReleased(t *testing.T) {
	// After Get, the slot must not retain the pointer (GC friendliness).
	q := New[*int](2)
	x := new(int)
	q.Put(x)
	q.Get()
	if q.buf[0] != nil {
		t.Error("queue slot retains pointer after Get")
	}
}
