package queue

import (
	"runtime"
	"time"
)

// Inbox is the consumer-side fan-in over per-producer SPSC rings. The
// engine gives every task one Inbox and binds one Ring per distinct
// producer task, so each (producer, consumer) edge is a private
// single-producer/single-consumer channel — producers never contend
// with each other on an enqueue, which is where the mutex MPSC queue
// serialized (Section 5.2's queue-access overhead).
//
// The single consumer calls Get/TryGet; it scans the member rings
// round-robin for fairness and parks on a waiter shared by all rings
// when every ring is empty. The Inbox as a whole preserves the Queue
// contract: it reports ErrClosed only after every bound ring is closed
// AND drained, so "last producer closes the queue" falls out of each
// producer closing its own ring.
type Inbox[T any] struct {
	rings   []*Ring[T]
	ringCap int
	cursor  int // round-robin scan start; consumer-owned
	cons    *waiter
}

// NewInbox creates an empty inbox whose member rings each hold ringCap
// elements (rounded up to a power of two).
func NewInbox[T any](ringCap int) *Inbox[T] {
	return &Inbox[T]{ringCap: ringCap, cons: newWaiter()}
}

// SetRingCap changes the per-ring capacity used by subsequent Bind
// calls; the engine uses it to split one consumer's total buffering
// budget across its producer rings. Rings already bound are unchanged.
func (ib *Inbox[T]) SetRingCap(c int) {
	if c < 1 {
		c = 1
	}
	ib.ringCap = c
}

// Bind adds one producer edge and returns its private ring. Bind is not
// safe for concurrent use: wire all producers before the consumer (or
// any producer) starts, as the engine does at construction time.
func (ib *Inbox[T]) Bind() *Ring[T] {
	r := newRing[T](ib.ringCap, ib.cons)
	ib.rings = append(ib.rings, r)
	return r
}

// Rings returns the bound producer rings (read-only use).
func (ib *Inbox[T]) Rings() []*Ring[T] { return ib.rings }

// Len returns the total number of queued elements across all rings.
func (ib *Inbox[T]) Len() int {
	n := 0
	for _, r := range ib.rings {
		n += r.Len()
	}
	return n
}

// Get removes and returns the oldest element of some non-empty ring,
// scanning round-robin from the ring after the last hit. It blocks
// while all rings are empty and returns ErrClosed once every ring is
// closed and drained. An inbox with no bound rings is permanently
// empty-and-closed.
func (ib *Inbox[T]) Get() (T, error) {
	var zero T
	n := len(ib.rings)
	for i := 0; ; i++ {
		open := false
		for k := 0; k < n; k++ {
			idx := ib.cursor + k
			if idx >= n {
				idx -= n
			}
			v, ok, err := ib.rings[idx].TryGet()
			if ok {
				ib.cursor = idx + 1
				if ib.cursor == n {
					ib.cursor = 0
				}
				return v, nil
			}
			if err == nil {
				open = true
			}
		}
		if !open {
			return zero, ErrClosed
		}
		if i < spinLimit {
			runtime.Gosched()
			continue
		}
		// Park on the shared waiter. Publish the flag first, then
		// re-validate every ring: a producer that made a ring non-empty
		// (or closed it) after our scan must observe the flag and wake
		// us — the same two-sided handshake the Ring uses.
		ib.cons.parked.Store(true)
		changed := false
		open = false
		for _, r := range ib.rings {
			if r.Len() > 0 {
				changed = true
			}
			if !r.Closed() {
				open = true
			}
		}
		if changed || !open {
			ib.cons.parked.Store(false)
			i = 0
			continue
		}
		<-ib.cons.ch
		ib.cons.parked.Store(false)
		i = 0
	}
}

// GetUntil behaves like Get but gives up at the deadline: it returns
// (zero, false, nil) if no element arrives before then. The engine uses
// it when a task has pending processing-time timers — the task must
// wake to fire them even if no input is flowing. The timer needed for
// parking is allocated only on the park path (an inbox with data never
// parks), so a busy consumer pays nothing for the deadline.
func (ib *Inbox[T]) GetUntil(deadline time.Time) (T, bool, error) {
	var zero T
	for i := 0; ; i++ {
		v, ok, err := ib.TryGet()
		if ok || err != nil {
			return v, ok, err
		}
		if !time.Now().Before(deadline) {
			return zero, false, nil
		}
		if i < spinLimit {
			runtime.Gosched()
			continue
		}
		// Park with a timeout, using the same two-sided handshake as
		// Get: publish the flag, re-validate every ring, then sleep.
		ib.cons.parked.Store(true)
		changed := false
		open := false
		for _, r := range ib.rings {
			if r.Len() > 0 {
				changed = true
			}
			if !r.Closed() {
				open = true
			}
		}
		if changed || !open {
			ib.cons.parked.Store(false)
			i = 0
			continue
		}
		t := time.NewTimer(time.Until(deadline))
		select {
		case <-ib.cons.ch:
		case <-t.C:
			t.Stop()
			ib.cons.parked.Store(false)
			return zero, false, nil
		}
		t.Stop()
		ib.cons.parked.Store(false)
		i = 0
	}
}

// TryGet removes the oldest element of some non-empty ring without
// blocking. The boolean reports whether an element was returned; after
// every ring is closed and drained it returns ErrClosed.
func (ib *Inbox[T]) TryGet() (T, bool, error) {
	var zero T
	n := len(ib.rings)
	open := false
	for k := 0; k < n; k++ {
		idx := ib.cursor + k
		if idx >= n {
			idx -= n
		}
		v, ok, err := ib.rings[idx].TryGet()
		if ok {
			ib.cursor = idx + 1
			if ib.cursor == n {
				ib.cursor = 0
			}
			return v, true, nil
		}
		if err == nil {
			open = true
		}
	}
	if !open {
		return zero, false, ErrClosed
	}
	return zero, false, nil
}

// Close closes every bound ring (engine shutdown/abort path). Blocked
// producers fail with ErrClosed; the consumer drains and then receives
// ErrClosed. Close is idempotent and may be called from any goroutine.
func (ib *Inbox[T]) Close() {
	for _, r := range ib.rings {
		r.Close()
	}
}

// Reopen reopens every bound ring, discarding undelivered elements (see
// Ring.Reopen). Only valid between runs, with no producers or the
// consumer active.
func (ib *Inbox[T]) Reopen() {
	for _, r := range ib.rings {
		r.Reopen()
	}
}

// Stats returns the cumulative successful Put and Get counts across all
// rings, read from atomics (the metrics layer polls this while the
// engine runs).
func (ib *Inbox[T]) Stats() (puts, gets uint64) {
	for _, r := range ib.rings {
		p, g := r.Stats()
		puts += p
		gets += g
	}
	return puts, gets
}
