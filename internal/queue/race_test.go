package queue

// race_test.go stresses the close/drain paths of both queue
// implementations under the race detector: concurrent Put/TryPut/Get
// racing a Close must never lose an enqueued element, deliver one
// twice, or report anything other than ErrClosed after shutdown. The
// suite is the regression net for the lock-free ring's park/wake
// handshake; run it with `go test -race ./internal/queue/` (the `race`
// Makefile target).
//
// Conservation is checked as received + leftover == enqueued: an
// asynchronous Close may race the very last lock-free Put, in which
// case the element is still in the ring after the consumer exits (the
// engine only hits async Close on abort, where it re-drains nothing by
// design; clean shutdown closes each ring from its own producer, which
// is fully ordered).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// errTryFull distinguishes "queue momentarily full" from real errors in
// the shared race harness.
var errTryFull = &fullError{}

type fullError struct{}

func (*fullError) Error() string { return "queue full" }

// putGetCloseRace drives `producers` producer goroutines (even-indexed
// ones blocking via put, odd ones spinning on tryPut) and one consumer,
// closes the queue mid-flight from a separate goroutine, and checks
// conservation and the ErrClosed contract. put/tryPut receive the
// producer index so SPSC rings can be pinned one-per-goroutine.
func putGetCloseRace(t *testing.T, producers int, put, tryPut func(p, v int) error, get func() (int, error), tryGet func() (int, bool, error), doClose func()) {
	t.Helper()
	const attempts = 5_000

	var enqueued atomic.Int64 // successful puts
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				var err error
				if p%2 == 0 {
					err = put(p, i)
				} else {
					err = tryPut(p, i)
					if err == errTryFull {
						runtime.Gosched()
						continue
					}
				}
				if err == nil {
					enqueued.Add(1)
					continue
				}
				if err != ErrClosed {
					t.Errorf("producer %d: %v", p, err)
				}
				return
			}
		}(p)
	}

	closed := make(chan struct{})
	go func() {
		for enqueued.Load() < attempts { // let some traffic through first
			runtime.Gosched()
		}
		doClose()
		close(closed)
	}()

	var received int64
	for {
		_, err := get()
		if err == ErrClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		received++
	}
	<-closed
	wg.Wait()
	// Producers are done: any straggler a racing Put published after the
	// consumer exited is still queued and must now be visible.
	var leftover int64
	for {
		_, ok, err := tryGet()
		if !ok {
			if err != ErrClosed {
				t.Fatalf("TryGet after close and drain = %v, want ErrClosed", err)
			}
			break
		}
		leftover++
	}
	if received+leftover != enqueued.Load() {
		t.Fatalf("received %d + leftover %d != enqueued %d", received, leftover, enqueued.Load())
	}
}

func TestRaceMutexQueuePutGetClose(t *testing.T) {
	q := New[int](8)
	putGetCloseRace(t, 4,
		func(p, v int) error { return q.Put(v) },
		func(p, v int) error {
			ok, err := q.TryPut(v)
			if err != nil {
				return err
			}
			if !ok {
				return errTryFull
			}
			return nil
		},
		q.Get,
		q.TryGet,
		q.Close,
	)
}

func TestRaceInboxPutGetClose(t *testing.T) {
	// SPSC contract: exactly one producer goroutine per ring. Fan four
	// producers into an Inbox so the shape matches the engine.
	const producers = 4
	ib := NewInbox[int](8)
	rings := make([]*Ring[int], producers)
	for i := range rings {
		rings[i] = ib.Bind()
	}
	putGetCloseRace(t, producers,
		func(p, v int) error { return rings[p].Put(v) },
		func(p, v int) error {
			ok, err := rings[p].TryPut(v)
			if err != nil {
				return err
			}
			if !ok {
				return errTryFull
			}
			return nil
		},
		ib.Get,
		ib.TryGet,
		ib.Close,
	)
}

// TestRaceRingSingleEdge races one producer, one consumer and an
// asynchronous Close on a bare ring (no inbox).
func TestRaceRingSingleEdge(t *testing.T) {
	q := NewRing[int](4)
	var enqueued atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if i%3 == 0 {
				ok, err := q.TryPut(i)
				if err != nil {
					return
				}
				if !ok {
					continue
				}
			} else if q.Put(i) != nil {
				return
			}
			enqueued.Add(1)
		}
	}()
	go func() {
		for enqueued.Load() < 10_000 {
			runtime.Gosched()
		}
		q.Close()
	}()
	var received int64
	for {
		_, err := q.Get()
		if err == ErrClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		received++
	}
	<-done
	var leftover int64
	for {
		if _, ok, _ := q.TryGet(); !ok {
			break
		}
		leftover++
	}
	if received+leftover != enqueued.Load() {
		t.Fatalf("received %d + leftover %d != enqueued %d", received, leftover, enqueued.Load())
	}
}

// TestRaceStatsDuringTraffic polls Stats and Len from a third goroutine
// while traffic flows — the metrics layer does exactly this live.
func TestRaceStatsDuringTraffic(t *testing.T) {
	ib := NewInbox[int](8)
	r := ib.Bind()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				puts, gets := ib.Stats()
				if gets > puts {
					t.Errorf("gets %d > puts %d", gets, puts)
					return
				}
				_ = ib.Len()
			}
		}
	}()
	for i := 0; i < 50_000; i++ {
		if err := r.Put(i); err != nil {
			t.Fatal(err)
		}
		if _, err := ib.Get(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	r.Close()
	if _, err := ib.Get(); err != ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
}
