package queue

import (
	"sync"
	"testing"
	"time"
)

// The Ring must honor the same contract queue_test.go pins down for the
// mutex Queue, restricted to one producer and one consumer.

func TestRingFIFOOrder(t *testing.T) {
	q := NewRing[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("Get = %d, want %d", v, i)
		}
	}
}

func TestRingCapacityPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewRing[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingTryPutTryGet(t *testing.T) {
	q := NewRing[string](1)
	ok, err := q.TryPut("a")
	if !ok || err != nil {
		t.Fatalf("TryPut = %v, %v", ok, err)
	}
	ok, err = q.TryPut("b")
	if ok || err != nil {
		t.Fatalf("TryPut on full = %v, %v; want false, nil", ok, err)
	}
	v, ok, err := q.TryGet()
	if !ok || err != nil || v != "a" {
		t.Fatalf("TryGet = %q, %v, %v", v, ok, err)
	}
	_, ok, err = q.TryGet()
	if ok || err != nil {
		t.Fatalf("TryGet on empty = %v, %v; want false, nil", ok, err)
	}
}

func TestRingBackPressureBlocksProducer(t *testing.T) {
	q := NewRing[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		q.Put(2) // must block until the consumer drains
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put on full ring did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("producer never unblocked")
	}
}

func TestRingCloseDrainsThenErrClosed(t *testing.T) {
	q := NewRing[int](4)
	q.Put(1)
	q.Put(2)
	q.Close()
	if err := q.Put(3); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if v, err := q.Get(); err != nil || v != 1 {
		t.Errorf("drain 1: %v %v", v, err)
	}
	if v, err := q.Get(); err != nil || v != 2 {
		t.Errorf("drain 2: %v %v", v, err)
	}
	if _, err := q.Get(); err != ErrClosed {
		t.Errorf("Get after drain = %v, want ErrClosed", err)
	}
	if _, _, err := q.TryGet(); err != ErrClosed {
		t.Errorf("TryGet after drain = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestRingCloseUnblocksWaiters(t *testing.T) {
	q := NewRing[int](1)
	q.Put(1)
	putErr := make(chan error, 1)
	go func() { putErr <- q.Put(2) }()

	empty := NewRing[int](1)
	getErr := make(chan error, 1)
	go func() { _, err := empty.Get(); getErr <- err }()

	time.Sleep(10 * time.Millisecond)
	q.Close()
	empty.Close()
	if err := <-putErr; err != ErrClosed {
		t.Errorf("blocked Put after Close = %v, want ErrClosed", err)
	}
	if err := <-getErr; err != ErrClosed {
		t.Errorf("blocked Get after Close = %v, want ErrClosed", err)
	}
}

func TestRingReferencesReleased(t *testing.T) {
	q := NewRing[*int](2)
	x := new(int)
	q.Put(x)
	q.Get()
	if q.buf[0] != nil {
		t.Error("ring slot retains pointer after Get")
	}
}

func TestRingSPSCNoLossNoDup(t *testing.T) {
	const n = 200_000
	q := NewRing[int](8)
	go func() {
		for i := 0; i < n; i++ {
			if err := q.Put(i); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
		q.Close()
	}()
	for i := 0; ; i++ {
		v, err := q.Get()
		if err == ErrClosed {
			if i != n {
				t.Fatalf("received %d elements, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("element %d = %d; SPSC order violated", i, v)
		}
	}
	puts, gets := q.Stats()
	if puts != n || gets != n {
		t.Fatalf("stats puts=%d gets=%d, want %d", puts, gets, n)
	}
}

// --- Inbox fan-in ---

func TestInboxFansInAllProducers(t *testing.T) {
	const producers = 4
	const perProducer = 50_000
	ib := NewInbox[int](8)
	rings := make([]*Ring[int], producers)
	for p := range rings {
		rings[p] = ib.Bind()
	}
	var wg sync.WaitGroup
	for p, r := range rings {
		wg.Add(1)
		go func(p int, r *Ring[int]) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := r.Put(p*perProducer + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
			r.Close()
		}(p, r)
	}

	seen := make([]bool, producers*perProducer)
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	count := 0
	for {
		v, err := ib.Get()
		if err == ErrClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
		count++
		// Per-producer FIFO order must be preserved through the fan-in.
		p, i := v/perProducer, v%perProducer
		if i <= last[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, i, last[p])
		}
		last[p] = i
	}
	wg.Wait()
	if count != producers*perProducer {
		t.Fatalf("received %d elements, want %d", count, producers*perProducer)
	}
	puts, gets := ib.Stats()
	if puts != uint64(count) || gets != puts {
		t.Fatalf("stats puts=%d gets=%d", puts, gets)
	}
}

func TestInboxTryGetAndLen(t *testing.T) {
	ib := NewInbox[int](4)
	a, b := ib.Bind(), ib.Bind()
	if _, ok, err := ib.TryGet(); ok || err != nil {
		t.Fatalf("TryGet on empty open inbox = %v, %v", ok, err)
	}
	a.Put(1)
	b.Put(2)
	if ib.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ib.Len())
	}
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		v, ok, err := ib.TryGet()
		if !ok || err != nil {
			t.Fatalf("TryGet = %v, %v", ok, err)
		}
		got[v] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("fan-in missed elements: %v", got)
	}
	a.Close()
	if _, ok, err := ib.TryGet(); ok || err != nil {
		t.Fatalf("TryGet with one open ring = %v, %v; want false, nil", ok, err)
	}
	b.Close()
	if _, ok, err := ib.TryGet(); ok || err != ErrClosed {
		t.Fatalf("TryGet after all closed = %v, %v; want ErrClosed", ok, err)
	}
	if _, err := ib.Get(); err != ErrClosed {
		t.Fatalf("Get after all closed = %v, want ErrClosed", err)
	}
}

func TestInboxNoRingsIsClosed(t *testing.T) {
	ib := NewInbox[int](4)
	if _, err := ib.Get(); err != ErrClosed {
		t.Fatalf("Get on ringless inbox = %v, want ErrClosed", err)
	}
}

func TestInboxCloseUnblocksConsumer(t *testing.T) {
	ib := NewInbox[int](4)
	ib.Bind()
	got := make(chan error, 1)
	go func() { _, err := ib.Get(); got <- err }()
	time.Sleep(10 * time.Millisecond)
	ib.Close()
	select {
	case err := <-got:
		if err != ErrClosed {
			t.Fatalf("Get after Close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never unblocked by Close")
	}
}

func TestInboxRoundRobinFairness(t *testing.T) {
	// With every ring non-empty, consecutive Gets must rotate across
	// rings instead of draining one ring while the others starve.
	const producers = 3
	ib := NewInbox[int](8)
	for p := 0; p < producers; p++ {
		r := ib.Bind()
		for i := 0; i < 4; i++ {
			r.Put(p)
		}
	}
	for round := 0; round < 4; round++ {
		seen := map[int]bool{}
		for k := 0; k < producers; k++ {
			v, err := ib.Get()
			if err != nil {
				t.Fatal(err)
			}
			seen[v] = true
		}
		if len(seen) != producers {
			t.Fatalf("round %d drew from %d of %d producers: %v", round, len(seen), producers, seen)
		}
	}
}
