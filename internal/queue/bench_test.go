package queue

// bench_test.go compares the two queue implementations on the engine's
// traffic shape: N producers feeding one consumer. The mutex Queue
// serializes all N+1 parties on one lock; the Inbox gives each producer
// a private SPSC ring, so the acceptance target (>=1.5x at 4+
// producers) falls out of removed contention:
//
//	go test -bench 'QueuePutGet|InboxPutGet' -benchtime 2s ./internal/queue/

import (
	"sync"
	"testing"
)

// benchMPSC drives n producers through put-constructors and one
// consumer through get until every element is through. Each producer
// pushes items/n elements.
func benchMPSC(b *testing.B, producers int, mkPut func(p int) func(int) error, get func() (int, error), closeAll func()) {
	b.Helper()
	per := b.N/producers + 1
	total := per * producers
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(put func(int) error) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := put(i); err != nil {
					b.Error(err)
					return
				}
			}
		}(mkPut(p))
	}
	go func() { wg.Wait(); closeAll() }()
	for got := 0; got < total; got++ {
		if _, err := get(); err != nil {
			b.Fatalf("after %d of %d: %v", got, total, err)
		}
	}
}

func benchMutexQueue(b *testing.B, producers int) {
	q := New[int](64)
	benchMPSC(b, producers,
		func(int) func(int) error { return q.Put },
		q.Get,
		q.Close,
	)
}

func benchInbox(b *testing.B, producers int) {
	ib := NewInbox[int](64)
	rings := make([]*Ring[int], producers)
	for i := range rings {
		rings[i] = ib.Bind()
	}
	benchMPSC(b, producers,
		func(p int) func(int) error { return rings[p].Put },
		ib.Get,
		ib.Close,
	)
}

func BenchmarkQueuePutGetP1(b *testing.B) { benchMutexQueue(b, 1) }
func BenchmarkQueuePutGetP4(b *testing.B) { benchMutexQueue(b, 4) }
func BenchmarkQueuePutGetP8(b *testing.B) { benchMutexQueue(b, 8) }
func BenchmarkInboxPutGetP1(b *testing.B) { benchInbox(b, 1) }
func BenchmarkInboxPutGetP4(b *testing.B) { benchInbox(b, 4) }
func BenchmarkInboxPutGetP8(b *testing.B) { benchInbox(b, 8) }

// BenchmarkRingPutGet measures the uncontended single-edge hot path
// (one Put + one Get per iteration, same goroutine, never full/empty
// long enough to park).
func BenchmarkRingPutGet(b *testing.B) {
	q := NewRing[int](64)
	for i := 0; i < b.N; i++ {
		q.Put(i)
		q.Get()
	}
}

// BenchmarkMutexPutGet is the same single-threaded loop on the mutex
// queue, isolating lock overhead from contention.
func BenchmarkMutexPutGet(b *testing.B) {
	q := New[int](64)
	for i := 0; i < b.N; i++ {
		q.Put(i)
		q.Get()
	}
}
