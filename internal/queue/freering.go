package queue

import "sync/atomic"

// FreeRing is a minimal nonblocking SPSC ring: the reverse channel of a
// (producer, consumer) edge, flowing released tuples back producer-ward
// so steady-state recycling stays on the producer's socket instead of
// riding sync.Pool's per-P caches across the machine.
//
// It deliberately has no blocking, parking, or close state — a full
// ring means the putter falls back to the shared pool, and an empty
// ring means the getter allocates from it, so neither side ever waits.
// One goroutine may call TryPut (the consumer releasing tuples) and one
// may call TryGet (the producer refilling); the engine's task ownership
// guarantees both.
type FreeRing[T any] struct {
	buf  []T
	mask uint64

	// Same padded cursor layout as Ring: the consumer-side (TryGet)
	// line and producer-side (TryPut) line never falsely share.
	_          [cacheLine]byte
	head       atomic.Uint64 // next read index; written only by TryGet's caller
	cachedTail uint64
	_          [cacheLine - 16]byte
	tail       atomic.Uint64 // next write index; written only by TryPut's caller
	cachedHead uint64
	_          [cacheLine - 16]byte
}

// NewFreeRing creates a free ring with at least the given capacity
// (rounded up to a power of two, minimum 1).
func NewFreeRing[T any](capacity int) *FreeRing[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &FreeRing[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (q *FreeRing[T]) Cap() int { return len(q.buf) }

// Len returns the current element count (approximate under concurrency;
// head is loaded first so it never underflows).
func (q *FreeRing[T]) Len() int {
	head := q.head.Load()
	return int(q.tail.Load() - head)
}

// TryPut appends v without blocking, reporting whether it fit.
func (q *FreeRing[T]) TryPut(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead == uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// TryGet removes the oldest element without blocking.
func (q *FreeRing[T]) TryGet() (T, bool) {
	var zero T
	head := q.head.Load()
	if q.cachedTail == head {
		q.cachedTail = q.tail.Load()
		if q.cachedTail == head {
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// DrainInto removes up to max elements (bounded also by len(dst)) into
// dst from the getter side and returns how many were moved. Unlike a
// TryGet loop it publishes one head advance for the whole chunk — one
// atomic store and one cache-line handoff per refill instead of one
// per element — which is what makes bulk pool refills from reverse
// rings cheap. Same single-getter discipline as TryGet.
func (q *FreeRing[T]) DrainInto(dst []T, max int) int {
	if max > len(dst) {
		max = len(dst)
	}
	if max <= 0 {
		return 0
	}
	var zero T
	head := q.head.Load()
	if q.cachedTail == head {
		q.cachedTail = q.tail.Load()
		if q.cachedTail == head {
			return 0
		}
	}
	n := int(q.cachedTail - head)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		idx := (head + uint64(i)) & q.mask
		dst[i] = q.buf[idx]
		q.buf[idx] = zero
	}
	q.head.Store(head + uint64(n))
	return n
}

// Drain empties the ring from the getter side, calling fn per element.
// It must only be called while no putter is active (the engine drains
// between runs, before any task starts).
func (q *FreeRing[T]) Drain(fn func(T)) {
	for {
		v, ok := q.TryGet()
		if !ok {
			return
		}
		fn(v)
	}
}
