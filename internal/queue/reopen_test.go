package queue

import "testing"

func TestRingReopenAfterClose(t *testing.T) {
	r := NewRing[int](4)
	if err := r.Put(1); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Get(); err != nil {
		t.Fatal("close must still drain queued elements")
	}
	if _, err := r.Get(); err != ErrClosed {
		t.Fatal("drained closed ring must report ErrClosed")
	}

	r.Reopen()
	if r.Closed() {
		t.Fatal("reopened ring still reports closed")
	}
	if err := r.Put(2); err != nil {
		t.Fatalf("Put after Reopen: %v", err)
	}
	v, err := r.Get()
	if err != nil || v != 2 {
		t.Fatalf("Get after Reopen = %d, %v", v, err)
	}
}

func TestRingReopenDiscardsUndelivered(t *testing.T) {
	// A run aborted by an operator error can leave elements in flight;
	// Reopen must not leak them into the next run.
	r := NewRing[int](8)
	for i := 0; i < 3; i++ {
		if err := r.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	r.Reopen()
	if n := r.Len(); n != 0 {
		t.Fatalf("reopened ring holds %d stale elements", n)
	}
}

func TestInboxReopen(t *testing.T) {
	ib := NewInbox[int](4)
	r1, r2 := ib.Bind(), ib.Bind()
	r1.Put(10)
	ib.Close()
	ib.Reopen()
	if ib.Len() != 0 {
		t.Fatal("reopened inbox holds stale elements")
	}
	if err := r2.Put(20); err != nil {
		t.Fatalf("Put after inbox Reopen: %v", err)
	}
	v, err := ib.Get()
	if err != nil || v != 20 {
		t.Fatalf("Get after Reopen = %d, %v", v, err)
	}
}
