package queue

import (
	"runtime"
	"sync/atomic"
)

const (
	// cacheLine separates the producer- and consumer-owned cursors so a
	// Put never invalidates the cache line a concurrent Get is spinning
	// on (false sharing is the dominant cost of a naive atomic ring).
	cacheLine = 64
	// spinLimit bounds the busy-wait phase before a blocked side parks.
	// Spinning covers the common case where the peer is actively running
	// on another core; parking keeps an idle pipeline from burning CPU.
	spinLimit = 128
)

// waiter is the park/wake rendezvous for one blocked goroutine. The
// waking side only touches the channel when the parked flag is visible,
// so the wake path costs a single atomic load while the peer is running.
// The buffered channel tolerates a spurious token: the sleeper re-checks
// the ring state after every wakeup.
type waiter struct {
	parked atomic.Bool
	ch     chan struct{}
}

func newWaiter() *waiter { return &waiter{ch: make(chan struct{}, 1)} }

// wake unparks the waiter if it is parked (or mid-park: the sleeper
// re-validates state after setting the flag, which closes the race).
func (w *waiter) wake() {
	if w.parked.Load() {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// Ring is a bounded single-producer/single-consumer FIFO implemented as
// a lock-free ring buffer: one goroutine may call Put/TryPut and one
// goroutine may call Get/TryGet, with no mutex on the hot path. Close
// may be called from any goroutine. The capacity is rounded up to a
// power of two so index wrapping is a mask instead of a division.
//
// Both sides spin briefly, then park on a per-side waiter; this is the
// spin-then-park handoff Section 5.2 of the paper assumes when it prices
// a queue insertion at nanoseconds rather than a syscall.
//
// The Close/drain contract matches Queue — Put fails with ErrClosed
// once closed, Get drains remaining elements and then returns
// ErrClosed, and back-pressure is preserved (Put blocks while the ring
// is full, which ultimately slows the spout) — with one caveat: a Put
// racing an asynchronous Close from a third goroutine may be accepted
// after the consumer has already drained and exited, leaving the
// element in the ring. Close from the producer goroutine (after its
// final Put) for loss-free shutdown; see the package doc.
type Ring[T any] struct {
	buf  []T
	mask uint64

	closed atomic.Bool

	prod *waiter
	cons *waiter

	// Consumer-owned cache line: the read cursor plus the consumer's
	// stale copy of tail. While cachedTail says elements remain, a Get
	// never touches the producer's line.
	_          [cacheLine]byte
	head       atomic.Uint64 // next read index; written only by the consumer
	cachedTail uint64        // consumer's last-seen tail
	// Producer-owned cache line, symmetric.
	_          [cacheLine - 16]byte
	tail       atomic.Uint64 // next write index; written only by the producer
	cachedHead uint64        // producer's last-seen head
	_          [cacheLine - 16]byte
}

// NewRing creates an SPSC ring with at least the given capacity
// (rounded up to a power of two, minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	return newRing[T](capacity, newWaiter())
}

// newRing builds a ring with the supplied consumer-side waiter; an
// Inbox shares one waiter across all its member rings so any producer
// can unpark the single fan-in consumer.
func newRing[T any](capacity int, cons *waiter) *Ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		buf:  make([]T, n),
		mask: uint64(n - 1),
		prod: newWaiter(),
		cons: cons,
	}
}

// Cap returns the ring capacity.
func (q *Ring[T]) Cap() int { return len(q.buf) }

// Len returns the current number of queued elements. head is loaded
// first: head never passes tail, so a concurrent observer can see a
// stale (smaller) length but never tail < head underflowing negative.
func (q *Ring[T]) Len() int {
	head := q.head.Load()
	return int(q.tail.Load() - head)
}

// Closed reports whether Close has been called.
func (q *Ring[T]) Closed() bool { return q.closed.Load() }

// Put appends v, blocking while the ring is full. It returns ErrClosed
// if the ring is closed before space becomes available.
func (q *Ring[T]) Put(v T) error {
	for i := 0; ; i++ {
		if q.closed.Load() {
			return ErrClosed
		}
		tail := q.tail.Load()
		if tail-q.cachedHead == uint64(len(q.buf)) {
			q.cachedHead = q.head.Load()
		}
		if tail-q.cachedHead < uint64(len(q.buf)) {
			q.buf[tail&q.mask] = v
			q.tail.Store(tail + 1)
			q.cons.wake()
			return nil
		}
		if i < spinLimit {
			runtime.Gosched()
			continue
		}
		// Park: publish the flag, re-validate (the consumer checks the
		// flag after advancing head, so one of the two sides must see
		// the other's store), then sleep until woken.
		q.prod.parked.Store(true)
		if q.tail.Load()-q.head.Load() < uint64(len(q.buf)) || q.closed.Load() {
			q.prod.parked.Store(false)
			i = 0
			continue
		}
		<-q.prod.ch
		q.prod.parked.Store(false)
		i = 0
	}
}

// TryPut appends v without blocking. It reports whether the element was
// enqueued; it returns ErrClosed if the ring is closed.
func (q *Ring[T]) TryPut(v T) (bool, error) {
	if q.closed.Load() {
		return false, ErrClosed
	}
	tail := q.tail.Load()
	if tail-q.cachedHead == uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead == uint64(len(q.buf)) {
			return false, nil
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	q.cons.wake()
	return true, nil
}

// Get removes and returns the oldest element, blocking while the ring
// is empty. After Close, Get keeps returning queued elements until the
// ring drains and then returns ErrClosed.
func (q *Ring[T]) Get() (T, error) {
	var zero T
	for i := 0; ; i++ {
		head := q.head.Load()
		if q.cachedTail == head {
			q.cachedTail = q.tail.Load()
		}
		if q.cachedTail != head {
			v := q.buf[head&q.mask]
			q.buf[head&q.mask] = zero // release the reference for GC
			q.head.Store(head + 1)
			q.prod.wake()
			return v, nil
		}
		if q.closed.Load() {
			// A final Put sequenced before Close is visible by now; one
			// more tail check decides between drain and ErrClosed.
			if q.cachedTail = q.tail.Load(); q.cachedTail != head {
				continue
			}
			return zero, ErrClosed
		}
		if i < spinLimit {
			runtime.Gosched()
			continue
		}
		q.cons.parked.Store(true)
		if q.tail.Load() != head || q.closed.Load() {
			q.cons.parked.Store(false)
			i = 0
			continue
		}
		<-q.cons.ch
		q.cons.parked.Store(false)
		i = 0
	}
}

// TryGet removes the oldest element without blocking. The boolean
// reports whether an element was returned; after Close and drain it
// returns ErrClosed.
func (q *Ring[T]) TryGet() (T, bool, error) {
	var zero T
	head := q.head.Load()
	if q.cachedTail == head {
		q.cachedTail = q.tail.Load()
	}
	if q.cachedTail == head {
		if q.closed.Load() {
			// Same final-Put re-check as Get.
			if q.cachedTail = q.tail.Load(); q.cachedTail != head {
				return q.TryGet()
			}
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	q.prod.wake()
	return v, true, nil
}

// Close marks the ring closed. A blocked producer fails with ErrClosed;
// the consumer drains remaining elements and then receives ErrClosed.
// Close is idempotent and may be called from any goroutine.
func (q *Ring[T]) Close() {
	q.closed.Store(true)
	q.prod.wake()
	q.cons.wake()
}

// Reopen discards any undelivered elements and clears the closed flag
// so the ring can carry another run. It must only be called while no
// producer or consumer goroutine is active (the engine calls it between
// runs, before any task starts).
func (q *Ring[T]) Reopen() {
	for {
		if _, ok, _ := q.TryGet(); !ok {
			q.closed.Store(false)
			return
		}
	}
}

// Stats returns the cumulative successful Put and Get counts. The
// monotonic cursors double as the counters — tail is the number of
// elements ever enqueued, head the number ever dequeued — so the hot
// path pays nothing for accounting. head is loaded first, so a live
// reader never observes gets > puts.
func (q *Ring[T]) Stats() (puts, gets uint64) {
	gets = q.head.Load()
	puts = q.tail.Load()
	return puts, gets
}
