package queue

import (
	"runtime"
	"sync"
	"testing"
)

func TestFreeRingFIFO(t *testing.T) {
	q := NewFreeRing[int](4)
	if q.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.TryPut(i) {
			t.Fatalf("TryPut(%d) rejected below capacity", i)
		}
	}
	if q.TryPut(99) {
		t.Fatal("TryPut succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryGet()
		if !ok || v != i {
			t.Fatalf("TryGet = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet succeeded on an empty ring")
	}
}

func TestFreeRingCapacityRounding(t *testing.T) {
	if got := NewFreeRing[int](3).Cap(); got != 4 {
		t.Fatalf("cap(3) = %d, want 4", got)
	}
	if got := NewFreeRing[int](0).Cap(); got != 1 {
		t.Fatalf("cap(0) = %d, want 1", got)
	}
}

func TestFreeRingDrain(t *testing.T) {
	q := NewFreeRing[int](8)
	for i := 0; i < 5; i++ {
		q.TryPut(i)
	}
	var got []int
	q.Drain(func(v int) { got = append(got, v) })
	if len(got) != 5 || q.Len() != 0 {
		t.Fatalf("drained %v, len %d", got, q.Len())
	}
}

// TestFreeRingConcurrentSPSC hammers the ring from one putter and one
// getter goroutine under the race detector: every value put must come
// out exactly once, in order.
func TestFreeRingConcurrentSPSC(t *testing.T) {
	const n = 100000
	q := NewFreeRing[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.TryPut(i) {
				i++
			} else {
				runtime.Gosched() // nonblocking ring: yield so a 1-CPU box makes progress
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := q.TryGet()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Errorf("got %d, want %d", v, next)
			break
		}
		next++
	}
	wg.Wait()
}

func BenchmarkFreeRingPutGet(b *testing.B) {
	q := NewFreeRing[*int](256)
	v := new(int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !q.TryPut(v) {
			b.Fatal("full")
		}
		if _, ok := q.TryGet(); !ok {
			b.Fatal("empty")
		}
	}
}
