package queue

import (
	"runtime"
	"sync"
	"testing"
)

func TestFreeRingFIFO(t *testing.T) {
	q := NewFreeRing[int](4)
	if q.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.TryPut(i) {
			t.Fatalf("TryPut(%d) rejected below capacity", i)
		}
	}
	if q.TryPut(99) {
		t.Fatal("TryPut succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryGet()
		if !ok || v != i {
			t.Fatalf("TryGet = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet succeeded on an empty ring")
	}
}

func TestFreeRingCapacityRounding(t *testing.T) {
	if got := NewFreeRing[int](3).Cap(); got != 4 {
		t.Fatalf("cap(3) = %d, want 4", got)
	}
	if got := NewFreeRing[int](0).Cap(); got != 1 {
		t.Fatalf("cap(0) = %d, want 1", got)
	}
}

func TestFreeRingDrain(t *testing.T) {
	q := NewFreeRing[int](8)
	for i := 0; i < 5; i++ {
		q.TryPut(i)
	}
	var got []int
	q.Drain(func(v int) { got = append(got, v) })
	if len(got) != 5 || q.Len() != 0 {
		t.Fatalf("drained %v, len %d", got, q.Len())
	}
}

// TestFreeRingConcurrentSPSC hammers the ring from one putter and one
// getter goroutine under the race detector: every value put must come
// out exactly once, in order.
func TestFreeRingConcurrentSPSC(t *testing.T) {
	const n = 100000
	q := NewFreeRing[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.TryPut(i) {
				i++
			} else {
				runtime.Gosched() // nonblocking ring: yield so a 1-CPU box makes progress
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := q.TryGet()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Errorf("got %d, want %d", v, next)
			break
		}
		next++
	}
	wg.Wait()
}

func TestFreeRingDrainInto(t *testing.T) {
	q := NewFreeRing[int](8)
	for i := 0; i < 6; i++ {
		q.TryPut(i)
	}
	dst := make([]int, 8)

	// max bounds the chunk; the drained prefix is FIFO.
	if n := q.DrainInto(dst, 4); n != 4 || dst[0] != 0 || dst[3] != 3 {
		t.Fatalf("DrainInto(max=4) = %d, dst=%v", n, dst[:4])
	}
	// len(dst) bounds the chunk when smaller than max.
	if n := q.DrainInto(dst[:1], 99); n != 1 || dst[0] != 4 {
		t.Fatalf("DrainInto(len=1) = %d, dst[0]=%d", n, dst[0])
	}
	// A short ring yields what it has.
	if n := q.DrainInto(dst, 8); n != 1 || dst[0] != 5 {
		t.Fatalf("DrainInto(short) = %d, dst[0]=%d", n, dst[0])
	}
	// Empty ring and degenerate bounds move nothing.
	if n := q.DrainInto(dst, 8); n != 0 {
		t.Fatalf("DrainInto(empty) = %d", n)
	}
	q.TryPut(7)
	if n := q.DrainInto(dst, 0); n != 0 {
		t.Fatalf("DrainInto(max=0) = %d", n)
	}
	if n := q.DrainInto(nil, 8); n != 0 {
		t.Fatalf("DrainInto(nil dst) = %d", n)
	}
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("element lost by degenerate drains: %d,%v", v, ok)
	}
}

// TestFreeRingDrainIntoWrap drains across the ring's wrap point: the
// chunk copy must follow the masked indices, not a contiguous slice.
func TestFreeRingDrainIntoWrap(t *testing.T) {
	q := NewFreeRing[int](4)
	for i := 0; i < 3; i++ {
		q.TryPut(i)
	}
	dst := make([]int, 4)
	q.DrainInto(dst, 3) // head now 3 of 4: next chunk wraps
	for i := 10; i < 14; i++ {
		q.TryPut(i)
	}
	if n := q.DrainInto(dst, 4); n != 4 || dst[0] != 10 || dst[3] != 13 {
		t.Fatalf("wrap drain = %d, dst=%v", n, dst)
	}
}

// TestFreeRingDrainIntoConcurrent keeps a putter running while the
// getter drains in chunks: every value must come out exactly once, in
// order, under the race detector.
func TestFreeRingDrainIntoConcurrent(t *testing.T) {
	const n = 100000
	q := NewFreeRing[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.TryPut(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	dst := make([]int, 16)
	next := 0
	for next < n {
		got := q.DrainInto(dst, len(dst))
		if got == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range dst[:got] {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	wg.Wait()
}

func BenchmarkFreeRingPutGet(b *testing.B) {
	q := NewFreeRing[*int](256)
	v := new(int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !q.TryPut(v) {
			b.Fatal("full")
		}
		if _, ok := q.TryGet(); !ok {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFreeRingRefill compares the two ways a producer can refill a
// chunk from its reverse ring: one TryGet per element (a head store and
// cache-line handoff each) versus one DrainInto for the whole chunk
// (one head store total). The chunk size matches the tuple pool's
// refill chunk.
func BenchmarkFreeRingRefill(b *testing.B) {
	const chunk = 32
	fill := func(q *FreeRing[*int], v *int) {
		for i := 0; i < chunk; i++ {
			if !q.TryPut(v) {
				b.Fatal("full")
			}
		}
	}
	b.Run("TryGetLoop", func(b *testing.B) {
		q := NewFreeRing[*int](chunk)
		v := new(int)
		dst := make([]*int, chunk)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(q, v)
			for n := 0; n < chunk; n++ {
				e, ok := q.TryGet()
				if !ok {
					b.Fatal("empty")
				}
				dst[n] = e
			}
		}
	})
	b.Run("DrainInto", func(b *testing.B) {
		q := NewFreeRing[*int](chunk)
		v := new(int)
		dst := make([]*int, chunk)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(q, v)
			if got := q.DrainInto(dst, chunk); got != chunk {
				b.Fatalf("drained %d", got)
			}
		}
	})
}
