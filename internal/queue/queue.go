// Package queue provides the bounded communication queues that connect
// BriskStream tasks. A queue carries jumbo tuples (or any payload) from
// producers to a single consumer, blocks producers when full — this is
// the engine's back-pressure mechanism, which eventually slows the spout
// so the system runs at its best achievable stable throughput (Section
// 6.1, footnote 2) — and blocks the consumer when empty.
//
// Two implementations share the contract:
//
//   - Queue is the original mutex/condvar multi-producer ring. It is kept
//     as the baseline the microbenchmarks compare against and for callers
//     that need arbitrary producer counts on one queue.
//   - Ring is a lock-free single-producer/single-consumer ring (atomic
//     cursors on separate cache lines, power-of-two capacity,
//     spin-then-park waiting); Inbox fans in one Ring per producer on the
//     consumer side. This is the engine's hot path: per-edge SPSC rings
//     remove all producer-side contention (Section 5.2).
//
// The one contract divergence: the mutex Queue serializes Put against
// Close, so an accepted Put is always drainable. A lock-free Ring.Put
// racing a Close from a third goroutine can succeed for an element the
// consumer never sees (it stays in the ring). Close a ring from its
// producer after the final Put — as the engine's clean shutdown does —
// and the contracts are identical; asynchronous Close is the engine's
// abort path, where dropping in-flight elements is intended.
package queue

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Put after Close, and by Get after Close once
// the queue has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded multi-producer single-consumer FIFO. It is
// implemented as a mutex-guarded ring buffer: at jumbo-tuple granularity
// one insertion covers many tuples, so the per-slot synchronization cost
// is amortized exactly as Section 5.2 describes.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int // index of the oldest element
	size     int // number of elements
	closed   bool

	// puts and gets count successful operations for the metrics layer.
	puts, gets uint64
}

// New creates a queue with the given capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the current number of queued elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Put appends v, blocking while the queue is full. It returns ErrClosed
// if the queue is closed before space becomes available.
func (q *Queue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.puts++
	q.notEmpty.Signal()
	return nil
}

// TryPut appends v without blocking. It reports whether the element was
// enqueued; it returns ErrClosed if the queue is closed.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.size == len(q.buf) {
		return false, nil
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.puts++
	q.notEmpty.Signal()
	return true, nil
}

// Get removes and returns the oldest element, blocking while the queue is
// empty. After Close, Get keeps returning queued elements until the queue
// drains and then returns ErrClosed.
func (q *Queue[T]) Get() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.size == 0 {
		return zero, ErrClosed
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.gets++
	q.notFull.Signal()
	return v, nil
}

// TryGet removes the oldest element without blocking. The boolean reports
// whether an element was returned; after Close and drain it returns
// ErrClosed.
func (q *Queue[T]) TryGet() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.size == 0 {
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.gets++
	q.notFull.Signal()
	return v, true, nil
}

// Close marks the queue closed. Blocked producers fail with ErrClosed;
// the consumer drains remaining elements and then receives ErrClosed.
// Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Stats returns the cumulative successful Put and Get counts.
func (q *Queue[T]) Stats() (puts, gets uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.puts, q.gets
}
