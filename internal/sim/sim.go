// Package sim is the execution substrate that replaces the paper's
// eight-socket servers: a deterministic fluid/discrete-time simulator
// that "runs" an execution plan on a numa.Machine descriptor. Replica
// groups are servers with service time Te + Tf (Formula 2), connected by
// bounded queues with back-pressure; per-socket CPU, per-socket DRAM
// bandwidth and per-socket-pair channel bandwidth are enforced as
// contention (oversubscribed resources proportionally slow their users,
// rather than being hard constraints as in the optimizer's model).
//
// The simulator deliberately includes second-order effects the
// analytical model omits, so that "measured" numbers differ from
// "estimated" ones the same way the paper's Tables 3-4 do:
//
//   - a hardware-prefetch discount that shrinks the effective RMA cost
//     of large (multi-cache-line) tuples — the reason the paper's
//     estimation overshoots for Splitter but not Counter (Table 3);
//   - engine overhead (instruction footprint, per-tuple queue costs,
//     centralized-scheduler contention) configured via Overhead, which
//     is how the Storm/Flink/StreamBox baselines are emulated.
package sim

import (
	"fmt"
	"math"

	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// Overhead parameterizes the engine-class being simulated. The zero
// value plus ExecScale/RMAScale of 1 is the BriskStream engine.
type Overhead struct {
	// ExecScale multiplies Te: the instruction-footprint factor.
	// BriskStream = 1; Storm-like engines measured 4-20x larger function
	// execution time (Section 6.3).
	ExecScale float64
	// PerTupleNs is added to every tuple: the "Others" component (queue
	// access, object churn, context switches). Jumbo tuples amortize it
	// for BriskStream; per-tuple-insertion engines pay it in full.
	PerTupleNs float64
	// RMAScale multiplies the Formula 2 fetch cost (after the prefetch
	// discount). Engines with extra data shuffling pay > 1.
	RMAScale float64
	// CentralSchedNsPerCore models a centralized task scheduler with
	// locking: every tuple pays this many ns times the number of active
	// cores (StreamBox's morsel-driven scheduler, Section 6.3).
	CentralSchedNsPerCore float64
	// Prefetch enables the hardware-prefetch discount on RMA cost.
	Prefetch bool
}

// Brisk returns the BriskStream engine overhead profile.
func Brisk() Overhead { return Overhead{ExecScale: 1, RMAScale: 1, Prefetch: true} }

// PrefetchFactor scales a remote fetch cost by the number of cache lines
// fetched: sequential multi-line transfers engage the hardware
// prefetcher and cost much less than lines x latency, while single-line
// transfers see no benefit (and pay slightly more than the idle-latency
// estimate). Calibrated against the paper's Table 3: a ~1-line Counter
// tuple measures ~1.2x the estimate, a multi-line Splitter tuple ~0.35x.
func PrefetchFactor(lines float64) float64 {
	if lines < 1 {
		lines = 1
	}
	f := 1.25 - 0.65*(lines-1)
	if f < 0.3 {
		f = 0.3
	}
	return f
}

// Config carries simulation inputs.
type Config struct {
	Machine *numa.Machine
	Stats   profile.Set
	// Ingress is the offered external rate, tuples/sec.
	Ingress float64
	// Overhead selects the engine class (default Brisk()).
	Overhead Overhead
	// Duration is the simulated virtual time in seconds (default 2).
	Duration float64
	// Step is the simulation step in seconds (default 1e-3).
	Step float64
	// QueueTuples bounds each vertex input queue per fused replica
	// (default 10000); full queues exert back-pressure.
	QueueTuples float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Overhead == (Overhead{}) {
		out.Overhead = Brisk()
	}
	if out.Overhead.ExecScale <= 0 {
		out.Overhead.ExecScale = 1
	}
	if out.Overhead.RMAScale <= 0 {
		out.Overhead.RMAScale = 1
	}
	if out.Duration <= 0 {
		out.Duration = 2
	}
	if out.Step <= 0 {
		out.Step = 1e-3
	}
	if out.QueueTuples <= 0 {
		out.QueueTuples = 10000
	}
	return out
}

// VertexStats reports one vertex's steady-state behaviour.
type VertexStats struct {
	// Processed is the tuples/sec consumed in the measurement window.
	Processed float64
	// Utilization is the fraction of its service capacity in use.
	Utilization float64
	// QueueLen is the average input queue length (tuples).
	QueueLen float64
	// EffectiveT is the per-tuple service time (ns) including overheads
	// and the (prefetch-discounted) RMA cost.
	EffectiveT float64
}

// Result is one simulation outcome.
type Result struct {
	// Throughput is the steady-state sink consumption rate (tuples/s),
	// measured over the second half of the run.
	Throughput float64
	// PerVertex holds steady-state stats indexed by VertexID.
	PerVertex []VertexStats
	// AvgLatencyNs approximates mean end-to-end latency by Little's law
	// (total queued tuples / throughput) plus service times.
	AvgLatencyNs float64
}

// EffectiveT computes the simulator's per-tuple processing time (ns) for
// an operator with statistics st, fetching from a producer at NUMA
// distance (i, j) under the given engine overhead. It is exported so the
// Table 3 experiment can print "measured" (simulated) vs "estimated"
// (model) values.
func EffectiveT(m *numa.Machine, st profile.Stats, i, j numa.SocketID, o Overhead, activeCores int) float64 {
	t := st.Te*o.ExecScale + o.PerTupleNs + o.CentralSchedNsPerCore*float64(activeCores)
	if i != j {
		lines := math.Ceil(st.N / numa.CacheLineSize)
		fetch := lines * m.L(i, j)
		if o.Prefetch {
			fetch *= PrefetchFactor(lines)
		}
		t += fetch * o.RMAScale
	}
	return t
}

// Run simulates the plan and returns steady-state measurements.
func Run(eg *plan.ExecGraph, placement *plan.Placement, cfgIn *Config) (*Result, error) {
	cfg := cfgIn.withDefaults()
	m := cfg.Machine
	if m == nil {
		return nil, fmt.Errorf("sim: nil machine")
	}
	if err := cfg.Stats.Validate(); err != nil {
		return nil, err
	}
	if err := placement.Validate(eg, m, true); err != nil {
		return nil, err
	}

	n := len(eg.Vertices)
	order := eg.TopoOrder()
	queue := make([]float64, n)   // input queue level, tuples
	qcap := make([]float64, n)    // queue capacity
	baseT := make([]float64, n)   // per-tuple service time (ns) incl. RMA
	procWin := make([]float64, n) // processed in measurement window
	qsum := make([]float64, n)    // queue level integral for averages
	slow := make([]float64, n)    // contention slowdown factor (>= 1)
	sinkWin := 0.0

	// Scheduler contention scales with the machine's core count: a
	// centralized (morsel-driven) scheduler has workers polling the
	// shared task queue from every core, regardless of how many replicas
	// the plan declares.
	activeCores := m.TotalCores()

	// Pre-compute effective service times from placement geometry.
	// Multiple producers at different distances are weighted by the
	// model's arrival decomposition.
	mdl := &model.Config{Machine: m, Stats: cfg.Stats, Ingress: cfg.Ingress}
	ev, err := model.Evaluate(eg, placement, mdl, model.Options{})
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		v := eg.Vertex(id)
		st := cfg.Stats[v.Op]
		sock, _ := placement.SocketOf(id)
		var t float64
		vr := ev.Rates[id]
		if vr.In > 0 && !v.Spout {
			for from, rate := range vr.InBy {
				fsock, _ := placement.SocketOf(from)
				t += (rate / vr.In) * EffectiveT(m, st, fsock, sock, cfg.Overhead, activeCores)
			}
		}
		if t <= 0 {
			// Spouts, and operators whose modelled input rate is zero
			// (e.g. selectivity-0 streams), serve at their local rate.
			t = EffectiveT(m, st, sock, sock, cfg.Overhead, activeCores)
		}
		baseT[id] = t
		qcap[id] = cfg.QueueTuples * float64(v.Count)
		slow[id] = 1
	}

	steps := int(cfg.Duration / cfg.Step)
	half := steps / 2
	dt := cfg.Step

	spoutTotal := map[string]int{}
	for _, v := range eg.Vertices {
		if v.Spout {
			spoutTotal[v.Op] += v.Count
		}
	}

	cpuUse := make([]float64, m.Sockets)
	bwUse := make([]float64, m.Sockets)
	chanUse := make([][]float64, m.Sockets)
	for i := range chanUse {
		chanUse[i] = make([]float64, m.Sockets)
	}

	for step := 0; step < steps; step++ {
		measuring := step >= half
		// Reset per-step resource accounting.
		for i := range cpuUse {
			cpuUse[i] = 0
			bwUse[i] = 0
			for j := range chanUse[i] {
				chanUse[i][j] = 0
			}
		}

		for _, id := range order {
			v := eg.Vertex(id)
			st := cfg.Stats[v.Op]
			sock, _ := placement.SocketOf(id)

			// Service capacity this step (tuples), degraded by last
			// step's contention on this vertex's resources.
			mu := float64(v.Count) * 1e9 / baseT[id] / slow[id] * dt

			var take float64
			if v.Spout {
				take = math.Min(cfg.Ingress*float64(v.Count)/float64(spoutTotal[v.Op])*dt, mu)
			} else {
				take = math.Min(queue[id], mu)
			}

			// Back-pressure: an emitting vertex cannot exceed the
			// tightest downstream free space given its per-edge shares.
			for _, e := range eg.Out(id) {
				sel := st.Selectivity[e.Stream]
				perTake := sel * e.Share // consumer tuples per taken tuple
				if perTake <= 0 {
					continue
				}
				free := qcap[e.To] - queue[e.To]
				if free < 0 {
					free = 0
				}
				if limit := free / perTake; limit < take {
					take = limit
				}
			}

			if v.Spout {
				// nothing to dequeue
			} else {
				queue[id] -= take
			}
			// Emit.
			for _, e := range eg.Out(id) {
				queue[e.To] += take * st.Selectivity[e.Stream] * e.Share
			}

			// Resource accounting for next step's contention factors.
			cpuUse[sock] += take * baseT[id] / dt // ns of CPU per second
			bwUse[sock] += take * st.M / dt
			if !v.Spout {
				vr := ev.Rates[id]
				if vr.In > 0 {
					for from, rate := range vr.InBy {
						fsock, _ := placement.SocketOf(from)
						if fsock != sock {
							chanUse[fsock][sock] += (rate / vr.In) * take * st.N / dt
						}
					}
				}
			}

			if measuring {
				procWin[id] += take
				qsum[id] += queue[id]
				if v.Sink {
					sinkWin += take
				}
			}
		}

		// Contention factors for the next step: a vertex is slowed by
		// the most oversubscribed resource it touches.
		for _, id := range order {
			v := eg.Vertex(id)
			sock, _ := placement.SocketOf(id)
			f := 1.0
			if u := cpuUse[sock] / m.CyclesPerSocket; u > f {
				f = u
			}
			if u := bwUse[sock] / m.LocalBandwidth; u > f {
				f = u
			}
			vr := ev.Rates[id]
			if !v.Spout && vr.In > 0 {
				for from := range vr.InBy {
					fsock, _ := placement.SocketOf(from)
					if fsock != sock {
						if u := chanUse[fsock][sock] / m.Q(fsock, sock); u > f {
							f = u
						}
					}
				}
			}
			slow[id] = f
		}
	}

	winSec := float64(steps-half) * dt
	res := &Result{PerVertex: make([]VertexStats, n)}
	res.Throughput = sinkWin / winSec
	var queuedTotal float64
	for _, id := range order {
		v := eg.Vertex(id)
		rate := procWin[id] / winSec
		cap := float64(v.Count) * 1e9 / baseT[id]
		res.PerVertex[id] = VertexStats{
			Processed:   rate,
			Utilization: rate / cap,
			QueueLen:    qsum[id] / float64(steps-half),
			EffectiveT:  baseT[id],
		}
		queuedTotal += res.PerVertex[id].QueueLen
	}
	if res.Throughput > 0 {
		res.AvgLatencyNs = queuedTotal / res.Throughput * 1e9
		for _, id := range order {
			res.AvgLatencyNs += baseT[id]
		}
	}
	return res, nil
}
