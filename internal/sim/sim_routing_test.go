package sim

import (
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// TestSimBroadcastMultipliesLoad: broadcast delivery means every replica
// of the consumer receives the full stream, so doubling replicas doubles
// the delivered tuples at the sinks downstream.
func TestSimBroadcastMultipliesLoad(t *testing.T) {
	g := graph.New("bcast")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "mirror", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "mirror", Stream: "default", Partitioning: graph.Broadcast})
	g.AddEdge(graph.Edge{From: "mirror", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := profile.Set{
		"spout":  {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"mirror": {Te: 500, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
	m := numa.Synthetic("bc", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)

	tput := func(mirrors int) float64 {
		eg, err := plan.Build(g, map[string]int{"mirror": mirrors}, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(eg, plan.CollocateAll(eg), &Config{
			Machine: m, Stats: stats, Ingress: 100_000, Duration: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	one := tput(1)
	three := tput(3)
	if three < one*2.5 || three > one*3.5 {
		t.Errorf("broadcast x3 should triple sink arrivals: 1 replica %v, 3 replicas %v", one, three)
	}
}

// TestSimGlobalRoutesToOneReplica: a global-grouped consumer processes
// the full stream on one replica even when nominally replicated.
func TestSimGlobalRoutesToOneReplica(t *testing.T) {
	g := graph.New("global")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "agg", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "agg", Stream: "default", Partitioning: graph.Global})
	g.AddEdge(graph.Edge{From: "agg", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := profile.Set{
		"spout": {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"agg":   {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":  {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
	m := numa.Synthetic("gl", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	eg, err := plan.Build(g, map[string]int{"agg": 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(eg, plan.CollocateAll(eg), &Config{
		Machine: m, Stats: stats, Ingress: model.Saturated, Duration: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only agg#0 receives input; throughput caps at a single replica's
	// service rate (1e6/s) despite 4 replicas.
	aggs := eg.OfOp("agg")
	if got := r.PerVertex[aggs[0].ID].Processed; got < 0.9e6 {
		t.Errorf("agg#0 processed %v, want ~1e6", got)
	}
	for _, v := range aggs[1:] {
		if got := r.PerVertex[v.ID].Processed; got > 1 {
			t.Errorf("%s processed %v, want 0 under global grouping", v.Label(), got)
		}
	}
	if r.Throughput > 1.1e6 {
		t.Errorf("global grouping should cap throughput at one replica: %v", r.Throughput)
	}
}
