package sim

import (
	"math"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func testStats() profile.Set {
	return profile.Set{
		"spout":  {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func testMachine() *numa.Machine {
	return numa.Synthetic("sim", 4, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
}

func TestSimAgreesWithModelWhenCollocated(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	p := plan.CollocateAll(eg)
	m := testMachine()
	cfg := &Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	r, err := Run(eg, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Model predicts 1e6 (worker-bound); the simulator should land close
	// (no RMA, no contention: only discretization error).
	if rel := math.Abs(r.Throughput-1e6) / 1e6; rel > 0.02 {
		t.Errorf("sim throughput %v deviates %.1f%% from model 1e6", r.Throughput, rel*100)
	}
	worker := eg.OfOp("worker")[0].ID
	if u := r.PerVertex[worker].Utilization; u < 0.95 || u > 1.01 {
		t.Errorf("bottleneck utilization = %v, want ~1", u)
	}
	sink := eg.OfOp("sink")[0].ID
	if u := r.PerVertex[sink].Utilization; u > 0.2 {
		t.Errorf("sink utilization = %v, want low", u)
	}
}

func TestSimIngressLimited(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	p := plan.CollocateAll(eg)
	cfg := &Config{Machine: testMachine(), Stats: testStats(), Ingress: 1000}
	r, err := Run(eg, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-1000) > 20 {
		t.Errorf("throughput = %v, want ~1000", r.Throughput)
	}
}

func TestSimRMALowersThroughput(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	m := testMachine()
	cfg := &Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}

	local, err := Run(eg, plan.CollocateAll(eg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	remote := plan.NewPlacement()
	remote.Place(eg.OfOp("spout")[0].ID, 0)
	remote.Place(eg.OfOp("worker")[0].ID, 2) // cross-tray
	remote.Place(eg.OfOp("sink")[0].ID, 2)
	far, err := Run(eg, remote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if far.Throughput >= local.Throughput {
		t.Errorf("remote %v should be slower than local %v", far.Throughput, local.Throughput)
	}
}

func TestSimBackPressureStabilizes(t *testing.T) {
	// Saturated ingress with a slow worker: queues must stay bounded
	// (back-pressure), not grow to the queue cap on every vertex.
	eg, _ := plan.Build(chain(t), nil, 1)
	cfg := &Config{Machine: testMachine(), Stats: testStats(), Ingress: model.Saturated, QueueTuples: 500}
	r, err := Run(eg, plan.CollocateAll(eg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	worker := eg.OfOp("worker")[0].ID
	if r.PerVertex[worker].QueueLen > 500 {
		t.Errorf("worker queue %v exceeds cap", r.PerVertex[worker].QueueLen)
	}
	if r.Throughput <= 0 {
		t.Error("no progress under back-pressure")
	}
}

func TestSimCPUContentionSlowsOversubscribedSocket(t *testing.T) {
	// 16 busy workers on a 4-core socket: CPU contention must cap the
	// aggregate at roughly the socket capacity (4e6 with Te=1000).
	g := chain(t)
	eg, _ := plan.Build(g, map[string]int{"worker": 16}, 1)
	m := testMachine()
	p := plan.NewPlacement()
	p.Place(eg.OfOp("spout")[0].ID, 1)
	for _, v := range eg.OfOp("worker") {
		p.Place(v.ID, 0)
	}
	p.Place(eg.OfOp("sink")[0].ID, 1)
	cfg := &Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	r, err := Run(eg, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without contention 16 remote workers could process ~12.6e6; the
	// 4-core socket must hold them near 4e6 x (1000/(1000+fetch)) —
	// allow generous slack but require well under the uncontended rate.
	var total float64
	for _, v := range eg.OfOp("worker") {
		total += r.PerVertex[v.ID].Processed
	}
	if total > 4.5e6 {
		t.Errorf("oversubscribed socket processed %v, want <= ~4e6 (CPU cap)", total)
	}
}

func TestPrefetchFactorShape(t *testing.T) {
	// Single-line transfers pay slightly more than the latency estimate;
	// multi-line transfers pay much less (Table 3 calibration).
	if f := PrefetchFactor(1); f <= 1 {
		t.Errorf("1-line factor = %v, want > 1", f)
	}
	if f := PrefetchFactor(3); f >= 1 {
		t.Errorf("3-line factor = %v, want < 1", f)
	}
	if f := PrefetchFactor(10); f < 0.3 || f > 0.31 {
		t.Errorf("large transfers should clamp at 0.3, got %v", f)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for l := 1.0; l < 12; l++ {
		f := PrefetchFactor(l)
		if f > prev {
			t.Errorf("PrefetchFactor not monotone at %v", l)
		}
		prev = f
	}
}

func TestEffectiveTMatchesComponents(t *testing.T) {
	m := testMachine()
	st := profile.Stats{Te: 1000, N: 64, Selectivity: map[string]float64{"default": 1}}
	o := Overhead{ExecScale: 2, PerTupleNs: 100, RMAScale: 1, Prefetch: false}
	local := EffectiveT(m, st, 0, 0, o, 1)
	if local != 2100 {
		t.Errorf("local T = %v, want 2100", local)
	}
	remote := EffectiveT(m, st, 0, 1, o, 1)
	if remote != 2100+200 {
		t.Errorf("remote T = %v, want 2300", remote)
	}
	// Central scheduler term scales with cores.
	o2 := Overhead{ExecScale: 1, CentralSchedNsPerCore: 10}
	if EffectiveT(m, st, 0, 0, o2, 16)-EffectiveT(m, st, 0, 0, o2, 1) != 150 {
		t.Error("central scheduler term not linear in cores")
	}
}

func TestOverheadRaisesLatencyAndLowersThroughput(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	p := plan.CollocateAll(eg)
	m := testMachine()
	brisk, err := Run(eg, p, &Config{Machine: m, Stats: testStats(), Ingress: model.Saturated})
	if err != nil {
		t.Fatal(err)
	}
	stormish, err := Run(eg, p, &Config{
		Machine: m, Stats: testStats(), Ingress: model.Saturated,
		Overhead: Overhead{ExecScale: 8, PerTupleNs: 3000, RMAScale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stormish.Throughput >= brisk.Throughput/3 {
		t.Errorf("storm-like %v should be far below brisk %v", stormish.Throughput, brisk.Throughput)
	}
}

func TestSimRejectsBadInputs(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	if _, err := Run(eg, plan.CollocateAll(eg), &Config{Stats: testStats(), Ingress: 1}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := Run(eg, plan.NewPlacement(), &Config{Machine: testMachine(), Stats: testStats(), Ingress: 1}); err == nil {
		t.Error("incomplete placement accepted")
	}
}

func TestSimLatencyGrowsWithQueueing(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	p := plan.CollocateAll(eg)
	m := testMachine()
	idle, err := Run(eg, p, &Config{Machine: m, Stats: testStats(), Ingress: 1000})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := Run(eg, p, &Config{Machine: m, Stats: testStats(), Ingress: model.Saturated})
	if err != nil {
		t.Fatal(err)
	}
	if busy.AvgLatencyNs <= idle.AvgLatencyNs {
		t.Errorf("saturated latency %v should exceed idle latency %v", busy.AvgLatencyNs, idle.AvgLatencyNs)
	}
}
