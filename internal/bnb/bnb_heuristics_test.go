package bnb

import (
	"testing"

	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
)

// TestDedupSkipsIdenticalSubProblems: the same partial placement reached
// through different decision orders must be expanded once.
func TestDedupSkipsIdenticalSubProblems(t *testing.T) {
	m := numa.Synthetic("dedup", 4, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 800, 60), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 4}, 1)

	with, err := Optimize(eg, cfg, Config{NodeLimit: 100000})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Optimize(eg, cfg, Config{NodeLimit: 100000, NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Deduped == 0 {
		t.Error("no duplicate sub-problems detected; the WC-style graph must produce some")
	}
	if without.Deduped != 0 {
		t.Error("NoDedup still deduplicated")
	}
	// Dedup must not change the solution quality.
	if with.Eval.Throughput < without.Eval.Throughput*(1-1e-9) {
		t.Errorf("dedup degraded solution: %v vs %v", with.Eval.Throughput, without.Eval.Throughput)
	}
	// And it should reduce (or at worst match) the work done.
	if with.Explored > without.Explored {
		t.Errorf("dedup explored more nodes (%d) than baseline (%d)", with.Explored, without.Explored)
	}
}

// TestWarmStartDoesNotDegrade: seeding the incumbent with the greedy
// plan must never produce a worse final solution.
func TestWarmStartDoesNotDegrade(t *testing.T) {
	m := numa.Synthetic("warm", 4, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 800, 60), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 3}, 1)

	cold, err := Optimize(eg, cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Optimize(eg, cfg, Config{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Eval.Throughput < cold.Eval.Throughput*(1-1e-9) {
		t.Errorf("warm start degraded solution: %v vs %v", warm.Eval.Throughput, cold.Eval.Throughput)
	}
}

// TestWarmStartPrunesEarlier: with a node budget too small for the cold
// search to reach any solution on a deep graph, the warm start still
// returns a valid plan.
func TestWarmStartRescuesTinyBudget(t *testing.T) {
	m := numa.Synthetic("tiny-budget", 4, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 500, 60), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 8}, 1)

	warm, err := Optimize(eg, cfg, Config{NodeLimit: 1, WarmStart: true})
	if err != nil {
		t.Fatalf("warm start with 1-node budget: %v", err)
	}
	if warm.Placement == nil || !warm.Eval.Feasible() {
		t.Error("warm start did not provide a usable incumbent")
	}
}

// TestGreedyPlacementComplete: the warm-start helper always returns a
// complete placement.
func TestGreedyPlacementComplete(t *testing.T) {
	m := numa.Synthetic("greedy", 2, 1, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 100, 100), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 4}, 1)
	p := greedyPlacement(eg, cfg)
	if p == nil || !p.Complete(eg) {
		t.Fatal("greedy placement incomplete")
	}
}

// TestPlacementSignature: distinct placements get distinct signatures;
// equal placements collide.
func TestPlacementSignature(t *testing.T) {
	eg, _ := plan.Build(chain(t), nil, 1)
	a := plan.NewPlacement()
	a.Place(eg.Vertices[0].ID, 0)
	b := plan.NewPlacement()
	b.Place(eg.Vertices[0].ID, 0)
	if placementSignature(eg, a) != placementSignature(eg, b) {
		t.Error("identical placements have different signatures")
	}
	b.Place(eg.Vertices[1].ID, 1)
	if placementSignature(eg, a) == placementSignature(eg, b) {
		t.Error("different placements share a signature")
	}
	c := plan.NewPlacement()
	c.Place(eg.Vertices[0].ID, 1)
	if placementSignature(eg, a) == placementSignature(eg, c) {
		t.Error("different sockets share a signature")
	}
}
