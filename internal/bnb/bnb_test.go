package bnb

import (
	"math"
	"math/rand"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/placement"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func stats(spoutTe, workerTe, sinkTe float64) profile.Set {
	return profile.Set{
		"spout":  {Te: spoutTe, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: workerTe, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: sinkTe, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func TestOptimizeCollocatesWhenItFits(t *testing.T) {
	// Plenty of CPU: the best plan puts everything on one socket (no RMA).
	m := numa.Synthetic("roomy", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 1000, 100), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	r, err := Optimize(eg, cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eval.Feasible() {
		t.Fatal("solution infeasible")
	}
	// All three on the same socket.
	s0, _ := r.Placement.SocketOf(eg.Vertices[0].ID)
	for _, v := range eg.Vertices[1:] {
		if s, _ := r.Placement.SocketOf(v.ID); s != s0 {
			t.Errorf("%s not collocated (socket %d vs %d)", v.Label(), s, s0)
		}
	}
	// Throughput equals the worker capacity with zero RMA.
	if math.Abs(r.Eval.Throughput-1e6) > 1 {
		t.Errorf("throughput = %v, want 1e6", r.Eval.Throughput)
	}
}

func TestOptimizeSplitsWhenSocketTooSmall(t *testing.T) {
	// One core per socket: spout alone fills a core, so the plan must
	// spread across sockets and pay RMA somewhere.
	m := numa.Synthetic("tight", 4, 1, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 100, 100), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	r, err := Optimize(eg, cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eval.Feasible() {
		t.Fatalf("solution infeasible: %v", r.Eval.Violations)
	}
	sockets := map[numa.SocketID]bool{}
	for _, v := range eg.Vertices {
		s, ok := r.Placement.SocketOf(v.ID)
		if !ok {
			t.Fatalf("%s unplaced", v.Label())
		}
		sockets[s] = true
	}
	if len(sockets) < 2 {
		t.Errorf("expected spread over >=2 sockets, got %d", len(sockets))
	}
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	// Random small instances: B&B must find placements at least as good
	// as exhaustive search (modulo floating-point slack). The fit gate
	// and best-fit heuristic may in principle trade tiny amounts of
	// optimality; the paper accepts heuristic search, so we assert
	// near-optimality (>= 99.9% of the brute-force value).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		cores := 1 + rng.Intn(3)
		m := numa.Synthetic("bf", 3, cores, 50, 150+rng.Float64()*100, 300+rng.Float64()*200,
			50*numa.GB, 10*numa.GB, 5*numa.GB)
		st := stats(50+rng.Float64()*300, 100+rng.Float64()*2000, 30+rng.Float64()*100)
		cfg := &model.Config{Machine: m, Stats: st, Ingress: model.Saturated}
		repl := map[string]int{"worker": 1 + rng.Intn(2)}
		eg, _ := plan.Build(chain(t), repl, 1)

		bfPlace, bfEval, err := placement.BruteForce(eg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Optimize(eg, cfg, Config{})
		if bfPlace == nil {
			if err != ErrNoFeasiblePlacement {
				t.Fatalf("trial %d: brute force found nothing but B&B returned %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v (brute force found %v)", trial, err, bfEval.Throughput)
		}
		if r.Eval.Throughput < bfEval.Throughput*0.999 {
			t.Errorf("trial %d: B&B %v < brute force %v", trial, r.Eval.Throughput, bfEval.Throughput)
		}
		if !r.Eval.Feasible() {
			t.Errorf("trial %d: B&B returned infeasible plan", trial)
		}
	}
}

func TestOptimizeReportsInfeasible(t *testing.T) {
	// Demand cannot fit: 1 socket x 1 core but the spout alone needs a
	// full core and so does the worker.
	m := numa.Synthetic("impossible", 1, 1, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 100, 100), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	_, err := Optimize(eg, cfg, Config{})
	if err != ErrNoFeasiblePlacement {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

func TestOptimizeUnderSuppliedIsFeasibleAnywhere(t *testing.T) {
	// Tiny ingress: every placement is feasible; optimizer should still
	// produce the ingress-limited throughput.
	m := numa.Synthetic("idle", 2, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 1000, 100), Ingress: 500}
	eg, _ := plan.Build(chain(t), nil, 1)
	r, err := Optimize(eg, cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Eval.Throughput-500) > 1e-6 {
		t.Errorf("throughput = %v, want 500", r.Eval.Throughput)
	}
}

func TestNodeLimitTerminates(t *testing.T) {
	m := numa.ServerA()
	cfg := &model.Config{Machine: m, Stats: stats(100, 1000, 100), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 6}, 1)
	r, err := Optimize(eg, cfg, Config{NodeLimit: 50})
	if err != nil && err != ErrNoFeasiblePlacement {
		t.Fatal(err)
	}
	if r.Explored > 50 {
		t.Errorf("explored %d nodes beyond limit", r.Explored)
	}
}

func TestBoundingFunctionDominatesChildren(t *testing.T) {
	// The bound of a partial placement must be >= the full evaluation of
	// any random completion (the safety property that justifies pruning).
	m := numa.Synthetic("bound", 4, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(100, 800, 60), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 3}, 1)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		partial := plan.NewPlacement()
		for _, v := range eg.Vertices {
			if rng.Float64() < 0.5 {
				partial.Place(v.ID, numa.SocketID(rng.Intn(m.Sockets)))
			}
		}
		bound, err := model.Evaluate(eg, partial, cfg, model.Options{Bound: true})
		if err != nil {
			t.Fatal(err)
		}
		full := partial.Clone()
		for _, v := range eg.Vertices {
			if _, ok := full.SocketOf(v.ID); !ok {
				full.Place(v.ID, numa.SocketID(rng.Intn(m.Sockets)))
			}
		}
		fe, err := model.Evaluate(eg, full, cfg, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fe.Throughput > bound.Throughput*(1+1e-9) {
			t.Fatalf("trial %d: completion %v beats bound %v", trial, fe.Throughput, bound.Throughput)
		}
	}
}

func TestCompressedGraphOptimizes(t *testing.T) {
	// Ratio 5 fuses 10 workers into 2 vertices; the search space shrinks
	// and the result must still be feasible.
	m := numa.Synthetic("compress", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: stats(50, 1000, 50), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 10}, 5)
	if len(eg.OfOp("worker")) != 2 {
		t.Fatalf("compression produced %d groups", len(eg.OfOp("worker")))
	}
	r, err := Optimize(eg, cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eval.Feasible() {
		t.Fatal("infeasible")
	}
	// Two 5-replica groups cannot share a socket with the spout (5+5+1
	// cores > 8), so one group pays a hop (cap ~4.2e6) and the sink
	// pays a weighted fetch for that group's share, capping the
	// pipeline at ~7.1e6 events/s.
	if r.Eval.Throughput < 6.5e6 {
		t.Errorf("compressed plan throughput = %v, want >= 6.5e6", r.Eval.Throughput)
	}
}
