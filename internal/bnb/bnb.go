// Package bnb implements BriskStream's branch-and-bound placement
// optimizer (Section 4, Algorithm 2). Nodes of the search tree are
// partial placements; the bounding function evaluates the performance
// model with every unplaced vertex treated as collocated with all of its
// producers (Tf = 0), which upper-bounds the throughput of every
// completion, so subtrees whose bound is no better than the incumbent
// solution are pruned safely.
//
// Three heuristics shrink the search space:
//
//  1. Collocation branching: the search branches on producer-consumer
//     pairs (edges), not single vertices, skipping placements that cannot
//     change any output rate.
//  2. Best-fit + redundancy elimination: when all predecessors of the
//     pair are already placed, the consumer's rate is fully determined,
//     so only the single best placement is explored; interchangeable
//     sockets (identical remaining resources and identical NUMA distance
//     to every already-used socket) are collapsed to one representative.
//  3. Graph compression is handled upstream by plan.Build's ratio, which
//     fuses replicas into fewer, heavier vertices.
package bnb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
)

// ErrNoFeasiblePlacement is returned when no complete placement satisfies
// the resource constraints — the signal Algorithm 1 uses to stop scaling.
var ErrNoFeasiblePlacement = errors.New("bnb: no feasible placement")

// Config tunes the search.
type Config struct {
	// NodeLimit caps explored nodes (0 = default 200000). When the limit
	// is hit the best solution found so far is returned.
	NodeLimit int
	// WarmStart seeds the incumbent with a first-fit placement before
	// the search begins, enabling pruning from the first node (Appendix
	// D reports this helps in some cases by earlier pruning).
	WarmStart bool
	// NoDedup disables identical-sub-problem elimination (visited-state
	// detection); used by the ablation benchmarks.
	NoDedup bool
}

// Result is the outcome of a placement search.
type Result struct {
	// Placement is the best valid placement found.
	Placement *plan.Placement
	// Eval is the full model evaluation of Placement.
	Eval *model.Result
	// Explored and Pruned count search-tree nodes.
	Explored, Pruned int
	// Deduped counts nodes skipped because an identical partial
	// placement was already expanded via a different decision order
	// (the redundancy-elimination half of heuristic 2).
	Deduped int
	// Elapsed is the optimization wall time (Table 7 reports it).
	Elapsed time.Duration
}

type node struct {
	placement *plan.Placement
	// next indexes into the pair list: pairs[:next] are resolved.
	next  int
	bound float64
}

// Optimize searches for the throughput-maximizing placement of eg on
// cfg.Machine. It returns ErrNoFeasiblePlacement if the constraints admit
// no complete placement.
func Optimize(eg *plan.ExecGraph, cfg *model.Config, bc Config) (*Result, error) {
	start := time.Now()
	limit := bc.NodeLimit
	if limit <= 0 {
		limit = 200_000
	}
	pairs := eg.Pairs()
	res := &Result{}

	root := &node{placement: plan.NewPlacement()}
	rootEval, err := model.Evaluate(eg, root.placement, cfg, model.Options{Bound: true})
	if err != nil {
		return nil, err
	}
	root.bound = rootEval.Throughput

	var best *plan.Placement
	var bestEval *model.Result
	bestValue := -1.0

	// Warm start: seed the incumbent with a first-fit-style greedy
	// placement so bound-based pruning is active from the first node.
	if bc.WarmStart {
		if p := greedyPlacement(eg, cfg); p != nil {
			if ev, err := model.Evaluate(eg, p, cfg, model.Options{}); err == nil && ev.Feasible() {
				best, bestEval, bestValue = p, ev, ev.Throughput
			}
		}
	}

	// visited detects identical partial placements reached through
	// different decision orders (redundancy elimination, heuristic 2).
	visited := map[string]bool{}

	stack := []*node{root}
	for len(stack) > 0 && res.Explored < limit {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Explored++

		if bestValue >= 0 && n.bound <= bestValue {
			res.Pruned++
			continue
		}
		if !bc.NoDedup {
			sig := placementSignature(eg, n.placement)
			if visited[sig] {
				res.Deduped++
				continue
			}
			visited[sig] = true
		}

		// Advance past decisions whose endpoints are both placed
		// (collocation heuristic: such decisions are no longer relevant).
		next := n.next
		for next < len(pairs) && bothPlaced(n.placement, pairs[next]) {
			next++
		}

		if next >= len(pairs) {
			// All decisions resolved. Any vertex not covered by an edge
			// pair cannot exist in a validated graph, so the placement
			// is complete; accept it if valid.
			full, err := model.Evaluate(eg, n.placement, cfg, model.Options{})
			if err != nil {
				continue
			}
			if full.Feasible() && full.Throughput > bestValue {
				bestValue = full.Throughput
				best = n.placement
				bestEval = full
			}
			continue
		}

		children, err := branch(eg, cfg, n, pairs, next)
		if err != nil {
			return nil, err
		}
		// Push worse children first so the most promising is explored
		// next (DFS best-first hybrid): better incumbents earlier mean
		// more pruning later.
		sort.Slice(children, func(i, j int) bool { return children[i].bound < children[j].bound })
		for _, c := range children {
			if bestValue >= 0 && c.bound <= bestValue {
				res.Pruned++
				continue
			}
			stack = append(stack, c)
		}
	}
	res.Elapsed = time.Since(start)
	if best == nil {
		return res, ErrNoFeasiblePlacement
	}
	res.Placement = best
	res.Eval = bestEval
	return res, nil
}

// placementSignature canonically encodes a (partial) placement.
func placementSignature(eg *plan.ExecGraph, p *plan.Placement) string {
	buf := make([]byte, len(eg.Vertices))
	for i := range eg.Vertices {
		s, ok := p.SocketOf(plan.VertexID(i))
		if !ok {
			buf[i] = 0xFF
		} else {
			buf[i] = byte(s)
		}
	}
	return string(buf)
}

// greedyPlacement produces a quick feasible-if-possible placement for
// the warm start: topological first-fit with the sustained-demand gate.
func greedyPlacement(eg *plan.ExecGraph, cfg *model.Config) *plan.Placement {
	p := plan.NewPlacement()
	for _, id := range eg.TopoOrder() {
		cur, err := model.Evaluate(eg, p, cfg, model.Options{Bound: true})
		if err != nil {
			return nil
		}
		placed := false
		for s := 0; s < cfg.Machine.Sockets; s++ {
			if fits(eg, cfg, cur, p, s, id) {
				p.Place(id, numa.SocketID(s))
				placed = true
				break
			}
		}
		if !placed {
			// Fall back to the least-loaded socket; the final full
			// evaluation decides feasibility.
			bestS, bestCPU := 0, cur.CPUUsed[0]
			for s := 1; s < cfg.Machine.Sockets; s++ {
				if cur.CPUUsed[s] < bestCPU {
					bestS, bestCPU = s, cur.CPUUsed[s]
				}
			}
			p.Place(id, numa.SocketID(bestS))
		}
	}
	return p
}

func bothPlaced(p *plan.Placement, pair [2]plan.VertexID) bool {
	_, a := p.SocketOf(pair[0])
	_, b := p.SocketOf(pair[1])
	return a && b
}

// branch generates the children of n for the collocation decision
// pairs[next] = (producer, consumer).
func branch(eg *plan.ExecGraph, cfg *model.Config, n *node, pairs [][2]plan.VertexID, next int) ([]*node, error) {
	prod, cons := pairs[next][0], pairs[next][1]
	m := cfg.Machine

	// Evaluate the current partial placement once: child feasibility
	// gates and best-fit use its rates and socket usage.
	cur, err := model.Evaluate(eg, n.placement, cfg, model.Options{Bound: true})
	if err != nil {
		return nil, err
	}

	_, prodPlaced := n.placement.SocketOf(prod)
	_, consPlaced := n.placement.SocketOf(cons)

	// Candidate placements for the pair, expressed as vertex->socket
	// assignments to add.
	type assign struct{ pairs [][2]int } // (vertexID, socket)
	var candidates []assign

	reps := socketRepresentatives(eg, cfg, n.placement, cur)
	switch {
	case !prodPlaced && !consPlaced:
		for _, s := range reps {
			if fits(eg, cfg, cur, n.placement, s, prod, cons) {
				candidates = append(candidates, assign{pairs: [][2]int{{int(prod), s}, {int(cons), s}}})
			}
		}
		// Decision not satisfied: place the producer alone; the consumer
		// stays open for a later decision.
		for _, s := range reps {
			if fits(eg, cfg, cur, n.placement, s, prod) {
				candidates = append(candidates, assign{pairs: [][2]int{{int(prod), s}}})
			}
		}
	case prodPlaced && !consPlaced:
		for _, s := range reps {
			if fits(eg, cfg, cur, n.placement, s, cons) {
				candidates = append(candidates, assign{pairs: [][2]int{{int(cons), s}}})
			}
		}
	case !prodPlaced && consPlaced:
		for _, s := range reps {
			if fits(eg, cfg, cur, n.placement, s, prod) {
				candidates = append(candidates, assign{pairs: [][2]int{{int(prod), s}}})
			}
		}
	}
	if len(candidates) == 0 {
		// Constraint-gated dead end: relax the fit gate so search can
		// continue; the full evaluation at the leaf still rejects
		// genuinely infeasible plans.
		switch {
		case !prodPlaced && !consPlaced:
			for _, s := range reps {
				candidates = append(candidates, assign{pairs: [][2]int{{int(prod), s}, {int(cons), s}}})
			}
		case prodPlaced && !consPlaced:
			for _, s := range reps {
				candidates = append(candidates, assign{pairs: [][2]int{{int(cons), s}}})
			}
		default:
			for _, s := range reps {
				candidates = append(candidates, assign{pairs: [][2]int{{int(prod), s}}})
			}
		}
	}

	children := make([]*node, 0, len(candidates))
	for _, c := range candidates {
		p := n.placement.Clone()
		for _, a := range c.pairs {
			p.Place(plan.VertexID(a[0]), numa.SocketID(a[1]))
		}
		ev, err := model.Evaluate(eg, p, cfg, model.Options{Bound: true})
		if err != nil {
			return nil, err
		}
		children = append(children, &node{placement: p, next: next, bound: ev.Throughput})
	}

	// Best-fit heuristic: when every predecessor of the consumer is
	// already placed AND the consumer has no downstream operators, its
	// output rate is fully determined by this decision and its placement
	// cannot affect anything else — keep only the best child (ties
	// broken toward the socket with least remaining CPU). Applying the
	// greedy rule to vertices with consumers is unsafe: maximizing their
	// own output rate can exhaust the socket a downstream operator
	// needs, which is exactly the local-optimum trap the paper observes
	// in FF (Section 6.4).
	if prodPlaced && !consPlaced && len(eg.Out(cons)) == 0 &&
		allPredecessorsPlaced(eg, n.placement, cons) && len(children) > 1 {
		bestIdx, bestBound := 0, -1.0
		var bestRemain float64
		for i, c := range children {
			s, _ := c.placement.SocketOf(cons)
			remain := m.CyclesPerSocket - cur.CPUUsed[s]
			if c.bound > bestBound+1e-9 || (c.bound > bestBound-1e-9 && remain < bestRemain) {
				bestIdx, bestBound, bestRemain = i, c.bound, remain
			}
		}
		children = children[bestIdx : bestIdx+1]
	}
	return children, nil
}

// allPredecessorsPlaced reports whether every producer of v is placed.
func allPredecessorsPlaced(eg *plan.ExecGraph, p *plan.Placement, v plan.VertexID) bool {
	for _, e := range eg.In(v) {
		if _, ok := p.SocketOf(e.From); !ok {
			return false
		}
	}
	return true
}

// fits applies the branching feasibility gate: would adding the given
// vertices to socket s respect the CPU and local-bandwidth constraints?
// Demand must be estimated with the fetch cost the vertex would actually
// pay on socket s for its already-placed producers: the bounded (Tf=0)
// demand underestimates under-supplied remote consumers, whose real
// demand is In x (Te + Tf) — packing sockets to the brim with the
// optimistic estimate makes every completion infeasible.
func fits(eg *plan.ExecGraph, cfg *model.Config, cur *model.Result, p *plan.Placement, s int, vs ...plan.VertexID) bool {
	cpu := cur.CPUUsed[s]
	bw := cur.BWUsed[s]
	for _, v := range vs {
		cpuD, bwD := demandAt(eg, cfg, cur, p, v, numa.SocketID(s), vs)
		cpu += cpuD
		bw += bwD
	}
	return cpu <= cfg.Machine.CyclesPerSocket*(1+1e-9) && bw <= cfg.Machine.LocalBandwidth*(1+1e-9)
}

// demandAt estimates the CPU (ns/s) and memory-bandwidth (bytes/s)
// demand of vertex v if placed on socket s, charging Formula 2 for every
// producer that is already placed elsewhere. Producers being co-assigned
// in the same branching step (group) count as residing on s.
func demandAt(eg *plan.ExecGraph, cfg *model.Config, cur *model.Result, p *plan.Placement, v plan.VertexID, s numa.SocketID, group []plan.VertexID) (cpu, bw float64) {
	vtx := eg.Vertex(v)
	st := cfg.Stats[vtx.Op]
	vr := cur.Rates[v]
	t := st.Te
	if vr.In > 0 {
		var weighted float64
		for from, rate := range vr.InBy {
			fsock, placed := p.SocketOf(from)
			if !placed {
				if inGroup(from, group) {
					continue // co-assigned to s: local
				}
				continue // unplaced: optimistic zero (bound semantics)
			}
			if fsock != s {
				weighted += rate * cfg.Machine.FetchCost(int(st.N), fsock, s)
			}
		}
		t += weighted / vr.In
	}
	cap := float64(vtx.Count) * 1e9 / t
	processed := vr.In
	if vtx.Spout || processed > cap {
		processed = cap
	}
	// Scale by the back-pressure sustained fraction from the bound
	// evaluation: upstream of a pipeline bottleneck a vertex never runs
	// at its capacity.
	if vr.Processed > 0 {
		processed *= vr.Sustained / vr.Processed
	}
	return processed * t, processed * st.M
}

func inGroup(v plan.VertexID, group []plan.VertexID) bool {
	for _, g := range group {
		if g == v {
			return true
		}
	}
	return false
}

// socketRepresentatives returns one socket per equivalence class
// (redundancy elimination). Two sockets are interchangeable when they
// carry identical CPU/bandwidth load and sit at identical NUMA distance
// from every socket currently in use.
func socketRepresentatives(eg *plan.ExecGraph, cfg *model.Config, p *plan.Placement, cur *model.Result) []int {
	m := cfg.Machine
	used := map[numa.SocketID]bool{}
	for _, v := range eg.Vertices {
		if s, ok := p.SocketOf(v.ID); ok {
			used[s] = true
		}
	}
	var usedList []int
	for s := range used {
		usedList = append(usedList, int(s))
	}
	sort.Ints(usedList)

	seen := map[string]bool{}
	var reps []int
	for s := 0; s < m.Sockets; s++ {
		sig := signature(m, cur, s, usedList)
		if !seen[sig] {
			seen[sig] = true
			reps = append(reps, s)
		}
	}
	return reps
}

func signature(m *numa.Machine, cur *model.Result, s int, usedList []int) string {
	sig := fmt.Sprintf("%.6g|%.6g", cur.CPUUsed[s], cur.BWUsed[s])
	for _, u := range usedList {
		sig += fmt.Sprintf("|%g", m.L(numa.SocketID(s), numa.SocketID(u)))
	}
	return sig
}
