package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"briskstream/internal/tuple"
)

// Encoder builds a snapshot payload. Fixed-width integers are big-endian
// (matching the tuple wire format); lengths are uvarints. The encoding
// is deterministic: the same sequence of calls with the same values
// produces the same bytes, always.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload. The slice aliases the encoder's
// buffer; callers that keep it past Reset must copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset empties the encoder, keeping its buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Int64 appends a fixed 8-byte big-endian integer.
func (e *Encoder) Int64(v int64) { e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v)) }

// Uint64 appends a fixed 8-byte big-endian unsigned integer.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// Float64 appends the IEEE-754 bits of v.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Len appends a collection length as a uvarint.
func (e *Encoder) Len(n int) { e.buf = binary.AppendUvarint(e.buf, uint64(n)) }

// String appends a uvarint length followed by the string bytes.
func (e *Encoder) String(s string) {
	e.Len(len(s))
	e.buf = append(e.buf, s...)
}

// Bytes64 appends a uvarint length followed by raw bytes.
func (e *Encoder) Bytes64(b []byte) {
	e.Len(len(b))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes verbatim, with no length prefix: splicing an
// encoding produced by another Encoder into this one (state resharding
// recomposes snapshot payloads this way).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Tags for Key encodings. They mirror the slot kinds tuple fields may
// hold; vNone covers the empty key of global (unkeyed) windows. Symbol
// keys encode as their interned name (vSym + string) — symbol ids are
// process-local and must never be persisted — and are re-interned on
// decode, so a restored key equals the key a replayed tuple produces
// while the encoding stays byte-stable across processes.
const (
	vNone byte = iota
	vInt
	vFloat
	vString
	vBool
	vSym
)

// Key appends one typed grouping key.
func (e *Encoder) Key(k tuple.Key) {
	switch k.Kind() {
	case tuple.KindNone:
		e.buf = append(e.buf, vNone)
	case tuple.KindInt:
		e.buf = append(e.buf, vInt)
		e.Int64(k.Int())
	case tuple.KindFloat:
		e.buf = append(e.buf, vFloat)
		e.Float64(k.Float())
	case tuple.KindStr:
		e.buf = append(e.buf, vString)
		e.String(k.Str())
	case tuple.KindBool:
		e.buf = append(e.buf, vBool)
		e.Bool(k.Bool())
	case tuple.KindSym:
		e.buf = append(e.buf, vSym)
		e.String(k.Str())
	default:
		panic(fmt.Sprintf("checkpoint: cannot encode key of kind %v", k.Kind()))
	}
}

// ErrCorrupt reports a malformed snapshot payload.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Decoder reads a snapshot payload produced by Encoder. Errors are
// sticky: after the first failure every read returns the zero value and
// Err reports the failure, so decode sequences need a single check.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps an encoded payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

// Int64 reads a fixed 8-byte big-endian integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uint64 reads a fixed 8-byte big-endian unsigned integer.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads an IEEE-754 value.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b == 1
}

// Len reads a uvarint collection length, bounded by the remaining
// payload so corrupt lengths cannot drive huge allocations.
func (d *Decoder) Len() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || v > uint64(len(d.buf)) {
		d.fail()
		return 0
	}
	d.off += n
	return int(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len()
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Bytes64 reads a length-prefixed byte slice (copied out of the payload).
func (d *Decoder) Bytes64() []byte {
	n := d.Len()
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += n
	return b
}

// Key reads one typed grouping key (symbol keys are re-interned).
func (d *Decoder) Key() tuple.Key {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return tuple.Key{}
	}
	tag := d.buf[d.off]
	d.off++
	switch tag {
	case vNone:
		return tuple.Key{}
	case vInt:
		return tuple.IntKey(d.Int64())
	case vFloat:
		return tuple.FloatKey(d.Float64())
	case vString:
		return tuple.StrKey(d.String())
	case vBool:
		return tuple.BoolKey(d.Bool())
	case vSym:
		return tuple.SymKey(tuple.InternSym(d.String()))
	default:
		d.fail()
		return tuple.Key{}
	}
}
