package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Checkpoint is one completed global snapshot: the union of every task's
// local snapshot for one barrier id. Tasks maps the engine's task labels
// ("op#replica") to their Snapshot payloads; source tasks additionally
// carry their replay offset inside the payload.
type Checkpoint struct {
	ID    uint64
	Tasks map[string][]byte
}

// Store persists completed checkpoints. Implementations must be safe
// for concurrent use: the coordinator saves from whichever task
// goroutine delivers the final ack while Latest may be called from the
// recovery path.
type Store interface {
	// Save persists a completed checkpoint.
	Save(cp *Checkpoint) error
	// Load returns the checkpoint with the given id, or nil if unknown.
	Load(id uint64) (*Checkpoint, error)
	// Latest returns the completed checkpoint with the highest id, or
	// nil if none has been saved.
	Latest() (*Checkpoint, error)
}

// MemoryStore keeps checkpoints in process memory — the default backend
// for tests and for recovery from soft failures (operator panic, engine
// kill) within one process lifetime.
type MemoryStore struct {
	mu  sync.Mutex
	cps map[uint64]*Checkpoint
	max uint64
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{cps: map[uint64]*Checkpoint{}}
}

// Save implements Store.
func (s *MemoryStore) Save(cp *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cps[cp.ID] = cp
	if cp.ID > s.max {
		s.max = cp.ID
	}
	return nil
}

// Load implements Store.
func (s *MemoryStore) Load(id uint64) (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cps[id], nil
}

// Latest implements Store.
func (s *MemoryStore) Latest() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cps[s.max], nil
}

// Prune discards every checkpoint with id < keepFrom. The coordinator
// calls it after each completed save, so a long-running engine holds
// one live checkpoint, not its whole history.
func (s *MemoryStore) Prune(keepFrom uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.cps {
		if id < keepFrom {
			delete(s.cps, id)
		}
	}
	return nil
}

// fileMagic heads every checkpoint file; the version byte follows it.
const fileMagic = "BSCP"

// FileStore persists each checkpoint as one file in a directory,
// surviving process death. Writes go through a temp file plus rename so
// a crash mid-save can never leave a truncated checkpoint that Latest
// would pick up.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileStore opens (creating if needed) a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) path(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%016d.bin", id))
}

// Save implements Store.
func (s *FileStore) Save(cp *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := NewEncoder()
	enc.String(fileMagic)
	enc.Len(1) // format version
	enc.Uint64(cp.ID)
	// Sorted task order keeps the file encoding deterministic: the same
	// checkpoint always serializes to the same bytes.
	labels := make([]string, 0, len(cp.Tasks))
	for l := range cp.Tasks {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	enc.Len(len(labels))
	for _, l := range labels {
		enc.String(l)
		enc.Bytes64(cp.Tasks[l])
	}
	tmp := s.path(cp.ID) + ".tmp"
	if err := os.WriteFile(tmp, enc.Bytes(), 0o644); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmp, s.path(cp.ID)); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *FileStore) Load(id uint64) (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load(id)
}

func (s *FileStore) load(id uint64) (*Checkpoint, error) {
	raw, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	dec := NewDecoder(raw)
	if dec.String() != fileMagic || dec.Len() != 1 {
		return nil, fmt.Errorf("checkpoint: %s: not a checkpoint file", s.path(id))
	}
	cp := &Checkpoint{ID: dec.Uint64(), Tasks: map[string][]byte{}}
	n := dec.Len()
	for i := 0; i < n && dec.Err() == nil; i++ {
		label := dec.String()
		cp.Tasks[label] = dec.Bytes64()
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", s.path(id), err)
	}
	if cp.ID != id {
		return nil, fmt.Errorf("checkpoint: %s: id %d inside file named %d", s.path(id), cp.ID, id)
	}
	return cp, nil
}

// Latest implements Store.
func (s *FileStore) Latest() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, nil
	}
	return s.load(slices.Max(ids))
}

// Prune removes every checkpoint file with id < keepFrom (see
// MemoryStore.Prune). Removal failures are reported but the store stays
// usable — a leftover old file never shadows a newer id.
func (s *FileStore) Prune(keepFrom uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, err := s.ids()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if id >= keepFrom {
			continue
		}
		if err := os.Remove(s.path(id)); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	return nil
}

// ids lists the checkpoint ids present in the directory (lock held).
func (s *FileStore) ids() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list: %w", err)
	}
	ids := []uint64{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".bin"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}
