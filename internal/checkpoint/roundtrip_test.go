package checkpoint

// Property coverage for the snapshot codec: every key kind and
// primitive — including empty strings, max/min ints and NaN floats —
// must round-trip through Encoder/Decoder, and re-encoding the decoded
// values must be byte-identical (the codec is deterministic, which is
// what makes snapshots of identical state comparable as bytes).

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"briskstream/internal/tuple"
)

// edgeKeys are the adversarial per-kind key payloads.
var edgeKeys = []tuple.Key{
	{},
	tuple.IntKey(0), tuple.IntKey(math.MaxInt64), tuple.IntKey(math.MinInt64), tuple.IntKey(-1),
	tuple.FloatKey(0), tuple.FloatKey(math.Copysign(0, -1)), tuple.FloatKey(math.NaN()),
	tuple.FloatKey(math.Inf(1)), tuple.FloatKey(math.Inf(-1)),
	tuple.BoolKey(true), tuple.BoolKey(false),
	tuple.StrKey(""), tuple.StrKey("plain"), tuple.StrKey("with\x00nul é世"),
	tuple.SymKey(tuple.InternSym("ckpt-edge-sym")),
}

func TestKeyCodecRoundTripEveryEdgeValue(t *testing.T) {
	for i, k := range edgeKeys {
		enc := NewEncoder()
		enc.Key(k)
		buf := append([]byte(nil), enc.Bytes()...)
		dec := NewDecoder(buf)
		got := dec.Key()
		if err := dec.Err(); err != nil {
			t.Fatalf("key %d (%v): %v", i, k, err)
		}
		if got != k {
			t.Fatalf("key %d changed: %v -> %v", i, k, got)
		}
		enc2 := NewEncoder()
		enc2.Key(got)
		if !bytes.Equal(buf, enc2.Bytes()) {
			t.Fatalf("key %d re-encoding not byte-identical:\n %x\n %x", i, buf, enc2.Bytes())
		}
	}
}

func TestCodecRoundTripRandomSequences(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 1000; iter++ {
		// A random interleaving of primitives and keys, decoded with the
		// same schedule, then re-encoded: values and bytes must match.
		type step struct {
			kind int
			i    int64
			u    uint64
			f    float64
			b    bool
			s    string
			k    tuple.Key
		}
		strs := []string{"", "a", "long-ish payload string", "\x00\xff"}
		n := 1 + r.Intn(20)
		steps := make([]step, n)
		enc := NewEncoder()
		for i := range steps {
			st := step{kind: r.Intn(6)}
			switch st.kind {
			case 0:
				st.i = r.Int63() - r.Int63()
				enc.Int64(st.i)
			case 1:
				st.u = r.Uint64()
				enc.Uint64(st.u)
			case 2:
				st.f = math.Float64frombits(r.Uint64())
				enc.Float64(st.f)
			case 3:
				st.b = r.Intn(2) == 0
				enc.Bool(st.b)
			case 4:
				st.s = strs[r.Intn(len(strs))]
				enc.String(st.s)
			case 5:
				st.k = edgeKeys[r.Intn(len(edgeKeys))]
				enc.Key(st.k)
			}
			steps[i] = st
		}
		buf := append([]byte(nil), enc.Bytes()...)
		dec := NewDecoder(buf)
		enc2 := NewEncoder()
		for i, st := range steps {
			switch st.kind {
			case 0:
				if got := dec.Int64(); got != st.i {
					t.Fatalf("step %d: int64 %d != %d", i, got, st.i)
				}
				enc2.Int64(st.i)
			case 1:
				if got := dec.Uint64(); got != st.u {
					t.Fatalf("step %d: uint64 %d != %d", i, got, st.u)
				}
				enc2.Uint64(st.u)
			case 2:
				if got := dec.Float64(); math.Float64bits(got) != math.Float64bits(st.f) {
					t.Fatalf("step %d: float %v != %v", i, got, st.f)
				}
				enc2.Float64(st.f)
			case 3:
				if got := dec.Bool(); got != st.b {
					t.Fatalf("step %d: bool %t != %t", i, got, st.b)
				}
				enc2.Bool(st.b)
			case 4:
				if got := dec.String(); got != st.s {
					t.Fatalf("step %d: string %q != %q", i, got, st.s)
				}
				enc2.String(st.s)
			case 5:
				if got := dec.Key(); got != st.k {
					t.Fatalf("step %d: key %v != %v", i, got, st.k)
				}
				enc2.Key(st.k)
			}
		}
		if err := dec.Err(); err != nil {
			t.Fatal(err)
		}
		if dec.Remaining() != 0 {
			t.Fatalf("%d bytes left over", dec.Remaining())
		}
		if !bytes.Equal(buf, enc2.Bytes()) {
			t.Fatal("re-encoding of a decoded sequence not byte-identical")
		}
	}
}

// FuzzDecoderKey feeds arbitrary bytes to the key decoder: never a
// panic, and accepted keys re-encode/decode idempotently.
func FuzzDecoderKey(f *testing.F) {
	for _, k := range edgeKeys {
		enc := NewEncoder()
		enc.Key(k)
		f.Add(append([]byte(nil), enc.Bytes()...))
	}
	f.Add([]byte{})
	f.Add([]byte{0xee})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(data)
		k := dec.Key()
		if dec.Err() != nil {
			return
		}
		enc := NewEncoder()
		enc.Key(k)
		dec2 := NewDecoder(enc.Bytes())
		if got := dec2.Key(); dec2.Err() != nil || got != k {
			t.Fatalf("key decode/encode not idempotent: %v -> %v (%v)", k, got, dec2.Err())
		}
	})
}
