package checkpoint

import (
	"bytes"
	"path/filepath"
	"testing"

	"briskstream/internal/state"
	"briskstream/internal/tuple"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	enc := NewEncoder()
	enc.Int64(-42)
	enc.Uint64(1 << 63)
	enc.Float64(3.25)
	enc.Bool(true)
	enc.Bool(false)
	enc.String("hello")
	enc.String("")
	enc.Len(7)
	enc.Bytes64([]byte{1, 2, 3})
	enc.Key(tuple.Key{})
	enc.Key(tuple.IntKey(9))
	enc.Key(tuple.FloatKey(2.5))
	enc.Key(tuple.StrKey("word"))
	enc.Key(tuple.BoolKey(true))

	dec := NewDecoder(enc.Bytes())
	if got := dec.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := dec.Uint64(); got != 1<<63 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := dec.Float64(); got != 3.25 {
		t.Fatalf("Float64 = %v", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Fatal("Bool round-trip")
	}
	if got := dec.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := dec.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if got := dec.Len(); got != 7 {
		t.Fatalf("Len = %d", got)
	}
	if got := dec.Bytes64(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes64 = %v", got)
	}
	if got := dec.Key(); got != (tuple.Key{}) {
		t.Fatalf("empty Key = %v", got)
	}
	if got := dec.Key(); got != tuple.IntKey(9) {
		t.Fatalf("int Key = %v", got)
	}
	if got := dec.Key(); got != tuple.FloatKey(2.5) {
		t.Fatalf("float Key = %v", got)
	}
	if got := dec.Key(); got != tuple.StrKey("word") {
		t.Fatalf("string Key = %v", got)
	}
	if got := dec.Key(); got != tuple.BoolKey(true) {
		t.Fatalf("bool Key = %v", got)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over", dec.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	dec := NewDecoder([]byte{0x01})
	_ = dec.Int64() // truncated
	if dec.Err() == nil {
		t.Fatal("want error on truncated payload")
	}
	// Every further read is a safe zero, not a panic.
	if dec.String() != "" || dec.Int64() != 0 || dec.Key() != (tuple.Key{}) || dec.Len() != 0 {
		t.Fatal("reads after error must return zero values")
	}
}

func TestDecoderBoundsCorruptLength(t *testing.T) {
	enc := NewEncoder()
	enc.Len(1 << 40) // length far beyond the payload
	dec := NewDecoder(enc.Bytes())
	if dec.Len() != 0 || dec.Err() == nil {
		t.Fatal("oversized length must fail, not allocate")
	}
}

// TestSaveOrderedByteStable is the round-trip determinism contract:
// the same logical state.Map contents always encode to the same bytes,
// regardless of insertion order.
func TestSaveOrderedByteStable(t *testing.T) {
	encode := func(keys []string) []byte {
		m := state.NewMap[string, int64]()
		for i, k := range keys {
			e, _ := m.GetOrCreate(k)
			*e = int64(i * i)
		}
		// Values must not depend on insertion index for the comparison:
		// re-assign deterministically by key length.
		m.Range(func(k string, e *int64) bool { *e = int64(len(k)); return true })
		enc := NewEncoder()
		SaveOrdered(enc, m,
			func(e *Encoder, k string) { e.String(k) },
			func(e *Encoder, v *int64) { e.Int64(*v) })
		return append([]byte(nil), enc.Bytes()...)
	}
	a := encode([]string{"zebra", "apple", "mid", "aa"})
	b := encode([]string{"aa", "mid", "apple", "zebra"})
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order leaked into the encoding:\n%x\n%x", a, b)
	}

	m2 := state.NewMap[string, int64]()
	if err := LoadOrdered(NewDecoder(a), m2,
		func(d *Decoder) string { return d.String() },
		func(d *Decoder, v *int64) { *v = d.Int64() }); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 4 || *m2.Get("zebra") != 5 || *m2.Get("aa") != 2 {
		t.Fatalf("LoadOrdered rebuilt wrong contents (len %d)", m2.Len())
	}
}

func TestCoordinatorCompletesOnLastAck(t *testing.T) {
	co := NewCoordinator(nil)
	co.Begin(1, []string{"a#0", "b#0", "c#0"})
	if err := co.Ack(1, "a#0", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := co.Ack(1, "b#0", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if co.Completed() != 0 {
		t.Fatal("completed before all acks")
	}
	if cp, _ := co.Latest(); cp != nil {
		t.Fatal("latest visible before completion")
	}
	if err := co.Ack(1, "c#0", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if co.Completed() != 1 || co.LatestID() != 1 {
		t.Fatalf("completed=%d latest=%d", co.Completed(), co.LatestID())
	}
	cp, err := co.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.ID != 1 || len(cp.Tasks) != 3 || cp.Tasks["b#0"][0] != 2 {
		t.Fatalf("latest = %+v", cp)
	}
}

func TestCoordinatorDropsStaleAndDuplicate(t *testing.T) {
	co := NewCoordinator(nil)
	co.Begin(1, []string{"a#0"})
	co.Begin(2, []string{"a#0"})
	// Duplicate ack and ack for an unknown id are dropped silently.
	if err := co.Ack(2, "a#0", nil); err != nil {
		t.Fatal(err)
	}
	if err := co.Ack(2, "a#0", nil); err != nil {
		t.Fatal(err)
	}
	if err := co.Ack(9, "a#0", nil); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1 was overtaken by 2's completion and discarded.
	if err := co.Ack(1, "a#0", nil); err != nil {
		t.Fatal(err)
	}
	if co.Completed() != 1 || co.LatestID() != 2 {
		t.Fatalf("completed=%d latest=%d", co.Completed(), co.LatestID())
	}
	// A Begin below the completed id is refused.
	co.Begin(2, []string{"a#0"})
	if err := co.Ack(2, "a#0", nil); err != nil {
		t.Fatal(err)
	}
	if co.Completed() != 1 {
		t.Fatal("re-begun completed checkpoint must not complete again")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(filepath.Join(dir, "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	if cp, err := st.Latest(); err != nil || cp != nil {
		t.Fatalf("empty store: cp=%v err=%v", cp, err)
	}
	cp1 := &Checkpoint{ID: 1, Tasks: map[string][]byte{"spout#0": {9, 8}, "sink#0": {}}}
	cp7 := &Checkpoint{ID: 7, Tasks: map[string][]byte{"spout#0": {1}, "sink#0": {2}}}
	if err := st.Save(cp1); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(cp7); err != nil {
		t.Fatal(err)
	}
	got, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || !bytes.Equal(got.Tasks["sink#0"], []byte{2}) {
		t.Fatalf("latest = %+v", got)
	}
	got, err = st.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 || !bytes.Equal(got.Tasks["spout#0"], []byte{9, 8}) || len(got.Tasks["sink#0"]) != 0 {
		t.Fatalf("load(1) = %+v", got)
	}
	if got, err := st.Load(99); err != nil || got != nil {
		t.Fatalf("load(unknown) = %v, %v", got, err)
	}
	// Reopening the directory sees the persisted checkpoints.
	st2, err := NewFileStore(filepath.Join(dir, "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	got, err = st2.Latest()
	if err != nil || got == nil || got.ID != 7 {
		t.Fatalf("reopened latest = %v, %v", got, err)
	}
}

// Engine snapshots may legally contain any key kind a tuple field can
// hold — including interned symbols, which encode by name and
// re-intern on decode so the restored key equals the replayed one.
func TestKeyEncodingMatchesTupleKinds(t *testing.T) {
	keys := []tuple.Key{
		{}, tuple.IntKey(-1), tuple.FloatKey(0.5), tuple.StrKey("k"),
		tuple.BoolKey(false), tuple.SymKey(tuple.InternSym("ckpt-sym")),
	}
	enc := NewEncoder()
	for _, k := range keys {
		enc.Key(k)
	}
	dec := NewDecoder(enc.Bytes())
	for i, want := range keys {
		if got := dec.Key(); got != want {
			t.Fatalf("key %d: got %v want %v", i, got, want)
		}
	}
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
}

// failingStore rejects every Save.
type failingStore struct{ MemoryStore }

func (s *failingStore) Save(cp *Checkpoint) error {
	return ErrCorrupt
}

// A failed Save must not advance the completed counter or the restore
// floor — otherwise Latest() returns nil while LatestID() lies, and the
// floor refuses retried ids forever.
func TestCoordinatorSaveFailureKeepsFloorHonest(t *testing.T) {
	st := &failingStore{MemoryStore{cps: map[uint64]*Checkpoint{}}}
	co := NewCoordinator(st)
	co.Begin(1, []string{"a#0"})
	if err := co.Ack(1, "a#0", nil); err == nil {
		t.Fatal("completing ack must surface the store failure")
	}
	if co.Completed() != 0 || co.LatestID() != 0 {
		t.Fatalf("failed save counted as completed: completed=%d latest=%d", co.Completed(), co.LatestID())
	}
	// A later checkpoint with a fresh id is still accepted.
	co.Begin(2, []string{"a#0"})
	if _, ok := co.pending[2]; !ok {
		t.Fatal("coordinator wedged after failed save")
	}
}

// Completed checkpoints older than the last durable one are dead
// weight; both stores prune them on the coordinator's signal.
func TestStoresPruneSuperseded(t *testing.T) {
	mem := NewMemoryStore()
	co := NewCoordinator(mem)
	for id := uint64(1); id <= 3; id++ {
		co.Begin(id, []string{"a#0"})
		if err := co.Ack(id, "a#0", []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := mem.Load(1); got != nil {
		t.Fatal("memory store kept a superseded checkpoint")
	}
	if got, _ := mem.Latest(); got == nil || got.ID != 3 {
		t.Fatalf("latest after prune = %v", got)
	}

	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co2 := NewCoordinator(fs)
	for id := uint64(1); id <= 3; id++ {
		co2.Begin(id, []string{"a#0"})
		if err := co2.Ack(id, "a#0", []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := fs.Load(2); got != nil {
		t.Fatal("file store kept a superseded checkpoint")
	}
	if got, _ := fs.Latest(); got == nil || got.ID != 3 {
		t.Fatalf("file latest after prune = %v", got)
	}
}
