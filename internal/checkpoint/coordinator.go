package checkpoint

import (
	"fmt"
	"sync"
	"time"
)

// Coordinator tracks in-flight checkpoints across the tasks of one
// engine. The engine calls Begin when it triggers a barrier, every task
// calls Ack with its local snapshot once its barriers aligned (sources
// ack at injection), and the checkpoint is persisted to the Store —
// and only then observable through Latest — once the final task acks.
// Incomplete checkpoints (a task failed, the run was killed mid-align)
// are never persisted; they are discarded when a later checkpoint
// completes.
//
// All methods are safe for concurrent use: acks arrive from every task
// goroutine.
type Coordinator struct {
	store Store

	mu        sync.Mutex
	pending   map[uint64]*pendingCkpt
	retired   map[string][]byte // finished tasks' final snapshots
	completed uint64            // count of completed checkpoints (stats)
	latestID  uint64            // highest completed id
	seedErr   error             // store failure while seeding the id floor

	// onComplete observes every persisted checkpoint with its begin and
	// persist times (the obs layer turns the pair into begin→persist
	// duration metrics and journal events). Called outside the lock.
	onComplete func(id uint64, began, done time.Time)
}

type pendingCkpt struct {
	expect map[string]bool // task labels still missing
	tasks  map[string][]byte
	began  time.Time // when Begin registered the checkpoint
}

// NewCoordinator builds a coordinator over the given store (nil defaults
// to an in-memory store). The completed-id floor is seeded from the
// store's latest checkpoint, so a coordinator opened over a persistent
// store after a process restart hands out ids above everything already
// saved — new checkpoints can never be shadowed by a dead run's files.
func NewCoordinator(store Store) *Coordinator {
	if store == nil {
		store = NewMemoryStore()
	}
	co := &Coordinator{store: store, pending: map[uint64]*pendingCkpt{}, retired: map[string][]byte{}}
	switch cp, err := store.Latest(); {
	case err != nil:
		// An unreadable store cannot seed the floor — and could not
		// serve a Restore either. Surface it on the first Begin instead
		// of silently allocating ids a corrupt high-id file would shadow.
		co.seedErr = fmt.Errorf("checkpoint: seeding coordinator floor: %w", err)
	case cp != nil:
		co.latestID = cp.ID
	}
	return co
}

// Store returns the coordinator's backing store.
func (co *Coordinator) Store() Store { return co.store }

// SetOnComplete arms an observer invoked (outside the coordinator
// lock) after each checkpoint persists, with the checkpoint id and its
// Begin/persist times. Re-arming replaces the previous observer; the
// engine's obs registration sets it, so a coordinator shared across
// adaptive segments reports into the live registration.
func (co *Coordinator) SetOnComplete(fn func(id uint64, began, done time.Time)) {
	co.mu.Lock()
	co.onComplete = fn
	co.mu.Unlock()
}

// Begin registers checkpoint id as in flight, expecting one Ack from
// every listed task. Retired (finished) tasks are filled in with their
// final snapshots immediately — which can complete (and persist) the
// checkpoint on the spot when the whole topology has finished.
// Re-beginning a known id is a no-op.
func (co *Coordinator) Begin(id uint64, tasks []string) error {
	co.mu.Lock()
	if co.seedErr != nil {
		err := co.seedErr
		co.mu.Unlock()
		return err
	}
	if _, ok := co.pending[id]; ok || id <= co.latestID {
		co.mu.Unlock()
		return nil
	}
	p := &pendingCkpt{expect: make(map[string]bool, len(tasks)), tasks: make(map[string][]byte, len(tasks)), began: time.Now()}
	for _, t := range tasks {
		p.expect[t] = true
	}
	co.pending[id] = p
	done := co.applyRetiredLocked(id, p)
	co.mu.Unlock()
	if done == nil {
		return nil
	}
	return co.persist(id, done)
}

// applyRetiredLocked fills a pending checkpoint with every retired
// task's final snapshot; it returns the checkpoint if that completed it.
func (co *Coordinator) applyRetiredLocked(id uint64, p *pendingCkpt) *pendingCkpt {
	for task, snap := range co.retired {
		if p.expect[task] {
			delete(p.expect, task)
			p.tasks[task] = snap
		}
	}
	if len(p.expect) > 0 {
		return nil
	}
	delete(co.pending, id)
	return p
}

// Ack delivers one task's local snapshot for checkpoint id. The ack
// that completes the task set persists the checkpoint; acks for
// unknown (never begun, or already discarded) checkpoints are dropped —
// a task may deliver a barrier the coordinator gave up on.
func (co *Coordinator) Ack(id uint64, task string, snapshot []byte) error {
	co.mu.Lock()
	p, ok := co.pending[id]
	if !ok || !p.expect[task] {
		co.mu.Unlock()
		return nil
	}
	delete(p.expect, task)
	p.tasks[task] = snapshot
	if len(p.expect) > 0 {
		co.mu.Unlock()
		return nil
	}
	delete(co.pending, id)
	co.mu.Unlock()
	return co.persist(id, p)
}

// Retire records that a task finished cleanly with the given final
// snapshot: it is excluded from (and auto-filled into) this and every
// future checkpoint, so checkpoints keep completing while part of the
// topology has already ended. A crash is not a retirement — the engine
// retires tasks only on natural completion.
func (co *Coordinator) Retire(task string, snapshot []byte) error {
	co.mu.Lock()
	co.retired[task] = snapshot
	var ids []uint64
	var done []*pendingCkpt
	for id, p := range co.pending {
		if !p.expect[task] {
			continue
		}
		delete(p.expect, task)
		p.tasks[task] = snapshot
		if len(p.expect) == 0 {
			delete(co.pending, id)
			ids = append(ids, id)
			done = append(done, p)
		}
	}
	co.mu.Unlock()
	for i, p := range done {
		if err := co.persist(ids[i], p); err != nil {
			return err
		}
	}
	return nil
}

// persist saves a completed checkpoint. The completed counter and the
// restore floor advance only after the store accepted it — a failed
// Save must not leave the coordinator claiming a checkpoint the store
// does not hold (Latest would return nil while LatestID lied, and the
// floor would refuse the ids of retried checkpoints forever). Save runs
// outside the lock: file stores do real IO.
func (co *Coordinator) persist(id uint64, p *pendingCkpt) error {
	if err := co.store.Save(&Checkpoint{ID: id, Tasks: p.tasks}); err != nil {
		return fmt.Errorf("checkpoint %d: %w", id, err)
	}
	// Recovery only ever reads Latest: once id is durable, everything
	// older is dead weight (checkpoint every second for a week and the
	// store would otherwise hold ~600k full snapshots). A prune failure
	// is deliberately not a checkpoint failure — the checkpoint IS
	// durable, and a leftover older file can never shadow a newer id —
	// so the leftovers just wait for the next successful prune.
	if pr, ok := co.store.(interface{ Prune(keepFrom uint64) error }); ok {
		_ = pr.Prune(id)
	}
	co.mu.Lock()
	co.completed++
	if id > co.latestID {
		co.latestID = id
	}
	// Discard older pending checkpoints: their barriers can no longer
	// beat this one to completion usefully.
	for pid := range co.pending {
		if pid < id {
			delete(co.pending, pid)
		}
	}
	onComplete := co.onComplete
	co.mu.Unlock()
	if onComplete != nil {
		onComplete(id, p.began, time.Now())
	}
	return nil
}

// Completed reports how many checkpoints have completed.
func (co *Coordinator) Completed() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.completed
}

// LatestID reports the highest completed checkpoint id (0 if none).
func (co *Coordinator) LatestID() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.latestID
}

// Latest returns the most recent completed checkpoint from the store,
// or nil if none has completed.
func (co *Coordinator) Latest() (*Checkpoint, error) {
	return co.store.Latest()
}

// Abandon discards every in-flight checkpoint and all retirements
// (engine restart: the surviving barriers of the dead run can never
// complete, and every task is alive again).
func (co *Coordinator) Abandon() {
	co.mu.Lock()
	defer co.mu.Unlock()
	clear(co.pending)
	clear(co.retired)
}
