// Package checkpoint implements BriskStream's fault-tolerance substrate:
// aligned-barrier checkpoints in the Chandy–Lamport style, adapted to the
// shared-memory engine's per-edge SPSC rings. The engine injects a
// barrier punctuation at every source, each task aligns the barriers of
// its producer edges (buffering input from edges that already delivered
// the barrier), snapshots its operator state on its own execution
// goroutine, and acknowledges to the Coordinator; a checkpoint is
// complete only once every task has acknowledged, at which point the
// Coordinator persists it through a pluggable Store (in-memory or
// file-backed). On failure the engine restores every task from the
// latest completed checkpoint and seeks its sources back to the recorded
// offsets (engine.ReplayableSpout), so replay reproduces the exact
// post-checkpoint stream.
//
// This package owns the pieces that are independent of the engine's
// execution machinery:
//
//   - Encoder/Decoder: a deterministic binary encoding for snapshot
//     payloads. Determinism is a contract, not an accident — the same
//     logical state must serialize to the same bytes so snapshot
//     round-trips are testable bit-for-bit, which is what keeps the
//     subsystem honest about missed state. Keyed state is therefore
//     always encoded in sorted key order (state.Map.RangeSorted).
//   - Snapshotter: the interface operators (and spouts with state beyond
//     their replay offset) implement to participate in checkpoints.
//   - Checkpoint/Store: the persisted artifact and its backends.
//   - Coordinator: in-flight checkpoint tracking and completion.
//
// Snapshots are taken per task on the task's own goroutine between
// tuples, so they are cheap pauses local to one operator rather than a
// stop-the-world freeze — the alignment protocol is what makes the union
// of these local snapshots a consistent global cut.
package checkpoint

import (
	"cmp"
	"slices"

	"briskstream/internal/state"
)

// Snapshotter is implemented by operators (and spouts) whose state must
// survive failure. Snapshot serializes the full operator state into enc;
// Restore rebuilds it from a Snapshot-produced payload, replacing any
// current state. Both run on the owning task's execution goroutine, so
// implementations may touch operator state without synchronization, but
// must not emit tuples.
//
// Snapshot encodings must be deterministic: encode keyed state in sorted
// key order (state.Map.RangeSorted), never in Go map order.
type Snapshotter interface {
	Snapshot(enc *Encoder) error
	Restore(dec *Decoder) error
}

// Resharder is implemented by Snapshotters whose state is keyed and can
// be re-partitioned across a different replica count. Reshard receives
// the Snapshot payloads of every old replica of the operator and
// returns exactly n payloads, one per new replica, such that every
// (key, value) pair of the input appears in exactly one output shard —
// the shard of its new owner, hash(key) % n, matching the engine's
// fields routing. Each output payload must be a valid Restore input and
// deterministic (encode keys in sorted order). Elastic rescaling
// requires every stateful operator being rescaled to implement this.
type Resharder interface {
	Reshard(old [][]byte, n int) ([][]byte, error)
}

// Validator is implemented by Snapshotters whose ability to snapshot
// depends on configuration (the window operators need Save/Load
// codecs). The engine calls ValidateSnapshot at construction when
// checkpointing is enabled, so a misconfigured operator fails the
// build instead of aborting the run at the first barrier.
type Validator interface {
	ValidateSnapshot() error
}

// SaveOrdered encodes a state.Map with naturally ordered keys
// deterministically: length first, then every (key, value) pair in
// ascending key order.
func SaveOrdered[K cmp.Ordered, V any](enc *Encoder, m *state.Map[K, V], key func(*Encoder, K), val func(*Encoder, *V)) {
	enc.Len(m.Len())
	m.RangeSorted(func(a, b K) int { return cmp.Compare(a, b) }, func(k K, e *V) bool {
		key(enc, k)
		val(enc, e)
		return true
	})
}

// LoadOrdered decodes a SaveOrdered encoding into m, replacing its
// contents. val receives a recycled entry and must fully initialize it.
func LoadOrdered[K cmp.Ordered, V any](dec *Decoder, m *state.Map[K, V], key func(*Decoder) K, val func(*Decoder, *V)) error {
	m.Clear()
	n := dec.Len()
	for i := 0; i < n && dec.Err() == nil; i++ {
		k := key(dec)
		e, _ := m.GetOrCreate(k)
		val(dec, e)
	}
	return dec.Err()
}

// SaveMapOrdered is SaveOrdered for plain Go maps — the common shape of
// hand-rolled operator state (per-entity cursors, received multisets).
func SaveMapOrdered[K cmp.Ordered, V any](enc *Encoder, m map[K]V, key func(*Encoder, K), val func(*Encoder, V)) {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	enc.Len(len(keys))
	for _, k := range keys {
		key(enc, k)
		val(enc, m[k])
	}
}

// LoadMapOrdered decodes a SaveMapOrdered encoding into m, replacing
// its contents.
func LoadMapOrdered[K cmp.Ordered, V any](dec *Decoder, m map[K]V, key func(*Decoder) K, val func(*Decoder) V) error {
	clear(m)
	n := dec.Len()
	for i := 0; i < n && dec.Err() == nil; i++ {
		k := key(dec)
		m[k] = val(dec)
	}
	return dec.Err()
}
