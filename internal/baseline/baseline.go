// Package baseline emulates the competing systems BriskStream is
// evaluated against (Section 6.3): Apache Storm 1.1.1, Apache Flink
// 1.3.2 and StreamBox. Each system is described by the overhead class of
// its runtime — instruction footprint, per-tuple communication cost,
// scheduler contention — and by the placement/replication policy it
// would apply on a multi-socket machine. The numbers are calibrated from
// the paper's own measurements:
//
//   - Figure 8: Storm's function execution time is 4-20x BriskStream's
//     (front-end stalls from a large instruction footprint) and its
//     "Others" component is ~10x (per-tuple queue insertions, duplicate
//     headers, object churn).
//   - Flink is comparable to Storm overall, slightly leaner per tuple,
//     but pays a stream-merger (co-flat-map) penalty on operators with
//     multiple input streams, which hurts LR badly.
//   - StreamBox's morsel-driven engine is lean per tuple but serializes
//     on a centralized, lock-based task scheduler (cost grows with core
//     count) and its shuffle step crosses sockets for keyed state.
package baseline

import (
	"briskstream/internal/graph"
	"briskstream/internal/numa"
	"briskstream/internal/placement"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
	"briskstream/internal/sim"
)

// System describes one emulated DSPS.
type System struct {
	// Name labels the system in reports.
	Name string
	// Overhead is the engine-class cost model fed to the simulator.
	Overhead sim.Overhead
	// MultiInputPenaltyNs is added to Te of every operator with more
	// than one distinct producer (Flink's co-flat-map stream merger).
	MultiInputPenaltyNs float64
	// Strategy picks the placement policy: "os" or "rr".
	Strategy string
}

// Storm returns the Apache Storm overhead class: heavyweight execution
// path with (de)serialization, per-tuple transfers and no NUMA awareness
// (placement left to the OS).
func Storm() System {
	return System{
		Name: "Storm",
		Overhead: sim.Overhead{
			ExecScale:  6,
			PerTupleNs: 2800,
			RMAScale:   1,
			Prefetch:   true,
		},
		Strategy: "os",
	}
}

// Flink returns the Apache Flink overhead class: leaner per-tuple path
// than Storm (operator chaining, managed memory), NUMA-aware only to the
// extent of one task manager per socket (round-robin spreading), plus
// the stream-merger penalty on multi-input operators.
func Flink() System {
	return System{
		Name: "Flink",
		Overhead: sim.Overhead{
			ExecScale:  5,
			PerTupleNs: 1600,
			RMAScale:   1,
			Prefetch:   true,
		},
		MultiInputPenaltyNs: 2500,
		Strategy:            "rr",
	}
}

// StreamBox returns the morsel-driven StreamBox engine with its
// order-guaranteeing containers enabled.
func StreamBox() System {
	return System{
		Name: "StreamBox",
		Overhead: sim.Overhead{
			ExecScale:             1.3,
			PerTupleNs:            900, // epoch containers, ordering state
			RMAScale:              1.6, // keyed shuffle crosses sockets
			CentralSchedNsPerCore: 30,  // lock-based central task queue
			Prefetch:              true,
		},
		Strategy: "os",
	}
}

// MorselReplication assigns each operator one replica per available core
// share without head-room halving: a morsel-driven engine keeps every
// core busy through its central task queue.
func MorselReplication(app *graph.Graph, m *numa.Machine) map[string]int {
	ops := app.Nodes()
	repl := map[string]int{}
	per := m.TotalCores() / len(ops)
	if per < 1 {
		per = 1
	}
	for _, n := range ops {
		repl[n.Name] = per
	}
	return repl
}

// StreamBoxOutOfOrder returns StreamBox with ordering disabled (the
// paper's modified variant): cheaper per tuple, same central scheduler.
func StreamBoxOutOfOrder() System {
	s := StreamBox()
	s.Name = "StreamBox (out-of-order)"
	s.Overhead.PerTupleNs = 250
	s.Overhead.ExecScale = 1.15
	return s
}

// Brisk returns BriskStream's own engine class for symmetric use of
// Measure in experiments (placement should normally come from RLAS, but
// Strategy is used when comparing placement-agnostic configurations).
func Brisk() System {
	return System{Name: "BriskStream", Overhead: sim.Brisk(), Strategy: "os"}
}

// AdjustStats returns the statistics as this system's runtime would
// exhibit them: the multi-input merger penalty is folded into Te of
// operators with several distinct producers.
func (s System) AdjustStats(app *graph.Graph, stats profile.Set) profile.Set {
	if s.MultiInputPenaltyNs == 0 {
		return stats
	}
	out := stats.Clone()
	for _, n := range app.Nodes() {
		if len(app.Producers(n.Name)) > 1 {
			st := out[n.Name]
			st.Te += s.MultiInputPenaltyNs
			out[n.Name] = st
		}
	}
	return out
}

// UniformReplication distributes roughly half the machine's core budget
// evenly over all operators (including spouts and sinks) — the "tune
// parallelism to the hardware, but without a model" configuration a
// practitioner would use for Storm/Flink. Half the budget reflects that
// without a performance model one leaves headroom rather than risking
// oversubscription.
func UniformReplication(app *graph.Graph, m *numa.Machine) map[string]int {
	ops := app.Nodes()
	repl := map[string]int{}
	if len(ops) == 0 {
		return repl
	}
	per := m.TotalCores() / len(ops) / 2
	if per < 1 {
		per = 1
	}
	for _, n := range ops {
		repl[n.Name] = per
	}
	return repl
}

// Measure simulates the system running the application on the machine:
// builds the execution graph with the system's replication policy,
// places it with the system's strategy and runs the fluid simulator with
// the system's overhead class. It returns steady-state throughput
// (tuples/sec at the sinks) and the simulation result.
func (s System) Measure(app *graph.Graph, stats profile.Set, m *numa.Machine, ingress float64, repl map[string]int) (*sim.Result, error) {
	if repl == nil {
		repl = UniformReplication(app, m)
	}
	adjusted := s.AdjustStats(app, stats)
	eg, err := plan.Build(app, repl, 1)
	if err != nil {
		return nil, err
	}
	var pl *plan.Placement
	switch s.Strategy {
	case "rr":
		pl = placement.RR(eg, m)
	default:
		pl = placement.OS(eg, m)
	}
	cfg := &sim.Config{
		Machine:  m,
		Stats:    adjusted,
		Ingress:  ingress,
		Overhead: s.Overhead,
	}
	return sim.Run(eg, pl, cfg)
}
