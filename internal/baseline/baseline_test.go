package baseline

import (
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
)

func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

// diamond gives the sink two distinct producers (multi-input operator).
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("diamond")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"l": 0.5, "r": 0.5}})
	g.AddNode(&graph.Node{Name: "left", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "right", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "merge", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "left", Stream: "l"})
	g.AddEdge(graph.Edge{From: "spout", To: "right", Stream: "r"})
	g.AddEdge(graph.Edge{From: "left", To: "merge", Stream: "default"})
	g.AddEdge(graph.Edge{From: "right", To: "merge", Stream: "default"})
	g.AddEdge(graph.Edge{From: "merge", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func testStats() profile.Set {
	return profile.Set{
		"spout":  {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func TestSystemsOrderedByOverhead(t *testing.T) {
	m := numa.Synthetic("cmp", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	g := chain(t)
	repl := map[string]int{"worker": 4}

	brisk, err := Brisk().Measure(g, testStats(), m, model.Saturated, repl)
	if err != nil {
		t.Fatal(err)
	}
	storm, err := Storm().Measure(g, testStats(), m, model.Saturated, repl)
	if err != nil {
		t.Fatal(err)
	}
	flink, err := Flink().Measure(g, testStats(), m, model.Saturated, repl)
	if err != nil {
		t.Fatal(err)
	}
	if !(brisk.Throughput > flink.Throughput && flink.Throughput > storm.Throughput) {
		t.Errorf("ordering broken: brisk %v, flink %v, storm %v",
			brisk.Throughput, flink.Throughput, storm.Throughput)
	}
	// The paper reports order-of-magnitude gaps for light-weight
	// operators; with Te=1000 the gap is smaller but must exceed 2x.
	if brisk.Throughput < 2*storm.Throughput {
		t.Errorf("brisk/storm speedup = %v, want > 2", brisk.Throughput/storm.Throughput)
	}
}

func TestFlinkMultiInputPenaltyAppliesToMergers(t *testing.T) {
	g := diamond(t)
	stats := profile.Set{
		"spout": {Te: 100, N: 64, Selectivity: map[string]float64{"l": 0.5, "r": 0.5}},
		"left":  {Te: 200, N: 64, Selectivity: map[string]float64{"default": 1}},
		"right": {Te: 200, N: 64, Selectivity: map[string]float64{"default": 1}},
		"merge": {Te: 300, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":  {Te: 50, N: 64, Selectivity: map[string]float64{}},
	}
	adjusted := Flink().AdjustStats(g, stats)
	if adjusted["merge"].Te != 300+2500 {
		t.Errorf("merge Te = %v, want 2800 (merger penalty)", adjusted["merge"].Te)
	}
	if adjusted["left"].Te != 200 {
		t.Errorf("left Te = %v, single-input operators must be untouched", adjusted["left"].Te)
	}
	// Original stats must not be mutated.
	if stats["merge"].Te != 300 {
		t.Error("AdjustStats mutated its input")
	}
	// Storm applies no penalty.
	if Storm().AdjustStats(g, stats)["merge"].Te != 300 {
		t.Error("Storm should not add merger penalty")
	}
}

func TestStreamBoxSchedulerContentionGrowsWithCores(t *testing.T) {
	g := chain(t)
	small := numa.Synthetic("s", 1, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	big := numa.Synthetic("b", 8, 18, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)

	sb := StreamBoxOutOfOrder()
	smallRes, err := sb.Measure(g, testStats(), small, model.Saturated, map[string]int{"worker": 2})
	if err != nil {
		t.Fatal(err)
	}
	// Per-core efficiency: throughput per worker replica must degrade on
	// the big machine (central scheduler contention).
	bigRes, err := sb.Measure(g, testStats(), big, model.Saturated, map[string]int{"worker": 100})
	if err != nil {
		t.Fatal(err)
	}
	perSmall := smallRes.Throughput / 2
	perBig := bigRes.Throughput / 100
	if perBig >= perSmall {
		t.Errorf("per-replica rate should degrade with scale: small %v, big %v", perSmall, perBig)
	}
}

func TestOutOfOrderFasterThanOrdered(t *testing.T) {
	g := chain(t)
	m := numa.Synthetic("oo", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	repl := map[string]int{"worker": 4}
	ordered, err := StreamBox().Measure(g, testStats(), m, model.Saturated, repl)
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := StreamBoxOutOfOrder().Measure(g, testStats(), m, model.Saturated, repl)
	if err != nil {
		t.Fatal(err)
	}
	if ooo.Throughput <= ordered.Throughput {
		t.Errorf("out-of-order %v should beat ordered %v", ooo.Throughput, ordered.Throughput)
	}
}

func TestUniformReplication(t *testing.T) {
	g := chain(t)
	m := numa.ServerA() // 144 cores
	repl := UniformReplication(g, m)
	if repl["worker"] < 1 {
		t.Errorf("worker replication = %d", repl["worker"])
	}
	// Spouts scale too (a practitioner tunes source parallelism in
	// Storm/Flink like any other operator).
	if repl["spout"] != repl["worker"] {
		t.Errorf("uniform policy should give all operators equal counts: %v", repl)
	}
	// Half-budget: 144 cores / 3 ops / 2 = 24 per operator.
	if repl["worker"] != 24 {
		t.Errorf("worker replication = %d, want 24", repl["worker"])
	}
	tiny := numa.Synthetic("tiny", 1, 1, 50, 200, 400, numa.GB, numa.GB, numa.GB)
	if UniformReplication(g, tiny)["worker"] != 1 {
		t.Error("floor of one replica expected")
	}
}

func TestMeasureDefaultsReplication(t *testing.T) {
	g := chain(t)
	m := numa.Synthetic("def", 2, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	res, err := Storm().Measure(g, testStats(), m, model.Saturated, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput with default replication")
	}
}
