package fuse

import (
	"math"
	"testing"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

func TestChainsOnWC(t *testing.T) {
	wc := apps.WordCount()
	chains := Chains(wc.Graph)
	want := map[Pair]bool{
		{Producer: "parser", Consumer: "splitter"}: true,
		{Producer: "counter", Consumer: "sink"}:    true,
	}
	if len(chains) != len(want) {
		t.Fatalf("chains = %v, want %v", chains, want)
	}
	for _, c := range chains {
		if !want[c] {
			t.Errorf("unexpected chain %v", c)
		}
	}
	// splitter->counter is fields-grouped and must NOT be fusable.
	for _, c := range chains {
		if c.Producer == "splitter" {
			t.Error("fields-grouped edge offered for fusion")
		}
	}
}

func TestApplyComposesStats(t *testing.T) {
	wc := apps.WordCount()
	res, err := Apply(wc.Graph, wc.Stats, wc.Operators, []Pair{{Producer: "parser", Consumer: "splitter"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Len() != wc.Graph.Len()-1 {
		t.Errorf("fused graph has %d nodes, want %d", res.Graph.Len(), wc.Graph.Len()-1)
	}
	fn := res.FusedName[Pair{Producer: "parser", Consumer: "splitter"}]
	if fn != "parser+splitter" {
		t.Fatalf("fused name = %q", fn)
	}
	st := res.Stats[fn]
	// Te' = Te_parser + sel_parser x Te_splitter = 350 + 1 x 1612.8.
	if math.Abs(st.Te-(350+1612.8)) > 1e-9 {
		t.Errorf("fused Te = %v", st.Te)
	}
	// sel' = 1 x 10.
	if st.Selectivity["default"] != 10 {
		t.Errorf("fused selectivity = %v", st.Selectivity)
	}
	// N' = parser's input size.
	if st.N != wc.Stats["parser"].N {
		t.Errorf("fused N = %v", st.N)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejections(t *testing.T) {
	wc := apps.WordCount()
	if _, err := Apply(wc.Graph, wc.Stats, wc.Operators, nil); err == nil {
		t.Error("empty pair list accepted")
	}
	// Fields edge.
	if _, err := Apply(wc.Graph, wc.Stats, wc.Operators, []Pair{{Producer: "splitter", Consumer: "counter"}}); err == nil {
		t.Error("fields-grouped fusion accepted")
	}
	// Spout.
	if _, err := Apply(wc.Graph, wc.Stats, wc.Operators, []Pair{{Producer: "spout", Consumer: "parser"}}); err == nil {
		t.Error("spout fusion accepted")
	}
	// Overlapping pairs: parser+splitter twice.
	p := Pair{Producer: "parser", Consumer: "splitter"}
	if _, err := Apply(wc.Graph, wc.Stats, wc.Operators, []Pair{p, p}); err == nil {
		t.Error("overlapping pairs accepted")
	}
}

// TestFusedEngineRunEquivalent: fusing WC's stages preserves the
// pipeline's selectivity — the counting stage still receives ten words
// per input sentence in both shapes. (The counter aggregates windows,
// so the sink's tuple count reflects window closes, not words; the
// words-per-sentence invariant is observed at the counter's input.)
func TestFusedEngineRunEquivalent(t *testing.T) {
	wc := apps.WordCount()
	res, err := Apply(wc.Graph, wc.Stats, wc.Operators,
		[]Pair{{Producer: "parser", Consumer: "splitter"}, {Producer: "counter", Consumer: "sink"}})
	if err != nil {
		t.Fatal(err)
	}

	count := func(app *engine.Topology, counterOp string) uint64 {
		e, err := engine.New(*app, engine.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(150 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Errors) != 0 {
			t.Fatalf("errors: %v", r.Errors)
		}
		if r.Processed["spout"] == 0 {
			t.Fatal("no input generated")
		}
		if r.SinkTuples == 0 {
			t.Fatal("no windows reached the sink")
		}
		// Words per sentence must be ~10 in both shapes.
		return r.Processed[counterOp] / r.Processed["spout"]
	}

	plainRatio := count(&engine.Topology{App: wc.Graph, Spouts: wc.Spouts, Operators: wc.Operators}, "counter")
	fusedRatio := count(&engine.Topology{App: res.Graph, Spouts: wc.Spouts, Operators: res.Operators}, "counter+sink")
	// Both runs drain asynchronously, so compare the words-per-sentence
	// ratio (selectivity), which is deterministic in both shapes.
	if plainRatio < 9 || plainRatio > 10 {
		t.Errorf("plain words-per-sentence = %d, want ~10", plainRatio)
	}
	if fusedRatio < 9 || fusedRatio > 10 {
		t.Errorf("fused words-per-sentence = %d, want ~10", fusedRatio)
	}
}

// TestFusionTradeOff exercises both sides of the fusion trade-off
// (communication saved vs pipeline parallelism lost) under a forced
// round-robin remote placement:
//
//   - a communication-dominated chain (cheap consumer, fat tuples) must
//     get FASTER when fused (the remote fetch disappears);
//   - WC's parser+splitter (cheap communication, both operators busy)
//     must get SLOWER when fused (serializing them loses a core).
func TestFusionTradeOff(t *testing.T) {
	m := numa.Synthetic("fusion", 4, 8, 50, 300, 600, 50*numa.GB, 10*numa.GB, 5*numa.GB)

	evalRR := func(app *graph.Graph, st profile.Set) float64 {
		eg, err := plan.Build(app, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := plan.NewPlacement()
		for i, v := range eg.Vertices {
			p.Place(v.ID, numa.SocketID(i%m.Sockets))
		}
		ev, err := model.Evaluate(eg, p, &model.Config{Machine: m, Stats: st, Ingress: model.Saturated}, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Throughput
	}

	t.Run("communication-dominated chain wins", func(t *testing.T) {
		g := graph.New("fat")
		g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "heavy", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "light", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "sink", IsSink: true})
		g.AddEdge(graph.Edge{From: "spout", To: "heavy", Stream: "default"})
		g.AddEdge(graph.Edge{From: "heavy", To: "light", Stream: "default"})
		g.AddEdge(graph.Edge{From: "light", To: "sink", Stream: "default"})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// light is trivial compute but fetches 2 KB tuples: remote it
		// costs 32 cache lines x 300 ns = 9600 ns per tuple.
		st := profile.Set{
			"spout": {Te: 400, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
			"heavy": {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
			"light": {Te: 100, M: 64, N: 2048, Selectivity: map[string]float64{"default": 1}},
			"sink":  {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
		}
		pass := func() engine.Operator {
			return engine.OperatorFunc(func(c engine.Collector, tp *tuple.Tuple) error {
				out := c.Borrow()
				out.CopyValuesFrom(tp)
				c.Send(out)
				return nil
			})
		}
		ops := map[string]func() engine.Operator{"heavy": pass, "light": pass, "sink": pass}
		res, err := Apply(g, st, ops, []Pair{{Producer: "heavy", Consumer: "light"}})
		if err != nil {
			t.Fatal(err)
		}
		plain := evalRR(g, st)
		fused := evalRR(res.Graph, res.Stats)
		if fused <= plain {
			t.Errorf("communication-dominated fusion should win: fused %v <= plain %v", fused, plain)
		}
	})

	t.Run("compute-dominated chain loses", func(t *testing.T) {
		wc := apps.WordCount()
		res, err := Apply(wc.Graph, wc.Stats, wc.Operators, []Pair{{Producer: "parser", Consumer: "splitter"}})
		if err != nil {
			t.Fatal(err)
		}
		plain := evalRR(wc.Graph, wc.Stats)
		fused := evalRR(res.Graph, res.Stats)
		if fused >= plain {
			t.Errorf("compute-dominated fusion should lose pipeline parallelism: fused %v >= plain %v", fused, plain)
		}
	})
}

// statefulCounter is a minimal Snapshotter operator for fusion tests.
type statefulCounter struct {
	n int64
}

func (s *statefulCounter) Process(c engine.Collector, t *tuple.Tuple) error {
	s.n++
	out := c.Borrow()
	out.CopyValuesFrom(t)
	c.Send(out)
	return nil
}

func (s *statefulCounter) Snapshot(enc *checkpoint.Encoder) error {
	enc.Int64(s.n)
	return nil
}

func (s *statefulCounter) Restore(dec *checkpoint.Decoder) error {
	s.n = dec.Int64()
	return dec.Err()
}

// A fused pair must checkpoint like its unfused form: stateful members'
// snapshots are framed through the wrapper, stateless members are
// skipped, and restore rebuilds exactly the members that saved state.
func TestFusedOpForwardsSnapshotter(t *testing.T) {
	stateless := func() engine.Operator {
		return engine.OperatorFunc(func(c engine.Collector, tp *tuple.Tuple) error {
			out := c.Borrow()
			out.CopyValuesFrom(tp)
			c.Send(out)
			return nil
		})
	}
	u := &statefulCounter{n: 7}
	v := &statefulCounter{n: 40}
	fused := Compose(func() engine.Operator { return u }, func() engine.Operator { return v })()
	snapper, ok := fused.(checkpoint.Snapshotter)
	if !ok {
		t.Fatal("fusedOp does not forward checkpoint.Snapshotter: fused stateful operators would checkpoint as stateless")
	}
	enc := checkpoint.NewEncoder()
	if err := snapper.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	u2, v2 := &statefulCounter{}, &statefulCounter{}
	fused2 := Compose(func() engine.Operator { return u2 }, func() engine.Operator { return v2 })()
	if err := fused2.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if u2.n != 7 || v2.n != 40 {
		t.Fatalf("restored members = (%d, %d), want (7, 40)", u2.n, v2.n)
	}
	// Mixed pair: only the stateful member's state is framed.
	w := &statefulCounter{n: 3}
	mixed := Compose(stateless, func() engine.Operator { return w })()
	enc2 := checkpoint.NewEncoder()
	if err := mixed.(checkpoint.Snapshotter).Snapshot(enc2); err != nil {
		t.Fatal(err)
	}
	w2 := &statefulCounter{}
	mixed2 := Compose(stateless, func() engine.Operator { return w2 })()
	if err := mixed2.(checkpoint.Snapshotter).Restore(checkpoint.NewDecoder(enc2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if w2.n != 3 {
		t.Fatalf("mixed restore = %d, want 3", w2.n)
	}
}
