// Package fuse implements operator fusion, the execution-plan extension
// Appendix D discusses: a producer-consumer pair is collapsed into one
// operator executed by one task, trading pipeline parallelism for zero
// communication on the fused edge. Fusion pays off when the fused
// operators share little common resource demand; the fused operator's
// model statistics compose as
//
//	Te' = Te_u + sel_u x Te_v   (v runs once per tuple u emits)
//	M'  = M_u + sel_u x M_v
//	N'  = N_u                   (only u's input is fetched remotely)
//	sel'(s) = sel_u x sel_v(s)
//
// Only shuffle- or global-grouped edges are fusable: a fields-grouped
// edge pins keys to replicas, and fusing it would silently repartition
// the consumer's keyed state across the producer's replicas.
package fuse

import (
	"fmt"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
)

// Pair names a producer-consumer fusion candidate.
type Pair struct {
	Producer, Consumer string
}

// Chains returns all fusable producer-consumer pairs of the graph: the
// producer has exactly one consumer and is not a spout, the consumer has
// exactly one producer, and the connecting edge is shuffle- or
// global-grouped.
func Chains(app *graph.Graph) []Pair {
	var out []Pair
	for _, n := range app.Nodes() {
		if n.IsSpout {
			continue
		}
		outs := app.Out(n.Name)
		if len(outs) != 1 {
			continue
		}
		e := outs[0]
		if e.Partitioning != graph.Shuffle && e.Partitioning != graph.Global {
			continue
		}
		if len(app.In(e.To)) != 1 {
			continue
		}
		out = append(out, Pair{Producer: n.Name, Consumer: e.To})
	}
	return out
}

// Result carries the fused application.
type Result struct {
	// Graph is the fused logical DAG.
	Graph *graph.Graph
	// Stats are the composed operator statistics.
	Stats profile.Set
	// Operators maps every (fused and untouched) operator to a builder.
	Operators map[string]func() engine.Operator
	// FusedName maps each fused pair to its new operator name.
	FusedName map[Pair]string
}

// Apply fuses the given pairs. Pairs must be disjoint (no operator may
// appear in two pairs) and fusable per the Chains criteria.
func Apply(app *graph.Graph, stats profile.Set, ops map[string]func() engine.Operator, pairs []Pair) (*Result, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("fuse: no pairs given")
	}
	valid := map[Pair]bool{}
	for _, c := range Chains(app) {
		valid[c] = true
	}
	used := map[string]bool{}
	fusedOf := map[string]Pair{} // member op -> its pair
	for _, p := range pairs {
		if !valid[p] {
			return nil, fmt.Errorf("fuse: %s->%s is not fusable", p.Producer, p.Consumer)
		}
		if used[p.Producer] || used[p.Consumer] {
			return nil, fmt.Errorf("fuse: operator reused across pairs")
		}
		used[p.Producer] = true
		used[p.Consumer] = true
		fusedOf[p.Producer] = p
		fusedOf[p.Consumer] = p
	}

	res := &Result{
		Graph:     graph.New(app.Name() + "+fused"),
		Stats:     profile.Set{},
		Operators: map[string]func() engine.Operator{},
		FusedName: map[Pair]string{},
	}
	name := func(p Pair) string { return p.Producer + "+" + p.Consumer }
	// rename maps original operator names to fused-graph names.
	rename := func(op string) string {
		if p, ok := fusedOf[op]; ok {
			return name(p)
		}
		return op
	}

	// Nodes.
	added := map[string]bool{}
	for _, n := range app.Nodes() {
		if p, ok := fusedOf[n.Name]; ok {
			fn := name(p)
			if added[fn] {
				continue
			}
			added[fn] = true
			res.FusedName[p] = fn
			cons := app.Node(p.Consumer)
			prodStats, okP := stats[p.Producer]
			consStats, okC := stats[p.Consumer]
			if !okP || !okC {
				return nil, fmt.Errorf("fuse: missing stats for pair %s->%s", p.Producer, p.Consumer)
			}
			selU := prodStats.TotalSelectivity()
			sel := map[string]float64{}
			for s, v := range consStats.Selectivity {
				sel[s] = selU * v
			}
			res.Graph.AddNode(&graph.Node{
				Name:        fn,
				IsSink:      cons.IsSink,
				Selectivity: sel,
			})
			res.Stats[fn] = profile.Stats{
				Te:          prodStats.Te + selU*consStats.Te,
				M:           prodStats.M + selU*consStats.M,
				N:           prodStats.N,
				Selectivity: sel,
			}
			mkU, mkV := ops[p.Producer], ops[p.Consumer]
			if mkU == nil || mkV == nil {
				return nil, fmt.Errorf("fuse: missing operator builder for pair %s->%s", p.Producer, p.Consumer)
			}
			res.Operators[fn] = Compose(mkU, mkV)
			continue
		}
		// Untouched node: copy.
		sel := map[string]float64{}
		for s, v := range n.Selectivity {
			sel[s] = v
		}
		res.Graph.AddNode(&graph.Node{Name: n.Name, IsSpout: n.IsSpout, IsSink: n.IsSink, Selectivity: sel})
		if st, ok := stats[n.Name]; ok {
			res.Stats[n.Name] = st
		}
		if mk, ok := ops[n.Name]; ok {
			res.Operators[n.Name] = mk
		}
	}

	// Edges: drop the fused edge; retarget everything else.
	for _, e := range app.Edges() {
		if p, ok := fusedOf[e.From]; ok && p.Consumer == e.To {
			continue // internal edge of a fused pair
		}
		ne := e
		ne.From = rename(e.From)
		ne.To = rename(e.To)
		if err := res.Graph.AddEdge(ne); err != nil {
			return nil, err
		}
	}
	if err := res.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("fuse: fused graph invalid: %w", err)
	}
	return res, nil
}

// Compose chains two operator builders into one: the producer's
// emissions are fed synchronously to the consumer within the same task,
// eliminating the intermediate queue entirely. Timer and watermark
// callbacks are forwarded to both members (upstream first, so its fired
// aggregates reach the consumer before the consumer's own callbacks);
// the members share the task's timer wheel, so each must tolerate
// OnTimer for timestamps it did not register — the documented
// TimerHandler contract.
func Compose(mkU, mkV func() engine.Operator) func() engine.Operator {
	return func() engine.Operator {
		return &fusedOp{u: mkU(), v: mkV()}
	}
}

// fusedOp is a fused producer-consumer pair running as one operator.
type fusedOp struct {
	u, v engine.Operator
}

// Process implements engine.Operator.
func (f *fusedOp) Process(c engine.Collector, t *tuple.Tuple) error {
	cc := &chainCollector{downstream: f.v, out: c}
	if err := f.u.Process(cc, t); err != nil {
		return err
	}
	return cc.err
}

// SetTimers implements engine.TimerAware by injecting the task's timer
// service into both members.
func (f *fusedOp) SetTimers(tm *engine.Timers) {
	if ta, ok := f.u.(engine.TimerAware); ok {
		ta.SetTimers(tm)
	}
	if ta, ok := f.v.(engine.TimerAware); ok {
		ta.SetTimers(tm)
	}
}

// OnTimer implements engine.TimerHandler: the upstream member fires
// first and its emissions flow through the fused chain into the
// consumer, then the consumer's own timers fire.
func (f *fusedOp) OnTimer(c engine.Collector, kind engine.TimerKind, at int64) error {
	if h, ok := f.u.(engine.TimerHandler); ok {
		cc := &chainCollector{downstream: f.v, out: c}
		if err := h.OnTimer(cc, kind, at); err != nil {
			return err
		}
		if cc.err != nil {
			return cc.err
		}
	}
	if h, ok := f.v.(engine.TimerHandler); ok {
		return h.OnTimer(c, kind, at)
	}
	return nil
}

// ValidateSnapshot implements checkpoint.Validator by forwarding to
// both members, so a fused misconfigured window still fails at build
// time under checkpointing.
func (f *fusedOp) ValidateSnapshot() error {
	for _, op := range []engine.Operator{f.u, f.v} {
		if v, ok := op.(checkpoint.Validator); ok {
			if err := v.ValidateSnapshot(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter: both members' states are
// framed (presence flag + payload) in upstream-then-downstream order,
// so a fused pair checkpoints exactly what its unfused form would.
func (f *fusedOp) Snapshot(enc *checkpoint.Encoder) error {
	for _, op := range []engine.Operator{f.u, f.v} {
		s, ok := op.(checkpoint.Snapshotter)
		enc.Bool(ok)
		if !ok {
			continue
		}
		if err := s.Snapshot(enc); err != nil {
			return err
		}
	}
	return nil
}

// Restore implements checkpoint.Snapshotter.
func (f *fusedOp) Restore(dec *checkpoint.Decoder) error {
	for _, op := range []engine.Operator{f.u, f.v} {
		if !dec.Bool() {
			continue
		}
		s, ok := op.(checkpoint.Snapshotter)
		if !ok {
			return fmt.Errorf("fuse: snapshot has state for a member that is not a Snapshotter")
		}
		if err := s.Restore(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// OnWatermark implements engine.WatermarkHandler, upstream first.
func (f *fusedOp) OnWatermark(c engine.Collector, wm int64) error {
	if h, ok := f.u.(engine.WatermarkHandler); ok {
		cc := &chainCollector{downstream: f.v, out: c}
		if err := h.OnWatermark(cc, wm); err != nil {
			return err
		}
		if cc.err != nil {
			return cc.err
		}
	}
	if h, ok := f.v.(engine.WatermarkHandler); ok {
		return h.OnWatermark(c, wm)
	}
	return nil
}

// chainCollector routes the producer's emissions straight into the
// consumer's Process.
type chainCollector struct {
	downstream engine.Operator
	out        engine.Collector
	err        error

	// lastName/lastID memoize EmitTo's stream-name resolution, like the
	// engine collector does: fused operators emit on one stream almost
	// always, so the common case is a single string compare.
	lastName string
	lastID   tuple.StreamID
}

// Emit implements engine.Collector.
func (c *chainCollector) Emit(values ...tuple.Value) {
	if c.err != nil {
		return
	}
	t := c.out.Borrow()
	for _, v := range values {
		t.Append(v)
	}
	c.Send(t)
}

// EmitTo implements engine.Collector.
func (c *chainCollector) EmitTo(stream string, values ...tuple.Value) {
	if c.err != nil {
		return
	}
	if stream != c.lastName || stream == "" {
		c.lastName, c.lastID = stream, tuple.Intern(stream)
	}
	t := c.out.Borrow()
	t.Stream = c.lastID
	for _, v := range values {
		t.Append(v)
	}
	c.Send(t)
}

// Borrow implements engine.Collector by borrowing from the real task
// pool, so fused operators keep the zero-allocation emit path.
func (c *chainCollector) Borrow() *tuple.Tuple { return c.out.Borrow() }

// EmitWatermark implements engine.Collector by passing the punctuation
// through to the real collector (the engine broadcasts task-level
// watermarks itself; a fused member emitting one reaches the same
// consumers the fused task feeds).
func (c *chainCollector) EmitWatermark(wm int64) { c.out.EmitWatermark(wm) }

// Send implements engine.Collector: the tuple is processed synchronously
// by the fused consumer and then released (the consumer's own emissions
// went to the real collector during Process).
func (c *chainCollector) Send(t *tuple.Tuple) {
	if c.err == nil {
		c.err = c.downstream.Process(c.out, t)
	}
	t.Release()
}
