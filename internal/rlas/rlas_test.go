package rlas

import (
	"math"
	"testing"

	"briskstream/internal/bnb"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
)

func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func testStats() profile.Set {
	return profile.Set{
		"spout":  {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func TestScalingRemovesBottleneck(t *testing.T) {
	// The worker (Te=1000) is 10x slower than the spout (Te=100): RLAS
	// must replicate it until the pipeline balances or resources run out.
	m := numa.Synthetic("scale", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	r, err := Optimize(chain(t), Config{
		Model:    &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated},
		Compress: 1,
		BnB:      bnb.Config{NodeLimit: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication["worker"] < 2 {
		t.Errorf("worker replication = %d, want >= 2", r.Replication["worker"])
	}
	// With one spout capped at 1e7/s and enough workers, throughput must
	// exceed the single-worker 1e6/s substantially.
	if r.Eval.Throughput < 3e6 {
		t.Errorf("throughput = %v, want > 3e6 after scaling", r.Eval.Throughput)
	}
	if r.Iterations < 2 {
		t.Errorf("expected multiple scaling iterations, got %d", r.Iterations)
	}
	if len(r.Trace) != r.Iterations {
		t.Errorf("trace length %d != iterations %d", len(r.Trace), r.Iterations)
	}
}

func TestScalingRespectsBudget(t *testing.T) {
	m := numa.Synthetic("budget", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	r, err := Optimize(chain(t), Config{
		Model:            &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated},
		Compress:         1,
		BnB:              bnb.Config{NodeLimit: 5000},
		MaxTotalReplicas: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range r.Replication {
		total += v
	}
	if total > 5 {
		t.Errorf("total replication %d exceeds budget 5", total)
	}
}

func TestUnderSuppliedNeedsNoScaling(t *testing.T) {
	m := numa.Synthetic("idle", 2, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	r, err := Optimize(chain(t), Config{
		Model:    &model.Config{Machine: m, Stats: testStats(), Ingress: 1000},
		Compress: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for op, k := range r.Replication {
		if k != 1 {
			t.Errorf("operator %s scaled to %d with idle load", op, k)
		}
	}
	if math.Abs(r.Eval.Throughput-1000) > 1e-6 {
		t.Errorf("throughput = %v, want 1000", r.Eval.Throughput)
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", r.Iterations)
	}
}

func TestInitialReplicationSeed(t *testing.T) {
	m := numa.Synthetic("seed", 2, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	seeded, err := Optimize(chain(t), Config{
		Model:    &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated},
		Compress: 1,
		BnB:      bnb.Config{NodeLimit: 5000},
		Initial:  map[string]int{"worker": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Replication["worker"] < 8 {
		t.Errorf("seeded replication shrank to %d", seeded.Replication["worker"])
	}
	// Seeding near the answer should converge in fewer iterations than
	// starting from one replica.
	cold, err := Optimize(chain(t), Config{
		Model:    &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated},
		Compress: 1,
		BnB:      bnb.Config{NodeLimit: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Iterations > cold.Iterations {
		t.Errorf("seeded run took %d iterations vs cold %d", seeded.Iterations, cold.Iterations)
	}
}

func TestCompressionTradesGranularity(t *testing.T) {
	// Table 7: larger r shrinks the search (fewer vertices) but coarser
	// granularity. Both must return feasible plans.
	m := numa.Synthetic("ratio", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	for _, r := range []int{1, 3, 5} {
		res, err := Optimize(chain(t), Config{
			Model:    &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated},
			Compress: r,
			BnB:      bnb.Config{NodeLimit: 3000},
		})
		if err != nil {
			t.Fatalf("ratio %d: %v", r, err)
		}
		if !res.Eval.Feasible() {
			t.Errorf("ratio %d: infeasible plan", r)
		}
		if res.Graph.Ratio != r {
			t.Errorf("ratio %d: graph built with %d", r, res.Graph.Ratio)
		}
	}
}

func TestFixedPolicyOptimizationAndReEvaluate(t *testing.T) {
	// Figure 12: optimizing under TfZero (RLAS_fix(U)) then measuring
	// under the real model must not beat real RLAS.
	m := numa.Synthetic("fix", 4, 2, 50, 300, 600, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	st := testStats()
	base := &model.Config{Machine: m, Stats: st, Ingress: model.Saturated}

	real, err := Optimize(chain(t), Config{Model: base, Compress: 1, BnB: bnb.Config{NodeLimit: 4000}})
	if err != nil {
		t.Fatal(err)
	}

	fixU := *base
	fixU.Policy = model.TfZero
	ru, err := Optimize(chain(t), Config{Model: &fixU, Compress: 1, BnB: bnb.Config{NodeLimit: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := ReEvaluate(ru, base, model.TfByPlacement)
	if err != nil {
		t.Fatal(err)
	}
	if measured.Throughput > real.Eval.Throughput*(1+1e-9) {
		t.Errorf("fix(U) measured %v beats RLAS %v", measured.Throughput, real.Eval.Throughput)
	}
}

func TestOptimizeRejectsBadInputs(t *testing.T) {
	if _, err := Optimize(chain(t), Config{}); err == nil {
		t.Error("nil model config accepted")
	}
	bad := graph.New("bad")
	if _, err := Optimize(bad, Config{Model: &model.Config{}}); err == nil {
		t.Error("invalid graph accepted")
	}
}
