// Package rlas implements Relative-Location Aware Scheduling — the
// paper's core contribution (Sections 3-4). RLAS jointly optimizes the
// replication level and the placement of every operator: it repeatedly
// (1) solves placement for the current replication configuration with
// the branch-and-bound search, (2) identifies bottleneck (over-supplied)
// operators from the model evaluation of the solution, and (3) grows the
// bottleneck's replication level by the over-supply ratio ceil(ri/ro),
// scaling from the sinks toward the spout along the reverse topological
// order (Algorithm 1). The loop stops when no valid placement exists for
// the grown graph, when the replica budget (total CPU cores by default)
// is exhausted, or when no bottleneck remains.
package rlas

import (
	"fmt"
	"math"
	"time"

	"briskstream/internal/bnb"
	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// Config tunes an RLAS optimization run.
type Config struct {
	// Model carries machine, statistics, ingress rate and Tf policy.
	Model *model.Config
	// Compress is the execution-graph compression ratio r (Section 4,
	// heuristic 3). Default 5 — the paper's chosen trade-off (Table 7).
	Compress int
	// BnB tunes the placement search.
	BnB bnb.Config
	// MaxTotalReplicas caps the summed replication level. Default: the
	// machine's total core count.
	MaxTotalReplicas int
	// MaxIterations caps scaling rounds (default 64).
	MaxIterations int
	// Initial seeds the replication configuration (default: all 1). The
	// paper notes starting from a reasonably large DAG reduces scaling
	// iterations (Appendix D).
	Initial map[string]int
	// FixedSpouts pins the replication of spout operators (some
	// workloads model a fixed set of ingress points).
	FixedSpouts bool
}

// IterationTrace records one scaling round for reports.
type IterationTrace struct {
	Replication map[string]int
	Throughput  float64
	Bottleneck  string // operator grown after this round ("" if none)
	Explored    int
}

// Result is the optimized execution plan.
type Result struct {
	// Replication is the chosen replication level per operator.
	Replication map[string]int
	// Graph is the execution graph of the final plan (compressed at the
	// configured ratio).
	Graph *plan.ExecGraph
	// Placement is the chosen placement of Graph's vertices.
	Placement *plan.Placement
	// Eval is the model evaluation of the final plan.
	Eval *model.Result
	// Iterations counts placement-optimization rounds.
	Iterations int
	// Elapsed is the total optimization runtime (Table 7).
	Elapsed time.Duration
	// Trace records each round.
	Trace []IterationTrace
}

// Optimize runs RLAS on the application.
func Optimize(app *graph.Graph, cfg Config) (*Result, error) {
	start := time.Now()
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("rlas: nil model config")
	}
	ratio := cfg.Compress
	if ratio <= 0 {
		ratio = 5
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 128
	}
	budget := cfg.MaxTotalReplicas
	if budget <= 0 {
		budget = cfg.Model.Machine.TotalCores()
	}

	repl := map[string]int{}
	for _, n := range app.Nodes() {
		repl[n.Name] = 1
		if cfg.Initial != nil && cfg.Initial[n.Name] > 0 {
			repl[n.Name] = cfg.Initial[n.Name]
		}
	}

	revOrder, err := app.ReverseTopoSort()
	if err != nil {
		return nil, err
	}

	res := &Result{}
	best := -1.0

	// lastGrowth remembers the most recent replication increase so an
	// infeasible result can be backtracked: the step is halved until it
	// reaches one replica, after which the operator is frozen at its
	// last feasible level. This refines Algorithm 1's bare termination
	// (its line 9 simply stops on the first failed placement), in the
	// spirit of the Appendix D discussion of "failed-to-allocate".
	type growth struct {
		op   string
		prev int
	}
	var lastGrowth *growth
	frozen := map[string]bool{}

	// shrinks counts how many times an infeasible *initial* configuration
	// has been halved: a warm-started replication (or a pessimistic Tf
	// policy) can overshoot the machine, in which case the right move is
	// to scale the whole seed down, not to give up.
	shrinks := 0

	for iter := 0; iter < maxIter; iter++ {
		eg, err := plan.Build(app, repl, ratio)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		pr, err := bnb.Optimize(eg, cfg.Model, cfg.BnB)
		if err == bnb.ErrNoFeasiblePlacement {
			if lastGrowth == nil {
				allOne := true
				for _, k := range repl {
					if k > 1 {
						allOne = false
						break
					}
				}
				if allOne || shrinks >= 8 {
					// Even the minimal configuration has no valid
					// placement: the machine cannot host the saturated
					// application at all.
					break
				}
				for op, k := range repl {
					if k > 1 {
						repl[op] = (k + 1) / 2
					}
				}
				shrinks++
				continue
			}
			delta := repl[lastGrowth.op] - lastGrowth.prev
			if delta > 1 {
				repl[lastGrowth.op] = lastGrowth.prev + delta/2
			} else {
				repl[lastGrowth.op] = lastGrowth.prev
				frozen[lastGrowth.op] = true
				lastGrowth = nil
			}
			continue
		}
		if err != nil {
			return nil, err
		}

		trace := IterationTrace{Replication: cloneRepl(repl), Throughput: pr.Eval.Throughput, Explored: pr.Explored}
		if pr.Eval.Throughput > best {
			best = pr.Eval.Throughput
			res.Replication = cloneRepl(repl)
			res.Graph = eg
			res.Placement = pr.Placement
			res.Eval = pr.Eval
		}

		// Find the first bottleneck operator in reverse topological
		// order (scale from sink toward spout) and grow it by the
		// over-supply ratio.
		grown := false
		for _, op := range revOrder {
			if frozen[op] {
				continue
			}
			if cfg.FixedSpouts && app.Node(op).IsSpout {
				continue
			}
			ratioOver := overSupplyRatio(eg, pr.Eval, op)
			if ratioOver <= 1 {
				continue
			}
			cur := repl[op]
			next := int(math.Ceil(float64(cur) * ratioOver))
			// Cap growth at doubling per round: with a saturated ingress
			// the spout's over-supply ratio is unbounded (its offered
			// load is the external rate I), and even internal operators
			// estimated under partial information should approach their
			// final level geometrically rather than overshoot.
			if next > 2*cur {
				next = 2 * cur
			}
			if next <= cur {
				next = cur + 1
			}
			if totalRepl(repl)-cur+next > budget {
				// Clamp to the remaining budget if that still grows.
				room := budget - (totalRepl(repl) - cur)
				if room <= cur {
					continue // cannot grow this operator further
				}
				next = room
			}
			lastGrowth = &growth{op: op, prev: cur}
			repl[op] = next
			trace.Bottleneck = op
			grown = true
			break
		}
		res.Trace = append(res.Trace, trace)
		if !grown {
			break // no bottleneck can be grown: optimum reached
		}
	}

	res.Elapsed = time.Since(start)
	if res.Placement == nil {
		return res, bnb.ErrNoFeasiblePlacement
	}
	return res, nil
}

// overSupplyRatio returns max over the operator's vertices of ri/capacity
// (1 when the operator keeps up with its input everywhere).
func overSupplyRatio(eg *plan.ExecGraph, ev *model.Result, op string) float64 {
	worst := 1.0
	for _, v := range eg.OfOp(op) {
		r := ev.Rates[v.ID]
		if r.Capacity > 0 && r.In/r.Capacity > worst {
			worst = r.In / r.Capacity
		}
	}
	return worst
}

func totalRepl(repl map[string]int) int {
	t := 0
	for _, v := range repl {
		t += v
	}
	return t
}

func cloneRepl(r map[string]int) map[string]int {
	c := make(map[string]int, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// CostPerSpoutTuple returns the total CPU nanoseconds the whole pipeline
// spends per spout output tuple: sum over operators of (relative input
// rate x Te), where the relative rate is the sum over paths from the
// spout of the product of selectivities.
func CostPerSpoutTuple(app *graph.Graph, stats profile.Set) (float64, error) {
	order, err := app.TopoSort()
	if err != nil {
		return 0, err
	}
	rel := map[string]float64{}
	for _, op := range order {
		n := app.Node(op)
		if n.IsSpout {
			rel[op] = 1
			continue
		}
		for _, e := range app.In(op) {
			st, ok := stats[e.From]
			if !ok {
				return 0, fmt.Errorf("rlas: no stats for %q", e.From)
			}
			rel[op] += rel[e.From] * st.Selectivity[e.Stream]
		}
	}
	var totalCost float64
	for op, r := range rel {
		st, ok := stats[op]
		if !ok {
			return 0, fmt.Errorf("rlas: no stats for %q", op)
		}
		totalCost += r * st.Te
	}
	if totalCost <= 0 {
		return 0, fmt.Errorf("rlas: degenerate cost model")
	}
	return totalCost, nil
}

// EstimateMaxIngress approximates the highest external ingress rate the
// machine can sustain (Imax): the core budget divided by the pipeline's
// CPU cost per spout tuple, scaled by fill. The paper tunes I to its
// maximum attainable value to keep the system busy (Section 6.1); on
// machines too small to host a saturated spout this is the back-pressure
// stabilized operating point.
func EstimateMaxIngress(app *graph.Graph, stats profile.Set, totalCores int, fill float64) (float64, error) {
	cost, err := CostPerSpoutTuple(app, stats)
	if err != nil {
		return 0, err
	}
	return float64(totalCores) * 1e9 * fill / cost, nil
}

// SeedReplication derives an informed initial replication configuration
// from the statistics alone: each operator's relative input rate is the
// sum over paths from the spout of the product of selectivities, so its
// share of the machine's CPU is proportional to rate x Te. The fill
// factor (0 < fill <= 1, e.g. 0.7) leaves headroom for the iterative
// scaling to refine. Appendix D notes that starting from a reasonably
// large DAG configuration reduces the number of scaling iterations; this
// is that warm start.
func SeedReplication(app *graph.Graph, stats profile.Set, totalCores int, fill float64) (map[string]int, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("rlas: fill %v out of (0,1]", fill)
	}
	order, err := app.TopoSort()
	if err != nil {
		return nil, err
	}
	// Relative input rate per unit of spout output.
	rel := map[string]float64{}
	for _, op := range order {
		n := app.Node(op)
		if n.IsSpout {
			rel[op] = 1
			continue
		}
		for _, e := range app.In(op) {
			st, ok := stats[e.From]
			if !ok {
				return nil, fmt.Errorf("rlas: no stats for %q", e.From)
			}
			rel[op] += rel[e.From] * st.Selectivity[e.Stream]
		}
	}
	// CPU share per op and the spout rate the budget supports.
	var totalCost float64 // ns of CPU per spout tuple
	for op, r := range rel {
		totalCost += r * stats[op].Te
	}
	if totalCost <= 0 {
		return nil, fmt.Errorf("rlas: degenerate cost model")
	}
	spoutRate := float64(totalCores) * 1e9 * fill / totalCost
	repl := map[string]int{}
	for op, r := range rel {
		k := int(math.Ceil(spoutRate * r * stats[op].Te / 1e9))
		if k < 1 {
			k = 1
		}
		repl[op] = k
	}
	return repl, nil
}

// ReEvaluate re-runs the performance model on an optimized plan under a
// different Tf policy. Figure 12's RLAS_fix ablations optimize the plan
// under a fixed-capability assumption and then measure it under the real
// NUMA-charged model; this helper provides the second step.
func ReEvaluate(r *Result, cfg *model.Config, policy model.TfPolicy) (*model.Result, error) {
	c := *cfg
	c.Policy = policy
	return model.Evaluate(r.Graph, r.Placement, &c, model.Options{})
}

// Apply flattens the optimized plan into engine configuration: the
// replication map and the "op#replica" → socket placement the engine's
// Config consumes. This is the planning-to-execution seam — callers no
// longer hand-translate vertex labels.
func (r *Result) Apply() (*plan.EngineConfig, error) {
	return plan.Apply(r.Graph, r.Placement)
}
