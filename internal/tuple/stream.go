package tuple

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// StreamID is an interned stream identifier. The engine resolves stream
// names to IDs once at wiring time (and operators may intern the names
// of their output streams at construction), so the per-tuple routing
// match is an integer compare instead of a string compare, and carrying
// the stream in a tuple costs four bytes instead of a string header.
type StreamID uint32

// DefaultStreamID is the interned id of DefaultStream. The intern table
// is seeded with it, so the zero StreamID always means "default".
const DefaultStreamID StreamID = 0

// streamTable is the immutable snapshot of the intern table. Intern
// publishes a fresh copy on every registration (copy-on-write), so
// lookups — including the per-tuple compat path that still emits by
// stream name — are lock-free loads.
type streamTable struct {
	byName map[string]StreamID
	names  []string
}

var (
	streamsMu sync.Mutex
	streams   atomic.Pointer[streamTable]
)

func init() {
	streams.Store(&streamTable{
		byName: map[string]StreamID{DefaultStream: DefaultStreamID},
		names:  []string{DefaultStream},
	})
}

// Intern returns the StreamID for a stream name, registering the name on
// first use. It is safe for concurrent use; registration is expected at
// wiring/construction time, lookups of known names are lock-free.
//
// The table is process-global and never evicts: stream names must be a
// small bounded set fixed by the topology, never computed per tuple or
// per key (each first-seen name rebuilds the table under a lock and is
// retained for the life of the process).
func Intern(name string) StreamID {
	if id, ok := streams.Load().byName[name]; ok {
		return id
	}
	streamsMu.Lock()
	defer streamsMu.Unlock()
	cur := streams.Load()
	if id, ok := cur.byName[name]; ok {
		return id
	}
	next := &streamTable{
		byName: make(map[string]StreamID, len(cur.byName)+1),
		names:  make([]string, len(cur.names), len(cur.names)+1),
	}
	for k, v := range cur.byName {
		next.byName[k] = v
	}
	copy(next.names, cur.names)
	id := StreamID(len(next.names))
	next.byName[name] = id
	next.names = append(next.names, name)
	streams.Store(next)
	return id
}

// LookupStream returns the StreamID for a name without registering it.
func LookupStream(name string) (StreamID, bool) {
	id, ok := streams.Load().byName[name]
	return id, ok
}

// String returns the interned stream name.
func (id StreamID) String() string {
	t := streams.Load()
	if int(id) < len(t.names) {
		return t.names[id]
	}
	return fmt.Sprintf("stream#%d", uint32(id))
}
