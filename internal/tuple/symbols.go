package tuple

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Symbols: the process-global string interning table for low-cardinality
// hot field values (words, device ids, entity keys). A symbol field
// stores a 4-byte id in its tuple slot — no copy into the arena, key
// equality is an integer compare, and Str/Name return the interned
// text, which is stable for the life of the process (so, unlike arena
// strings, symbol names may be kept without cloning).
//
// Like stream interning, the table never evicts: symbols must come from
// a bounded set fixed by the workload (a vocabulary, a device fleet),
// never from unbounded per-tuple data — every first-seen name rebuilds
// the table under a lock and is retained forever. High-cardinality
// strings belong in the arena (AppendStr), not here.
//
// Symbol ids are process-local and depend on interning order; nothing
// durable may record an id. The serialization paths (tuple wire format,
// checkpoint key codec) encode a symbol as its name and re-intern on
// decode, which keeps encodings byte-stable and lets a recovered
// process rebuild identical keys.

// Sym is an interned symbol id.
type Sym uint32

// symTable is the immutable snapshot of the symbol intern table;
// InternSym publishes a fresh copy per registration (copy-on-write), so
// per-tuple lookups are lock-free loads.
type symTable struct {
	byName map[string]Sym
	names  []string
	bytes  int // total interned name bytes (capacity accounting)
}

var (
	symsMu sync.Mutex
	syms   atomic.Pointer[symTable]
)

func init() {
	syms.Store(&symTable{byName: map[string]Sym{}})
}

// InternSym returns the symbol for name, registering it on first use.
// Safe for concurrent use; lookups of known names are lock-free.
func InternSym(name string) Sym {
	if s, ok := syms.Load().byName[name]; ok {
		return s
	}
	symsMu.Lock()
	defer symsMu.Unlock()
	cur := syms.Load()
	if s, ok := cur.byName[name]; ok {
		return s
	}
	// The caller's string may be a view into a pooled tuple arena (the
	// tokenizer path interns substrings of Str results); the table
	// retains the name forever, so it must own the bytes.
	name = strings.Clone(name)
	next := &symTable{
		byName: make(map[string]Sym, len(cur.byName)+1),
		names:  make([]string, len(cur.names), len(cur.names)+1),
		bytes:  cur.bytes + len(name),
	}
	for k, v := range cur.byName {
		next.byName[k] = v
	}
	copy(next.names, cur.names)
	s := Sym(len(next.names))
	next.byName[name] = s
	next.names = append(next.names, name)
	syms.Store(next)
	checkSymWatermark(next)
	return s
}

// InternSyms registers a batch of names under one lock with one table
// rebuild and returns their symbols. Sequential InternSym calls copy
// the whole table per registration (O(n²) for n names); bulk
// pre-interning of a vocabulary or id population belongs here.
func InternSyms(names ...string) []Sym {
	out := make([]Sym, len(names))
	symsMu.Lock()
	defer symsMu.Unlock()
	cur := syms.Load()
	missing := 0
	for _, name := range names {
		if _, ok := cur.byName[name]; !ok {
			missing++
		}
	}
	if missing == 0 {
		for i, name := range names {
			out[i] = cur.byName[name]
		}
		return out
	}
	next := &symTable{
		byName: make(map[string]Sym, len(cur.byName)+missing),
		names:  make([]string, len(cur.names), len(cur.names)+missing),
		bytes:  cur.bytes,
	}
	for k, v := range cur.byName {
		next.byName[k] = v
	}
	copy(next.names, cur.names)
	for i, name := range names {
		s, ok := next.byName[name]
		if !ok {
			name = strings.Clone(name)
			s = Sym(len(next.names))
			next.byName[name] = s
			next.names = append(next.names, name)
			next.bytes += len(name)
		}
		out[i] = s
	}
	syms.Store(next)
	checkSymWatermark(next)
	return out
}

// InternSymBytes interns the symbol named by b. The already-interned
// path allocates nothing (the map lookup does not materialize the
// string), which is what lets tokenizers emit symbols straight from a
// scratch buffer.
func InternSymBytes(b []byte) Sym {
	if s, ok := syms.Load().byName[string(b)]; ok {
		return s
	}
	return InternSym(string(b))
}

// LookupSym returns the symbol for a name without registering it.
func LookupSym(name string) (Sym, bool) {
	s, ok := syms.Load().byName[name]
	return s, ok
}

// Name returns the interned text of the symbol. The result is stable
// for the life of the process.
func (s Sym) Name() string {
	t := syms.Load()
	if int(s) < len(t.names) {
		return t.names[s]
	}
	return fmt.Sprintf("sym#%d", uint32(s))
}

// SymCount reports the number of interned symbols (bounded-cardinality
// monitoring).
func SymCount() int { return len(syms.Load().names) }

// SymBytes reports the total bytes of interned symbol names (retained
// for the life of the process).
func SymBytes() int { return syms.Load().bytes }

// symWatcher is one armed capacity watermark. fired makes it warn-once:
// a runaway tokenizer interning per-tuple data would otherwise turn the
// warning itself into per-tuple overhead.
type symWatcher struct {
	limit int
	fn    func(count, bytes int)
	fired atomic.Bool
}

var symWatch atomic.Pointer[symWatcher]

// SetSymWatermark arms a warn-once callback invoked the first time the
// intern table grows past limit symbols — the guard rail for the "never
// intern unbounded per-tuple data" contract. The callback receives the
// table's size and retained name bytes; it runs under the intern lock,
// so it must only record or log — never intern. Re-arming replaces the
// previous watermark (and its fired state); limit <= 0 or a nil fn
// disarms.
func SetSymWatermark(limit int, fn func(count, bytes int)) {
	if limit <= 0 || fn == nil {
		symWatch.Store(nil)
		return
	}
	symWatch.Store(&symWatcher{limit: limit, fn: fn})
}

func checkSymWatermark(t *symTable) {
	w := symWatch.Load()
	if w == nil || len(t.names) <= w.limit {
		return
	}
	if w.fired.CompareAndSwap(false, true) {
		w.fn(len(t.names), t.bytes)
	}
}
