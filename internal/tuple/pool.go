package tuple

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool recycles tuples between a producer and the consumers of its
// output, removing the per-emit Tuple (and Values backing array)
// allocation from the steady-state data path. The engine gives every
// task one Pool; a consumed tuple travels back to its producer's pool
// once every reference holder has released it.
//
// The ownership contract (see also the package doc):
//
//   - Pool.Get returns a tuple holding one reference, owned by the
//     caller. Handing the tuple to the engine (Collector.Send, or the
//     engine's own dispatch) transfers that reference.
//   - The engine releases each input tuple after the consuming
//     operator's Process returns. An operator that keeps the *Tuple*
//     beyond Process (windows, joins, side goroutines) must call Retain
//     before Process returns and Release when done.
//   - Numeric/boolean field values read out of a tuple may be kept
//     forever. Strings read from ordinary (arena) string fields are
//     views into the recycled arena and die with the tuple — clone
//     them to keep them; interned symbol names are stable and exempt.
//
// Pool is backed by sync.Pool: Get and Put are safe from any goroutine
// and the per-P caches keep the common (same-core) recycle path free of
// contention, approximating a per-task free list without a cross-thread
// return queue. With NewRecycleRing the cross-thread return becomes
// explicit and NUMA-local: Get prefers tuples parked in the attached
// reverse rings, and is then restricted to the owning task's goroutine
// (the rings' single-getter side).
type Pool struct {
	p sync.Pool

	// rings are the attached reverse recycling rings; cursor remembers
	// which ring satisfied the last refill so a hot edge is drained
	// without re-scanning cold ones; free is the local stash a chunked
	// DrainInto refills — Gets pop from it until it runs dry, so the
	// ring's atomic cursors are touched once per chunk, not once per
	// tuple. All owner-goroutine state.
	rings  []*RecycleRing
	cursor int
	free   []*Tuple

	// stats gates the get/put accounting the leak/double-free property
	// tests assert on; off (the default) the hot path pays one
	// predictable branch.
	stats      bool
	gets, puts atomic.Uint64
	// ringHits counts Gets satisfied from a reverse recycling ring
	// rather than sync.Pool (stats-gated like gets/puts); the obs layer
	// exposes the ratio as the NUMA-local recycle hit rate.
	ringHits atomic.Uint64
}

// NewPool creates an empty tuple pool.
func NewPool() *Pool {
	pl := &Pool{}
	pl.p.New = func() any { return new(Tuple) }
	return pl
}

// EnableStats turns on get/put accounting (before the pool is used).
func (p *Pool) EnableStats() { p.stats = true }

// Stats returns the cumulative Get count and the count of tuples
// recycled back (via sync.Pool or a reverse ring). When every reference
// has been dropped and no tuple is in flight, gets == puts; the
// difference is the number of live (leaked, if the run is over) tuples.
func (p *Pool) Stats() (gets, puts uint64) {
	return p.gets.Load(), p.puts.Load()
}

// RingHits returns how many Gets were satisfied from a reverse
// recycling ring (non-zero only with EnableStats and attached rings).
func (p *Pool) RingHits() uint64 { return p.ringHits.Load() }

// refillChunk bounds how many tuples one reverse-ring drain moves into
// the local stash: large enough to amortize the ring's cursor handoff
// across a jumbo batch worth of Gets, small enough that a burst does
// not strand tuples in a cold pool's stash.
const refillChunk = 32

// Get returns an empty tuple on the default stream holding one
// reference. The tuple's string arena keeps the capacity of its
// previous life, so appending similar payloads allocates nothing.
func (p *Pool) Get() *Tuple {
	if p.stats {
		p.gets.Add(1)
	}
	if len(p.free) == 0 && len(p.rings) > 0 {
		p.refill()
	}
	if k := len(p.free) - 1; k >= 0 {
		t := p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
		if p.stats {
			p.ringHits.Add(1)
		}
		t.pool = p
		atomic.StoreInt32(&t.refs, 1)
		return t
	}
	t := p.p.Get().(*Tuple)
	t.pool = p
	atomic.StoreInt32(&t.refs, 1)
	return t
}

// refill drains one attached reverse ring in a chunk into the local
// stash, scanning from the last hot ring. One DrainInto covers up to
// refillChunk subsequent Gets with a single ring-cursor handoff.
func (p *Pool) refill() {
	if cap(p.free) < refillChunk {
		p.free = make([]*Tuple, 0, refillChunk)
	}
	idx := p.cursor
	for k := 0; k < len(p.rings); k++ {
		if got := p.rings[idx].ring.DrainInto(p.free[:refillChunk], refillChunk); got > 0 {
			p.cursor = idx
			p.free = p.free[:got]
			return
		}
		if idx++; idx == len(p.rings) {
			idx = 0
		}
	}
}

// Retain adds a reference to a pooled tuple, keeping it alive past the
// engine's release after Process. It is a no-op for tuples that did not
// come from a Pool (those are garbage-collected as usual). The caller
// must already hold a reference.
func (t *Tuple) Retain() {
	if t.pool != nil {
		atomic.AddInt32(&t.refs, 1)
	}
}

// RetainN adds n references at once; the engine uses it when one tuple
// is enqueued by reference to several consumers, so that the first
// consumer's Release cannot recycle the tuple while it is still being
// fanned out. The caller must already hold a reference.
func (t *Tuple) RetainN(n int) {
	if t.pool != nil && n > 0 {
		atomic.AddInt32(&t.refs, int32(n))
	}
}

// Release drops one reference; the last release resets the tuple and
// returns it to its pool. It is a no-op for non-pooled tuples. A caller
// must not touch the tuple after releasing its reference.
func (t *Tuple) Release() {
	if t.pool == nil {
		return
	}
	// Single-holder fast path: with one reference outstanding only the
	// caller can retain or release, so no atomic read-modify-write is
	// needed to reach zero.
	if atomic.LoadInt32(&t.refs) == 1 {
		atomic.StoreInt32(&t.refs, 0)
		t.recycle()
		return
	}
	if atomic.AddInt32(&t.refs, -1) == 0 {
		t.recycle()
	}
}

// ReleaseLocal drops one reference like Release, but a tuple reaching
// zero references goes back onto the pool's owner-goroutine stash
// instead of the shared fallback pool — the caller must be on the pool
// owner's goroutine. The engine's columnar batch builders use it: they
// copy each tuple into column lanes and release it right there on the
// producing task, so the Borrow→fill→append→release cycle of a fully
// columnar edge spins on one hot stash slot with no cross-thread
// machinery (the reverse rings never see these tuples, so without this
// the stash would run dry and every cycle would round-trip sync.Pool).
func (t *Tuple) ReleaseLocal() {
	p := t.pool
	if p == nil {
		return
	}
	if refs := atomic.LoadInt32(&t.refs); refs == 1 {
		atomic.StoreInt32(&t.refs, 0)
	} else if atomic.AddInt32(&t.refs, -1) != 0 {
		return
	}
	t.resetForPool()
	t.pool = nil
	if p.stats {
		p.puts.Add(1)
	}
	if cap(p.free) == 0 {
		p.free = make([]*Tuple, 0, refillChunk)
	}
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, t)
		return
	}
	p.p.Put(t)
}

// recycle resets the tuple and returns it to its pool. The slot array
// holds no pointers and the arena keeps its capacity for reuse; arena
// string views handed out from this life are dead from here on.
func (t *Tuple) recycle() {
	t.resetForPool()
	p := t.pool
	t.pool = nil // a stray double Release is a no-op, not a re-pool
	if p.stats {
		p.puts.Add(1)
	}
	p.p.Put(t)
}

// resetForPool clears everything a recycled tuple must not carry into
// its next life (shared by the sync.Pool and reverse-ring paths).
func (t *Tuple) resetForPool() {
	t.Reset()
	t.Stream = DefaultStreamID
	t.Ts = time.Time{}
	t.Event = 0
	t.TraceID = 0
	t.TraceOrigin = 0
}
