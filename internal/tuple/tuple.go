// Package tuple defines the data units that flow through BriskStream:
// individual tuples and "jumbo tuples" (batches of tuples that share one
// header and are enqueued with a single queue insertion — Section 5.2 of
// the paper). It also provides a binary (de)serialization path that is
// deliberately NOT used by the BriskStream engine: pass-by-reference is
// the whole point of the shared-memory design. Serialization exists so
// the Storm-like baseline mode can pay the cost a distributed DSPS pays,
// which is what the factor analysis (Figure 16) measures.
//
// # Ownership and recycling
//
// Tuples on the BriskStream path are pooled (see Pool): a producer
// acquires a tuple, the engine passes the pointer to its consumer(s),
// and after the consuming operator's Process returns the engine releases
// the tuple back to the producer's pool. The contract for operator code:
//
//   - A tuple received by Process is valid only until Process returns.
//     To keep the *Tuple itself longer (windows, joins, handing it to
//     another goroutine), call Retain before returning and Release when
//     done.
//   - Field values read from a tuple (String, Int, ...) are immutable
//     boxed values and may be kept forever without Retain; recycling
//     only reuses the Tuple struct and its Values backing array.
//   - A tuple obtained from Collector.Borrow is owned by the caller
//     until passed to Collector.Send, which consumes that ownership.
//
// Stream identity is interned: StreamID is resolved from the stream name
// once at wiring time, so per-tuple routing never compares strings.
package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Value is a single field of a tuple. Supported dynamic types are
// int64, float64, string and bool; this mirrors the field model of
// Storm/Heron whose APIs BriskStream adopts.
type Value any

// Tuple is one data item flowing along a stream. Tuples are passed by
// reference between operators in the same process; an output tuple is
// exclusively accessible by its targeted consumer, so no defensive copy
// is made (Section 5.1).
type Tuple struct {
	// Values are the payload fields, positionally matching the stream's
	// declared schema.
	Values []Value
	// Stream is the interned id of the output stream this tuple was
	// emitted on. Operators with a single output use DefaultStreamID
	// (the zero value).
	Stream StreamID
	// Ts is the event creation time used for end-to-end latency
	// measurement; it is stamped by the spout and carried through.
	Ts time.Time
	// Event is the tuple's event timestamp in application time units
	// (milliseconds by convention): the domain time the event occurred,
	// as opposed to Ts, which is wall-clock processing time. Sources
	// stamp it, the engine propagates it input→output when an operator
	// leaves it zero, and the window operators assign tuples to windows
	// by it. Zero means "unset" (no event-time semantics on this path).
	Event int64

	// pool and refs implement recycling: pool points back to the Pool
	// the tuple came from (nil for ordinary GC-managed tuples), refs
	// counts the outstanding references (accessed atomically).
	pool *Pool
	refs int32
}

// DefaultStream is the stream name used by operators with one output.
const DefaultStream = "default"

// New builds a non-pooled tuple on the default stream.
func New(values ...Value) *Tuple {
	return &Tuple{Values: values}
}

// OnStream builds a non-pooled tuple on a named stream (interning the
// name; hot paths should pre-intern and set Stream directly).
func OnStream(stream string, values ...Value) *Tuple {
	return &Tuple{Values: values, Stream: Intern(stream)}
}

// StreamName returns the name of the tuple's stream.
func (t *Tuple) StreamName() string { return t.Stream.String() }

// Int returns field i as an int64.
func (t *Tuple) Int(i int) int64 {
	switch v := t.Values[i].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	default:
		panic(fmt.Sprintf("tuple: field %d is %T, not integer", i, t.Values[i]))
	}
}

// Float returns field i as a float64.
func (t *Tuple) Float(i int) float64 {
	switch v := t.Values[i].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	default:
		panic(fmt.Sprintf("tuple: field %d is %T, not float", i, t.Values[i]))
	}
}

// String returns field i as a string.
func (t *Tuple) String(i int) string {
	if s, ok := t.Values[i].(string); ok {
		return s
	}
	panic(fmt.Sprintf("tuple: field %d is %T, not string", i, t.Values[i]))
}

// Bool returns field i as a bool.
func (t *Tuple) Bool(i int) bool {
	if b, ok := t.Values[i].(bool); ok {
		return b
	}
	panic(fmt.Sprintf("tuple: field %d is %T, not bool", i, t.Values[i]))
}

// Size estimates the in-memory footprint of the tuple in bytes. This is
// the N statistic of the performance model (average size per tuple); the
// paper measures it with the classmexer agent, we compute it directly.
func (t *Tuple) Size() int {
	const header = 48 // struct + slice header + stream pointer + timestamp
	n := header
	for _, v := range t.Values {
		n += 16 // interface header
		switch x := v.(type) {
		case string:
			n += len(x)
		case int64, float64:
			n += 8
		case int:
			n += 8
		case bool:
			n++
		default:
			n += 8
		}
	}
	return n
}

// Clone deep-copies the tuple into a fresh non-pooled allocation. The
// BriskStream path never calls this on the hot path; defensive-copy
// emulation uses pooled copies via CopyFrom instead.
func (t *Tuple) Clone() *Tuple {
	c := &Tuple{Values: make([]Value, len(t.Values)), Stream: t.Stream, Ts: t.Ts, Event: t.Event}
	copy(c.Values, t.Values)
	return c
}

// CopyFrom overwrites this tuple's payload, stream and timestamp with
// src's, reusing the Values backing array. It is the allocation-free
// deep copy used for fan-out and defensive-copy paths on pooled tuples.
func (t *Tuple) CopyFrom(src *Tuple) {
	t.Values = append(t.Values[:0], src.Values...)
	t.Stream = src.Stream
	t.Ts = src.Ts
	t.Event = src.Event
}

// Jumbo is a jumbo tuple: a batch of tuples from one producer to one
// consumer that shares a single header (producer/consumer identity,
// context metadata) and occupies a single communication-queue slot.
// Section 5.2: the shared header eliminates duplicate per-tuple metadata
// and the single insertion amortizes queue synchronization.
type Jumbo struct {
	// Producer and Consumer identify the task pair, replacing a
	// per-tuple header.
	Producer, Consumer int
	// Tuples is the batch payload, passed by reference.
	Tuples []*Tuple
}

// Len returns the number of tuples in the batch.
func (j *Jumbo) Len() int { return len(j.Tuples) }

type kind byte

const (
	kindInt kind = iota + 1
	kindFloat
	kindString
	kindBool
)

// Marshal serializes the tuple into a compact binary frame. Only the
// baseline (Storm-like) engine mode uses this; BriskStream passes
// references.
func Marshal(t *Tuple, buf []byte) []byte {
	buf = appendString(buf, t.Stream.String())
	// A zero timestamp (no latency sample) is encoded as 0; calling
	// UnixNano on the zero Time would produce an arbitrary huge value.
	var ts uint64
	if !t.Ts.IsZero() {
		ts = uint64(t.Ts.UnixNano())
	}
	buf = binary.BigEndian.AppendUint64(buf, ts)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Event))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Values)))
	for _, v := range t.Values {
		switch x := v.(type) {
		case int64:
			buf = append(buf, byte(kindInt))
			buf = binary.BigEndian.AppendUint64(buf, uint64(x))
		case int:
			buf = append(buf, byte(kindInt))
			buf = binary.BigEndian.AppendUint64(buf, uint64(x))
		case float64:
			buf = append(buf, byte(kindFloat))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
		case string:
			buf = append(buf, byte(kindString))
			buf = appendString(buf, x)
		case bool:
			buf = append(buf, byte(kindBool))
			if x {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			panic(fmt.Sprintf("tuple: cannot marshal %T", v))
		}
	}
	return buf
}

// ErrCorrupt reports a malformed serialized tuple.
var ErrCorrupt = errors.New("tuple: corrupt frame")

// Unmarshal decodes a frame produced by Marshal and returns the decoded
// tuple along with the number of bytes consumed.
func Unmarshal(buf []byte) (*Tuple, int, error) {
	stream, off, err := readString(buf, 0)
	if err != nil {
		return nil, 0, err
	}
	if off+18 > len(buf) {
		return nil, 0, ErrCorrupt
	}
	ts := int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	event := int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	n := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	t := &Tuple{Stream: Intern(stream), Values: make([]Value, 0, n), Event: event}
	if ts != 0 {
		t.Ts = time.Unix(0, ts)
	}
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, 0, ErrCorrupt
		}
		k := kind(buf[off])
		off++
		switch k {
		case kindInt:
			if off+8 > len(buf) {
				return nil, 0, ErrCorrupt
			}
			t.Values = append(t.Values, int64(binary.BigEndian.Uint64(buf[off:])))
			off += 8
		case kindFloat:
			if off+8 > len(buf) {
				return nil, 0, ErrCorrupt
			}
			t.Values = append(t.Values, math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
			off += 8
		case kindString:
			s, o, err := readString(buf, off)
			if err != nil {
				return nil, 0, err
			}
			t.Values = append(t.Values, s)
			off = o
		case kindBool:
			if off >= len(buf) {
				return nil, 0, ErrCorrupt
			}
			t.Values = append(t.Values, buf[off] == 1)
			off++
		default:
			return nil, 0, ErrCorrupt
		}
	}
	return t, off, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(buf []byte, off int) (string, int, error) {
	if off+4 > len(buf) {
		return "", 0, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if off+n > len(buf) {
		return "", 0, ErrCorrupt
	}
	return string(buf[off : off+n]), off + n, nil
}
