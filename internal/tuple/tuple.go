// Package tuple defines the data units that flow through BriskStream:
// individual tuples and "jumbo tuples" (batches of tuples that share one
// header and are enqueued with a single queue insertion — Section 5.2 of
// the paper). It also provides a binary (de)serialization path that is
// deliberately NOT used by the BriskStream engine: pass-by-reference is
// the whole point of the shared-memory design. Serialization exists so
// the Storm-like baseline mode can pay the cost a distributed DSPS pays,
// which is what the factor analysis (Figure 16) measures.
//
// # Typed slot representation
//
// A tuple's payload is schema-typed, not boxed: every field lives in a
// fixed inline slot array (one uint64 per field plus a kind tag), and
// string fields are byte ranges in a small per-tuple arena that is
// recycled with the tuple. Nothing on the emit path allocates — writing
// an int is a slot store, writing a string is a byte copy into the
// pooled arena — and nothing on the read path type-switches on
// interfaces. Streams declare a Schema (field names + kinds) at wiring
// time; the engine checks emitted tuples against it.
//
// Low-cardinality hot strings (words, device ids) should be interned as
// symbols (Sym, InternSym): a symbol field stores a 4-byte id, compares
// and hashes without touching the text, and Str returns the interned
// name, which is stable for the life of the process.
//
// # Ownership and recycling
//
// Tuples on the BriskStream path are pooled (see Pool): a producer
// acquires a tuple, the engine passes the pointer to its consumer(s),
// and after the consuming operator's Process returns the engine releases
// the tuple back to the producer's pool. The contract for operator code:
//
//   - A tuple received by Process is valid only until Process returns.
//     To keep the *Tuple itself longer (windows, joins, handing it to
//     another goroutine), call Retain before returning and Release when
//     done.
//   - Numeric and boolean field values read from a tuple may be kept
//     forever. A string read with Str from an ordinary string field is a
//     view into the tuple's arena and is valid only while the caller
//     holds the tuple — clone it (strings.Clone, or Key(i).Canon() for
//     keys) to keep it past Process. Symbol fields are exempt: their Str
//     result is the interned name, stable for the process lifetime.
//   - A tuple obtained from Collector.Borrow is owned by the caller
//     until passed to Collector.Send, which consumes that ownership.
//
// Stream identity is interned: StreamID is resolved from the stream name
// once at wiring time, so per-tuple routing never compares strings.
package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
	"unsafe"
)

// Value is a dynamically typed field for the convenience surfaces
// (Collector.Emit, New). The hot path writes typed slots directly via
// the Append* methods and never boxes.
type Value = any

// Kind identifies the type of one tuple field slot.
type Kind uint8

const (
	// KindNone marks an unset slot (and the empty Key of global windows).
	KindNone Kind = iota
	// KindInt is a 64-bit signed integer field.
	KindInt
	// KindFloat is a float64 field.
	KindFloat
	// KindBool is a boolean field.
	KindBool
	// KindStr is a string field stored in the tuple's byte arena.
	KindStr
	// KindSym is an interned symbol field (see InternSym): the slot
	// holds the 4-byte symbol id, the text lives in the process-global
	// symbol table.
	KindSym
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int64"
	case KindFloat:
		return "float64"
	case KindBool:
		return "bool"
	case KindStr:
		return "string"
	case KindSym:
		return "symbol"
	default:
		return fmt.Sprintf("kind#%d", uint8(k))
	}
}

// MaxFields is the fixed slot capacity of a tuple. The evaluation
// workloads top out at seven fields (LR's input records); a wider record
// should be split or nested rather than grown past the inline array —
// the fixed layout is what keeps the tuple allocation-free.
const MaxFields = 8

// Tuple is one data item flowing along a stream. Tuples are passed by
// reference between operators in the same process; an output tuple is
// exclusively accessible by its targeted consumer, so no defensive copy
// is made (Section 5.1).
type Tuple struct {
	// Stream is the interned id of the output stream this tuple was
	// emitted on. Operators with a single output use DefaultStreamID
	// (the zero value).
	Stream StreamID
	// Ts is the event creation time used for end-to-end latency
	// measurement; it is stamped by the spout and carried through.
	Ts time.Time
	// Event is the tuple's event timestamp in application time units
	// (milliseconds by convention): the domain time the event occurred,
	// as opposed to Ts, which is wall-clock processing time. Sources
	// stamp it, the engine propagates it input→output when an operator
	// leaves it zero, and the window operators assign tuples to windows
	// by it. Zero means "unset" (no event-time semantics on this path).
	Event int64
	// TraceID identifies the sampled end-to-end trace this tuple belongs
	// to; zero means untraced (the overwhelmingly common case). The
	// engine stamps every k-th spout tuple (Config.TraceSampleEvery) and
	// propagates the id input→output like Event, so derived tuples stay
	// on their ancestor's trace.
	TraceID uint64
	// TraceOrigin is the wall-clock UnixNano at which the traced root
	// tuple left its spout; span records diff against it for end-to-end
	// attribution. Zero whenever TraceID is zero.
	TraceOrigin int64

	// n counts the filled slots; kinds tags each slot's type; slots
	// holds the payload: integer bits, float bits, 0/1 booleans, symbol
	// ids, or (offset<<32 | length) ranges into arena for strings.
	n     uint8
	kinds [MaxFields]Kind
	slots [MaxFields]uint64
	// arena backs the tuple's string fields; it is recycled with the
	// tuple, keeping its capacity, so steady-state string fields cost a
	// byte copy and no allocation.
	arena []byte

	// pool and refs implement recycling: pool points back to the Pool
	// the tuple came from (nil for ordinary GC-managed tuples), refs
	// counts the outstanding references (accessed atomically).
	pool *Pool
	refs int32
}

// DefaultStream is the stream name used by operators with one output.
const DefaultStream = "default"

// New builds a non-pooled tuple on the default stream from dynamically
// typed values (a convenience for tests and wiring-time construction;
// hot paths use a Pool and the typed Append* methods).
func New(values ...Value) *Tuple {
	t := &Tuple{}
	for _, v := range values {
		t.Append(v)
	}
	return t
}

// OnStream builds a non-pooled tuple on a named stream (interning the
// name; hot paths should pre-intern and set Stream directly).
func OnStream(stream string, values ...Value) *Tuple {
	t := New(values...)
	t.Stream = Intern(stream)
	return t
}

// StreamName returns the name of the tuple's stream.
func (t *Tuple) StreamName() string { return t.Stream.String() }

// Len returns the number of filled fields.
func (t *Tuple) Len() int { return int(t.n) }

// Kind returns the kind of field i.
func (t *Tuple) Kind(i int) Kind {
	t.check(i)
	return t.kinds[i]
}

// Reset clears the payload (fields and arena, keeping capacity) so the
// tuple can be refilled. Stream, Ts and Event are untouched.
func (t *Tuple) Reset() {
	t.n = 0
	t.arena = t.arena[:0]
}

// check panics on an out-of-range field index.
func (t *Tuple) check(i int) {
	if i < 0 || i >= int(t.n) {
		panic(fmt.Sprintf("tuple: field %d out of range (tuple has %d)", i, t.n))
	}
}

// grow reserves the next slot.
func (t *Tuple) grow() int {
	if int(t.n) >= MaxFields {
		panic(fmt.Sprintf("tuple: too many fields (max %d)", MaxFields))
	}
	i := int(t.n)
	t.n++
	return i
}

// AppendInt appends an int64 field.
func (t *Tuple) AppendInt(v int64) {
	i := t.grow()
	t.kinds[i] = KindInt
	t.slots[i] = uint64(v)
}

// AppendFloat appends a float64 field.
func (t *Tuple) AppendFloat(v float64) {
	i := t.grow()
	t.kinds[i] = KindFloat
	t.slots[i] = math.Float64bits(v)
}

// AppendBool appends a boolean field.
func (t *Tuple) AppendBool(v bool) {
	i := t.grow()
	t.kinds[i] = KindBool
	if v {
		t.slots[i] = 1
	} else {
		t.slots[i] = 0
	}
}

// AppendStr appends a string field, copying the bytes into the tuple's
// arena (no allocation once the arena capacity is warm).
func (t *Tuple) AppendStr(s string) {
	i := t.grow()
	t.kinds[i] = KindStr
	off := len(t.arena)
	t.arena = append(t.arena, s...)
	t.slots[i] = uint64(off)<<32 | uint64(len(s))
}

// AppendStrBytes appends a string field from a byte slice, copying into
// the arena (sources building records in reusable buffers use it to
// avoid the string conversion).
func (t *Tuple) AppendStrBytes(b []byte) {
	i := t.grow()
	t.kinds[i] = KindStr
	off := len(t.arena)
	t.arena = append(t.arena, b...)
	t.slots[i] = uint64(off)<<32 | uint64(len(b))
}

// AppendSym appends an interned symbol field.
func (t *Tuple) AppendSym(s Sym) {
	i := t.grow()
	t.kinds[i] = KindSym
	t.slots[i] = uint64(s)
}

// AppendKey appends a key extracted from another tuple with its kind
// preserved (window operators emit their group key this way). Appending
// the empty key panics.
func (t *Tuple) AppendKey(k Key) {
	switch k.kind {
	case KindInt:
		t.AppendInt(int64(k.num))
	case KindFloat:
		i := t.grow()
		t.kinds[i] = KindFloat
		t.slots[i] = k.num
	case KindBool:
		t.AppendBool(k.num != 0)
	case KindStr:
		t.AppendStr(k.str)
	case KindSym:
		t.AppendSym(Sym(k.num))
	default:
		panic("tuple: cannot append an empty key")
	}
}

// Append appends one dynamically typed value (the boxing compat surface
// behind Collector.Emit). Supported types: int64, int, float64, string,
// bool, Sym and Key.
func (t *Tuple) Append(v Value) {
	switch x := v.(type) {
	case int64:
		t.AppendInt(x)
	case int:
		t.AppendInt(int64(x))
	case float64:
		t.AppendFloat(x)
	case string:
		t.AppendStr(x)
	case bool:
		t.AppendBool(x)
	case Sym:
		t.AppendSym(x)
	case Key:
		t.AppendKey(x)
	default:
		panic(fmt.Sprintf("tuple: unsupported field type %T", v))
	}
}

// Int returns field i as an int64.
func (t *Tuple) Int(i int) int64 {
	t.check(i)
	if t.kinds[i] != KindInt {
		panic(fmt.Sprintf("tuple: field %d is %v, not int64", i, t.kinds[i]))
	}
	return int64(t.slots[i])
}

// Float returns field i as a float64 (an integer field is converted).
func (t *Tuple) Float(i int) float64 {
	t.check(i)
	switch t.kinds[i] {
	case KindFloat:
		return math.Float64frombits(t.slots[i])
	case KindInt:
		return float64(int64(t.slots[i]))
	default:
		panic(fmt.Sprintf("tuple: field %d is %v, not float64", i, t.kinds[i]))
	}
}

// Bool returns field i as a bool.
func (t *Tuple) Bool(i int) bool {
	t.check(i)
	if t.kinds[i] != KindBool {
		panic(fmt.Sprintf("tuple: field %d is %v, not bool", i, t.kinds[i]))
	}
	return t.slots[i] != 0
}

// Str returns field i as a string. For an ordinary string field the
// result is a zero-copy view into the tuple's arena, valid only while
// the caller holds the tuple (clone to keep it past Process). For a
// symbol field the result is the interned name, stable for the life of
// the process.
func (t *Tuple) Str(i int) string {
	t.check(i)
	switch t.kinds[i] {
	case KindStr:
		return t.strAt(i)
	case KindSym:
		return Sym(t.slots[i]).Name()
	default:
		panic(fmt.Sprintf("tuple: field %d is %v, not string", i, t.kinds[i]))
	}
}

// strAt returns the arena view of string slot i (which must be KindStr).
// The view aliases the arena: it stays valid while the tuple is held
// (a grown arena's old backing array is kept alive by the view itself)
// and dies when the tuple is recycled.
func (t *Tuple) strAt(i int) string {
	off := int(t.slots[i] >> 32)
	ln := int(t.slots[i] & 0xffffffff)
	if ln == 0 {
		return ""
	}
	return unsafe.String(&t.arena[off], ln)
}

// Sym returns field i as an interned symbol.
func (t *Tuple) Sym(i int) Sym {
	t.check(i)
	if t.kinds[i] != KindSym {
		panic(fmt.Sprintf("tuple: field %d is %v, not symbol", i, t.kinds[i]))
	}
	return Sym(t.slots[i])
}

// Key returns field i as a grouping key. A string field's key borrows
// the arena view — call Canon before storing it beyond the tuple's
// lifetime (the window operators do, only when creating new state).
func (t *Tuple) Key(i int) Key {
	t.check(i)
	k := Key{kind: t.kinds[i], num: t.slots[i]}
	if k.kind == KindStr {
		k.num = 0
		k.str = t.strAt(i)
	}
	return k
}

// Value returns field i boxed as a dynamic value (debug/capture
// surface; allocates for strings and large numbers). Symbol fields box
// their interned name, so captured output is representation-agnostic.
func (t *Tuple) Value(i int) Value {
	t.check(i)
	switch t.kinds[i] {
	case KindInt:
		return int64(t.slots[i])
	case KindFloat:
		return math.Float64frombits(t.slots[i])
	case KindBool:
		return t.slots[i] != 0
	case KindStr:
		return strings.Clone(t.strAt(i))
	case KindSym:
		return Sym(t.slots[i]).Name()
	default:
		return nil
	}
}

// Hash hashes field i for fields-grouping (inline FNV-1a, no heap
// hasher). String and symbol fields hash their text bytes — so a key
// routes identically whether it travels interned or not — integers
// hash their eight little-endian bytes, matching the historical
// encoding so key→replica assignments are unchanged.
func (t *Tuple) Hash(i int) uint64 {
	t.check(i)
	switch t.kinds[i] {
	case KindInt:
		return hashUint64(t.slots[i])
	case KindFloat:
		return hashUint64(t.slots[i])
	case KindBool:
		h := fnvOffset64
		if t.slots[i] != 0 {
			h ^= 1
		}
		return h * fnvPrime64
	case KindStr:
		return hashString(t.strAt(i))
	case KindSym:
		return hashString(Sym(t.slots[i]).Name())
	default:
		return fnvOffset64
	}
}

// String formats the tuple's payload for debugging, like a value slice:
// "[a 1 2.5]".
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < int(t.n); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kinds[i] {
		case KindInt:
			fmt.Fprintf(&b, "%d", int64(t.slots[i]))
		case KindFloat:
			fmt.Fprintf(&b, "%v", math.Float64frombits(t.slots[i]))
		case KindBool:
			fmt.Fprintf(&b, "%t", t.slots[i] != 0)
		case KindStr:
			b.WriteString(t.strAt(i))
		case KindSym:
			b.WriteString(Sym(t.slots[i]).Name())
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Size estimates the in-memory footprint of the tuple in bytes. This is
// the N statistic of the performance model (average size per tuple); the
// paper measures it with the classmexer agent, we compute it directly.
func (t *Tuple) Size() int {
	const header = 48 // struct header + stream id + timestamps
	return header + 16*int(t.n) + len(t.arena)
}

// Clone deep-copies the tuple into a fresh non-pooled allocation. The
// BriskStream path never calls this on the hot path; defensive-copy
// emulation uses pooled copies via CopyFrom instead.
func (t *Tuple) Clone() *Tuple {
	c := &Tuple{Stream: t.Stream, Ts: t.Ts, Event: t.Event,
		TraceID: t.TraceID, TraceOrigin: t.TraceOrigin}
	c.copyPayload(t)
	return c
}

// CopyFrom overwrites this tuple's payload, stream and timestamps with
// src's, reusing the arena backing array. It is the allocation-free
// deep copy used for fan-out and defensive-copy paths on pooled tuples.
func (t *Tuple) CopyFrom(src *Tuple) {
	t.copyPayload(src)
	t.Stream = src.Stream
	t.Ts = src.Ts
	t.Event = src.Event
	t.TraceID = src.TraceID
	t.TraceOrigin = src.TraceOrigin
}

// CopyValuesFrom overwrites this tuple's payload with src's, leaving
// Stream, Ts and Event alone — the forwarding shape of pass-through
// operators.
func (t *Tuple) CopyValuesFrom(src *Tuple) { t.copyPayload(src) }

func (t *Tuple) copyPayload(src *Tuple) {
	t.n = src.n
	t.kinds = src.kinds
	t.slots = src.slots
	t.arena = append(t.arena[:0], src.arena...)
}

// Jumbo is a jumbo tuple: a batch of tuples from one producer to one
// consumer that shares a single header (producer/consumer identity,
// context metadata) and occupies a single communication-queue slot.
// Section 5.2: the shared header eliminates duplicate per-tuple metadata
// and the single insertion amortizes queue synchronization.
type Jumbo struct {
	// Producer and Consumer identify the task pair, replacing a
	// per-tuple header.
	Producer, Consumer int
	// EnqNs is the wall clock (UnixNano) at which the batch was put on
	// its communication queue. The consumer diffs against it on dequeue,
	// which attributes queue-wait to every batch — and therefore every
	// task/edge — at one clock read per jumbo, not per tuple.
	EnqNs int64
	// Tuples is the row-oriented batch payload, passed by reference.
	// Exactly one of Tuples and Batch is populated.
	Tuples []*Tuple
	// Batch is the columnar payload carried on edges whose consumer
	// processes batches vectorized (see Batch); nil on scalar edges.
	Batch *Batch
}

// Len returns the number of tuples in the batch (either representation).
func (j *Jumbo) Len() int {
	if j.Batch != nil {
		return j.Batch.Len()
	}
	return len(j.Tuples)
}

// Wire kind tags. They survive from the boxed era (int=1, float=2,
// string=3, bool=4) so old traces stay readable; symbols are a new tag
// and carry their text, re-interned on decode.
const (
	wireInt byte = iota + 1
	wireFloat
	wireString
	wireBool
	wireSym
)

// Marshal serializes the tuple into a compact binary frame. Only the
// baseline (Storm-like) engine mode uses this; BriskStream passes
// references. The encoding is deterministic: equal tuples marshal to
// identical bytes.
func Marshal(t *Tuple, buf []byte) []byte {
	buf = appendString(buf, t.Stream.String())
	// A zero timestamp (no latency sample) is encoded as 0; calling
	// UnixNano on the zero Time would produce an arbitrary huge value.
	var ts uint64
	if !t.Ts.IsZero() {
		ts = uint64(t.Ts.UnixNano())
	}
	buf = binary.BigEndian.AppendUint64(buf, ts)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Event))
	buf = binary.BigEndian.AppendUint64(buf, t.TraceID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.TraceOrigin))
	buf = binary.BigEndian.AppendUint16(buf, uint16(t.n))
	for i := 0; i < int(t.n); i++ {
		switch t.kinds[i] {
		case KindInt:
			buf = append(buf, wireInt)
			buf = binary.BigEndian.AppendUint64(buf, t.slots[i])
		case KindFloat:
			buf = append(buf, wireFloat)
			buf = binary.BigEndian.AppendUint64(buf, t.slots[i])
		case KindStr:
			buf = append(buf, wireString)
			buf = appendString(buf, t.strAt(i))
		case KindBool:
			buf = append(buf, wireBool)
			if t.slots[i] != 0 {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case KindSym:
			buf = append(buf, wireSym)
			buf = appendString(buf, Sym(t.slots[i]).Name())
		default:
			panic(fmt.Sprintf("tuple: cannot marshal %v field", t.kinds[i]))
		}
	}
	return buf
}

// ErrCorrupt reports a malformed serialized tuple.
var ErrCorrupt = errors.New("tuple: corrupt frame")

// Unmarshal decodes a frame produced by Marshal and returns the decoded
// tuple along with the number of bytes consumed. Symbol fields are
// re-interned, so a decoded symbol key equals the key the original
// tuple carried.
func Unmarshal(buf []byte) (*Tuple, int, error) {
	stream, off, err := readString(buf, 0)
	if err != nil {
		return nil, 0, err
	}
	if off+34 > len(buf) {
		return nil, 0, ErrCorrupt
	}
	ts := int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	event := int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	traceID := binary.BigEndian.Uint64(buf[off:])
	off += 8
	traceOrigin := int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	n := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if n > MaxFields {
		return nil, 0, ErrCorrupt
	}
	t := &Tuple{Stream: Intern(stream), Event: event,
		TraceID: traceID, TraceOrigin: traceOrigin}
	if ts != 0 {
		t.Ts = time.Unix(0, ts)
	}
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, 0, ErrCorrupt
		}
		k := buf[off]
		off++
		switch k {
		case wireInt, wireFloat:
			if off+8 > len(buf) {
				return nil, 0, ErrCorrupt
			}
			j := t.grow()
			if k == wireInt {
				t.kinds[j] = KindInt
			} else {
				t.kinds[j] = KindFloat
			}
			t.slots[j] = binary.BigEndian.Uint64(buf[off:])
			off += 8
		case wireString:
			s, o, err := readString(buf, off)
			if err != nil {
				return nil, 0, err
			}
			t.AppendStr(s)
			off = o
		case wireBool:
			if off >= len(buf) {
				return nil, 0, ErrCorrupt
			}
			t.AppendBool(buf[off] == 1)
			off++
		case wireSym:
			s, o, err := readString(buf, off)
			if err != nil {
				return nil, 0, err
			}
			t.AppendSym(InternSym(s))
			off = o
		default:
			return nil, 0, ErrCorrupt
		}
	}
	return t, off, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(buf []byte, off int) (string, int, error) {
	if off+4 > len(buf) {
		return "", 0, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if n < 0 || off+n > len(buf) {
		return "", 0, ErrCorrupt
	}
	return string(buf[off : off+n]), off + n, nil
}

// FNV-1a parameters for the inline field hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashString FNV-1a-hashes the bytes of s.
func hashString(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashUint64 FNV-1a-hashes the eight little-endian bytes of u.
func hashUint64(u uint64) uint64 {
	h := fnvOffset64
	for i := 0; i < 8; i++ {
		h ^= (u >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}
