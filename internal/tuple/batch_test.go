package tuple

// Columnar batch coverage: Append/Fits layout adoption, per-row
// accessor and metadata parity with the source tuples, CopyRowTo
// materialization (the engine's row adapter), Key/Hash parity with the
// row-wise path (a key must route identically whether it travels as a
// tuple or a batch row), and the columnar wire codec — random batches
// round-trip through MarshalBatch/UnmarshalBatch deterministically and
// the decoder survives arbitrary bytes.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// mkRow builds a tuple with the batch tests' canonical mixed layout:
// (sym, str, int, float, bool).
func mkRow(i int) *Tuple {
	t := &Tuple{}
	t.AppendSym(InternSym([]string{"alpha", "beta", "gamma"}[i%3]))
	t.AppendStr([]string{"", "one word", "the quick brown fox"}[i%3])
	t.AppendInt(int64(i) - 1)
	t.AppendFloat(float64(i) * 1.5)
	t.AppendBool(i%2 == 0)
	t.Ts = time.Unix(0, int64(1000+i))
	t.Event = int64(100 + i)
	return t
}

func TestBatchAppendAccessors(t *testing.T) {
	b := NewBatch(8)
	rows := make([]*Tuple, 5)
	for i := range rows {
		rows[i] = mkRow(i)
		if !b.Fits(rows[i]) {
			t.Fatalf("row %d does not fit a same-layout batch", i)
		}
		b.Append(rows[i])
	}
	if b.Len() != 5 || b.Cols() != 5 || b.Full() {
		t.Fatalf("Len=%d Cols=%d Full=%v, want 5, 5, false", b.Len(), b.Cols(), b.Full())
	}
	for i, tp := range rows {
		if b.Sym(0, i) != tp.Sym(0) || b.Str(1, i) != tp.Str(1) ||
			b.Int(2, i) != tp.Int(2) || b.Float(3, i) != tp.Float(3) ||
			b.Bool(4, i) != tp.Bool(4) {
			t.Errorf("row %d payload mismatch", i)
		}
		if b.StrLen(1, i) != len(tp.Str(1)) {
			t.Errorf("row %d StrLen = %d, want %d", i, b.StrLen(1, i), len(tp.Str(1)))
		}
		if !b.Ts(i).Equal(tp.Ts) || b.Event(i) != tp.Event {
			t.Errorf("row %d metadata mismatch", i)
		}
	}
	if b.HasTrace() {
		t.Error("HasTrace true with no traced rows")
	}
	traced := mkRow(5)
	traced.TraceID, traced.TraceOrigin = 42, 7
	b.Append(traced)
	if !b.HasTrace() || b.TraceID(5) != 42 || b.TraceOrigin(5) != 7 {
		t.Error("trace lane lost the traced row's context")
	}
}

func TestBatchFitsAndReset(t *testing.T) {
	b := NewBatch(4)
	other := &Tuple{}
	other.AppendInt(1)
	if !b.Fits(other) {
		t.Fatal("empty batch must fit any layout")
	}
	b.Append(mkRow(0))
	if b.Fits(other) {
		t.Error("arity mismatch reported as fitting")
	}
	kindSwap := mkRow(1)
	kindSwap.slots[2], kindSwap.kinds[2] = math.Float64bits(1), KindFloat
	if b.Fits(kindSwap) {
		t.Error("kind mismatch reported as fitting")
	}
	streamSwap := mkRow(1)
	streamSwap.Stream = Intern("batch-other-stream")
	if b.Fits(streamSwap) {
		t.Error("stream mismatch reported as fitting")
	}
	b.Reset()
	if b.Len() != 0 || b.Cols() != 0 || !b.Fits(other) {
		t.Error("Reset did not clear layout for re-adoption")
	}
	b.Append(other)
	if b.Cols() != 1 || b.Int(0, 0) != 1 {
		t.Error("post-Reset append did not adopt the new layout")
	}
}

// TestBatchCopyRowToParity pins the row adapter: a materialized row must
// be bit-identical to the appended source tuple.
func TestBatchCopyRowToParity(t *testing.T) {
	b := NewBatch(8)
	rows := make([]*Tuple, 6)
	for i := range rows {
		rows[i] = mkRow(i)
		if i%2 == 0 {
			rows[i].TraceID = uint64(i + 1)
			rows[i].TraceOrigin = int64(i)
		}
		b.Append(rows[i])
	}
	dst := &Tuple{}
	for i, want := range rows {
		b.CopyRowTo(i, dst)
		if !bitsEqual(dst, want) {
			t.Errorf("row %d: CopyRowTo changed %v -> %v", i, want, dst)
		}
	}
}

// TestBatchAppendRowFromParity pins the batch-to-batch forwarding copy:
// a row carried across by AppendRowFrom must materialize bit-identically
// to a row carried across by Append of its materialized tuple — same
// payload, same metadata lanes, same hasTrace bookkeeping — with the
// destination stream re-stamped, and FitsRowFrom must gate layout
// mismatches exactly like Fits does for tuples.
func TestBatchAppendRowFromParity(t *testing.T) {
	src := NewBatch(8)
	rows := make([]*Tuple, 6)
	for i := range rows {
		rows[i] = mkRow(i)
		if i == 3 {
			rows[i].TraceID = 42
			rows[i].TraceOrigin = 7
		}
		src.Append(rows[i])
	}
	fwd := Intern("forwarded")

	// Reference path: materialize each row, re-stamp, append.
	want := NewBatch(8)
	scratch := &Tuple{}
	for i := range rows {
		src.CopyRowTo(i, scratch)
		scratch.Stream = fwd
		want.Append(scratch)
	}

	got := NewBatch(8)
	for i := range rows {
		if !got.FitsRowFrom(src, fwd) {
			t.Fatalf("row %d: same-layout source reported as not fitting", i)
		}
		got.AppendRowFrom(src, i, fwd)
	}
	if !batchesEqual(got, want) {
		t.Fatal("AppendRowFrom diverged from materialize+Append")
	}
	if !got.HasTrace() {
		t.Error("hasTrace lost across AppendRowFrom")
	}

	// Layout gates: a different stream or different kinds must not fit a
	// non-empty batch, and an empty batch must adopt anything.
	if got.FitsRowFrom(src, Intern("other-stream")) {
		t.Error("FitsRowFrom accepted a stream change")
	}
	narrow := NewBatch(4)
	other := &Tuple{}
	other.AppendInt(1)
	other.Stream = fwd
	narrow.Append(other)
	if narrow.FitsRowFrom(src, fwd) {
		t.Error("FitsRowFrom accepted an arity/kind change")
	}
	empty := NewBatch(4)
	if !empty.FitsRowFrom(src, fwd) {
		t.Error("empty batch must adopt any source layout")
	}
}

// TestBatchKeyHashParity pins routing equivalence: every column of every
// row must group and hash exactly like the tuple field it came from.
func TestBatchKeyHashParity(t *testing.T) {
	b := NewBatch(8)
	rows := make([]*Tuple, 6)
	for i := range rows {
		rows[i] = mkRow(i)
		b.Append(rows[i])
	}
	for i, tp := range rows {
		for c := 0; c < tp.Len(); c++ {
			if b.Hash(c, i) != tp.Hash(c) {
				t.Errorf("row %d col %d: batch hash %x, tuple hash %x", i, c, b.Hash(c, i), tp.Hash(c))
			}
			if b.Key(c, i).Canon() != tp.Key(c).Canon() {
				t.Errorf("row %d col %d: key mismatch", i, c)
			}
		}
	}
}

func TestBatchStampMeta(t *testing.T) {
	b := NewBatch(2)
	src := mkRow(0)
	src.TraceID, src.TraceOrigin = 9, 3
	b.Append(src)
	out := &Tuple{}
	b.StampMeta(0, out)
	if !out.Ts.Equal(src.Ts) || out.Event != src.Event || out.TraceID != 9 || out.TraceOrigin != 3 {
		t.Errorf("StampMeta dropped metadata: %+v", out)
	}
	// An operator-set event time survives stamping.
	out2 := &Tuple{Event: 777}
	b.StampMeta(0, out2)
	if out2.Event != 777 {
		t.Errorf("StampMeta overwrote operator-set event %d", out2.Event)
	}
}

func TestBatchAppendFieldTo(t *testing.T) {
	b := NewBatch(2)
	src := mkRow(2)
	b.Append(src)
	dst := &Tuple{}
	for c := 0; c < src.Len(); c++ {
		b.AppendFieldTo(c, 0, dst)
	}
	dst.Stream, dst.Ts, dst.Event = src.Stream, src.Ts, src.Event
	if !bitsEqual(dst, src) {
		t.Errorf("AppendFieldTo projection changed %v -> %v", src, dst)
	}
}

// batchesEqual compares two batches at the bit level, the columnar
// analogue of bitsEqual.
func batchesEqual(a, b *Batch) bool {
	if a.Stream != b.Stream || a.Len() != b.Len() || a.Cols() != b.Cols() {
		return false
	}
	for c := 0; c < a.Cols(); c++ {
		if a.Kind(c) != b.Kind(c) {
			return false
		}
	}
	for r := 0; r < a.Len(); r++ {
		for c := 0; c < a.Cols(); c++ {
			switch a.Kind(c) {
			case KindStr:
				if a.Str(c, r) != b.Str(c, r) {
					return false
				}
			case KindSym:
				if a.Sym(c, r) != b.Sym(c, r) {
					return false
				}
			default:
				if a.Col(c)[r] != b.Col(c)[r] {
					return false
				}
			}
		}
		if !a.Ts(r).Equal(b.Ts(r)) || a.Event(r) != b.Event(r) ||
			a.TraceID(r) != b.TraceID(r) || a.TraceOrigin(r) != b.TraceOrigin(r) {
			return false
		}
	}
	return true
}

func batchRoundTrip(t *testing.T, orig *Batch) {
	t.Helper()
	buf := MarshalBatch(orig, nil)
	got, n, err := UnmarshalBatch(buf)
	if err != nil {
		t.Fatalf("UnmarshalBatch: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !batchesEqual(orig, got) {
		t.Fatal("round trip changed the batch")
	}
	again := MarshalBatch(got, nil)
	if !bytes.Equal(buf, again) {
		t.Fatalf("re-encoding not byte-identical:\n %x\n %x", buf, again)
	}
}

func TestBatchRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		rows := 1 + r.Intn(64)
		b := NewBatch(rows)
		proto := &Tuple{}
		for n := r.Intn(MaxFields + 1); n > 0; n-- {
			edgeValues[r.Intn(len(edgeValues))](proto)
		}
		if r.Intn(2) == 0 {
			proto.Stream = Intern("batch-rt-stream")
		}
		fill := 1 + r.Intn(rows)
		for i := 0; i < fill; i++ {
			proto.Event = r.Int63() - r.Int63()
			proto.Ts = time.Time{}
			if r.Intn(3) == 0 {
				proto.Ts = time.Unix(0, 1+r.Int63n(1<<50))
			}
			proto.TraceID, proto.TraceOrigin = 0, 0
			if r.Intn(4) == 0 {
				proto.TraceID = r.Uint64()
				proto.TraceOrigin = r.Int63()
			}
			b.Append(proto)
		}
		batchRoundTrip(t, b)
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	batchRoundTrip(t, NewBatch(4))
}

// FuzzBatchRoundTrip feeds arbitrary bytes to the columnar decoder: it
// must never panic, and any accepted frame must re-encode to a frame
// that decodes to the same batch (decode∘encode idempotent).
func FuzzBatchRoundTrip(f *testing.F) {
	seed := NewBatch(4)
	for i := 0; i < 3; i++ {
		seed.Append(mkRow(i))
	}
	f.Add(MarshalBatch(seed, nil))
	f.Add(MarshalBatch(NewBatch(1), nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, _, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		buf := MarshalBatch(b, nil)
		again, _, err := UnmarshalBatch(buf)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !batchesEqual(b, again) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}
