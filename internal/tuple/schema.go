package tuple

import (
	"fmt"
	"strings"
)

// Field declares one schema field: a name (for documentation and
// index lookup) and the kind its slot must hold.
type Field struct {
	Name string
	Kind Kind
}

// Convenience field constructors for schema declarations.
func IntField(name string) Field   { return Field{Name: name, Kind: KindInt} }
func FloatField(name string) Field { return Field{Name: name, Kind: KindFloat} }
func BoolField(name string) Field  { return Field{Name: name, Kind: KindBool} }
func StrField(name string) Field   { return Field{Name: name, Kind: KindStr} }
func SymField(name string) Field   { return Field{Name: name, Kind: KindSym} }

// Schema declares the typed layout of the tuples an operator emits on
// one stream: field names and kinds, fixed at wiring time. The engine
// validates the first tuple of every (task, stream) route against the
// declared schema, so a mis-typed emit fails loudly at its source
// instead of as a kind panic inside a downstream consumer.
//
// Schemas are declarative: tuples do not carry a schema pointer (their
// slots are self-describing), so undeclared streams still flow — a
// schema adds checking and documentation, not a new wire format.
type Schema struct {
	fields []Field
}

// NewSchema builds a schema. It panics on more than MaxFields fields or
// duplicate field names — schemas are wiring-time declarations, where a
// panic is a programming error, not a data-path condition.
func NewSchema(fields ...Field) *Schema {
	if len(fields) > MaxFields {
		panic(fmt.Sprintf("tuple: schema has %d fields (max %d)", len(fields), MaxFields))
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			panic("tuple: schema field with empty name")
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("tuple: duplicate schema field %q", f.Name))
		}
		seen[f.Name] = true
		switch f.Kind {
		case KindInt, KindFloat, KindBool, KindStr, KindSym:
		default:
			panic(fmt.Sprintf("tuple: schema field %q has invalid kind %v", f.Name, f.Kind))
		}
	}
	return &Schema{fields: append([]Field(nil), fields...)}
}

// Arity returns the number of declared fields.
func (s *Schema) Arity() int { return len(s.fields) }

// Field returns the i-th declared field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex returns the slot index of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Check validates a tuple against the schema: the arity must match and
// every slot's kind must equal its declaration. Strings and symbols
// are deliberately NOT interchangeable here: they hash and route
// identically, but grouping keys distinguish the kinds — replicas
// mixing AppendStr and AppendSym on one keyed stream would pass a lax
// check, land on the same consumer, and silently split its keyed state
// into two accumulators per logical key. A declared schema pins the
// representation so that class of bug dies at the first tuple.
func (s *Schema) Check(t *Tuple) error {
	if t.Len() != len(s.fields) {
		return fmt.Errorf("tuple: schema %s expects %d fields, tuple has %d", s, len(s.fields), t.Len())
	}
	for i, f := range s.fields {
		if got := t.kinds[i]; got != f.Kind {
			return fmt.Errorf("tuple: schema %s field %q wants %v, tuple has %v", s, f.Name, f.Kind, got)
		}
	}
	return nil
}

// String formats the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
