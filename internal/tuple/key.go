package tuple

import (
	"cmp"
	"fmt"
	"math"
	"strings"
)

// Key is a typed grouping key extracted from one tuple field: the value
// the window operators and keyed stores index state by. Key is a small
// comparable struct — usable directly as a Go map key — and preserves
// the field's kind, so an int64 key restored from a snapshot equals the
// key a replayed tuple produces (no boxing, no int canonicalization).
//
// Float keys compare and hash by their IEEE-754 bits, so NaN keys are
// well-behaved map keys. A key of kind KindStr taken from a pooled
// tuple borrows the tuple's arena: call Canon before storing it beyond
// the tuple's lifetime. Symbol keys carry only the id and are always
// safe to store.
type Key struct {
	kind Kind
	num  uint64
	str  string
}

// IntKey builds an int64 key.
func IntKey(v int64) Key { return Key{kind: KindInt, num: uint64(v)} }

// FloatKey builds a float64 key (indexed by bits).
func FloatKey(v float64) Key { return Key{kind: KindFloat, num: math.Float64bits(v)} }

// BoolKey builds a boolean key.
func BoolKey(v bool) Key {
	k := Key{kind: KindBool}
	if v {
		k.num = 1
	}
	return k
}

// StrKey builds a string key. The key aliases s; it is stable if s is.
func StrKey(s string) Key { return Key{kind: KindStr, str: s} }

// SymKey builds an interned-symbol key.
func SymKey(s Sym) Key { return Key{kind: KindSym, num: uint64(s)} }

// Kind returns the key's kind (KindNone for the empty key of global,
// unkeyed windows).
func (k Key) Kind() Kind { return k.kind }

// Int returns an int64 key's value.
func (k Key) Int() int64 {
	if k.kind != KindInt {
		panic(fmt.Sprintf("tuple: key is %v, not int64", k.kind))
	}
	return int64(k.num)
}

// Float returns a float64 key's value.
func (k Key) Float() float64 {
	if k.kind != KindFloat {
		panic(fmt.Sprintf("tuple: key is %v, not float64", k.kind))
	}
	return math.Float64frombits(k.num)
}

// Bool returns a boolean key's value.
func (k Key) Bool() bool {
	if k.kind != KindBool {
		panic(fmt.Sprintf("tuple: key is %v, not bool", k.kind))
	}
	return k.num != 0
}

// Str returns a string or symbol key's text.
func (k Key) Str() string {
	switch k.kind {
	case KindStr:
		return k.str
	case KindSym:
		return Sym(k.num).Name()
	default:
		panic(fmt.Sprintf("tuple: key is %v, not string", k.kind))
	}
}

// Sym returns a symbol key's id.
func (k Key) Sym() Sym {
	if k.kind != KindSym {
		panic(fmt.Sprintf("tuple: key is %v, not symbol", k.kind))
	}
	return Sym(k.num)
}

// Canon returns a key safe to store beyond the source tuple's lifetime:
// a string key's arena view is cloned; every other kind is returned
// unchanged (and allocation-free).
func (k Key) Canon() Key {
	if k.kind == KindStr {
		k.str = strings.Clone(k.str)
	}
	return k
}

// Compare orders keys deterministically: by kind first, then by value —
// integers and booleans numerically, floats by numeric order with a
// bit-pattern tiebreak (so -0.0/0.0 and distinct NaN payloads still
// order totally), strings and symbols by their text. The order is
// stable across processes, which is what makes snapshot encodings of
// keyed state byte-stable.
func (k Key) Compare(o Key) int {
	if k.kind != o.kind {
		return cmp.Compare(k.kind, o.kind)
	}
	switch k.kind {
	case KindInt:
		return cmp.Compare(int64(k.num), int64(o.num))
	case KindFloat:
		if d := cmp.Compare(math.Float64frombits(k.num), math.Float64frombits(o.num)); d != 0 {
			return d
		}
		return cmp.Compare(k.num, o.num)
	case KindBool:
		return cmp.Compare(k.num, o.num)
	case KindStr:
		return strings.Compare(k.str, o.str)
	case KindSym:
		return strings.Compare(Sym(k.num).Name(), Sym(o.num).Name())
	default:
		return 0
	}
}

// Hash hashes the key with the same byte encodings as Tuple.Hash, so a
// key routes identically however it was extracted.
func (k Key) Hash() uint64 {
	switch k.kind {
	case KindInt, KindFloat:
		return hashUint64(k.num)
	case KindBool:
		h := fnvOffset64
		if k.num != 0 {
			h ^= 1
		}
		return h * fnvPrime64
	case KindStr:
		return hashString(k.str)
	case KindSym:
		return hashString(Sym(k.num).Name())
	default:
		return fnvOffset64
	}
}

// String formats the key for debugging.
func (k Key) String() string {
	switch k.kind {
	case KindInt:
		return fmt.Sprintf("%d", int64(k.num))
	case KindFloat:
		return fmt.Sprintf("%v", math.Float64frombits(k.num))
	case KindBool:
		return fmt.Sprintf("%t", k.num != 0)
	case KindStr:
		return k.str
	case KindSym:
		return Sym(k.num).Name()
	default:
		return "<nil>"
	}
}
