// Columnar jumbo batches. A Batch is the column-oriented counterpart
// of Jumbo.Tuples: instead of a slice of per-tuple pointers it stores
// the batch's payload as kind-tagged column vectors — one uint64 slot
// lane per field with a fixed stride, a shared byte arena holding every
// string field's bytes as (offset<<32 | length) ranges, and per-row
// metadata lanes (latency timestamp, event time, trace context) that
// replace the per-tuple header fields. Operators that implement the
// engine's BatchOperator interface receive whole batches and iterate
// columns in tight per-kind loops; everything else still sees tuples,
// materialized one row at a time.
//
// A batch's layout (stream, arity, field kinds) is adopted from the
// first tuple appended and stays fixed until Reset; Fits reports
// whether another tuple shares it. Batches are pooled and recycled
// through per-edge free rings exactly like tuples, so the steady-state
// columnar path allocates nothing: Append is a slot store per numeric
// field plus a byte copy per string field into the recycled arena.
//
// Ownership is simpler than for tuples: a batch carries copies, not
// references, so recycling needs no refcount — the consumer resets and
// returns it when done. String values read from a batch (Str, Key with
// a string key) are views into the batch arena, valid only while the
// consumer holds the batch; symbol fields are exempt as always.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
	"unsafe"
)

// Batch is one columnar jumbo batch flowing along a (producer,
// consumer) edge.
type Batch struct {
	// Stream is the interned stream id shared by every row (a batch
	// never mixes streams — the engine flushes on a stream change).
	Stream StreamID

	cols  int
	kinds [MaxFields]Kind
	n     int // filled rows
	rows  int // row capacity; also the column stride in slots

	// slots holds MaxFields column lanes of rows entries each; column c
	// row r lives at slots[c*rows+r]. Allocating all MaxFields lanes up
	// front lets one pooled batch be reused across layouts of any
	// arity without reallocation.
	slots []uint64
	// arena backs every string field of every row, recycled with the
	// batch (capacity kept across Reset).
	arena []byte

	// Per-row metadata lanes, replacing the Tuple header fields.
	ts          []time.Time
	event       []int64
	traceID     []uint64
	traceOrigin []int64
	// hasTrace is set when any appended row carries a trace id, so the
	// engine's per-batch trace check is one boolean load.
	hasTrace bool

	// sel is the reusable selection-vector scratch handed out by
	// SelScratch (owned by whoever holds the batch; kernels fill it
	// with the row indices that survive a filter).
	sel []int32
}

// NewBatch creates an empty batch with capacity for rows rows.
func NewBatch(rows int) *Batch {
	if rows <= 0 {
		rows = 1
	}
	return &Batch{
		rows:        rows,
		slots:       make([]uint64, MaxFields*rows),
		ts:          make([]time.Time, rows),
		event:       make([]int64, rows),
		traceID:     make([]uint64, rows),
		traceOrigin: make([]int64, rows),
	}
}

// Len returns the number of filled rows.
func (b *Batch) Len() int { return b.n }

// Cap returns the row capacity.
func (b *Batch) Cap() int { return b.rows }

// Cols returns the number of columns (0 until the first Append).
func (b *Batch) Cols() int { return b.cols }

// Kind returns the kind of column c.
func (b *Batch) Kind(c int) Kind { return b.kinds[c] }

// Full reports whether the batch is at row capacity.
func (b *Batch) Full() bool { return b.n >= b.rows }

// HasTrace reports whether any row carries a trace id.
func (b *Batch) HasTrace() bool { return b.hasTrace }

// Reset clears the batch for reuse, keeping slot, arena and metadata
// capacity. The next Append adopts a fresh layout.
func (b *Batch) Reset() {
	b.n = 0
	b.cols = 0
	b.Stream = DefaultStreamID
	b.arena = b.arena[:0]
	b.hasTrace = false
}

// Fits reports whether t shares the batch's layout (stream, arity and
// field kinds). An empty batch fits anything — Append adopts.
func (b *Batch) Fits(t *Tuple) bool {
	if b.n == 0 {
		return true
	}
	if t.Stream != b.Stream || int(t.n) != b.cols {
		return false
	}
	for c := 0; c < b.cols; c++ {
		if t.kinds[c] != b.kinds[c] {
			return false
		}
	}
	return true
}

// Append copies one tuple's payload and header metadata into the next
// row. The first append adopts the tuple's layout; callers check Fits
// (and flush on mismatch) before appending to a non-empty batch. The
// batch must not be full.
func (b *Batch) Append(t *Tuple) {
	if b.n == 0 {
		b.Stream = t.Stream
		b.cols = int(t.n)
		b.kinds = t.kinds
	}
	r := b.n
	idx := r
	for c := 0; c < b.cols; c++ {
		if b.kinds[c] == KindStr {
			s := t.strAt(c)
			off := len(b.arena)
			b.arena = append(b.arena, s...)
			b.slots[idx] = uint64(off)<<32 | uint64(len(s))
		} else {
			b.slots[idx] = t.slots[c]
		}
		idx += b.rows
	}
	b.ts[r] = t.Ts
	b.event[r] = t.Event
	b.traceID[r] = t.TraceID
	b.traceOrigin[r] = t.TraceOrigin
	if t.TraceID != 0 {
		b.hasTrace = true
	}
	b.n = r + 1
}

// FitsRowFrom reports whether rows of src, re-stamped onto the given
// stream, share the batch's layout — the batch-to-batch analogue of
// Fits. An empty batch fits anything — AppendRowFrom adopts.
func (b *Batch) FitsRowFrom(src *Batch, stream StreamID) bool {
	if b.n == 0 {
		return true
	}
	if stream != b.Stream || src.cols != b.cols {
		return false
	}
	for c := 0; c < b.cols; c++ {
		if src.kinds[c] != b.kinds[c] {
			return false
		}
	}
	return true
}

// AppendRowFrom copies row r of src (payload and per-row metadata)
// into the next row, re-stamped onto the given stream — a forwarded
// row lands column-to-column without ever materializing a tuple. The
// first append adopts src's layout; callers check FitsRowFrom (and
// flush on mismatch) before appending to a non-empty batch. The batch
// must not be full, and src must not alias b.
func (b *Batch) AppendRowFrom(src *Batch, r int, stream StreamID) {
	if b.n == 0 {
		b.Stream = stream
		b.cols = src.cols
		b.kinds = src.kinds
	}
	row := b.n
	dst, from := row, r
	for c := 0; c < b.cols; c++ {
		if b.kinds[c] == KindStr {
			s := src.strAt(c, r)
			off := len(b.arena)
			b.arena = append(b.arena, s...)
			b.slots[dst] = uint64(off)<<32 | uint64(len(s))
		} else {
			b.slots[dst] = src.slots[from]
		}
		dst += b.rows
		from += src.rows
	}
	b.ts[row] = src.ts[r]
	b.event[row] = src.event[r]
	b.traceID[row] = src.traceID[r]
	b.traceOrigin[row] = src.traceOrigin[r]
	if src.traceID[r] != 0 {
		b.hasTrace = true
	}
	b.n = row + 1
}

// Col returns column c's raw slot lane (length Len). Kernels that have
// checked the kind once can iterate it directly: integer bits, float
// bits, 0/1 booleans, symbol ids, or arena ranges.
func (b *Batch) Col(c int) []uint64 {
	return b.slots[c*b.rows : c*b.rows+b.n]
}

// Int returns column c, row r as an int64.
func (b *Batch) Int(c, r int) int64 {
	if b.kinds[c] != KindInt {
		panic(fmt.Sprintf("tuple: batch column %d is %v, not int64", c, b.kinds[c]))
	}
	return int64(b.slots[c*b.rows+r])
}

// Float returns column c, row r as a float64 (integer columns convert).
func (b *Batch) Float(c, r int) float64 {
	switch b.kinds[c] {
	case KindFloat:
		return math.Float64frombits(b.slots[c*b.rows+r])
	case KindInt:
		return float64(int64(b.slots[c*b.rows+r]))
	default:
		panic(fmt.Sprintf("tuple: batch column %d is %v, not float64", c, b.kinds[c]))
	}
}

// Bool returns column c, row r as a bool.
func (b *Batch) Bool(c, r int) bool {
	if b.kinds[c] != KindBool {
		panic(fmt.Sprintf("tuple: batch column %d is %v, not bool", c, b.kinds[c]))
	}
	return b.slots[c*b.rows+r] != 0
}

// Sym returns column c, row r as an interned symbol.
func (b *Batch) Sym(c, r int) Sym {
	if b.kinds[c] != KindSym {
		panic(fmt.Sprintf("tuple: batch column %d is %v, not symbol", c, b.kinds[c]))
	}
	return Sym(b.slots[c*b.rows+r])
}

// Str returns column c, row r as a string. For a string column the
// result is a view into the batch arena, valid only while the caller
// holds the batch; for a symbol column it is the stable interned name.
func (b *Batch) Str(c, r int) string {
	switch b.kinds[c] {
	case KindStr:
		return b.strAt(c, r)
	case KindSym:
		return Sym(b.slots[c*b.rows+r]).Name()
	default:
		panic(fmt.Sprintf("tuple: batch column %d is %v, not string", c, b.kinds[c]))
	}
}

// StrLen returns the byte length of string column c, row r without
// materializing a string header (the filter kernels' fast path).
func (b *Batch) StrLen(c, r int) int {
	if b.kinds[c] != KindStr {
		panic(fmt.Sprintf("tuple: batch column %d is %v, not string", c, b.kinds[c]))
	}
	return int(b.slots[c*b.rows+r] & 0xffffffff)
}

func (b *Batch) strAt(c, r int) string {
	slot := b.slots[c*b.rows+r]
	off := int(slot >> 32)
	ln := int(slot & 0xffffffff)
	if ln == 0 {
		return ""
	}
	return unsafe.String(&b.arena[off], ln)
}

// Key returns column c, row r as a grouping key. A string column's key
// borrows the arena view — Canon before storing it past the batch.
func (b *Batch) Key(c, r int) Key {
	k := Key{kind: b.kinds[c], num: b.slots[c*b.rows+r]}
	if k.kind == KindStr {
		k.num = 0
		k.str = b.strAt(c, r)
	}
	return k
}

// Hash hashes column c, row r exactly like Tuple.Hash, so a key routes
// identically whether it travels row-wise or columnar.
func (b *Batch) Hash(c, r int) uint64 {
	switch b.kinds[c] {
	case KindInt, KindFloat:
		return hashUint64(b.slots[c*b.rows+r])
	case KindBool:
		h := fnvOffset64
		if b.slots[c*b.rows+r] != 0 {
			h ^= 1
		}
		return h * fnvPrime64
	case KindStr:
		return hashString(b.strAt(c, r))
	case KindSym:
		return hashString(Sym(b.slots[c*b.rows+r]).Name())
	default:
		return fnvOffset64
	}
}

// Ts returns row r's latency timestamp.
func (b *Batch) Ts(r int) time.Time { return b.ts[r] }

// Event returns row r's event timestamp.
func (b *Batch) Event(r int) int64 { return b.event[r] }

// TraceID returns row r's trace id (0: untraced).
func (b *Batch) TraceID(r int) uint64 { return b.traceID[r] }

// TraceOrigin returns row r's trace origin timestamp.
func (b *Batch) TraceOrigin(r int) int64 { return b.traceOrigin[r] }

// StampMeta propagates row r's header metadata onto an output tuple
// the way the engine propagates a scalar input's: the latency
// timestamp and trace context always, the event time only when the
// operator left it unset. Batch operators call it per emitted tuple
// (the ambient collector stamping is bypassed during ProcessBatch —
// it would smear one row's context over the whole batch's outputs).
func (b *Batch) StampMeta(r int, out *Tuple) {
	out.Ts = b.ts[r]
	if out.Event == 0 {
		out.Event = b.event[r]
	}
	out.TraceID = b.traceID[r]
	out.TraceOrigin = b.traceOrigin[r]
}

// CopyRowTo materializes row r into dst: payload (arena strings
// copied), stream and all header metadata. The engine's row adapter
// uses it to feed scalar operators from a columnar edge.
func (b *Batch) CopyRowTo(r int, dst *Tuple) {
	dst.n = uint8(b.cols)
	dst.kinds = b.kinds
	dst.arena = dst.arena[:0]
	for c := 0; c < b.cols; c++ {
		if b.kinds[c] == KindStr {
			s := b.strAt(c, r)
			off := len(dst.arena)
			dst.arena = append(dst.arena, s...)
			dst.slots[c] = uint64(off)<<32 | uint64(len(s))
		} else {
			dst.slots[c] = b.slots[c*b.rows+r]
		}
	}
	dst.Stream = b.Stream
	dst.Ts = b.ts[r]
	dst.Event = b.event[r]
	dst.TraceID = b.traceID[r]
	dst.TraceOrigin = b.traceOrigin[r]
}

// AppendFieldTo appends field (c, r) onto dst with its kind preserved
// (arena copy for strings) — the projection kernels' building block.
func (b *Batch) AppendFieldTo(c, r int, dst *Tuple) {
	switch b.kinds[c] {
	case KindInt:
		dst.AppendInt(int64(b.slots[c*b.rows+r]))
	case KindFloat:
		i := dst.grow()
		dst.kinds[i] = KindFloat
		dst.slots[i] = b.slots[c*b.rows+r]
	case KindBool:
		dst.AppendBool(b.slots[c*b.rows+r] != 0)
	case KindStr:
		dst.AppendStr(b.strAt(c, r))
	case KindSym:
		dst.AppendSym(Sym(b.slots[c*b.rows+r]))
	default:
		panic(fmt.Sprintf("tuple: cannot append %v batch field", b.kinds[c]))
	}
}

// SelScratch returns the batch's reusable selection vector, emptied,
// with capacity for every row. Filter kernels append surviving row
// indices to it; it is owned by whoever holds the batch.
func (b *Batch) SelScratch() []int32 {
	if cap(b.sel) < b.rows {
		b.sel = make([]int32, 0, b.rows)
	}
	return b.sel[:0]
}

// Size estimates the batch's in-memory payload footprint in bytes,
// the columnar counterpart of Tuple.Size summed over rows.
func (b *Batch) Size() int {
	const header = 48
	return header*b.n + 16*b.cols*b.n + len(b.arena)
}

// MarshalBatch serializes the batch into a compact column-major binary
// frame: stream name, row count, per-column kind tags, the metadata
// lanes, then each column's values contiguously. Like Marshal it is
// deterministic and exists for the serialization-emulation and
// diagnostic paths, not the shared-memory hot path.
func MarshalBatch(b *Batch, buf []byte) []byte {
	buf = appendString(buf, b.Stream.String())
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.n))
	buf = binary.BigEndian.AppendUint16(buf, uint16(b.cols))
	for c := 0; c < b.cols; c++ {
		buf = append(buf, byte(b.kinds[c]))
	}
	for r := 0; r < b.n; r++ {
		var ts uint64
		if !b.ts[r].IsZero() {
			ts = uint64(b.ts[r].UnixNano())
		}
		buf = binary.BigEndian.AppendUint64(buf, ts)
	}
	for r := 0; r < b.n; r++ {
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.event[r]))
	}
	for r := 0; r < b.n; r++ {
		buf = binary.BigEndian.AppendUint64(buf, b.traceID[r])
	}
	for r := 0; r < b.n; r++ {
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.traceOrigin[r]))
	}
	for c := 0; c < b.cols; c++ {
		lane := b.slots[c*b.rows : c*b.rows+b.n]
		switch b.kinds[c] {
		case KindInt, KindFloat:
			for _, v := range lane {
				buf = binary.BigEndian.AppendUint64(buf, v)
			}
		case KindBool:
			for _, v := range lane {
				if v != 0 {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case KindStr:
			for r := range lane {
				buf = appendString(buf, b.strAt(c, r))
			}
		case KindSym:
			for _, v := range lane {
				buf = appendString(buf, Sym(v).Name())
			}
		default:
			panic(fmt.Sprintf("tuple: cannot marshal %v batch column", b.kinds[c]))
		}
	}
	return buf
}

// UnmarshalBatch decodes a frame produced by MarshalBatch into a fresh
// batch, returning it with the bytes consumed. Symbol columns are
// re-interned; the decoded batch's row capacity equals its row count.
func UnmarshalBatch(buf []byte) (*Batch, int, error) {
	stream, off, err := readString(buf, 0)
	if err != nil {
		return nil, 0, err
	}
	if off+6 > len(buf) {
		return nil, 0, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	cols := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if cols > MaxFields || n < 0 || n > 1<<24 {
		return nil, 0, ErrCorrupt
	}
	if off+cols > len(buf) {
		return nil, 0, ErrCorrupt
	}
	b := NewBatch(max(n, 1))
	b.Stream = Intern(stream)
	b.cols = cols
	b.n = n
	for c := 0; c < cols; c++ {
		k := Kind(buf[off])
		off++
		switch k {
		case KindInt, KindFloat, KindBool, KindStr, KindSym:
			b.kinds[c] = k
		default:
			return nil, 0, ErrCorrupt
		}
	}
	if off+32*n > len(buf) {
		return nil, 0, ErrCorrupt
	}
	for r := 0; r < n; r++ {
		if ts := int64(binary.BigEndian.Uint64(buf[off:])); ts != 0 {
			b.ts[r] = time.Unix(0, ts)
		}
		off += 8
	}
	for r := 0; r < n; r++ {
		b.event[r] = int64(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	for r := 0; r < n; r++ {
		b.traceID[r] = binary.BigEndian.Uint64(buf[off:])
		if b.traceID[r] != 0 {
			b.hasTrace = true
		}
		off += 8
	}
	for r := 0; r < n; r++ {
		b.traceOrigin[r] = int64(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	for c := 0; c < cols; c++ {
		lane := b.slots[c*b.rows : c*b.rows+n]
		switch b.kinds[c] {
		case KindInt, KindFloat:
			if off+8*n > len(buf) {
				return nil, 0, ErrCorrupt
			}
			for r := range lane {
				lane[r] = binary.BigEndian.Uint64(buf[off:])
				off += 8
			}
		case KindBool:
			if off+n > len(buf) {
				return nil, 0, ErrCorrupt
			}
			for r := range lane {
				if buf[off] == 1 {
					lane[r] = 1
				} else {
					lane[r] = 0
				}
				off++
			}
		case KindStr:
			for r := range lane {
				s, o, err := readString(buf, off)
				if err != nil {
					return nil, 0, err
				}
				aoff := len(b.arena)
				b.arena = append(b.arena, s...)
				lane[r] = uint64(aoff)<<32 | uint64(len(s))
				off = o
			}
		case KindSym:
			for r := range lane {
				s, o, err := readString(buf, off)
				if err != nil {
					return nil, 0, err
				}
				lane[r] = uint64(InternSym(s))
				off = o
			}
		}
	}
	return b, off, nil
}
