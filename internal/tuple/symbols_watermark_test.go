package tuple

import (
	"fmt"
	"testing"
)

func TestSymWatermarkWarnsOnce(t *testing.T) {
	defer SetSymWatermark(0, nil)

	base, baseBytes := SymCount(), SymBytes()
	if baseBytes <= 0 && base > 0 {
		t.Fatalf("SymBytes = %d with %d symbols interned", baseBytes, base)
	}

	var fires int
	var gotCount, gotBytes int
	SetSymWatermark(base+2, func(count, bytes int) {
		fires++
		gotCount, gotBytes = count, bytes
	})

	names := make([]string, 4)
	var want int
	for i := range names {
		names[i] = fmt.Sprintf("wmark-one-%d", i)
		want += len(names[i])
	}
	for _, n := range names {
		InternSym(n)
	}
	if got := SymBytes() - baseBytes; got != want {
		t.Errorf("SymBytes grew by %d, want %d", got, want)
	}
	if fires != 1 {
		t.Fatalf("watermark fired %d times, want exactly 1 (warn-once)", fires)
	}
	if gotCount != base+3 {
		t.Errorf("callback count = %d, want %d (first crossing)", gotCount, base+3)
	}
	if gotBytes <= baseBytes {
		t.Errorf("callback bytes = %d, want > %d", gotBytes, baseBytes)
	}

	// Re-arming resets the fired state; bulk interning fires it too.
	fires = 0
	SetSymWatermark(SymCount(), func(count, bytes int) { fires++ })
	InternSyms("wmark-bulk-a", "wmark-bulk-b")
	InternSym("wmark-seq-c")
	if fires != 1 {
		t.Errorf("re-armed watermark fired %d times, want exactly 1", fires)
	}

	// Disarmed: further growth is silent.
	fires = 0
	SetSymWatermark(0, nil)
	InternSym("wmark-silent")
	if fires != 0 {
		t.Errorf("disarmed watermark fired %d times", fires)
	}

	// Re-interning existing names rebuilds nothing and must not fire,
	// even with the table already past the armed limit.
	SetSymWatermark(SymCount()-1, func(count, bytes int) { fires++ })
	InternSym("wmark-silent")
	InternSyms("wmark-bulk-a")
	if fires != 0 {
		t.Errorf("re-interning existing names fired the watermark %d times", fires)
	}
}
