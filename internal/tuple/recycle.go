package tuple

import (
	"sync/atomic"

	"briskstream/internal/queue"
)

// RecycleRing is the reverse channel of one (producer, consumer) edge:
// tuples the consumer finishes with flow back to the producer's pool
// through a nonblocking SPSC ring instead of sync.Pool, so steady-state
// recycling stays on the producer's socket (the paper's pass-by-
// reference design has the producer own tuple memory; NUMA-local
// recycling is what makes that ownership pay on a multi-socket box).
//
// Strict SPSC discipline: exactly one goroutine (the consuming task)
// may feed a ring via Tuple.ReleaseTo, and exactly one (the producing
// task, inside Pool.Get) may drain it. Releases from any other
// goroutine — retained tuples dropped by side goroutines, teardown
// paths — must use plain Release, which rides the thread-safe
// sync.Pool instead.
type RecycleRing struct {
	pool *Pool
	ring *queue.FreeRing[*Tuple]
}

// NewRecycleRing creates a reverse ring feeding this pool and attaches
// it: subsequent Get calls drain attached rings before falling back to
// sync.Pool. Attachment is not synchronized — wire rings before the
// pool's owning task starts, never mid-run. After attachment, Get must
// only be called from the pool-owning task's goroutine (the engine's
// Borrow/Emit/clone paths already guarantee this).
func (p *Pool) NewRecycleRing(capacity int) *RecycleRing {
	r := &RecycleRing{pool: p, ring: queue.NewFreeRing[*Tuple](capacity)}
	p.rings = append(p.rings, r)
	return r
}

// Len returns the number of tuples parked in the ring.
func (r *RecycleRing) Len() int { return r.ring.Len() }

// Cap returns the ring capacity.
func (r *RecycleRing) Cap() int { return r.ring.Cap() }

// ReleaseTo drops one reference like Release, but when this call frees
// the tuple and the tuple belongs to r's pool, it parks the tuple in
// the reverse ring for the producer to reuse, falling back to the
// shared pool only when the ring is full. A nil ring, or a tuple from
// a different pool (serialize-mode decodes, foreign allocations),
// degrades to plain Release. Must be called from the ring's single
// consumer goroutine.
func (t *Tuple) ReleaseTo(r *RecycleRing) {
	if r == nil || t.pool != r.pool {
		t.Release()
		return
	}
	// Same two-phase refcount as Release: single-holder fast path needs
	// no atomic read-modify-write.
	if atomic.LoadInt32(&t.refs) == 1 {
		atomic.StoreInt32(&t.refs, 0)
	} else if atomic.AddInt32(&t.refs, -1) != 0 {
		return
	}
	t.resetForPool()
	p := t.pool
	t.pool = nil
	if p.stats {
		p.puts.Add(1)
	}
	if !r.ring.TryPut(t) {
		p.p.Put(t)
	}
}
