package tuple

import (
	"math"
	"strings"
	"testing"
	"time"
)

// payloadEqual reports whether two tuples carry the same typed fields.
func payloadEqual(a, b *Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Key(i).Compare(b.Key(i)) != 0 || a.Kind(i) != b.Kind(i) {
			return false
		}
	}
	return true
}

func TestAccessors(t *testing.T) {
	tp := New(int64(7), 3.5, "word", true)
	if tp.Int(0) != 7 {
		t.Errorf("Int(0) = %d", tp.Int(0))
	}
	if tp.Float(1) != 3.5 {
		t.Errorf("Float(1) = %v", tp.Float(1))
	}
	if tp.Str(2) != "word" {
		t.Errorf("Str(2) = %q", tp.Str(2))
	}
	if !tp.Bool(3) {
		t.Errorf("Bool(3) = false")
	}
	if tp.Len() != 4 {
		t.Errorf("Len = %d", tp.Len())
	}
	if tp.Kind(2) != KindStr {
		t.Errorf("Kind(2) = %v", tp.Kind(2))
	}
	// Numeric coercions: plain Go ints normalize to int64, int slots
	// read as floats.
	if New(42).Int(0) != 42 {
		t.Error("int coercion failed")
	}
	if New(int64(2)).Float(0) != 2.0 {
		t.Error("int64->float coercion failed")
	}
}

func TestTypedAppenders(t *testing.T) {
	tp := &Tuple{}
	tp.AppendInt(-9)
	tp.AppendFloat(1.25)
	tp.AppendBool(true)
	tp.AppendStr("arena")
	tp.AppendStrBytes([]byte("bytes"))
	s := InternSym("typed-append-sym")
	tp.AppendSym(s)
	if tp.Int(0) != -9 || tp.Float(1) != 1.25 || !tp.Bool(2) {
		t.Error("numeric slots wrong")
	}
	if tp.Str(3) != "arena" || tp.Str(4) != "bytes" {
		t.Errorf("string slots wrong: %q %q", tp.Str(3), tp.Str(4))
	}
	if tp.Sym(5) != s || tp.Str(5) != "typed-append-sym" {
		t.Error("symbol slot wrong")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong kind")
		}
	}()
	New("nope").Int(0)
}

func TestTooManyFieldsPanics(t *testing.T) {
	tp := &Tuple{}
	for i := 0; i < MaxFields; i++ {
		tp.AppendInt(int64(i))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic past MaxFields")
		}
	}()
	tp.AppendInt(99)
}

func TestResetKeepsArenaCapacity(t *testing.T) {
	tp := &Tuple{}
	tp.AppendStr("a reasonably long payload string")
	capBefore := cap(tp.arena)
	tp.Reset()
	if tp.Len() != 0 {
		t.Error("Reset kept fields")
	}
	tp.AppendStr("short")
	if cap(tp.arena) != capBefore {
		t.Errorf("arena reallocated: %d -> %d", capBefore, cap(tp.arena))
	}
}

func TestOnStream(t *testing.T) {
	tp := OnStream("position_report", int64(1))
	if tp.Stream != Intern("position_report") {
		t.Errorf("stream = %v", tp.Stream)
	}
	if tp.StreamName() != "position_report" {
		t.Errorf("stream name = %q", tp.StreamName())
	}
	if New().Stream != DefaultStreamID {
		t.Error("New should use default stream")
	}
}

func TestStreamInterning(t *testing.T) {
	if Intern(DefaultStream) != DefaultStreamID {
		t.Error("default stream must intern to the zero id")
	}
	a, b := Intern("ts-one"), Intern("ts-two")
	if a == b {
		t.Error("distinct names interned to one id")
	}
	if Intern("ts-one") != a {
		t.Error("interning is not idempotent")
	}
	if a.String() != "ts-one" {
		t.Errorf("name of %v = %q", a, a.String())
	}
	if got, ok := LookupStream("ts-two"); !ok || got != b {
		t.Errorf("LookupStream = %v,%v", got, ok)
	}
	if _, ok := LookupStream("ts-never-registered"); ok {
		t.Error("LookupStream registered a name")
	}
	if s := StreamID(1 << 30).String(); s == "" {
		t.Error("unknown id must still print")
	}
}

func TestSymbolInterning(t *testing.T) {
	a, b := InternSym("sym-one"), InternSym("sym-two")
	if a == b {
		t.Error("distinct names interned to one symbol")
	}
	if InternSym("sym-one") != a {
		t.Error("interning is not idempotent")
	}
	if InternSymBytes([]byte("sym-one")) != a {
		t.Error("InternSymBytes disagrees with InternSym")
	}
	if a.Name() != "sym-one" {
		t.Errorf("Name = %q", a.Name())
	}
	if got, ok := LookupSym("sym-two"); !ok || got != b {
		t.Errorf("LookupSym = %v,%v", got, ok)
	}
	if _, ok := LookupSym("sym-never-registered"); ok {
		t.Error("LookupSym registered a name")
	}
	if SymCount() < 2 {
		t.Errorf("SymCount = %d", SymCount())
	}
	if s := Sym(1 << 30).Name(); s == "" {
		t.Error("unknown symbol must still print")
	}
	// Bulk interning agrees with sequential interning, handles the
	// all-present fast path, and dedups within one batch.
	bulk := InternSyms("sym-one", "sym-bulk-new", "sym-bulk-new", "sym-two")
	if bulk[0] != a || bulk[3] != b {
		t.Error("InternSyms disagrees with InternSym for existing names")
	}
	if bulk[1] != bulk[2] || bulk[1].Name() != "sym-bulk-new" {
		t.Error("InternSyms mishandled a duplicated new name")
	}
	again := InternSyms("sym-one", "sym-bulk-new")
	if again[0] != a || again[1] != bulk[1] {
		t.Error("InternSyms all-present fast path returned wrong symbols")
	}
}

func TestKeyExtractionAndCompare(t *testing.T) {
	sym := InternSym("key-sym")
	tp := New(int64(5), 2.5, true, "text", sym)
	if tp.Key(0) != IntKey(5) {
		t.Error("int key mismatch")
	}
	if tp.Key(1) != FloatKey(2.5) {
		t.Error("float key mismatch")
	}
	if tp.Key(2) != BoolKey(true) {
		t.Error("bool key mismatch")
	}
	if tp.Key(3).Str() != "text" || tp.Key(3).Kind() != KindStr {
		t.Error("string key mismatch")
	}
	if tp.Key(4) != SymKey(sym) || tp.Key(4).Str() != "key-sym" {
		t.Error("symbol key mismatch")
	}
	if IntKey(1).Compare(IntKey(2)) >= 0 || StrKey("a").Compare(StrKey("b")) >= 0 {
		t.Error("compare ordering wrong")
	}
	if IntKey(3).Compare(IntKey(3)) != 0 {
		t.Error("equal keys must compare 0")
	}
	// NaN keys: usable as map keys (bit equality) and totally ordered.
	nan := FloatKey(math.NaN())
	if nan != FloatKey(math.NaN()) {
		t.Error("NaN keys with equal bits must be equal")
	}
	m := map[Key]int{nan: 1}
	if m[FloatKey(math.NaN())] != 1 {
		t.Error("NaN key lookup failed")
	}
}

func TestKeyCanonSurvivesArenaReuse(t *testing.T) {
	tp := &Tuple{}
	tp.AppendStr("first-life")
	borrowed := tp.Key(0)
	owned := borrowed.Canon()
	tp.Reset()
	tp.AppendStr("second-life")
	if owned.Str() != "first-life" {
		t.Errorf("canonical key corrupted by arena reuse: %q", owned.Str())
	}
	// Canon of non-string kinds is the identity.
	if IntKey(7).Canon() != IntKey(7) || SymKey(InternSym("canon-sym")).Canon() != SymKey(InternSym("canon-sym")) {
		t.Error("Canon changed a non-string key")
	}
}

func TestHashMatchesAcrossRepresentations(t *testing.T) {
	// A word routed by fields-grouping must land on the same replica
	// whether it travels as an arena string or as an interned symbol.
	word := "route-me-consistently"
	ts := &Tuple{}
	ts.AppendStr(word)
	tsym := &Tuple{}
	tsym.AppendSym(InternSym(word))
	if ts.Hash(0) != tsym.Hash(0) {
		t.Error("string and symbol hashes differ")
	}
	if ts.Hash(0) != StrKey(word).Hash() || tsym.Hash(0) != SymKey(InternSym(word)).Hash() {
		t.Error("Key.Hash disagrees with Tuple.Hash")
	}
	a, b := &Tuple{}, &Tuple{}
	a.AppendInt(100042)
	b.AppendFloat(2.5)
	if a.Hash(0) == b.Hash(0) {
		t.Error("suspicious hash collision between kinds")
	}
}

func TestStrIsArenaViewSymIsStable(t *testing.T) {
	p := NewPool()
	tp := p.Get()
	tp.AppendStr("view")
	view := tp.Str(0)
	kept := strings.Clone(view)
	tp.Release()
	// The recycled tuple's arena may be overwritten by its next life;
	// the clone must be unaffected.
	tp2 := p.Get()
	tp2.AppendStr("XXXX")
	if kept != "view" {
		t.Errorf("cloned string corrupted: %q", kept)
	}
	tp2.Release()

	sym := InternSym("stable-sym")
	tp3 := p.Get()
	tp3.AppendSym(sym)
	name := tp3.Str(0)
	tp3.Release()
	if name != "stable-sym" {
		t.Errorf("symbol name not stable: %q", name)
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	small := New(int64(1))
	big := New(int64(1), "a sentence with quite a few characters in it")
	if small.Size() >= big.Size() {
		t.Errorf("Size: small %d >= big %d", small.Size(), big.Size())
	}
	if small.Size() <= 0 {
		t.Error("size must be positive")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := New(int64(1), "x")
	c := orig.Clone()
	c.Reset()
	c.AppendInt(99)
	if orig.Int(0) != 1 || orig.Str(1) != "x" {
		t.Error("clone shares payload with original")
	}
	c2 := orig.Clone()
	if c2.Stream != orig.Stream || !c2.Ts.Equal(orig.Ts) {
		t.Error("clone lost metadata")
	}
}

func TestCopyValuesFrom(t *testing.T) {
	src := OnStream("cvf-stream", int64(3), "payload")
	src.Event = 42
	dst := &Tuple{}
	dst.AppendStr("previous life")
	dst.CopyValuesFrom(src)
	if !payloadEqual(dst, src) {
		t.Errorf("payload = %v, want %v", dst, src)
	}
	if dst.Stream == src.Stream || dst.Event == src.Event {
		t.Error("CopyValuesFrom must not copy stream/event metadata")
	}
	dst2 := &Tuple{}
	dst2.CopyFrom(src)
	if !payloadEqual(dst2, src) || dst2.Stream != src.Stream || dst2.Event != src.Event {
		t.Error("CopyFrom must copy payload and metadata")
	}
}

func TestTupleString(t *testing.T) {
	tp := New(int64(1), "two", 2.5, true)
	if got := tp.String(); got != "[1 two 2.5 true]" {
		t.Errorf("String = %q", got)
	}
}

func TestJumbo(t *testing.T) {
	j := &Jumbo{Producer: 3, Consumer: 9, Tuples: []*Tuple{New(int64(1)), New(int64(2))}}
	if j.Len() != 2 {
		t.Errorf("Len = %d", j.Len())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := OnStream("s1", int64(-5), 2.75, "hello", true, false)
	orig.AppendSym(InternSym("rt-sym"))
	orig.Ts = time.Unix(0, 123456789)
	orig.Event = 987654
	buf := Marshal(orig, nil)
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Stream != orig.Stream || !got.Ts.Equal(orig.Ts) || got.Event != orig.Event {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if !payloadEqual(got, orig) {
		t.Errorf("values = %v, want %v", got, orig)
	}
	if got.Sym(5) != orig.Sym(5) {
		t.Error("symbol did not re-intern to the same id")
	}
}

func TestMarshalZeroTimestampStaysZero(t *testing.T) {
	// Regression: tuples without a latency sample (zero Ts) must decode
	// with a zero Ts, not an arbitrary instant derived from
	// time.Time{}.UnixNano().
	orig := New(int64(1))
	got, _, err := Unmarshal(Marshal(orig, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ts.IsZero() {
		t.Errorf("zero timestamp decoded as %v", got.Ts)
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	buf := Marshal(New(int64(1), "abcdef"), nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Unmarshal(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestUnmarshalRejectsGarbageKind(t *testing.T) {
	buf := Marshal(New(int64(1)), nil)
	// Flip the kind byte of the first value to an invalid code. Layout:
	// 4(streamlen)+len("default")+8(ts)+8(event)+8(trace id)+
	// 8(trace origin)+2(count) = kind offset.
	off := 4 + len(DefaultStream) + 8 + 8 + 8 + 8 + 2
	buf[off] = 0xEE
	if _, _, err := Unmarshal(buf); err == nil {
		t.Error("garbage kind accepted")
	}
}

func TestMultipleFramesInOneBuffer(t *testing.T) {
	var buf []byte
	buf = Marshal(New(int64(1)), buf)
	buf = Marshal(New(int64(2)), buf)
	first, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := Unmarshal(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if first.Int(0) != 1 || second.Int(0) != 2 {
		t.Errorf("frames decoded out of order: %v %v", first, second)
	}
}

func TestSchemaCheck(t *testing.T) {
	s := NewSchema(SymField("word"), IntField("count"))
	if s.Arity() != 2 || s.Field(0).Name != "word" || s.FieldIndex("count") != 1 {
		t.Error("schema introspection wrong")
	}
	if s.FieldIndex("missing") != -1 {
		t.Error("FieldIndex of a missing field must be -1")
	}
	ok := &Tuple{}
	ok.AppendSym(InternSym("schema-word"))
	ok.AppendInt(3)
	if err := s.Check(ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	// str and sym are distinct key kinds: a string slot against a
	// declared sym field must fail, or mixed-representation producers
	// would silently split downstream keyed state.
	asStr := &Tuple{}
	asStr.AppendStr("schema-word")
	asStr.AppendInt(3)
	if s.Check(asStr) == nil {
		t.Error("string against sym field accepted; kinds must match exactly")
	}
	short := &Tuple{}
	short.AppendInt(1)
	if s.Check(short) == nil {
		t.Error("arity mismatch accepted")
	}
	wrong := &Tuple{}
	wrong.AppendSym(InternSym("schema-word"))
	wrong.AppendFloat(3)
	if s.Check(wrong) == nil {
		t.Error("kind mismatch accepted")
	}
	if got := s.String(); got != "(word symbol, count int64)" {
		t.Errorf("schema String = %q", got)
	}
}

func TestSchemaDeclarationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"duplicate names": func() { NewSchema(IntField("a"), IntField("a")) },
		"empty name":      func() { NewSchema(IntField("")) },
		"bad kind":        func() { NewSchema(Field{Name: "x", Kind: Kind(99)}) },
		"too many fields": func() {
			fs := make([]Field, MaxFields+1)
			for i := range fs {
				fs[i] = IntField(string(rune('a' + i)))
			}
			NewSchema(fs...)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
