package tuple

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestAccessors(t *testing.T) {
	tp := New(int64(7), 3.5, "word", true)
	if tp.Int(0) != 7 {
		t.Errorf("Int(0) = %d", tp.Int(0))
	}
	if tp.Float(1) != 3.5 {
		t.Errorf("Float(1) = %v", tp.Float(1))
	}
	if tp.String(2) != "word" {
		t.Errorf("String(2) = %q", tp.String(2))
	}
	if !tp.Bool(3) {
		t.Errorf("Bool(3) = false")
	}
	// Numeric coercions.
	if New(42).Int(0) != 42 {
		t.Error("int coercion failed")
	}
	if New(int64(2)).Float(0) != 2.0 {
		t.Error("int64->float coercion failed")
	}
}

func TestAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong type")
		}
	}()
	New("nope").Int(0)
}

func TestOnStream(t *testing.T) {
	tp := OnStream("position_report", int64(1))
	if tp.Stream != Intern("position_report") {
		t.Errorf("stream = %v", tp.Stream)
	}
	if tp.StreamName() != "position_report" {
		t.Errorf("stream name = %q", tp.StreamName())
	}
	if New().Stream != DefaultStreamID {
		t.Error("New should use default stream")
	}
}

func TestStreamInterning(t *testing.T) {
	if Intern(DefaultStream) != DefaultStreamID {
		t.Error("default stream must intern to the zero id")
	}
	a, b := Intern("ts-one"), Intern("ts-two")
	if a == b {
		t.Error("distinct names interned to one id")
	}
	if Intern("ts-one") != a {
		t.Error("interning is not idempotent")
	}
	if a.String() != "ts-one" {
		t.Errorf("name of %v = %q", a, a.String())
	}
	if got, ok := LookupStream("ts-two"); !ok || got != b {
		t.Errorf("LookupStream = %v,%v", got, ok)
	}
	if _, ok := LookupStream("ts-never-registered"); ok {
		t.Error("LookupStream registered a name")
	}
	if s := StreamID(1 << 30).String(); s == "" {
		t.Error("unknown id must still print")
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	small := New(int64(1))
	big := New(int64(1), "a sentence with quite a few characters in it")
	if small.Size() >= big.Size() {
		t.Errorf("Size: small %d >= big %d", small.Size(), big.Size())
	}
	if small.Size() <= 0 {
		t.Error("size must be positive")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := New(int64(1), "x")
	c := orig.Clone()
	c.Values[0] = int64(99)
	if orig.Int(0) != 1 {
		t.Error("clone shares values slice with original")
	}
	if c.Stream != orig.Stream || !c.Ts.Equal(orig.Ts) {
		t.Error("clone lost metadata")
	}
}

func TestJumbo(t *testing.T) {
	j := &Jumbo{Producer: 3, Consumer: 9, Tuples: []*Tuple{New(int64(1)), New(int64(2))}}
	if j.Len() != 2 {
		t.Errorf("Len = %d", j.Len())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := OnStream("s1", int64(-5), 2.75, "hello", true, false)
	orig.Ts = time.Unix(0, 123456789)
	orig.Event = 987654
	buf := Marshal(orig, nil)
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Stream != orig.Stream || !got.Ts.Equal(orig.Ts) || got.Event != orig.Event {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Values, orig.Values) {
		t.Errorf("values = %v, want %v", got.Values, orig.Values)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(a int64, b float64, s string, c bool) bool {
		if math.IsNaN(b) {
			b = 0
		}
		if a == 0 {
			a = 1 // Unix(0,0) is a valid instant but encodes as "no sample"
		}
		orig := New(a, b, s, c)
		orig.Ts = time.Unix(0, a)
		orig.Event = a
		got, _, err := Unmarshal(Marshal(orig, nil))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Values, orig.Values) && got.Ts.Equal(orig.Ts) && got.Event == orig.Event
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalZeroTimestampStaysZero(t *testing.T) {
	// Regression: tuples without a latency sample (zero Ts) must decode
	// with a zero Ts, not an arbitrary instant derived from
	// time.Time{}.UnixNano().
	orig := New(int64(1))
	got, _, err := Unmarshal(Marshal(orig, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ts.IsZero() {
		t.Errorf("zero timestamp decoded as %v", got.Ts)
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	buf := Marshal(New(int64(1), "abcdef"), nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Unmarshal(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestUnmarshalRejectsGarbageKind(t *testing.T) {
	buf := Marshal(New(int64(1)), nil)
	// Flip the kind byte of the first value to an invalid code. Layout:
	// 4(streamlen)+len("default")+8(ts)+8(event)+2(count) = kind offset.
	off := 4 + len(DefaultStream) + 8 + 8 + 2
	buf[off] = 0xEE
	if _, _, err := Unmarshal(buf); err == nil {
		t.Error("garbage kind accepted")
	}
}

func TestMultipleFramesInOneBuffer(t *testing.T) {
	var buf []byte
	buf = Marshal(New(int64(1)), buf)
	buf = Marshal(New(int64(2)), buf)
	first, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := Unmarshal(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if first.Int(0) != 1 || second.Int(0) != 2 {
		t.Errorf("frames decoded out of order: %v %v", first.Values, second.Values)
	}
}
