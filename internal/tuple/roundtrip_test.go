package tuple

// Property and fuzz coverage for the slot-layout binary codec: every
// field kind — including the awkward values (empty strings, max/min
// ints, NaN/Inf floats, negative zero) — must round-trip through
// Marshal/Unmarshal with identical typed fields, and the re-encoding of
// a decoded tuple must be byte-identical (the codec is deterministic,
// which is what lets recovery tests compare outputs as bytes).

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// edgeValues are the adversarial per-kind payloads every round-trip
// sweep must include.
var edgeValues = []func(t *Tuple){
	func(t *Tuple) { t.AppendInt(0) },
	func(t *Tuple) { t.AppendInt(math.MaxInt64) },
	func(t *Tuple) { t.AppendInt(math.MinInt64) },
	func(t *Tuple) { t.AppendInt(-1) },
	func(t *Tuple) { t.AppendFloat(0) },
	func(t *Tuple) { t.AppendFloat(math.Copysign(0, -1)) }, // -0.0
	func(t *Tuple) { t.AppendFloat(math.NaN()) },
	func(t *Tuple) { t.AppendFloat(math.Inf(1)) },
	func(t *Tuple) { t.AppendFloat(math.Inf(-1)) },
	func(t *Tuple) { t.AppendFloat(math.SmallestNonzeroFloat64) },
	func(t *Tuple) { t.AppendBool(true) },
	func(t *Tuple) { t.AppendBool(false) },
	func(t *Tuple) { t.AppendStr("") }, // empty string
	func(t *Tuple) { t.AppendStr("plain") },
	func(t *Tuple) { t.AppendStr("with\x00nul and unicode é世") },
	func(t *Tuple) { t.AppendSym(InternSym("rt-edge-sym")) },
	func(t *Tuple) { t.AppendSym(InternSym("")) }, // empty symbol name
}

// bitsEqual compares payloads at the bit level: NaN floats are equal by
// bit pattern, strings/symbols by text and kind.
func bitsEqual(a, b *Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Kind(i) != b.Kind(i) {
			return false
		}
		switch a.Kind(i) {
		case KindStr, KindSym:
			if a.Str(i) != b.Str(i) {
				return false
			}
		default:
			if a.slots[i] != b.slots[i] {
				return false
			}
		}
	}
	return a.Stream == b.Stream && a.Ts.Equal(b.Ts) && a.Event == b.Event &&
		a.TraceID == b.TraceID && a.TraceOrigin == b.TraceOrigin
}

func roundTrip(t *testing.T, orig *Tuple) {
	t.Helper()
	buf := Marshal(orig, nil)
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", orig, err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes for %v", n, len(buf), orig)
	}
	if !bitsEqual(got, orig) {
		t.Fatalf("round trip changed %v -> %v", orig, got)
	}
	again := Marshal(got, nil)
	if !bytes.Equal(buf, again) {
		t.Fatalf("re-encoding of %v not byte-identical:\n %x\n %x", orig, buf, again)
	}
}

func TestMarshalRoundTripEveryEdgeValue(t *testing.T) {
	// Each edge value alone, so a failure names the culprit.
	for i, add := range edgeValues {
		tp := &Tuple{Event: int64(i)}
		add(tp)
		roundTrip(t, tp)
	}
}

func TestMarshalRoundTripRandomTuples(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 2000; iter++ {
		tp := &Tuple{Event: r.Int63() - r.Int63()}
		if r.Intn(2) == 0 {
			tp.Stream = Intern("rt-rand-stream")
		}
		if r.Intn(3) == 0 {
			tp.Ts = time.Unix(0, 1+r.Int63n(1<<50))
		}
		if r.Intn(4) == 0 {
			tp.TraceID = r.Uint64()
			tp.TraceOrigin = r.Int63()
		}
		for n := r.Intn(MaxFields + 1); n > 0; n-- {
			edgeValues[r.Intn(len(edgeValues))](tp)
		}
		roundTrip(t, tp)
	}
}

// FuzzUnmarshal feeds arbitrary bytes to the decoder: it must never
// panic, and whenever it accepts a frame, re-encoding the decoded tuple
// must round-trip to the same decoded form (decode∘encode idempotent).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(New(int64(1), 2.5, "seed", true), nil))
	full := &Tuple{Event: 7, Ts: time.Unix(0, 99)}
	for _, add := range edgeValues[:8] {
		add(full)
	}
	f.Add(Marshal(full, nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, _, err := Unmarshal(data)
		if err != nil {
			return
		}
		buf := Marshal(tp, nil)
		again, _, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !bitsEqual(tp, again) {
			t.Fatalf("decode/encode not idempotent: %v -> %v", tp, again)
		}
	})
}
