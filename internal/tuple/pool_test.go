package tuple

import (
	"sync"
	"testing"
	"time"
)

func TestPoolGetResetsTuple(t *testing.T) {
	p := NewPool()
	tp := p.Get()
	tp.AppendStr("payload")
	tp.AppendInt(7)
	tp.Stream = Intern("pool-test-stream")
	tp.Ts = time.Now()
	tp.Release()

	got := p.Get()
	if got.Len() != 0 {
		t.Errorf("recycled tuple has %d values", got.Len())
	}
	if got.Stream != DefaultStreamID {
		t.Errorf("recycled tuple stream = %v", got.Stream)
	}
	if !got.Ts.IsZero() {
		t.Errorf("recycled tuple ts = %v", got.Ts)
	}
}

func TestPoolReusesArena(t *testing.T) {
	p := NewPool()
	tp := p.Get()
	tp.AppendStr("a payload long enough to need arena capacity")
	tp.Release()
	// sync.Pool keeps per-P caches; with no GC in between the same
	// tuple comes back with its capacity intact.
	got := p.Get()
	if got != tp {
		t.Skip("pool returned a different tuple (unlucky scheduling); nothing to assert")
	}
	if cap(got.arena) == 0 {
		t.Error("recycled arena lost its capacity")
	}
}

func TestRetainKeepsTupleAlive(t *testing.T) {
	p := NewPool()
	tp := p.Get()
	tp.AppendStr("keep")
	tp.Retain() // second reference

	tp.Release() // engine's reference ends
	if tp.Str(0) != "keep" {
		t.Error("retained tuple was recycled")
	}
	tp.Release() // holder's reference ends; now recycled
}

func TestRetainNMatchesNReleases(t *testing.T) {
	p := NewPool()
	tp := p.Get()
	tp.AppendInt(9)
	tp.RetainN(3) // refs: 1 + 3
	for i := 0; i < 3; i++ {
		tp.Release()
		if tp.Int(0) != 9 {
			t.Fatalf("tuple recycled after %d of 4 releases", i+1)
		}
	}
	tp.Release()
}

func TestNonPooledTupleIgnoresRetainRelease(t *testing.T) {
	tp := New(int64(5))
	tp.Retain()
	tp.Release()
	tp.Release() // extra releases must be harmless no-ops
	if tp.Int(0) != 5 {
		t.Error("non-pooled tuple mutated by Release")
	}
}

func TestCopyFromReusesArena(t *testing.T) {
	p := NewPool()
	src := OnStream("copy-test-stream", "a", int64(1))
	src.Ts = time.Unix(0, 42)
	dst := p.Get()
	dst.AppendStr("warm the destination arena")
	dst.Reset()
	before := cap(dst.arena)
	dst.CopyFrom(src)
	if dst.Str(0) != "a" || dst.Int(1) != 1 {
		t.Errorf("copy lost values: %v", dst)
	}
	if dst.Stream != src.Stream || !dst.Ts.Equal(src.Ts) {
		t.Error("copy lost metadata")
	}
	if cap(dst.arena) != before {
		t.Errorf("CopyFrom reallocated: cap %d -> %d", before, cap(dst.arena))
	}
	// The copy must be deep: refilling the destination leaves the
	// source untouched.
	dst.Reset()
	dst.AppendStr("mutated")
	if src.Str(0) != "a" {
		t.Error("CopyFrom aliased the source arena")
	}
}

// TestPoolConcurrentRecycle hammers one pool from producer and consumer
// goroutines with retains crossing goroutines; run with -race to check
// the reference-counting protocol.
func TestPoolConcurrentRecycle(t *testing.T) {
	p := NewPool()
	const n = 5000
	ch := make(chan *Tuple, 64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer: borrow, fill, retain for the side consumer
		defer wg.Done()
		for i := 0; i < n; i++ {
			tp := p.Get()
			tp.AppendInt(int64(i))
			tp.Retain()
			ch <- tp
			tp.Release() // producer's own reference
		}
		close(ch)
	}()
	var sum int64
	go func() { // consumer: read then drop the retained reference
		defer wg.Done()
		for tp := range ch {
			sum += tp.Int(0)
			tp.Release()
		}
	}()
	wg.Wait()
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d (values clobbered by premature recycle?)", sum, want)
	}
}
