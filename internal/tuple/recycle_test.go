package tuple

import (
	"sync"
	"testing"
)

func TestReleaseToParksInRing(t *testing.T) {
	p := NewPool()
	p.EnableStats()
	r := p.NewRecycleRing(4)

	tp := p.Get()
	tp.AppendInt(7)
	tp.ReleaseTo(r)
	if r.Len() != 1 {
		t.Fatalf("ring len = %d, want 1", r.Len())
	}
	// The producer's next Get drains the ring, not sync.Pool.
	got := p.Get()
	if r.Len() != 0 {
		t.Fatalf("ring len after Get = %d, want 0", r.Len())
	}
	if got != tp {
		t.Fatal("Get did not return the ring-parked tuple")
	}
	if got.Len() != 0 || got.Stream != DefaultStreamID {
		t.Fatal("ring-parked tuple was not reset")
	}
	got.Release()
	if gets, puts := p.Stats(); gets != 2 || puts != 2 {
		t.Fatalf("stats = %d gets / %d puts, want 2/2", gets, puts)
	}
}

func TestReleaseToFullRingFallsBack(t *testing.T) {
	p := NewPool()
	p.EnableStats()
	r := p.NewRecycleRing(1)

	a, b := p.Get(), p.Get()
	a.ReleaseTo(r)
	b.ReleaseTo(r) // ring full: must land in sync.Pool, not leak
	if r.Len() != 1 {
		t.Fatalf("ring len = %d, want 1", r.Len())
	}
	if gets, puts := p.Stats(); gets != 2 || puts != 2 {
		t.Fatalf("stats = %d gets / %d puts, want 2/2", gets, puts)
	}
	// Both are reachable again: one from the ring, one from sync.Pool.
	p.Get()
	p.Get()
}

func TestReleaseToForeignPoolDegradesToRelease(t *testing.T) {
	p1, p2 := NewPool(), NewPool()
	r2 := p2.NewRecycleRing(4)

	tp := p1.Get()
	tp.ReleaseTo(r2) // wrong pool: plain Release semantics
	if r2.Len() != 0 {
		t.Fatalf("foreign tuple parked in ring (len %d)", r2.Len())
	}

	// Non-pooled tuples (e.g. serialize-mode decodes after their pool
	// detached) are a no-op either way.
	var free Tuple
	free.ReleaseTo(r2)
	free.ReleaseTo(nil)
}

func TestReleaseToHonorsRetains(t *testing.T) {
	p := NewPool()
	r := p.NewRecycleRing(4)

	tp := p.Get()
	tp.Retain()
	tp.ReleaseTo(r) // one reference remains
	if r.Len() != 0 {
		t.Fatal("retained tuple was recycled early")
	}
	tp.ReleaseTo(r) // last reference: now it parks
	if r.Len() != 1 {
		t.Fatalf("ring len = %d, want 1", r.Len())
	}
}

// TestRecycleRingSPSCWithSideReleases models the engine's concurrency:
// the consumer goroutine releases into the ring while the producer
// goroutine drains it via Get, and a third goroutine drops retained
// references through the plain (sync.Pool) path. Run under -race.
func TestRecycleRingSPSCWithSideReleases(t *testing.T) {
	const n = 50000
	p := NewPool()
	p.EnableStats()
	r := p.NewRecycleRing(64)

	work := make(chan *Tuple, 64)
	side := make(chan *Tuple, 64)
	var wg sync.WaitGroup
	wg.Add(2)
	// Consumer: releases every tuple into the reverse ring; every 8th is
	// first retained and handed to the side goroutine.
	go func() {
		defer wg.Done()
		i := 0
		for tp := range work {
			if i++; i%8 == 0 {
				tp.Retain()
				side <- tp
			}
			tp.ReleaseTo(r)
		}
		close(side)
	}()
	// Side goroutine: plain Release from a foreign goroutine (the
	// sync.Pool path — never the ring).
	go func() {
		defer wg.Done()
		for tp := range side {
			_ = tp.Int(0)
			tp.Release()
		}
	}()
	// Producer: this goroutine owns Get (the ring's single drainer).
	for i := 0; i < n; i++ {
		tp := p.Get()
		tp.AppendInt(int64(i))
		work <- tp
	}
	close(work)
	wg.Wait()

	gets, puts := p.Stats()
	if gets != n || puts != n {
		t.Fatalf("stats = %d gets / %d puts, want %d/%d", gets, puts, n, n)
	}
}
