// Package profile holds operator specifications — the statistics the
// performance model consumes (Table 1, "operator specific"): average
// execution time per tuple Te, average memory bandwidth consumption per
// tuple M, average input tuple size N, and per-stream selectivity. The
// paper profiles each operator sequentially in isolation with overseer/
// classmexer and feeds the 50th-percentile statistics to the model
// (Section 3.1, "Model instantiation"); Profiler does the same for Go
// operator functions.
package profile

import (
	"fmt"
	"sort"
	"time"
)

// Stats are one operator's model inputs.
type Stats struct {
	// Te is the average execution+emit time per input tuple in
	// frequency-normalized nanoseconds (measured at the reference clock
	// of the machine the statistics were profiled on).
	Te float64
	// M is the average memory traffic per tuple in bytes (drives the
	// local-bandwidth constraint Eq. 4).
	M float64
	// N is the average input tuple size in bytes (drives the remote
	// fetch cost Formula 2 and the QPI constraint Eq. 5).
	N float64
	// Selectivity maps output stream -> average output tuples per input
	// tuple.
	Selectivity map[string]float64
}

// TotalSelectivity sums selectivity across output streams.
func (s Stats) TotalSelectivity() float64 {
	var t float64
	for _, v := range s.Selectivity {
		t += v
	}
	return t
}

// Validate rejects statistics the model cannot use.
func (s Stats) Validate() error {
	if s.Te <= 0 {
		return fmt.Errorf("profile: Te = %v must be positive", s.Te)
	}
	if s.M < 0 || s.N < 0 {
		return fmt.Errorf("profile: negative M or N")
	}
	for stream, sel := range s.Selectivity {
		if sel < 0 {
			return fmt.Errorf("profile: negative selectivity on stream %q", stream)
		}
	}
	return nil
}

// Set maps operator names to their statistics for one application.
type Set map[string]Stats

// Validate checks every entry.
func (s Set) Validate() error {
	for op, st := range s {
		if err := st.Validate(); err != nil {
			return fmt.Errorf("operator %q: %w", op, err)
		}
	}
	return nil
}

// Clone deep-copies the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for op, st := range s {
		sel := make(map[string]float64, len(st.Selectivity))
		for k, v := range st.Selectivity {
			sel[k] = v
		}
		st.Selectivity = sel
		c[op] = st
	}
	return c
}

// Sample is one profiled observation of an operator invocation.
type Sample struct {
	Duration time.Duration // wall time of one invocation
	InBytes  int           // input tuple size
	OutCount int           // tuples emitted
	MemBytes int           // memory traffic attributed to the invocation
}

// Profiler accumulates isolated single-operator measurements and reduces
// them to Stats at a chosen percentile. Profiling runs feed sample input
// from local memory with no co-running operators, mirroring the paper's
// interference-free methodology.
type Profiler struct {
	samples []Sample
}

// Record adds one observation.
func (p *Profiler) Record(s Sample) { p.samples = append(p.samples, s) }

// Count returns the number of recorded samples.
func (p *Profiler) Count() int { return len(p.samples) }

// Durations returns all recorded invocation durations in nanoseconds,
// for CDF rendering (Figure 3).
func (p *Profiler) Durations() []float64 {
	out := make([]float64, len(p.samples))
	for i, s := range p.samples {
		out[i] = float64(s.Duration.Nanoseconds())
	}
	return out
}

// Reduce computes Stats at the given percentile (0 < pct <= 1) of the
// execution-time distribution; the paper uses the 50th percentile. M and
// N are averaged; selectivity is total emitted / total consumed on the
// default stream unless the caller overrides it afterwards.
func (p *Profiler) Reduce(pct float64) (Stats, error) {
	if len(p.samples) == 0 {
		return Stats{}, fmt.Errorf("profile: no samples")
	}
	if pct <= 0 || pct > 1 {
		return Stats{}, fmt.Errorf("profile: percentile %v out of (0,1]", pct)
	}
	durs := make([]float64, len(p.samples))
	var sumIn, sumMem, sumOut float64
	for i, s := range p.samples {
		durs[i] = float64(s.Duration.Nanoseconds())
		sumIn += float64(s.InBytes)
		sumMem += float64(s.MemBytes)
		sumOut += float64(s.OutCount)
	}
	sort.Float64s(durs)
	idx := int(pct*float64(len(durs))) - 1
	if idx < 0 {
		idx = 0
	}
	n := float64(len(p.samples))
	te := durs[idx]
	if te <= 0 {
		te = 1 // clamp: zero-duration samples happen below timer resolution
	}
	return Stats{
		Te:          te,
		M:           sumMem / n,
		N:           sumIn / n,
		Selectivity: map[string]float64{"default": sumOut / n},
	}, nil
}
