package profile

import (
	"testing"
	"time"
)

func TestStatsValidate(t *testing.T) {
	good := Stats{Te: 100, M: 50, N: 64, Selectivity: map[string]float64{"default": 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Stats{
		{Te: 0},
		{Te: -1},
		{Te: 1, M: -5},
		{Te: 1, N: -5},
		{Te: 1, Selectivity: map[string]float64{"default": -0.5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad stats %d accepted", i)
		}
	}
}

func TestSetValidateAndClone(t *testing.T) {
	s := Set{
		"parser":   {Te: 100, N: 64, Selectivity: map[string]float64{"default": 1}},
		"splitter": {Te: 1612, N: 100, Selectivity: map[string]float64{"default": 10}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c["parser"].Selectivity["default"] = 99
	if s["parser"].Selectivity["default"] != 1 {
		t.Error("Clone shares selectivity maps")
	}
	s["bad"] = Stats{Te: -1}
	if err := s.Validate(); err == nil {
		t.Error("set with bad entry accepted")
	}
}

func TestTotalSelectivity(t *testing.T) {
	s := Stats{Selectivity: map[string]float64{"a": 0.5, "b": 1.5}}
	if got := s.TotalSelectivity(); got != 2 {
		t.Errorf("TotalSelectivity = %v", got)
	}
}

func TestProfilerReduce(t *testing.T) {
	var p Profiler
	// 100 samples: durations 1..100us, each consuming 64 bytes,
	// emitting 10 tuples, touching 128 bytes.
	for i := 1; i <= 100; i++ {
		p.Record(Sample{
			Duration: time.Duration(i) * time.Microsecond,
			InBytes:  64, OutCount: 10, MemBytes: 128,
		})
	}
	if p.Count() != 100 {
		t.Fatalf("Count = %d", p.Count())
	}
	st, err := p.Reduce(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Te != 50_000 { // 50th percentile of 1..100us in ns
		t.Errorf("Te = %v, want 50000", st.Te)
	}
	if st.N != 64 || st.M != 128 {
		t.Errorf("N,M = %v,%v", st.N, st.M)
	}
	if st.Selectivity["default"] != 10 {
		t.Errorf("selectivity = %v", st.Selectivity["default"])
	}
	// Higher percentile -> less optimistic (larger Te).
	st90, _ := p.Reduce(0.9)
	if st90.Te <= st.Te {
		t.Errorf("p90 Te %v should exceed p50 Te %v", st90.Te, st.Te)
	}
}

func TestProfilerReduceErrors(t *testing.T) {
	var p Profiler
	if _, err := p.Reduce(0.5); err == nil {
		t.Error("empty profiler accepted")
	}
	p.Record(Sample{Duration: time.Microsecond})
	if _, err := p.Reduce(0); err == nil {
		t.Error("pct 0 accepted")
	}
	if _, err := p.Reduce(1.5); err == nil {
		t.Error("pct > 1 accepted")
	}
}

func TestProfilerZeroDurationClamped(t *testing.T) {
	var p Profiler
	p.Record(Sample{Duration: 0, InBytes: 10})
	st, err := p.Reduce(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Te <= 0 {
		t.Errorf("Te = %v, want clamped positive", st.Te)
	}
}

func TestDurations(t *testing.T) {
	var p Profiler
	p.Record(Sample{Duration: 5 * time.Nanosecond})
	p.Record(Sample{Duration: 7 * time.Nanosecond})
	d := p.Durations()
	if len(d) != 2 || d[0] != 5 || d[1] != 7 {
		t.Errorf("Durations = %v", d)
	}
}
