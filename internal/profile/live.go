package profile

import (
	"fmt"
	"time"
)

// Live profiling: the bridge from a running engine to the statistics
// the performance model consumes. The engine samples per-task service
// time, input bytes, and output counts while it runs (every k-th tuple,
// k = Config.ProfileSampleEvery) and exposes the cumulative counters as
// an EngineSnapshot; FromEngine differences two snapshots into a
// profile.Set, replacing the paper's offline overseer/classmexer pass
// with an online one. Unlike offline profiling the live numbers include
// co-runner interference, so they shift the model's inputs toward the
// currently observed regime — exactly what the adaptive re-optimization
// loop wants.

// TaskSnapshot is one task's cumulative profiling counters at a point
// in time. All counters are monotone across one Run; rates come from
// differencing two snapshots.
type TaskSnapshot struct {
	// Op and Replica identify the task ("op#replica").
	Op      string
	Replica int
	// Processed counts input tuples consumed (spouts: tuples emitted).
	Processed uint64
	// Emitted counts output tuples produced downstream.
	Emitted uint64
	// ServiceNs is total sampled service time in nanoseconds across
	// ServiceSamples sampled invocations.
	ServiceNs      uint64
	ServiceSamples uint64
	// InBytes is total sampled input tuple bytes across ServiceSamples
	// sampled invocations.
	InBytes uint64
	// QueueDepth is the task inbox's live depth (0 for spouts).
	QueueDepth int
	// QueueWaitNs is the cumulative time (ns) the task's input spent
	// waiting in its communication queue, weighted per tuple (each
	// dequeued jumbo's wait counted once per tuple it carries) across
	// QueueWaitBatch covered tuples — the queueing half of the latency
	// decomposition, comparable across batch sizes and between the
	// row-wise and columnar paths.
	QueueWaitNs    uint64
	QueueWaitBatch uint64
}

// Label renders the engine task label.
func (t TaskSnapshot) Label() string { return fmt.Sprintf("%s#%d", t.Op, t.Replica) }

// EngineSnapshot is a point-in-time profile of every task in a running
// engine.
type EngineSnapshot struct {
	At    time.Time
	Tasks []TaskSnapshot
}

// OpTotals sums the per-task counters of one snapshot by operator.
type OpTotals struct {
	Processed      uint64
	Emitted        uint64
	ServiceNs      uint64
	ServiceSamples uint64
	InBytes        uint64
	QueueWaitNs    uint64
	QueueWaitBatch uint64
	QueueDepth     int
	Replicas       int
}

// ByOp aggregates the snapshot per operator.
func (s EngineSnapshot) ByOp() map[string]OpTotals {
	out := make(map[string]OpTotals)
	for _, t := range s.Tasks {
		o := out[t.Op]
		o.Processed += t.Processed
		o.Emitted += t.Emitted
		o.ServiceNs += t.ServiceNs
		o.ServiceSamples += t.ServiceSamples
		o.InBytes += t.InBytes
		o.QueueWaitNs += t.QueueWaitNs
		o.QueueWaitBatch += t.QueueWaitBatch
		o.QueueDepth += t.QueueDepth
		o.Replicas++
		out[t.Op] = o
	}
	return out
}

// FromEngine reduces the counter deltas between two engine snapshots of
// the same run into a Set the model can consume. base supplies the
// stream structure (which output streams an operator feeds and their
// relative weights) and the fallback statistics for operators that saw
// no traffic in the interval; measured Te, N, and total selectivity
// override the base values, with the measured total selectivity
// redistributed over the base per-stream proportions. M (memory traffic
// per tuple) is not observable from the engine's counters and is always
// carried over from base.
func FromEngine(base Set, prev, cur EngineSnapshot) (Set, error) {
	if base == nil {
		return nil, fmt.Errorf("profile: FromEngine requires a base Set")
	}
	out := base.Clone()
	pOps := prev.ByOp()
	for op, c := range cur.ByOp() {
		st, ok := out[op]
		if !ok {
			continue
		}
		p := pOps[op]
		if c.Processed < p.Processed || c.ServiceSamples < p.ServiceSamples {
			return nil, fmt.Errorf("profile: operator %q counters went backwards (snapshots from different runs?)", op)
		}
		dSamples := c.ServiceSamples - p.ServiceSamples
		if dSamples > 0 {
			if te := float64(c.ServiceNs-p.ServiceNs) / float64(dSamples); te > 0 {
				st.Te = te
			}
			st.N = float64(c.InBytes-p.InBytes) / float64(dSamples)
		}
		if dIn := c.Processed - p.Processed; dIn > 0 && len(st.Selectivity) > 0 {
			measured := float64(c.Emitted-p.Emitted) / float64(dIn)
			baseTotal := st.TotalSelectivity()
			sel := make(map[string]float64, len(st.Selectivity))
			for stream, v := range st.Selectivity {
				if baseTotal > 0 {
					sel[stream] = measured * v / baseTotal
				} else {
					sel[stream] = measured / float64(len(st.Selectivity))
				}
			}
			st.Selectivity = sel
		}
		out[op] = st
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Rate returns an operator's processing rate (input tuples/sec) between
// two snapshots, or 0 when the interval is degenerate.
func Rate(prev, cur EngineSnapshot, op string) float64 {
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return 0
	}
	c, p := cur.ByOp()[op], prev.ByOp()[op]
	if c.Processed <= p.Processed {
		return 0
	}
	return float64(c.Processed-p.Processed) / dt
}
