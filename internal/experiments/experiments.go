// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a function returning a
// Report whose rows mirror the rows/series of the corresponding paper
// artifact; cmd/briskbench prints them and bench_test.go wraps them as
// benchmarks. A shared Context caches RLAS optimization results so the
// expensive plans are computed once per process.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/metrics"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/rlas"
	"briskstream/internal/sim"
)

// Report is one regenerated paper artifact.
type Report struct {
	// ID is the experiment identifier, e.g. "table4" or "fig9a".
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// Header and Rows form the table/series data.
	Header []string
	Rows   [][]string
	// Notes records caveats (substitutions, scale differences).
	Notes string
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", r.ID, r.Title)
	b.WriteString(metrics.Table(r.Header, r.Rows))
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

// Context carries tuning knobs and caches shared across experiments.
type Context struct {
	// Quick reduces fidelity (fewer optimizer iterations, shorter
	// simulations) so the full suite runs in CI time. Reports keep their
	// shape; absolute numbers move slightly.
	Quick bool

	mu    sync.Mutex
	plans map[string]*rlas.Result
}

// NewContext returns an empty context.
func NewContext() *Context { return &Context{plans: map[string]*rlas.Result{}} }

// optCfg returns the RLAS configuration for the context's fidelity.
func (c *Context) optCfg(a *apps.App, m *numa.Machine, policy model.TfPolicy) rlas.Config {
	seed, _ := rlas.SeedReplication(a.Graph, a.Stats, m.TotalCores(), 0.7)
	cfg := rlas.Config{
		Model:    &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated, Policy: policy},
		Compress: 5,
		BnB:      bnb.Config{NodeLimit: 1500},
		Initial:  seed,
	}
	if c.Quick {
		cfg.BnB.NodeLimit = 400
		cfg.MaxIterations = 8
	} else {
		cfg.MaxIterations = 40
	}
	return cfg
}

// Optimized returns the cached RLAS plan of app a on machine m under the
// given Tf policy.
func (c *Context) Optimized(a *apps.App, m *numa.Machine, policy model.TfPolicy) (*rlas.Result, error) {
	key := fmt.Sprintf("%s|%s|%d|%d|%v", a.Name, m.Name, m.Sockets, m.CoresPerSocket, policy)
	c.mu.Lock()
	if r, ok := c.plans[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	cfg := c.optCfg(a, m, policy)
	r, err := rlas.Optimize(a.Graph, cfg)
	if err == bnb.ErrNoFeasiblePlacement {
		// The machine cannot host the saturated application (a spout
		// running at capacity already exceeds the core budget on small
		// machines). Back off the offered ingress toward the analytic
		// Imax, emulating the back-pressure stabilized operating point.
		for _, fill := range []float64{0.9, 0.75, 0.6, 0.45, 0.3} {
			imax, ierr := rlas.EstimateMaxIngress(a.Graph, a.Stats, m.TotalCores(), fill)
			if ierr != nil {
				return nil, ierr
			}
			cfg := c.optCfg(a, m, policy)
			cfg.Model.Ingress = imax
			r, err = rlas.Optimize(a.Graph, cfg)
			if err == nil {
				break
			}
			if err != bnb.ErrNoFeasiblePlacement {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, m.Name, err)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, m.Name, err)
	}
	c.mu.Lock()
	c.plans[key] = r
	c.mu.Unlock()
	return r, nil
}

// simCfg returns the simulator configuration for the context fidelity.
func (c *Context) simCfg(m *numa.Machine, a *apps.App) *sim.Config {
	cfg := &sim.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated}
	if c.Quick {
		cfg.Duration = 0.5
	}
	return cfg
}

// Simulate runs the fluid simulator on an optimized plan.
func (c *Context) Simulate(a *apps.App, m *numa.Machine, r *rlas.Result) (*sim.Result, error) {
	return sim.Run(r.Graph, r.Placement, c.simCfg(m, a))
}

type entry struct {
	id, title string
	run       func(*Context) (*Report, error)
}

var registry []entry

func register(id, title string, run func(*Context) (*Report, error)) {
	registry = append(registry, entry{id, title, run})
}

// paperOrder is the order the artifacts appear in the paper.
var paperOrder = []string{
	"table2", "fig3", "table3", "table4",
	"fig6", "fig7", "table5", "fig8", "fig9a", "fig9b", "fig10", "fig11",
	"fig12", "fig13", "fig14", "fig15", "table7", "fig16",
}

// IDs lists all experiment identifiers in paper order (experiments
// registered outside the canonical list are appended at the end).
func IDs() []string {
	known := map[string]bool{}
	var out []string
	for _, id := range paperOrder {
		for _, e := range registry {
			if e.id == id {
				out = append(out, id)
				known[id] = true
			}
		}
	}
	for _, e := range registry {
		if !known[e.id] {
			out = append(out, e.id)
		}
	}
	return out
}

// Title returns the title of an experiment id ("" if unknown).
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string, ctx *Context) (*Report, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(ctx)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
}

// fmtK formats tuples/sec as the paper's "K events/s" with one decimal.
func fmtK(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

// fmtF formats a plain float with the given decimals.
func fmtF(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }
