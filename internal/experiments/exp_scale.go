package experiments

import (
	"fmt"

	"briskstream/internal/apps"
	"briskstream/internal/baseline"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/sim"
)

func init() {
	register("fig9a", "Scalability of different systems on LR with varying CPU sockets (Figure 9a)", fig9a)
	register("fig9b", "Scalability of BriskStream across applications (Figure 9b)", fig9b)
	register("fig10", "Gaps to ideal performance on 8 sockets (Figure 10)", fig10)
	register("fig11", "Comparing with StreamBox on WC at varying core counts (Figure 11)", fig11)
}

// socketCounts are the x-axis of Figure 9.
var socketCounts = []int{1, 2, 4, 8}

// fig9a compares BriskStream, Storm and Flink on LR as sockets grow.
func fig9a(ctx *Context) (*Report, error) {
	a := apps.ByName("LR")
	full := numa.ServerA()
	rows := [][]string{}
	for _, n := range socketCounts {
		m, err := full.Restrict(n)
		if err != nil {
			return nil, err
		}
		r, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		brisk, err := ctx.Simulate(a, m, r)
		if err != nil {
			return nil, err
		}
		storm, err := baseline.Storm().Measure(a.Graph, a.Stats, m, model.Saturated, nil)
		if err != nil {
			return nil, err
		}
		flink, err := baseline.Flink().Measure(a.Graph, a.Stats, m, model.Saturated, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprint(n), fmtK(brisk.Throughput), fmtK(storm.Throughput), fmtK(flink.Throughput),
		})
	}
	return &Report{
		ID: "fig9a", Title: Title("fig9a"),
		Header: []string{"sockets", "brisk (K/s)", "storm (K/s)", "flink (K/s)"},
		Rows:   rows,
		Notes:  "shape target: BriskStream grows with sockets; Storm/Flink stay nearly flat.",
	}, nil
}

// fig9b reports BriskStream throughput of every app at 1/2/4/8 sockets,
// normalized to the single-socket value.
func fig9b(ctx *Context) (*Report, error) {
	full := numa.ServerA()
	rows := [][]string{}
	for _, a := range apps.All() {
		var base float64
		row := []string{a.Name}
		for _, n := range socketCounts {
			m, err := full.Restrict(n)
			if err != nil {
				return nil, err
			}
			r, err := ctx.Optimized(a, m, model.TfByPlacement)
			if err != nil {
				return nil, err
			}
			sr, err := ctx.Simulate(a, m, r)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base = sr.Throughput
			}
			row = append(row, fmtF(sr.Throughput/base*100, 0)+"%")
		}
		rows = append(rows, row)
	}
	return &Report{
		ID: "fig9b", Title: Title("fig9b"),
		Header: []string{"app", "1 socket", "2 sockets", "4 sockets", "8 sockets"},
		Rows:   rows,
		Notes: "shape target: near-linear scaling to 4 sockets, a knee beyond 4 when plans must " +
			"cross the tray boundary (RMA latency roughly doubles).",
	}, nil
}

// fig10 compares measured 8-socket throughput against (a) the same plan
// with RMA cost substituted to zero and (b) ideal linear scaling of the
// single-socket result.
func fig10(ctx *Context) (*Report, error) {
	full := numa.ServerA()
	one, err := full.Restrict(1)
	if err != nil {
		return nil, err
	}
	rows := [][]string{}
	for _, a := range apps.All() {
		r8, err := ctx.Optimized(a, full, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		measured, err := ctx.Simulate(a, full, r8)
		if err != nil {
			return nil, err
		}
		// W/o RMA: same plan, fetch cost zeroed (simulate with RMAScale=0).
		cfg := ctx.simCfg(full, a)
		cfg.Overhead = sim.Overhead{ExecScale: 1, RMAScale: 1e-12, Prefetch: false}
		noRMA, err := sim.Run(r8.Graph, r8.Placement, cfg)
		if err != nil {
			return nil, err
		}
		r1, err := ctx.Optimized(a, one, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		s1, err := ctx.Simulate(a, one, r1)
		if err != nil {
			return nil, err
		}
		ideal := s1.Throughput * 8
		rows = append(rows, []string{
			a.Name, fmtK(measured.Throughput), fmtK(noRMA.Throughput), fmtK(ideal),
			fmtF(noRMA.Throughput/ideal*100, 0) + "%",
		})
	}
	return &Report{
		ID: "fig10", Title: Title("fig10"),
		Header: []string{"app", "measured (K/s)", "w/o rma (K/s)", "ideal (K/s)", "w/o rma vs ideal"},
		Rows:   rows,
		Notes: "shape target: removing RMA recovers most of the gap to ideal (the paper reports " +
			"89-95%), confirming RMA growth as the main scalability limiter.",
	}, nil
}

// fig11 compares BriskStream with StreamBox (ordered and out-of-order)
// on WC as core counts grow: 2..32 cores on one socket, then 72 (4
// sockets) and 144 (8 sockets) as in the paper.
func fig11(ctx *Context) (*Report, error) {
	a := apps.ByName("WC")
	rows := [][]string{}
	type point struct {
		cores   int
		machine *numa.Machine
	}
	var points []point
	for _, c := range []int{2, 4, 8, 16} {
		points = append(points, point{c, numa.Synthetic(fmt.Sprintf("1soc-%dcores", c), 1, c,
			50, 307.7, 548.0, 54.3*numa.GB, 13.2*numa.GB, 5.8*numa.GB)})
	}
	full := numa.ServerA()
	m2, _ := full.Restrict(2)
	m4, _ := full.Restrict(4)
	points = append(points, point{36, m2}, point{72, m4}, point{144, full})

	for _, p := range points {
		r, err := ctx.Optimized(a, p.machine, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		brisk, err := ctx.Simulate(a, p.machine, r)
		if err != nil {
			return nil, err
		}
		morsel := baseline.MorselReplication(a.Graph, p.machine)
		sbo, err := baseline.StreamBox().Measure(a.Graph, a.Stats, p.machine, model.Saturated, morsel)
		if err != nil {
			return nil, err
		}
		sboo, err := baseline.StreamBoxOutOfOrder().Measure(a.Graph, a.Stats, p.machine, model.Saturated, morsel)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprint(p.cores), fmtK(brisk.Throughput), fmtK(sbo.Throughput), fmtK(sboo.Throughput),
		})
	}
	return &Report{
		ID: "fig11", Title: Title("fig11"),
		Header: []string{"cores", "brisk (K/s)", "streambox (K/s)", "streambox-ooo (K/s)"},
		Rows:   rows,
		Notes: "shape target: StreamBox competitive at small core counts, flattening as the " +
			"centralized scheduler and shuffle RMA dominate; BriskStream keeps scaling.",
	}, nil
}
