package experiments

import (
	"fmt"
	"math/rand"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/metrics"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/placement"
	"briskstream/internal/plan"
	"briskstream/internal/rlas"
	"briskstream/internal/sim"
)

func init() {
	register("fig12", "RLAS with and without considering varying RMA cost (Figure 12)", fig12)
	register("fig13", "Placement strategy comparison under the same replication (Figure 13)", fig13)
	register("fig14", "CDF of random plans vs RLAS (Figure 14)", fig14)
	register("fig15", "Communication pattern matrices of WC on two servers (Figure 15)", fig15)
	register("table7", "Runtime of the optimization process vs compress ratio (Table 7)", table7)
}

// fig12 optimizes each application under the two fixed-capability
// ablations — RLAS_fix(L) pessimistically charges worst-case RMA
// everywhere, RLAS_fix(U) ignores RMA — and measures the resulting plans
// under the real simulator.
func fig12(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	rows := [][]string{}
	for _, a := range apps.All() {
		real, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		realSim, err := ctx.Simulate(a, m, real)
		if err != nil {
			return nil, err
		}
		row := []string{a.Name, fmtK(realSim.Throughput)}
		for _, pol := range []model.TfPolicy{model.TfWorstCase, model.TfZero} {
			fixed, err := ctx.Optimized(a, m, pol)
			if err != nil {
				return nil, err
			}
			// Measure the fixed-assumption plan under the real simulator.
			sr, err := ctx.Simulate(a, m, fixed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtK(sr.Throughput))
		}
		rows = append(rows, row)
	}
	return &Report{
		ID: "fig12", Title: Title("fig12"),
		Header: []string{"app", "RLAS (K/s)", "RLAS_fix(L) (K/s)", "RLAS_fix(U) (K/s)"},
		Rows:   rows,
		Notes: "shape target: fix(L) over-estimates demand and under-replicates; fix(U) " +
			"under-estimates demand and oversubscribes; RLAS beats both.",
	}, nil
}

// fig13 fixes the replication configuration to the RLAS optimum and
// swaps only the placement strategy (OS / FF / RR), on both servers,
// reporting throughput normalized to RLAS.
func fig13(ctx *Context) (*Report, error) {
	rows := [][]string{}
	for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
		for _, a := range apps.All() {
			r, err := ctx.Optimized(a, m, model.TfByPlacement)
			if err != nil {
				return nil, err
			}
			rlasSim, err := ctx.Simulate(a, m, r)
			if err != nil {
				return nil, err
			}
			mcfg := &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated}
			eg := r.Graph

			osP := placement.OS(eg, m)
			rrP := placement.RR(eg, m)
			ffP, err := placement.FF(eg, mcfg)
			if err != nil {
				return nil, err
			}
			row := []string{m.Name, a.Name}
			for _, p := range []*plan.Placement{osP, ffP, rrP} {
				sr, err := sim.Run(eg, p, ctx.simCfg(m, a))
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(sr.Throughput/rlasSim.Throughput, 2))
			}
			rows = append(rows, row)
		}
	}
	return &Report{
		ID: "fig13", Title: Title("fig13"),
		Header: []string{"machine", "app", "OS/RLAS", "FF/RLAS", "RR/RLAS"},
		Rows:   rows,
		Notes:  "values < 1 mean RLAS wins; the paper reports all three heuristics losing on both servers.",
	}, nil
}

// fig14 generates random execution plans (random replication growth to
// the scaling limit, then random placement) and reports the CDF of their
// throughput against the RLAS plan, per application.
func fig14(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	nPlans := 1000
	if ctx.Quick {
		nPlans = 60
	}
	rng := rand.New(rand.NewSource(2019))
	rows := [][]string{}
	for _, a := range apps.All() {
		r, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		mcfg := &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated}

		var values []float64
		beatRLAS := 0
		for i := 0; i < nPlans; i++ {
			repl := randomReplication(rng, a, m.TotalCores())
			eg, err := plan.Build(a.Graph, repl, 5)
			if err != nil {
				return nil, err
			}
			p := placement.Random(eg, m, rng)
			// Model evaluation (contention-free rates) keeps 4x1000
			// plans tractable; random plans overwhelmingly violate
			// constraints, exactly like the paper's Monte-Carlo runs.
			ev, err := model.Evaluate(eg, p, mcfg, model.Options{})
			if err != nil {
				return nil, err
			}
			tput := ev.Throughput
			if !ev.Feasible() {
				// Penalize constraint violations by the worst
				// oversubscription factor, approximating interference.
				worst := 1.0
				for _, v := range ev.Violations {
					if f := v.Demand / v.Limit; f > worst {
						worst = f
					}
				}
				tput /= worst
			}
			values = append(values, tput)
			if tput > r.Eval.Throughput {
				beatRLAS++
			}
		}
		cdf := metrics.CDFOf(values, 5)
		row := []string{a.Name, fmtK(r.Eval.Throughput)}
		for _, pt := range cdf {
			row = append(row, fmtK(pt.Value))
		}
		row = append(row, fmt.Sprint(beatRLAS))
		rows = append(rows, row)
	}
	return &Report{
		ID: "fig14", Title: Title("fig14"),
		Header: []string{"app", "RLAS (K/s)", "random p20", "p40", "p60", "p80", "p100", "#beating RLAS"},
		Rows:   rows,
		Notes:  "shape target: no random plan beats RLAS (the paper's 1000-plan Monte-Carlo found none).",
	}, nil
}

func randomReplication(rng *rand.Rand, a *apps.App, limit int) map[string]int {
	ops := a.Graph.Nodes()
	repl := map[string]int{}
	total := len(ops)
	for _, n := range ops {
		repl[n.Name] = 1
	}
	// Randomly grow operators until the total replication hits the
	// scaling limit (as the paper describes).
	for total < limit {
		n := ops[rng.Intn(len(ops))]
		grow := 1 + rng.Intn(8)
		if total+grow > limit {
			grow = limit - total
		}
		repl[n.Name] += grow
		total += grow
		if rng.Float64() < 0.05 {
			break // some plans stay small
		}
	}
	return repl
}

// fig15 renders the communication-pattern matrix of the optimized WC
// plan on both servers: total cross-socket fetch demand (MB/s) from
// socket i (rows) to socket j (columns).
func fig15(ctx *Context) (*Report, error) {
	rows := [][]string{}
	for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
		a := apps.ByName("WC")
		r, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m.Sockets; i++ {
			row := []string{m.Name, fmt.Sprintf("S%d", i)}
			for j := 0; j < m.Sockets; j++ {
				row = append(row, fmtF(r.Eval.ChannelUsed[i][j]/1e6, 0))
			}
			rows = append(rows, row)
		}
	}
	return &Report{
		ID: "fig15", Title: Title("fig15"),
		Header: []string{"machine", "from", "S0", "S1", "S2", "S3", "S4", "S5", "S6", "S7"},
		Rows:   rows,
		Notes: "units MB/s. shape target: hub-like traffic (dominated by a few source sockets) on " +
			"the glue-less Server A; more uniform spread on the XNC-assisted Server B.",
	}, nil
}

// table7 sweeps the compress ratio r on WC and reports the resulting
// throughput and optimization runtime.
func table7(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	a := apps.ByName("WC")
	ratios := []int{1, 3, 5, 10, 15}
	if ctx.Quick {
		ratios = []int{3, 5, 10}
	}
	seed, err := rlas.SeedReplication(a.Graph, a.Stats, m.TotalCores(), 0.7)
	if err != nil {
		return nil, err
	}
	paper := map[int][2]float64{ // throughput (K/s), runtime (s)
		1: {10140.2, 93.4}, 3: {10079.5, 48.3}, 5: {96390.8, 23.0},
		10: {84955.9, 46.5}, 15: {77773.6, 45.3},
	}
	rows := [][]string{}
	for _, ratio := range ratios {
		cfg := rlas.Config{
			Model:    &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated},
			Compress: ratio,
			BnB:      bnb.Config{NodeLimit: 1500},
			Initial:  seed,
		}
		if ctx.Quick {
			cfg.MaxIterations = 6
			cfg.BnB.NodeLimit = 300
		} else {
			cfg.MaxIterations = 25
		}
		r, err := rlas.Optimize(a.Graph, cfg)
		if err != nil {
			return nil, err
		}
		p := paper[ratio]
		rows = append(rows, []string{
			fmt.Sprint(ratio), fmtK(r.Eval.Throughput), fmtF(r.Elapsed.Seconds(), 2),
			fmt.Sprint(r.Iterations), fmtF(p[0], 1), fmtF(p[1], 1),
		})
	}
	return &Report{
		ID: "table7", Title: Title("table7"),
		Header: []string{"r", "throughput (K/s)", "runtime (s)", "iterations", "paper tput", "paper runtime"},
		Rows:   rows,
		Notes: "shape target: r=5 gives the best throughput/runtime trade-off; r=1 explodes the " +
			"search space (the node budget truncates the search), very large r is too coarse.",
	}, nil
}
