package experiments

import (
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/baseline"
	"briskstream/internal/engine"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/sim"
)

func init() {
	register("fig6", "Throughput speedup of BriskStream over Storm and Flink (Figure 6)", fig6)
	register("table5", "99-percentile end-to-end latency comparison (Table 5)", table5)
	register("fig7", "CDF of end-to-end latency of WC on different DSPSs (Figure 7)", fig7)
	register("fig8", "Per-tuple execution time breakdown of WC operators (Figure 8)", fig8)
}

// fig6 reproduces the headline comparison: BriskStream's RLAS-optimized
// plan versus Storm-like and Flink-like engines with their own
// placement/replication policies, all on the Server A descriptor.
func fig6(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	paperStorm := map[string]float64{"WC": 20.2, "FD": 4.6, "SD": 3.2, "LR": 18.7}
	paperFlink := map[string]float64{"WC": 11.2, "FD": 8.4, "SD": 2.8, "LR": 12.8}
	rows := [][]string{}
	for _, a := range apps.All() {
		r, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		brisk, err := ctx.Simulate(a, m, r)
		if err != nil {
			return nil, err
		}
		storm, err := baseline.Storm().Measure(a.Graph, a.Stats, m, model.Saturated, nil)
		if err != nil {
			return nil, err
		}
		flink, err := baseline.Flink().Measure(a.Graph, a.Stats, m, model.Saturated, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			a.Name,
			fmtK(brisk.Throughput), fmtK(storm.Throughput), fmtK(flink.Throughput),
			fmtF(brisk.Throughput/storm.Throughput, 1),
			fmtF(brisk.Throughput/flink.Throughput, 1),
			fmtF(paperStorm[a.Name], 1), fmtF(paperFlink[a.Name], 1),
		})
	}
	return &Report{
		ID: "fig6", Title: Title("fig6"),
		Header: []string{"app", "brisk (K/s)", "storm (K/s)", "flink (K/s)", "x/storm", "x/flink", "paper x/storm", "paper x/flink"},
		Rows:   rows,
		Notes:  "shape target: BriskStream wins by multiples on every workload; biggest gaps on WC and LR.",
	}, nil
}

// latencySystems are the engine configurations compared by Table 5/Fig 7.
func latencySystems() []struct {
	name string
	cfg  engine.Config
} {
	brisk := engine.DefaultConfig()
	storm := engine.StormLikeConfig()
	flink := engine.StormLikeConfig()
	flink.ExtraWorkNs = 200 // leaner runtime than Storm
	flink.JumboTuples = true
	flink.BatchSize = 16 // Flink buffers too, with smaller effective batches
	return []struct {
		name string
		cfg  engine.Config
	}{
		{"BriskStream", brisk},
		{"Storm", storm},
		{"Flink", flink},
	}
}

// runLatency executes app a on the real engine under cfg and returns the
// latency histogram result.
func runLatency(ctx *Context, a *apps.App, cfg engine.Config) (*engine.Result, error) {
	d := 400 * time.Millisecond
	if ctx.Quick {
		d = 120 * time.Millisecond
	}
	cfg.LatencySampleEvery = 32
	topo := engine.Topology{App: a.Graph, Spouts: a.Spouts, Operators: a.Operators}
	e, err := engine.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(d)
}

// table5 measures 99th-percentile end-to-end latency per application on
// the real engine in BriskStream mode versus the Storm/Flink-like
// execution paths.
func table5(ctx *Context) (*Report, error) {
	paper := map[string][3]float64{
		"WC": {21.9, 37881.3, 5689.2}, "FD": {12.5, 14949.8, 261.3},
		"SD": {13.5, 12733.8, 350.5}, "LR": {204.8, 16747.8, 4886.2},
	}
	rows := [][]string{}
	for _, a := range apps.All() {
		row := []string{a.Name}
		for _, sys := range latencySystems() {
			res, err := runLatency(ctx, a, sys.cfg)
			if err != nil {
				return nil, err
			}
			if len(res.Errors) > 0 {
				return nil, res.Errors[0]
			}
			row = append(row, fmtF(res.Latency.Quantile(0.99)/1e6, 2))
		}
		p := paper[a.Name]
		row = append(row, fmtF(p[0], 1), fmtF(p[1], 1), fmtF(p[2], 1))
		rows = append(rows, row)
	}
	return &Report{
		ID: "table5", Title: Title("table5"),
		Header: []string{"app", "brisk p99 (ms)", "storm-like p99 (ms)", "flink-like p99 (ms)", "paper brisk", "paper storm", "paper flink"},
		Rows:   rows,
		Notes: "real-engine runs on this host (2 cores, bounded queues), so absolute values are " +
			"smaller than the paper's saturated 8-socket runs; the ordering Brisk << Flink < Storm holds.",
	}, nil
}

// fig7 renders the latency CDF of WC under the three engine modes.
func fig7(ctx *Context) (*Report, error) {
	wc := apps.ByName("WC")
	rows := [][]string{}
	for _, sys := range latencySystems() {
		res, err := runLatency(ctx, wc, sys.cfg)
		if err != nil {
			return nil, err
		}
		if len(res.Errors) > 0 {
			return nil, res.Errors[0]
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			rows = append(rows, []string{
				sys.name, fmtF(q, 2), fmtF(res.Latency.Quantile(q)/1e6, 3),
			})
		}
	}
	return &Report{
		ID: "fig7", Title: Title("fig7"),
		Header: []string{"system", "percentile", "latency (ms)"},
		Rows:   rows,
	}, nil
}

// fig8 decomposes the per-tuple round-trip time of WC's non-source
// operators into Execute / Others / RMA for Storm (local), BriskStream
// (local) and BriskStream (remote, max hops), following the Section 6.1
// derivation methodology on the Server A descriptor.
func fig8(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	wc := apps.ByName("WC")
	stormOv := baseline.Storm().Overhead
	briskOv := sim.Brisk()
	rows := [][]string{}
	for _, op := range []string{"parser", "splitter", "counter"} {
		st := wc.Stats[op]
		stormLocal := sim.EffectiveT(m, st, 0, 0, stormOv, 1)
		briskLocal := sim.EffectiveT(m, st, 0, 0, briskOv, 1)
		briskRemote := sim.EffectiveT(m, st, 0, 4, briskOv, 1) // max hops
		rows = append(rows,
			[]string{"Storm (local)", op, fmtF(st.Te*stormOv.ExecScale, 1), fmtF(stormOv.PerTupleNs, 1), "0.0", fmtF(stormLocal, 1)},
			[]string{"Brisk (local)", op, fmtF(st.Te, 1), "0.0", "0.0", fmtF(briskLocal, 1)},
			[]string{"Brisk (remote)", op, fmtF(st.Te, 1), "0.0", fmtF(briskRemote-briskLocal, 1), fmtF(briskRemote, 1)},
		)
	}
	return &Report{
		ID: "fig8", Title: Title("fig8"),
		Header: []string{"configuration", "operator", "execute (ns)", "others (ns)", "rma (ns)", "total (ns)"},
		Rows:   rows,
		Notes: "Brisk remote total is up to several times the local total for fetch-heavy " +
			"operators; Storm's execute+others dwarf its RMA, which is why NUMA-awareness " +
			"matters only after the engine is efficient (Section 6.3).",
	}, nil
}
