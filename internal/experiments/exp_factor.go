package experiments

import (
	"briskstream/internal/apps"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/sim"
)

func init() {
	register("fig16", "Factor analysis: cumulative sources of improvement (Figure 16)", fig16)
}

// fig16 reproduces the factor analysis: starting from a Storm-class
// engine on shared memory ("simple"), it cumulatively (1) removes the
// instruction-footprint overhead, (2) adds jumbo tuples (amortizing the
// per-tuple communication cost), and (3) replaces the NUMA-oblivious
// plan with RLAS. The first three configurations use the RLAS_fix(L)
// plan, exactly as the paper does; the last uses the real RLAS plan.
func fig16(ctx *Context) (*Report, error) {
	m := numa.ServerA()

	// Cumulative engine stages. "simple" is the Storm overhead class;
	// removing the instruction footprint drops ExecScale to 1; jumbo
	// tuples amortize the per-tuple queue cost to near zero.
	stages := []struct {
		name string
		ov   sim.Overhead
	}{
		{"simple", sim.Overhead{ExecScale: 6, PerTupleNs: 2800, RMAScale: 1, Prefetch: true}},
		{"-Instr.footprint", sim.Overhead{ExecScale: 1, PerTupleNs: 2800, RMAScale: 1, Prefetch: true}},
		{"+JumboTuple", sim.Overhead{ExecScale: 1, PerTupleNs: 150, RMAScale: 1, Prefetch: true}},
	}

	rows := [][]string{}
	for _, a := range apps.All() {
		// The non-RLAS stages run the plan optimized under the
		// fixed-capability lower-bound scheme (RLAS_fix(L)).
		fixed, err := ctx.Optimized(a, m, model.TfWorstCase)
		if err != nil {
			return nil, err
		}
		row := []string{a.Name}
		for _, st := range stages {
			cfg := ctx.simCfg(m, a)
			cfg.Overhead = st.ov
			sr, err := sim.Run(fixed.Graph, fixed.Placement, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtK(sr.Throughput))
		}
		// +RLAS: the full NUMA-aware plan on the BriskStream engine.
		real, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		sr, err := ctx.Simulate(a, m, real)
		if err != nil {
			return nil, err
		}
		row = append(row, fmtK(sr.Throughput))
		rows = append(rows, row)
	}
	return &Report{
		ID: "fig16", Title: Title("fig16"),
		Header: []string{"app", "simple (K/s)", "-Instr.footprint", "+JumboTuple", "+RLAS"},
		Rows:   rows,
		Notes: "changes are cumulative left to right; shape target: every stage helps, with " +
			"jumbo tuples and RLAS the largest steps.",
	}, nil
}
