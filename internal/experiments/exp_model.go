package experiments

import (
	"fmt"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/engine"
	"briskstream/internal/metrics"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/profile"
	"briskstream/internal/sim"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

func init() {
	register("table2", "Characteristics of the two servers (Table 2)", table2)
	register("table3", "Average processing time per tuple under varying NUMA distance (Table 3)", table3)
	register("table4", "Model accuracy evaluation of all applications (Table 4)", table4)
	register("fig3", "CDF of profiled average execution time of WC operators (Figure 3)", fig3)
}

// table2 renders the machine descriptors, proving the substrate encodes
// the paper's hardware.
func table2(ctx *Context) (*Report, error) {
	rows := [][]string{}
	for _, m := range []*numa.Machine{numa.ServerA(), numa.ServerB()} {
		rows = append(rows,
			[]string{m.Name, "processor", fmt.Sprintf("%dx%d @ %.2f GHz", m.Sockets, m.CoresPerSocket, m.ClockGHz)},
			[]string{m.Name, "local latency (ns)", fmtF(m.L(0, 0), 1)},
			[]string{m.Name, "1 hop latency (ns)", fmtF(m.L(0, 1), 1)},
			[]string{m.Name, "max hops latency (ns)", fmtF(m.L(0, 4), 1)},
			[]string{m.Name, "local B/W (GB/s)", fmtF(m.LocalBandwidth/numa.GB, 1)},
			[]string{m.Name, "1 hop B/W (GB/s)", fmtF(m.Q(0, 1)/numa.GB, 1)},
			[]string{m.Name, "max hops B/W (GB/s)", fmtF(m.Q(0, 4)/numa.GB, 1)},
			[]string{m.Name, "total local B/W (GB/s)", fmtF(float64(m.Sockets)*m.LocalBandwidth/numa.GB, 1)},
		)
	}
	return &Report{
		ID: "table2", Title: Title("table2"),
		Header: []string{"machine", "statistic", "value"},
		Rows:   rows,
	}, nil
}

// table3 compares measured (simulated, with the prefetch effect) versus
// estimated (Formula 2) per-tuple processing time of WC's Splitter and
// Counter when placed at increasing NUMA distance from their producers.
func table3(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	wc := apps.ByName("WC")
	dests := []struct {
		label string
		s     numa.SocketID
	}{
		{"S0-S0(local)", 0}, {"S0-S1", 1}, {"S0-S3", 3}, {"S0-S4", 4}, {"S0-S7", 7},
	}
	rows := [][]string{}
	for _, op := range []string{"splitter", "counter"} {
		st := wc.Stats[op]
		for _, d := range dests {
			measured := sim.EffectiveT(m, st, 0, d.s, sim.Brisk(), 1)
			estimated := st.Te + m.FetchCost(int(st.N), 0, d.s)
			rows = append(rows, []string{op, d.label, fmtF(measured, 1), fmtF(estimated, 1)})
		}
	}
	return &Report{
		ID: "table3", Title: Title("table3"),
		Header: []string{"operator", "from-to", "measured (ns/tuple)", "estimated (ns/tuple)"},
		Rows:   rows,
		Notes: "measured = simulator with hardware-prefetch discount; estimation overshoots " +
			"for the multi-cache-line Splitter tuple and tracks the single-line Counter tuple, " +
			"matching the paper's observation.",
	}, nil
}

// table4 reports measured (simulated) vs estimated (model) throughput of
// the optimal execution plan of each application on eight sockets.
func table4(ctx *Context) (*Report, error) {
	m := numa.ServerA()
	paper := map[string][2]float64{ // measured, estimated (K events/s)
		"WC": {96390.8, 104843.3}, "FD": {7172.5, 8193.9},
		"SD": {12767.6, 12530.2}, "LR": {8738.3, 9298.7},
	}
	rows := [][]string{}
	for _, a := range apps.All() {
		r, err := ctx.Optimized(a, m, model.TfByPlacement)
		if err != nil {
			return nil, err
		}
		sr, err := ctx.Simulate(a, m, r)
		if err != nil {
			return nil, err
		}
		relErr := model.RelativeError(sr.Throughput, r.Eval.Throughput)
		rows = append(rows, []string{
			a.Name,
			fmtK(sr.Throughput), fmtK(r.Eval.Throughput), fmtF(relErr, 2),
			fmtF(paper[a.Name][0], 1), fmtF(paper[a.Name][1], 1),
			fmtF(model.RelativeError(paper[a.Name][0], paper[a.Name][1]), 2),
		})
	}
	return &Report{
		ID: "table4", Title: Title("table4"),
		Header: []string{"app", "measured (K/s)", "estimated (K/s)", "rel.err", "paper meas.", "paper est.", "paper rel.err"},
		Rows:   rows,
		Notes:  "measured = fluid simulation of the RLAS plan on the Server A descriptor.",
	}, nil
}

// fig3 profiles the real Go implementations of WC's operators on sample
// input (isolated, local memory) and reports their execution-time CDFs.
func fig3(ctx *Context) (*Report, error) {
	wc := apps.ByName("WC")
	samplesPer := 2000
	if ctx.Quick {
		samplesPer = 400
	}

	// Sample inputs per operator, prepared by pre-executing upstream
	// operators exactly as Section 3.1 describes.
	sentences := make([]*tuple.Tuple, 0, samplesPer)
	spout := wc.Spouts["spout"]()
	cap1 := &capture{}
	for len(sentences) < samplesPer {
		if err := spout.Next(cap1); err != nil {
			return nil, err
		}
		sentences = append(sentences, cap1.take()...)
		if len(sentences) > samplesPer {
			sentences = sentences[:samplesPer]
		}
	}
	words := make([]*tuple.Tuple, 0, samplesPer)
	split := wc.Operators["splitter"]()
	for _, s := range sentences {
		if len(words) >= samplesPer {
			break
		}
		if err := split.Process(cap1, s); err != nil {
			return nil, err
		}
		words = append(words, cap1.take()...)
	}
	if len(words) > samplesPer {
		words = words[:samplesPer]
	}
	counts := make([]*tuple.Tuple, 0, samplesPer)
	cnt := wc.Operators["counter"]()
	for _, w := range words {
		if err := cnt.Process(cap1, w); err != nil {
			return nil, err
		}
		counts = append(counts, cap1.take()...)
	}
	// The windowed counter emits on window close, not per tuple: drain
	// its open windows so the sink has inputs to be profiled on.
	if f, ok := cnt.(window.Flusher); ok {
		if err := f.FlushOpen(cap1); err != nil {
			return nil, err
		}
		counts = append(counts, cap1.take()...)
	}

	profiles := []struct {
		name   string
		op     engine.Operator
		inputs []*tuple.Tuple
	}{
		{"parser", wc.Operators["parser"](), sentences},
		{"splitter", wc.Operators["splitter"](), sentences},
		{"counter", wc.Operators["counter"](), words},
		{"sink", wc.Operators["sink"](), counts},
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	rows := [][]string{}

	// Spout profile: cost of Next itself.
	{
		var p profile.Profiler
		sp := wc.Spouts["spout"]()
		for i := 0; i < samplesPer; i++ {
			t0 := time.Now()
			if err := sp.Next(cap1); err != nil {
				return nil, err
			}
			p.Record(profile.Sample{Duration: time.Since(t0), OutCount: len(cap1.take())})
		}
		rows = append(rows, cdfRow("spout", &p, quantiles))
	}
	for _, pr := range profiles {
		var p profile.Profiler
		for _, in := range pr.inputs {
			t0 := time.Now()
			if err := pr.op.Process(cap1, in); err != nil {
				return nil, err
			}
			p.Record(profile.Sample{Duration: time.Since(t0), InBytes: in.Size(), OutCount: len(cap1.take())})
		}
		rows = append(rows, cdfRow(pr.name, &p, quantiles))
	}
	return &Report{
		ID: "fig3", Title: Title("fig3"),
		Header: []string{"operator", "p10 (ns)", "p25", "p50", "p75", "p90", "p99"},
		Rows:   rows,
		Notes: "profiled on this host's clock, so absolute values differ from the paper's " +
			"1.2 GHz Xeon; the takeaway holds: distributions are stable and the 50th " +
			"percentile is a usable model input.",
	}, nil
}

func cdfRow(name string, p *profile.Profiler, quantiles []float64) []string {
	h := metrics.NewHistogram(0)
	for _, d := range p.Durations() {
		h.Observe(d)
	}
	row := []string{name}
	for _, q := range quantiles {
		row = append(row, fmtF(h.Quantile(q), 0))
	}
	return row
}

// capture is a minimal Collector buffering emitted tuples.
type capture struct{ buf []*tuple.Tuple }

func (c *capture) Emit(values ...tuple.Value) { c.EmitTo(tuple.DefaultStream, values...) }
func (c *capture) EmitTo(stream string, values ...tuple.Value) {
	c.buf = append(c.buf, tuple.OnStream(stream, values...))
}
func (c *capture) Borrow() *tuple.Tuple  { return tuple.New() }
func (c *capture) Send(t *tuple.Tuple)   { c.buf = append(c.buf, t) }
func (c *capture) EmitWatermark(w int64) {} // isolated profiling has no downstream

// take returns and clears the buffer.
func (c *capture) take() []*tuple.Tuple {
	out := c.buf
	c.buf = nil
	return out
}
