//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this test
// binary; timing-ordering assertions skip under it (see its use).
const raceEnabled = false
