package experiments

import (
	"strconv"
	"strings"
	"testing"

	"briskstream/internal/apps"
	"briskstream/internal/baseline"
	"briskstream/internal/numa"
	"briskstream/internal/sim"
)

// sharedCtx caches optimizer results across all experiment tests.
var sharedCtx = func() *Context {
	c := NewContext()
	c.Quick = true
	return c
}()

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(id, sharedCtx)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("report id = %q", r.ID)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	if len(r.Header) == 0 {
		t.Fatalf("%s: no header", id)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", id, i, len(row), len(r.Header))
		}
	}
	if s := r.String(); !strings.Contains(s, id) {
		t.Errorf("%s: String() missing id", id)
	}
	return r
}

// cell parses a numeric report cell.
func cell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(r.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q not numeric: %v", r.ID, row, col, r.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table7",
		"fig3", "fig6", "fig7", "fig8", "fig9a", "fig9b",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
	if _, err := Run("nope", sharedCtx); err == nil {
		t.Error("unknown id accepted")
	}
	if Title("table2") == "" || Title("nope") != "" {
		t.Error("Title lookup broken")
	}
}

func TestTable2(t *testing.T) {
	r := runExp(t, "table2")
	if len(r.Rows) != 16 {
		t.Errorf("rows = %d, want 16 (8 stats x 2 machines)", len(r.Rows))
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	r := runExp(t, "table3")
	// 2 operators x 5 distances.
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Splitter local row: measured == estimated == Te.
	if cell(t, r, 0, 2) != cell(t, r, 0, 3) {
		t.Error("local measured != estimated")
	}
	// Cross-tray (S0-S4) estimated must exceed measured for the
	// multi-line Splitter tuple (prefetch), row index 3.
	if !(cell(t, r, 3, 3) > cell(t, r, 3, 2)) {
		t.Error("splitter estimation should overshoot measurement")
	}
	// Both must increase with distance: S0-S4 > S0-S1 measured.
	if !(cell(t, r, 3, 2) > cell(t, r, 1, 2)) {
		t.Error("splitter RMA cost should grow across trays")
	}
	// Counter: single-line tuple, measured >= estimated at 1 hop.
	if !(cell(t, r, 6, 2) >= cell(t, r, 6, 3)*0.95) {
		t.Error("counter measurement should track estimate closely")
	}
}

func TestTable4ModelAccuracy(t *testing.T) {
	r := runExp(t, "table4")
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		relErr := cell(t, r, i, 3)
		if relErr > 0.4 {
			t.Errorf("%s relative error %v too large", r.Rows[i][0], relErr)
		}
	}
	// App ordering: WC has by far the highest throughput.
	wc := cell(t, r, 0, 1)
	for i := 1; i < 4; i++ {
		if cell(t, r, i, 1) >= wc {
			t.Errorf("WC should dominate, but %s >= WC", r.Rows[i][0])
		}
	}
}

// TestTable5LatencyOrdering checks the experiment two ways. The
// measured half only asserts load-independent facts (latency samples
// exist and are positive): comparing two modes' measured p99s is a
// timing race — under the race detector's 10-20x slowdown on a small
// machine the ordering inverted spuriously, which is why this test
// used to skip under -race. The Brisk << Storm ordering itself is
// asserted on the latency model: per-tuple service time composed from
// each engine class's deterministic overhead parameters (execution
// scaling and per-tuple instruction footprint), which no scheduler
// noise can invert.
func TestTable5LatencyOrdering(t *testing.T) {
	r := runExp(t, "table5")
	for i := range r.Rows {
		brisk, storm := cell(t, r, i, 1), cell(t, r, i, 2)
		if brisk <= 0 {
			t.Errorf("%s: no brisk latency sample", r.Rows[i][0])
		}
		if storm <= 0 {
			t.Errorf("%s: no storm-like latency sample", r.Rows[i][0])
		}
	}

	// Deterministic ordering via the model: the Storm-class per-tuple
	// service time strictly dominates BriskStream's on every operator of
	// every app, so p99 end-to-end latency must order the same way at
	// any load the host happens to sustain.
	stormOv := baseline.Storm().Overhead
	briskOv := sim.Brisk()
	m := numa.ServerA()
	for _, a := range apps.All() {
		var briskTotal, stormTotal float64
		for op, st := range a.Stats {
			b := sim.EffectiveT(m, st, 0, 0, briskOv, 1)
			s := sim.EffectiveT(m, st, 0, 0, stormOv, 1)
			if s <= b {
				t.Errorf("%s/%s: storm-class service time %.1fns not above brisk %.1fns", a.Name, op, s, b)
			}
			briskTotal += b
			stormTotal += s
		}
		if stormTotal <= briskTotal {
			t.Errorf("%s: modeled storm pipeline time %.1fns not above brisk %.1fns", a.Name, stormTotal, briskTotal)
		}
	}
}

func TestFig3ProfilesAllOperators(t *testing.T) {
	r := runExp(t, "fig3")
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 operators", len(r.Rows))
	}
	for i := range r.Rows {
		p50, p99 := cell(t, r, i, 3), cell(t, r, i, 6)
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%s: implausible percentiles p50=%v p99=%v", r.Rows[i][0], p50, p99)
		}
	}
}

func TestFig6BriskWins(t *testing.T) {
	r := runExp(t, "fig6")
	for i := range r.Rows {
		spStorm, spFlink := cell(t, r, i, 4), cell(t, r, i, 5)
		if spStorm < 1.5 || spFlink < 1 {
			t.Errorf("%s: speedups %vx/%vx too small", r.Rows[i][0], spStorm, spFlink)
		}
	}
}

func TestFig7CDFMonotone(t *testing.T) {
	r := runExp(t, "fig7")
	// Per system, latency must be non-decreasing in percentile.
	var last float64
	var lastSys string
	for i := range r.Rows {
		sys := r.Rows[i][0]
		v := cell(t, r, i, 2)
		if sys == lastSys && v < last {
			t.Errorf("%s: CDF not monotone at row %d", sys, i)
		}
		last, lastSys = v, sys
	}
}

func TestFig8BreakdownShape(t *testing.T) {
	r := runExp(t, "fig8")
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 configs x 3 operators", len(r.Rows))
	}
	for i := 0; i < len(r.Rows); i += 3 {
		stormTotal := cell(t, r, i, 5)
		briskLocal := cell(t, r, i+1, 5)
		briskRemote := cell(t, r, i+2, 5)
		if briskLocal >= stormTotal {
			t.Errorf("row %d: brisk local %v should be far below storm %v", i, briskLocal, stormTotal)
		}
		if briskRemote <= briskLocal {
			t.Errorf("row %d: remote %v must exceed local %v", i, briskRemote, briskLocal)
		}
		// RMA column zero for local configs, positive for remote.
		if cell(t, r, i+1, 4) != 0 || cell(t, r, i+2, 4) <= 0 {
			t.Errorf("row %d: rma columns wrong", i)
		}
	}
}

func TestFig9aBriskScalesBaselinesDont(t *testing.T) {
	r := runExp(t, "fig9a")
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	brisk1, brisk8 := cell(t, r, 0, 1), cell(t, r, 3, 1)
	if brisk8 < brisk1*2 {
		t.Errorf("brisk should scale: 1 socket %v, 8 sockets %v", brisk1, brisk8)
	}
	// BriskStream beats baselines at every socket count.
	for i := range r.Rows {
		if cell(t, r, i, 1) <= cell(t, r, i, 2) {
			t.Errorf("sockets=%s: storm >= brisk", r.Rows[i][0])
		}
	}
}

func TestFig9bScalingKnee(t *testing.T) {
	r := runExp(t, "fig9b")
	for i := range r.Rows {
		one, four, eight := cell(t, r, i, 1), cell(t, r, i, 3), cell(t, r, i, 4)
		if one != 100 {
			t.Errorf("%s: baseline not 100%%", r.Rows[i][0])
		}
		// Quick mode undertrains the optimizer; full-fidelity runs land
		// near-linear (close to 400%), quick runs must still show clear
		// scaling.
		if four < 150 {
			t.Errorf("%s: 4-socket scaling only %v%%", r.Rows[i][0], four)
		}
		if eight < four {
			t.Errorf("%s: throughput regressed from 4 to 8 sockets", r.Rows[i][0])
		}
	}
}

func TestFig10RMABoundsGap(t *testing.T) {
	r := runExp(t, "fig10")
	for i := range r.Rows {
		meas, noRMA, ideal := cell(t, r, i, 1), cell(t, r, i, 2), cell(t, r, i, 3)
		if !(meas <= noRMA*1.02 && noRMA <= ideal*1.25) {
			t.Errorf("%s: ordering broken meas=%v noRMA=%v ideal=%v", r.Rows[i][0], meas, noRMA, ideal)
		}
	}
}

func TestFig11StreamBoxFlattens(t *testing.T) {
	r := runExp(t, "fig11")
	n := len(r.Rows)
	// At the largest core count BriskStream must dominate StreamBox.
	if cell(t, r, n-1, 1) <= cell(t, r, n-1, 3) {
		t.Error("brisk should beat streambox-ooo at 144 cores")
	}
	// StreamBox scaling 16 -> 144 cores must be clearly sublinear
	// (less than half of the 9x core growth).
	sb16, sb144 := cell(t, r, 3, 3), cell(t, r, n-1, 3)
	if sb144/sb16 > 4.5 {
		t.Errorf("streambox-ooo scaled %vx from 16 to 144 cores; centralized scheduler should flatten it", sb144/sb16)
	}
}

func TestFig12RLASBeatsFixed(t *testing.T) {
	r := runExp(t, "fig12")
	for i := range r.Rows {
		rl, fixL, fixU := cell(t, r, i, 1), cell(t, r, i, 2), cell(t, r, i, 3)
		if rl < fixL*0.98 || rl < fixU*0.98 {
			t.Errorf("%s: RLAS %v should be >= fix(L) %v and fix(U) %v", r.Rows[i][0], rl, fixL, fixU)
		}
	}
}

func TestFig13RLASBeatsHeuristics(t *testing.T) {
	r := runExp(t, "fig13")
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 4 apps x 2 servers", len(r.Rows))
	}
	for i := range r.Rows {
		for c := 2; c <= 4; c++ {
			// Quick mode gives the B&B a tiny node budget, so a
			// heuristic can edge RLAS by simulator noise; full runs
			// keep all ratios at or below ~1.
			if v := cell(t, r, i, c); v > 1.2 {
				t.Errorf("%s/%s: heuristic beats RLAS (%v)", r.Rows[i][0], r.Rows[i][1], v)
			}
		}
	}
}

func TestFig14NoRandomPlanWins(t *testing.T) {
	r := runExp(t, "fig14")
	for i := range r.Rows {
		if beat := cell(t, r, i, 7); beat != 0 {
			t.Errorf("%s: %v random plans beat RLAS", r.Rows[i][0], beat)
		}
	}
}

func TestFig15CommPattern(t *testing.T) {
	r := runExp(t, "fig15")
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d, want 8 sockets x 2 machines", len(r.Rows))
	}
	// Diagonal must be zero (no self-traffic recorded).
	for i := 0; i < 8; i++ {
		if cell(t, r, i, 2+i) != 0 {
			t.Errorf("server A S%d diagonal non-zero", i)
		}
	}
}

func TestTable7CompressSweep(t *testing.T) {
	r := runExp(t, "table7")
	for i := range r.Rows {
		if cell(t, r, i, 1) <= 0 {
			t.Errorf("ratio %s produced no throughput", r.Rows[i][0])
		}
		if cell(t, r, i, 2) <= 0 {
			t.Errorf("ratio %s reported no runtime", r.Rows[i][0])
		}
	}
}

func TestFig16FactorsCumulative(t *testing.T) {
	r := runExp(t, "fig16")
	for i := range r.Rows {
		simple := cell(t, r, i, 1)
		noInstr := cell(t, r, i, 2)
		jumbo := cell(t, r, i, 3)
		rl := cell(t, r, i, 4)
		if !(simple <= noInstr*1.02 && noInstr <= jumbo*1.02) {
			t.Errorf("%s: cumulative factors not improving: %v %v %v", r.Rows[i][0], simple, noInstr, jumbo)
		}
		if rl < jumbo*0.9 {
			t.Errorf("%s: +RLAS %v far below +JumboTuple %v", r.Rows[i][0], rl, jumbo)
		}
	}
}
