package state

import (
	"fmt"
	"slices"
	"strings"
	"testing"
)

type acc struct {
	count int64
	seen  map[int64]bool
}

func TestMapBasics(t *testing.T) {
	s := NewMap[string, acc]()
	if s.Get("a") != nil || s.Len() != 0 {
		t.Fatal("empty map not empty")
	}
	e, created := s.GetOrCreate("a")
	if !created || e == nil {
		t.Fatal("first GetOrCreate must create")
	}
	e.count = 7
	if got, created := s.GetOrCreate("a"); created || got != e {
		t.Fatal("second GetOrCreate must return the same entry")
	}
	if got := s.Get("a"); got != e || got.count != 7 {
		t.Fatal("Get lost the entry")
	}
	s.Delete("a")
	if s.Get("a") != nil || s.Len() != 0 {
		t.Fatal("Delete left the key")
	}
	s.Delete("a") // idempotent
}

func TestEntriesRecycleWithCapacity(t *testing.T) {
	s := NewMap[string, acc]()
	e, _ := s.GetOrCreate("a")
	e.seen = map[int64]bool{1: true, 2: true}
	s.Delete("a")
	// The recycled entry must come back with its previous contents (the
	// caller's initializer clears but keeps capacity).
	e2, created := s.GetOrCreate("b")
	if !created {
		t.Fatal("expected creation")
	}
	if e2 != e {
		t.Fatal("entry was not recycled from the pool")
	}
	if e2.seen == nil || len(e2.seen) != 2 {
		t.Fatal("recycled entry lost its internal state (capacity reuse impossible)")
	}
	clear(e2.seen) // what a real initializer does: reset, keep buckets
	if len(e2.seen) != 0 {
		t.Fatal("clear failed")
	}
}

func TestClearRecyclesAll(t *testing.T) {
	s := NewMap[int, acc]()
	entries := map[*acc]bool{}
	for i := 0; i < 100; i++ {
		e, _ := s.GetOrCreate(i)
		entries[e] = true
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear left keys")
	}
	// Every subsequent create must be served from the pool.
	for i := 0; i < 100; i++ {
		e, created := s.GetOrCreate(1000 + i)
		if !created || !entries[e] {
			t.Fatalf("entry %d not recycled", i)
		}
	}
}

func TestRangeVisitsAll(t *testing.T) {
	s := NewMap[int, acc]()
	for i := 0; i < 10; i++ {
		e, _ := s.GetOrCreate(i)
		e.count = int64(i)
	}
	sum := int64(0)
	n := 0
	s.Range(func(k int, e *acc) bool {
		sum += e.count
		n++
		return true
	})
	if n != 10 || sum != 45 {
		t.Fatalf("Range visited %d entries, sum %d", n, sum)
	}
	n = 0
	s.Range(func(k int, e *acc) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

// TestSteadyStateAccessAllocFree: the per-tuple access pattern of a
// keyed aggregation — existing-key lookup and update — allocates
// nothing, and a churning key (delete + re-create) is served entirely
// from the pool.
func TestSteadyStateAccessAllocFree(t *testing.T) {
	s := NewMap[string, acc]()
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for _, k := range keys {
		e, _ := s.GetOrCreate(k)
		e.count = 0
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		e := s.Get(keys[i%len(keys)])
		e.count++
		i++
	})
	if avg > 0 {
		t.Errorf("existing-key access allocates %.3f/op, want 0", avg)
	}
	// Churn: windows create and delete keys constantly; after warmup the
	// pool must absorb it. (map bucket reuse for a deleted+reinserted
	// key is the runtime's job; the entry is ours and must not allocate.)
	avg = testing.AllocsPerRun(5000, func() {
		e, created := s.GetOrCreate("churn")
		if created {
			e.count = 0
		}
		e.count++
		s.Delete("churn")
	})
	if avg > 0.01 {
		t.Errorf("churning key allocates %.3f/op, want ~0", avg)
	}
}

func TestRangeSortedDeterministicOrder(t *testing.T) {
	// Two maps with the same keys inserted in different orders must
	// iterate identically — that is what makes snapshot encodings of
	// keyed state byte-stable.
	build := func(keys []string) *Map[string, int] {
		m := NewMap[string, int]()
		for _, k := range keys {
			e, _ := m.GetOrCreate(k)
			*e = len(k)
		}
		return m
	}
	a := build([]string{"pear", "fig", "apple", "kiwi"})
	b := build([]string{"kiwi", "apple", "pear", "fig"})
	compare := func(x, y string) int { return strings.Compare(x, y) }
	collect := func(m *Map[string, int]) []string {
		var out []string
		m.RangeSorted(compare, func(k string, e *int) bool {
			out = append(out, fmt.Sprintf("%s=%d", k, *e))
			return true
		})
		return out
	}
	ka, kb := collect(a), collect(b)
	want := []string{"apple=5", "fig=3", "kiwi=4", "pear=4"}
	if !slices.Equal(ka, want) || !slices.Equal(kb, want) {
		t.Fatalf("RangeSorted order: %v / %v, want %v", ka, kb, want)
	}
	// Early exit stops the sweep.
	n := 0
	a.RangeSorted(compare, func(string, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early exit visited %d keys", n)
	}
	// The sorted scratch is retained: steady-state calls allocate only
	// what the caller's closure does.
	avg := testing.AllocsPerRun(100, func() {
		a.RangeSorted(compare, func(string, *int) bool { return true })
	})
	if avg > 0 {
		t.Errorf("RangeSorted allocates %.3f/op after warmup, want 0", avg)
	}
}
