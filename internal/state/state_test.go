package state

import "testing"

type acc struct {
	count int64
	seen  map[int64]bool
}

func TestMapBasics(t *testing.T) {
	s := NewMap[string, acc]()
	if s.Get("a") != nil || s.Len() != 0 {
		t.Fatal("empty map not empty")
	}
	e, created := s.GetOrCreate("a")
	if !created || e == nil {
		t.Fatal("first GetOrCreate must create")
	}
	e.count = 7
	if got, created := s.GetOrCreate("a"); created || got != e {
		t.Fatal("second GetOrCreate must return the same entry")
	}
	if got := s.Get("a"); got != e || got.count != 7 {
		t.Fatal("Get lost the entry")
	}
	s.Delete("a")
	if s.Get("a") != nil || s.Len() != 0 {
		t.Fatal("Delete left the key")
	}
	s.Delete("a") // idempotent
}

func TestEntriesRecycleWithCapacity(t *testing.T) {
	s := NewMap[string, acc]()
	e, _ := s.GetOrCreate("a")
	e.seen = map[int64]bool{1: true, 2: true}
	s.Delete("a")
	// The recycled entry must come back with its previous contents (the
	// caller's initializer clears but keeps capacity).
	e2, created := s.GetOrCreate("b")
	if !created {
		t.Fatal("expected creation")
	}
	if e2 != e {
		t.Fatal("entry was not recycled from the pool")
	}
	if e2.seen == nil || len(e2.seen) != 2 {
		t.Fatal("recycled entry lost its internal state (capacity reuse impossible)")
	}
	clear(e2.seen) // what a real initializer does: reset, keep buckets
	if len(e2.seen) != 0 {
		t.Fatal("clear failed")
	}
}

func TestClearRecyclesAll(t *testing.T) {
	s := NewMap[int, acc]()
	entries := map[*acc]bool{}
	for i := 0; i < 100; i++ {
		e, _ := s.GetOrCreate(i)
		entries[e] = true
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear left keys")
	}
	// Every subsequent create must be served from the pool.
	for i := 0; i < 100; i++ {
		e, created := s.GetOrCreate(1000 + i)
		if !created || !entries[e] {
			t.Fatalf("entry %d not recycled", i)
		}
	}
}

func TestRangeVisitsAll(t *testing.T) {
	s := NewMap[int, acc]()
	for i := 0; i < 10; i++ {
		e, _ := s.GetOrCreate(i)
		e.count = int64(i)
	}
	sum := int64(0)
	n := 0
	s.Range(func(k int, e *acc) bool {
		sum += e.count
		n++
		return true
	})
	if n != 10 || sum != 45 {
		t.Fatalf("Range visited %d entries, sum %d", n, sum)
	}
	n = 0
	s.Range(func(k int, e *acc) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

// TestSteadyStateAccessAllocFree: the per-tuple access pattern of a
// keyed aggregation — existing-key lookup and update — allocates
// nothing, and a churning key (delete + re-create) is served entirely
// from the pool.
func TestSteadyStateAccessAllocFree(t *testing.T) {
	s := NewMap[string, acc]()
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for _, k := range keys {
		e, _ := s.GetOrCreate(k)
		e.count = 0
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		e := s.Get(keys[i%len(keys)])
		e.count++
		i++
	})
	if avg > 0 {
		t.Errorf("existing-key access allocates %.3f/op, want 0", avg)
	}
	// Churn: windows create and delete keys constantly; after warmup the
	// pool must absorb it. (map bucket reuse for a deleted+reinserted
	// key is the runtime's job; the entry is ours and must not allocate.)
	avg = testing.AllocsPerRun(5000, func() {
		e, created := s.GetOrCreate("churn")
		if created {
			e.count = 0
		}
		e.count++
		s.Delete("churn")
	})
	if avg > 0.01 {
		t.Errorf("churning key allocates %.3f/op, want ~0", avg)
	}
}
