// Package state provides the keyed operator state store backing
// BriskStream's stateful operators and the window subsystem. The paper's
// evaluation workloads are dominated by keyed aggregation — WC's word
// counts, SD's per-device statistics, LR's per-segment minute statistics
// — and each used to hand-roll an unbounded map. Map stores entries
// behind a pool so the steady-state access path matches the engine's
// zero-allocation discipline (PR 2): looking up an existing key
// allocates nothing, and deleting a key recycles its entry (including
// any internal capacity the value accumulated — slices, nested maps)
// for the next key instead of handing it to the garbage collector.
package state

import "slices"

// Map is a keyed state store with pooled, type-stable entries. Entries
// are *V pointers that remain valid (and stable) until Delete or Clear;
// after recycling, an entry is handed out again by GetOrCreate with its
// previous contents intact, so callers reset it through their own
// initializer — which lets values retain internal capacity across
// lives (the whole point of pooling).
//
// Map is not safe for concurrent use: like all operator state it
// belongs to one task goroutine.
type Map[K comparable, V any] struct {
	m    map[K]*V
	free []*V
	keys []K // scratch for RangeSorted, reused across calls
}

// NewMap creates an empty store.
func NewMap[K comparable, V any]() *Map[K, V] {
	return &Map[K, V]{m: make(map[K]*V)}
}

// Get returns the entry for k, or nil if absent. Lookup of an existing
// key performs no allocation.
func (s *Map[K, V]) Get(k K) *V { return s.m[k] }

// GetOrCreate returns the entry for k, creating it from the free list
// (or fresh, if the pool is empty) when absent. The boolean reports
// whether the entry was just created — a created entry holds whatever
// its previous life left behind, and the caller must initialize it.
func (s *Map[K, V]) GetOrCreate(k K) (*V, bool) {
	if e, ok := s.m[k]; ok {
		return e, false
	}
	var e *V
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(V)
	}
	s.m[k] = e
	return e, true
}

// Delete removes k and recycles its entry. The caller must not touch
// the entry pointer after deleting the key.
func (s *Map[K, V]) Delete(k K) {
	e, ok := s.m[k]
	if !ok {
		return
	}
	delete(s.m, k)
	s.free = append(s.free, e)
}

// Len returns the number of live keys.
func (s *Map[K, V]) Len() int { return len(s.m) }

// Range calls f for every live (key, entry) pair until f returns false.
// Iteration order is unspecified (callers needing deterministic output
// must sort; the window operators do). f must not Delete other keys or
// create new ones mid-iteration.
func (s *Map[K, V]) Range(f func(k K, e *V) bool) {
	for k, e := range s.m {
		if !f(k, e) {
			return
		}
	}
}

// RangeSorted calls f for every live (key, entry) pair in the order
// defined by compare, until f returns false. Snapshot encodings use it:
// a checkpoint of keyed state must be byte-stable, and Range's Go map
// order is not. The sorted key scratch is retained by the Map, so
// steady-state calls allocate nothing once it has grown; f must not
// create or delete keys mid-iteration.
func (s *Map[K, V]) RangeSorted(compare func(a, b K) int, f func(k K, e *V) bool) {
	s.keys = s.keys[:0]
	for k := range s.m {
		s.keys = append(s.keys, k)
	}
	slices.SortFunc(s.keys, compare)
	for _, k := range s.keys {
		if !f(k, s.m[k]) {
			return
		}
	}
}

// Clear removes every key, recycling all entries. The map's buckets and
// the entries' internal capacity are retained.
func (s *Map[K, V]) Clear() {
	for k, e := range s.m {
		delete(s.m, k)
		s.free = append(s.free, e)
	}
}
