package model

import (
	"math"
	"math/rand"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// chain builds spout -> worker -> sink with the given worker selectivity.
func chain(t *testing.T, workerSel float64) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": workerSel}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func chainStats() profile.Set {
	return profile.Set{
		"spout":  {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: 1000, M: 128, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

// testMachine has 4 sockets so that sockets 0 and 1 share a tray (one
// hop, 200ns) while 0 and 2+ cross trays (400ns).
func testMachine() *numa.Machine {
	return numa.Synthetic("test", 4, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
}

func mustEval(t *testing.T, eg *plan.ExecGraph, p *plan.Placement, cfg *Config, opts Options) *Result {
	t.Helper()
	r, err := Evaluate(eg, p, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSaturatedChainThroughputIsBottleneckCapacity(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	cfg := &Config{Machine: testMachine(), Stats: chainStats(), Ingress: Saturated}
	r := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})

	// Worker Te=1000ns -> capacity 1e6/s; it limits the pipeline.
	if math.Abs(r.Throughput-1e6) > 1 {
		t.Errorf("Throughput = %v, want 1e6", r.Throughput)
	}
	// Spout and worker are over-supplied; sink is not.
	worker := eg.OfOp("worker")[0].ID
	sink := eg.OfOp("sink")[0].ID
	if !r.Rates[worker].OverSupplied {
		t.Error("worker should be the bottleneck")
	}
	if r.Rates[sink].OverSupplied {
		t.Error("sink should not be over-supplied")
	}
	found := false
	for _, b := range r.Bottlenecks {
		if b == worker {
			found = true
		}
	}
	if !found {
		t.Errorf("Bottlenecks = %v missing worker %d", r.Bottlenecks, worker)
	}
}

func TestUnderSuppliedChainPassesIngressThrough(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	cfg := &Config{Machine: testMachine(), Stats: chainStats(), Ingress: 1000}
	r := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})
	if math.Abs(r.Throughput-1000) > 1e-6 {
		t.Errorf("Throughput = %v, want 1000 (ingress-limited)", r.Throughput)
	}
	if len(r.Bottlenecks) != 0 {
		t.Errorf("no bottlenecks expected, got %v", r.Bottlenecks)
	}
	if !r.Feasible() {
		t.Errorf("tiny load should be feasible: %v", r.Violations)
	}
}

func TestSelectivityAmplification(t *testing.T) {
	// Splitter-style selectivity 10: sink sees 10x the worker's rate.
	// Selectivity feeding the model comes from the profiled Stats, the
	// same way the paper pre-profiles selectivity before optimizing.
	g := chain(t, 10)
	eg, _ := plan.Build(g, nil, 1)
	stats := chainStats()
	w := stats["worker"]
	w.Selectivity = map[string]float64{"default": 10}
	stats["worker"] = w
	cfg := &Config{Machine: testMachine(), Stats: stats, Ingress: 1000}
	r := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})
	if math.Abs(r.Throughput-10_000) > 1e-6 {
		t.Errorf("Throughput = %v, want 10000", r.Throughput)
	}
}

func TestRemotePlacementChargesFormula2(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	m := testMachine()
	cfg := &Config{Machine: m, Stats: chainStats(), Ingress: Saturated}

	local := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})

	remote := plan.NewPlacement()
	remote.Place(eg.OfOp("spout")[0].ID, 0)
	remote.Place(eg.OfOp("worker")[0].ID, 1) // one hop from producer
	remote.Place(eg.OfOp("sink")[0].ID, 1)
	r := mustEval(t, eg, remote, cfg, Options{})

	worker := eg.OfOp("worker")[0].ID
	// Tf = ceil(64/64) * 200 = 200ns; T = 1200ns.
	if math.Abs(r.Rates[worker].Tf-200) > 1e-9 {
		t.Errorf("worker Tf = %v, want 200", r.Rates[worker].Tf)
	}
	if math.Abs(r.Rates[worker].T-1200) > 1e-9 {
		t.Errorf("worker T = %v, want 1200", r.Rates[worker].T)
	}
	if r.Throughput >= local.Throughput {
		t.Errorf("remote throughput %v should be below local %v", r.Throughput, local.Throughput)
	}
	want := 1e9 / 1200
	if math.Abs(r.Throughput-want) > 1 {
		t.Errorf("remote throughput = %v, want %v", r.Throughput, want)
	}
}

func TestThroughputMonotoneInNUMADistance(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	// 8-socket machine: hop classes 0, 1, 2.
	m := numa.Synthetic("dist", 8, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &Config{Machine: m, Stats: chainStats(), Ingress: Saturated}
	spout, worker, sink := eg.OfOp("spout")[0].ID, eg.OfOp("worker")[0].ID, eg.OfOp("sink")[0].ID
	tput := func(workerSocket numa.SocketID) float64 {
		p := plan.NewPlacement()
		p.Place(spout, 0)
		p.Place(worker, workerSocket)
		p.Place(sink, workerSocket)
		return mustEval(t, eg, p, cfg, Options{}).Throughput
	}
	localT, hopT, farT := tput(0), tput(1), tput(4)
	if !(localT > hopT && hopT > farT) {
		t.Errorf("throughput not monotone in distance: local %v, 1-hop %v, cross-tray %v", localT, hopT, farT)
	}
}

func TestReplicationRaisesCapacity(t *testing.T) {
	g := chain(t, 1)
	cfg := &Config{Machine: testMachine(), Stats: chainStats(), Ingress: Saturated}
	eg1, _ := plan.Build(g, nil, 1)
	r1 := mustEval(t, eg1, plan.CollocateAll(eg1), cfg, Options{})
	eg2, _ := plan.Build(g, map[string]int{"worker": 2}, 1)
	r2 := mustEval(t, eg2, plan.CollocateAll(eg2), cfg, Options{})
	if r2.Throughput <= r1.Throughput {
		t.Errorf("2 workers %v should beat 1 worker %v", r2.Throughput, r1.Throughput)
	}
	if math.Abs(r2.Throughput-2e6) > 1 {
		t.Errorf("2-worker throughput = %v, want 2e6", r2.Throughput)
	}
}

func TestCPUConstraintViolation(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	// One core per socket: spout alone saturates a core (1e7 * 100ns =
	// 1e9 ns/s); adding worker and sink on socket 0 must violate Eq. 3.
	m := numa.Synthetic("tiny", 2, 1, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &Config{Machine: m, Stats: chainStats(), Ingress: Saturated}
	r := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})
	if r.Feasible() {
		t.Fatal("oversubscribed socket should violate CPU constraint")
	}
	foundCPU := false
	for _, v := range r.Violations {
		if v.Kind == "cpu" && v.From == 0 {
			foundCPU = true
			if v.Demand <= v.Limit {
				t.Errorf("violation with demand %v <= limit %v", v.Demand, v.Limit)
			}
		}
	}
	if !foundCPU {
		t.Errorf("no cpu violation found: %v", r.Violations)
	}
}

func TestChannelConstraintViolation(t *testing.T) {
	g := chain(t, 1)
	// A single remote replica self-throttles (it transfers at most one
	// cache line per L(i,j) ns), so channel violations need several
	// consumers sharing one thin channel: 8 workers x ~0.3 GB/s fetch
	// demand > the 1 GB/s remote channel.
	eg, _ := plan.Build(g, map[string]int{"worker": 8}, 1)
	m := numa.Synthetic("thin", 4, 16, 50, 200, 400, 50*numa.GB, 1*numa.GB, 1*numa.GB)
	stats := chainStats()
	w := stats["worker"]
	w.N = 6400
	stats["worker"] = w
	cfg := &Config{Machine: m, Stats: stats, Ingress: Saturated}
	p := plan.NewPlacement()
	p.Place(eg.OfOp("spout")[0].ID, 0)
	for _, v := range eg.OfOp("worker") {
		p.Place(v.ID, 1)
	}
	p.Place(eg.OfOp("sink")[0].ID, 1)
	r := mustEval(t, eg, p, cfg, Options{})
	foundCh := false
	for _, v := range r.Violations {
		if v.Kind == "channel" && v.From == 0 && v.To == 1 {
			foundCh = true
		}
	}
	if !foundCh {
		t.Errorf("expected channel violation, got %v", r.Violations)
	}
}

func TestBoundIsUpperBound(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, map[string]int{"worker": 2}, 1)
	m := testMachine()
	cfg := &Config{Machine: m, Stats: chainStats(), Ingress: Saturated}

	// Partial placement: spout fixed on socket 0, rest unplaced.
	partial := plan.NewPlacement()
	partial.Place(eg.OfOp("spout")[0].ID, 0)
	bound := mustEval(t, eg, partial, cfg, Options{Bound: true})

	// Every complete extension must be <= the bound.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := partial.Clone()
		for _, v := range eg.Vertices {
			if _, placed := p.SocketOf(v.ID); !placed {
				p.Place(v.ID, numa.SocketID(rng.Intn(m.Sockets)))
			}
		}
		full := mustEval(t, eg, p, cfg, Options{})
		if full.Throughput > bound.Throughput*(1+1e-9) {
			t.Fatalf("completion %d throughput %v exceeds bound %v", i, full.Throughput, bound.Throughput)
		}
	}
}

func TestTfPolicies(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	m := testMachine()
	remote := plan.NewPlacement()
	remote.Place(eg.OfOp("spout")[0].ID, 0)
	remote.Place(eg.OfOp("worker")[0].ID, 1)
	remote.Place(eg.OfOp("sink")[0].ID, 1)

	zero := mustEval(t, eg, remote, &Config{Machine: m, Stats: chainStats(), Ingress: Saturated, Policy: TfZero}, Options{})
	worst := mustEval(t, eg, remote, &Config{Machine: m, Stats: chainStats(), Ingress: Saturated, Policy: TfWorstCase}, Options{})
	real := mustEval(t, eg, remote, &Config{Machine: m, Stats: chainStats(), Ingress: Saturated}, Options{})

	worker := eg.OfOp("worker")[0].ID
	if zero.Rates[worker].Tf != 0 {
		t.Errorf("TfZero gave Tf = %v", zero.Rates[worker].Tf)
	}
	// Worst case charges max remote latency (400) regardless of actual
	// placement (one hop = 200).
	if worst.Rates[worker].Tf != 400 {
		t.Errorf("TfWorstCase Tf = %v, want 400", worst.Rates[worker].Tf)
	}
	if !(zero.Throughput >= real.Throughput && real.Throughput >= worst.Throughput) {
		t.Errorf("policy ordering broken: zero %v, real %v, worst %v", zero.Throughput, real.Throughput, worst.Throughput)
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	m := testMachine()
	if _, err := Evaluate(eg, plan.CollocateAll(eg), &Config{Machine: nil, Stats: chainStats(), Ingress: 1}, Options{}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := Evaluate(eg, plan.CollocateAll(eg), &Config{Machine: m, Stats: chainStats(), Ingress: 0}, Options{}); err == nil {
		t.Error("zero ingress accepted")
	}
	if _, err := Evaluate(eg, plan.NewPlacement(), &Config{Machine: m, Stats: chainStats(), Ingress: 1}, Options{}); err == nil {
		t.Error("incomplete placement accepted without Bound")
	}
	missing := profile.Set{"spout": {Te: 1, Selectivity: map[string]float64{"default": 1}}}
	if _, err := Evaluate(eg, plan.CollocateAll(eg), &Config{Machine: m, Stats: missing, Ingress: 1}, Options{}); err == nil {
		t.Error("missing operator stats accepted")
	}
}

func TestVertexDemandAndRelativeError(t *testing.T) {
	g := chain(t, 1)
	eg, _ := plan.Build(g, nil, 1)
	cfg := &Config{Machine: testMachine(), Stats: chainStats(), Ingress: Saturated}
	r := mustEval(t, eg, plan.CollocateAll(eg), cfg, Options{})
	worker := eg.OfOp("worker")[0].ID
	d := r.VertexDemand(eg, cfg, worker)
	// Worker saturates one core: 1e6/s * 1000ns = 1e9 ns/s.
	if math.Abs(d.CPU-1e9) > 1 {
		t.Errorf("worker CPU demand = %v", d.CPU)
	}
	if math.Abs(d.BW-1e6*128) > 1 {
		t.Errorf("worker BW demand = %v", d.BW)
	}

	if got := RelativeError(100, 92); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if !math.IsInf(RelativeError(0, 5), 1) {
		t.Error("RelativeError(0, x) should be +Inf")
	}
}

// Property: with random stats and random full placements, throughput is
// finite, non-negative, and never exceeds the TfZero evaluation of the
// same plan (removing RMA can only help — the "W/o rma" bound of Fig 10).
func TestZeroRMADominatesProperty(t *testing.T) {
	g := chain(t, 1)
	rng := rand.New(rand.NewSource(17))
	m := numa.Synthetic("prop", 4, 4, 50, 250, 500, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	for trial := 0; trial < 100; trial++ {
		stats := profile.Set{
			"spout":  {Te: 50 + rng.Float64()*500, M: 64, N: 32 + rng.Float64()*512, Selectivity: map[string]float64{"default": 1}},
			"worker": {Te: 50 + rng.Float64()*2000, M: 64, N: 32 + rng.Float64()*512, Selectivity: map[string]float64{"default": rng.Float64() * 10}},
			"sink":   {Te: 20 + rng.Float64()*100, M: 64, N: 32 + rng.Float64()*512, Selectivity: map[string]float64{}},
		}
		eg, _ := plan.Build(g, map[string]int{"worker": 1 + rng.Intn(4)}, 1)
		p := plan.NewPlacement()
		for _, v := range eg.Vertices {
			p.Place(v.ID, numa.SocketID(rng.Intn(m.Sockets)))
		}
		withRMA := mustEval(t, eg, p, &Config{Machine: m, Stats: stats, Ingress: Saturated}, Options{})
		noRMA := mustEval(t, eg, p, &Config{Machine: m, Stats: stats, Ingress: Saturated, Policy: TfZero}, Options{})
		if withRMA.Throughput < 0 || math.IsNaN(withRMA.Throughput) || math.IsInf(withRMA.Throughput, 0) {
			t.Fatalf("trial %d: bad throughput %v", trial, withRMA.Throughput)
		}
		if withRMA.Throughput > noRMA.Throughput*(1+1e-9) {
			t.Fatalf("trial %d: RMA-charged %v exceeds zero-RMA %v", trial, withRMA.Throughput, noRMA.Throughput)
		}
	}
}
