package model

import (
	"math"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// diamondGraph: spout fans out to two workers with different speeds that
// both feed one sink — exercises per-producer input decomposition ri(s).
func diamondGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("diamond")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"l": 0.5, "r": 0.5}}))
	must(g.AddNode(&graph.Node{Name: "fast", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "slow", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "fast", Stream: "l"}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "slow", Stream: "r"}))
	must(g.AddEdge(graph.Edge{From: "fast", To: "sink", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "slow", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func diamondStats() profile.Set {
	return profile.Set{
		"spout": {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"l": 0.5, "r": 0.5}},
		"fast":  {Te: 200, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"slow":  {Te: 2000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":  {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func TestPerProducerDecomposition(t *testing.T) {
	g := diamondGraph(t)
	eg, _ := plan.Build(g, nil, 1)
	m := numa.Synthetic("d", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &Config{Machine: m, Stats: diamondStats(), Ingress: Saturated}
	r, err := Evaluate(eg, plan.CollocateAll(eg), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := eg.OfOp("sink")[0].ID
	fast := eg.OfOp("fast")[0].ID
	slow := eg.OfOp("slow")[0].ID

	// InBy must decompose In exactly.
	var sum float64
	for _, v := range r.Rates[sink].InBy {
		sum += v
	}
	if math.Abs(sum-r.Rates[sink].In) > 1e-6 {
		t.Errorf("InBy sums to %v, In = %v", sum, r.Rates[sink].In)
	}
	// Fast path: spout emits 5e6 on each stream (1e7 cap x 0.5 sel);
	// fast forwards all 5e6; slow is capped at 5e5.
	if got := r.Rates[sink].InBy[fast]; math.Abs(got-5e6) > 1 {
		t.Errorf("sink input from fast = %v, want 5e6", got)
	}
	if got := r.Rates[sink].InBy[slow]; math.Abs(got-5e5) > 1 {
		t.Errorf("sink input from slow = %v, want 5e5", got)
	}
}

// TestWeightedTfByArrivalShare: when producers sit at different
// distances, Tf must be the arrival-weighted mix (FCFS with equal
// priority, Case 1 of Section 3.1).
func TestWeightedTfByArrivalShare(t *testing.T) {
	g := diamondGraph(t)
	eg, _ := plan.Build(g, nil, 1)
	m := numa.Synthetic("w", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &Config{Machine: m, Stats: diamondStats(), Ingress: Saturated}
	p := plan.NewPlacement()
	p.Place(eg.OfOp("spout")[0].ID, 0)
	p.Place(eg.OfOp("fast")[0].ID, 0) // local to sink
	p.Place(eg.OfOp("slow")[0].ID, 1) // 1 hop from sink
	p.Place(eg.OfOp("sink")[0].ID, 0)

	r, err := Evaluate(eg, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := eg.OfOp("sink")[0].ID
	vr := r.Rates[sink]
	// Arrivals: 5e6 local (fast) + ~4.54e5 remote (slow, slowed by its
	// own remote fetch). Expected Tf = remoteShare x 200.
	slowID := eg.OfOp("slow")[0].ID
	remoteShare := vr.InBy[slowID] / vr.In
	want := remoteShare * 200
	if math.Abs(vr.Tf-want) > 1e-6 {
		t.Errorf("sink Tf = %v, want %v (share %v)", vr.Tf, want, remoteShare)
	}
}

// TestBoundWithCompletePlacementEqualsUnbound: when every vertex is
// placed, the Bound option must not change the evaluation.
func TestBoundWithCompletePlacementEqualsUnbound(t *testing.T) {
	g := diamondGraph(t)
	eg, _ := plan.Build(g, map[string]int{"fast": 2}, 1)
	m := numa.Synthetic("b", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &Config{Machine: m, Stats: diamondStats(), Ingress: Saturated}
	p := plan.NewPlacement()
	for i, v := range eg.Vertices {
		p.Place(v.ID, numa.SocketID(i%m.Sockets))
	}
	plain, err := Evaluate(eg, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Evaluate(eg, p, cfg, Options{Bound: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != bounded.Throughput {
		t.Errorf("bound changed a complete evaluation: %v vs %v", plain.Throughput, bounded.Throughput)
	}
}

// TestChannelAccountingUsesProcessedShare: an over-supplied consumer
// only transfers what it processes, not what arrives.
func TestChannelAccountingUsesProcessedShare(t *testing.T) {
	g := diamondGraph(t)
	eg, _ := plan.Build(g, nil, 1)
	m := numa.Synthetic("c", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	stats := diamondStats()
	// Make the sink very slow so it is over-supplied.
	sk := stats["sink"]
	sk.Te = 5000
	stats["sink"] = sk
	cfg := &Config{Machine: m, Stats: stats, Ingress: Saturated}
	p := plan.NewPlacement()
	p.Place(eg.OfOp("spout")[0].ID, 0)
	p.Place(eg.OfOp("fast")[0].ID, 0)
	p.Place(eg.OfOp("slow")[0].ID, 0)
	p.Place(eg.OfOp("sink")[0].ID, 1)
	r, err := Evaluate(eg, p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := eg.OfOp("sink")[0].ID
	vr := r.Rates[sink]
	if !vr.OverSupplied {
		t.Fatal("sink should be over-supplied in this setup")
	}
	// Transferred bytes = processed x N, strictly less than arrivals x N.
	expected := vr.Processed * stats["sink"].N
	if math.Abs(r.ChannelUsed[0][1]-expected) > expected*1e-9 {
		t.Errorf("channel use = %v, want processed-based %v", r.ChannelUsed[0][1], expected)
	}
	arrivalBased := vr.In * stats["sink"].N
	if r.ChannelUsed[0][1] >= arrivalBased {
		t.Error("channel accounting used arrival rate instead of processed rate")
	}
}
