// Package model implements BriskStream's NUMA-aware rate-based
// performance model (Section 3). Given an execution plan (replication +
// placement on a machine) and per-operator statistics, it predicts the
// output rate of every replica (Formula 1), charges the remote-memory
// fetch penalty by relative producer-consumer location (Formula 2),
// identifies bottleneck (over-supplied) operators, checks the three
// resource-constraint families (Eq. 3-5) and reports the application
// throughput R = sum of sink output rates.
//
// The departure from classic rate-based optimization [Viglas & Naughton]
// that defines the paper: an operator's processing capability is NOT a
// constant — it depends on where the plan puts the operator relative to
// its producers.
package model

import (
	"fmt"
	"math"

	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

// TfPolicy selects how the data-fetch time Tf is derived. Normal is the
// RLAS model; Zero and WorstCase are the RLAS_fix(U) and RLAS_fix(L)
// ablations of Section 6.4, which fall back to the classic fixed-
// capability assumption.
type TfPolicy int

const (
	// TfByPlacement charges Formula 2 based on actual relative location.
	TfByPlacement TfPolicy = iota
	// TfZero ignores RMA entirely (upper-bound fixed model, RLAS_fix(U)).
	TfZero
	// TfWorstCase always charges the machine's maximum remote latency as
	// if every operator were anti-collocated from all its producers
	// (lower-bound fixed model, RLAS_fix(L)).
	TfWorstCase
)

// Config carries the model inputs that do not change across placements.
type Config struct {
	Machine *numa.Machine
	Stats   profile.Set
	// Ingress is I: the external input rate (tuples/sec) offered to each
	// spout operator. Use a very large value (e.g. math.MaxFloat64/4) to
	// model the saturated configuration the paper evaluates.
	Ingress float64
	// Policy selects the Tf derivation (default TfByPlacement).
	Policy TfPolicy
}

// Saturated is a convenient "sufficiently large" ingress rate.
const Saturated = 1e15

// VertexRate is the model's per-vertex output.
type VertexRate struct {
	// In is the total input rate ri (tuples/sec).
	In float64
	// InBy decomposes In by producer vertex: ri(s).
	InBy map[plan.VertexID]float64
	// T is the effective per-tuple processing time Te + weighted Tf (ns).
	T float64
	// Tf is the input-weighted average fetch time component of T (ns).
	Tf float64
	// Capacity is the maximum processing rate: Count * 1e9 / T.
	Capacity float64
	// Processed is the expected processed rate min(In, Capacity); for
	// spouts In is the offered ingress.
	Processed float64
	// Sustained is the back-pressure steady-state processing rate:
	// Processed scaled down by downstream consumption (a producer
	// stalls on the first full consumer queue, so it cannot run faster
	// than its slowest consumer drains — the paper's footnote 2).
	// Resource accounting (Eq. 3-5) uses Sustained.
	Sustained float64
	// Out maps output stream -> expected output rate (Processed times
	// stream selectivity).
	Out map[string]float64
	// OverSupplied marks bottlenecks: In > Capacity (Case 1).
	OverSupplied bool
}

// OutTotal sums expected output over all streams.
func (v *VertexRate) OutTotal() float64 {
	var t float64
	for _, r := range v.Out {
		t += r
	}
	return t
}

// Violation describes one broken resource constraint.
type Violation struct {
	Kind   string // "cpu", "membw", "channel"
	From   numa.SocketID
	To     numa.SocketID // equals From for cpu/membw
	Demand float64
	Limit  float64
}

func (v Violation) String() string {
	if v.Kind == "channel" {
		return fmt.Sprintf("channel S%d->S%d: demand %.3g > limit %.3g", v.From, v.To, v.Demand, v.Limit)
	}
	return fmt.Sprintf("%s S%d: demand %.3g > limit %.3g", v.Kind, v.From, v.Demand, v.Limit)
}

// Result is a full model evaluation of one plan.
type Result struct {
	// Throughput is R: the summed expected output (processed) rate of
	// all sink vertices, tuples/sec.
	Throughput float64
	// Rates holds the per-vertex details, indexed by VertexID.
	Rates []VertexRate
	// Bottlenecks lists over-supplied vertices in topological order.
	Bottlenecks []plan.VertexID
	// Violations lists broken constraints (empty for a valid plan).
	Violations []Violation
	// CPUUsed, BWUsed aggregate demand per socket; ChannelUsed[i][j]
	// aggregates cross-socket transfer demand.
	CPUUsed     []float64
	BWUsed      []float64
	ChannelUsed [][]float64
}

// Feasible reports whether the plan satisfies all resource constraints.
func (r *Result) Feasible() bool { return len(r.Violations) == 0 }

// Options tunes a single evaluation.
type Options struct {
	// Bound activates the branch-and-bound bounding function: vertices
	// not yet placed are treated as collocated with all of their
	// producers (Tf = 0) and excluded from resource accounting, which
	// yields a guaranteed upper bound on the throughput of any
	// completion of the partial placement.
	Bound bool
}

// Evaluate runs the performance model for the given execution graph and
// (possibly partial, when opts.Bound) placement.
func Evaluate(eg *plan.ExecGraph, placement *plan.Placement, cfg *Config, opts Options) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("model: nil machine")
	}
	if err := cfg.Stats.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ingress <= 0 {
		return nil, fmt.Errorf("model: ingress %v must be positive", cfg.Ingress)
	}
	if !opts.Bound {
		if err := placement.Validate(eg, cfg.Machine, true); err != nil {
			return nil, err
		}
	} else if err := placement.Validate(eg, cfg.Machine, false); err != nil {
		return nil, err
	}

	m := cfg.Machine
	res := &Result{
		Rates:       make([]VertexRate, len(eg.Vertices)),
		CPUUsed:     make([]float64, m.Sockets),
		BWUsed:      make([]float64, m.Sockets),
		ChannelUsed: make([][]float64, m.Sockets),
	}
	for i := range res.ChannelUsed {
		res.ChannelUsed[i] = make([]float64, m.Sockets)
	}

	// Total ingress is split across spout vertices by fused replica count.
	spoutTotal := map[string]int{}
	for _, v := range eg.Vertices {
		if v.Spout {
			spoutTotal[v.Op] += v.Count
		}
	}

	maxLat := maxRemoteLatency(m)

	for _, id := range eg.TopoOrder() {
		v := eg.Vertex(id)
		st, ok := cfg.Stats[v.Op]
		if !ok {
			return nil, fmt.Errorf("model: no stats for operator %q", v.Op)
		}
		vr := VertexRate{InBy: map[plan.VertexID]float64{}, Out: map[string]float64{}}

		// Input rate: external for spouts, producer output otherwise.
		if v.Spout {
			vr.In = cfg.Ingress * float64(v.Count) / float64(spoutTotal[v.Op])
		} else {
			for _, e := range eg.In(id) {
				share := res.Rates[e.From].Out[e.Stream] * e.Share
				vr.InBy[e.From] += share
				vr.In += share
			}
		}

		// Effective fetch time: input-weighted over producers (tuples are
		// served first-come-first-serve with equal priority, so producers
		// contribute in proportion to their arrival rates).
		vr.Tf = fetchTime(eg, placement, cfg, id, &vr, maxLat)
		vr.T = st.Te + vr.Tf
		vr.Capacity = float64(v.Count) * 1e9 / vr.T

		vr.Processed = math.Min(vr.In, vr.Capacity)
		vr.OverSupplied = vr.In > vr.Capacity*(1+1e-12)
		for stream, sel := range st.Selectivity {
			vr.Out[stream] = vr.Processed * sel
		}
		if v.Sink {
			res.Throughput += vr.Processed
		}
		if vr.OverSupplied {
			res.Bottlenecks = append(res.Bottlenecks, id)
		}
		res.Rates[id] = vr
	}

	// Backward pass: back-pressure throttling. A vertex sustains only
	// the fraction of its forward-pass rate that its consumers actually
	// drain; the factor compounds upstream (a saturated spout feeding an
	// over-supplied pipeline does not burn a full core — the bounded
	// queues stall it).
	order := eg.TopoOrder()
	sustainFrac := make([]float64, len(eg.Vertices))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		vr := &res.Rates[id]
		f := 1.0
		for _, e := range eg.Out(id) {
			w := &res.Rates[e.To]
			if w.In <= 0 {
				continue
			}
			// Fraction of arrivals consumer e.To drains in steady state.
			consume := w.Processed / w.In * sustainFrac[e.To]
			if consume < f {
				f = consume
			}
		}
		sustainFrac[id] = f
		vr.Sustained = vr.Processed * f
	}

	// Resource accounting (Eq. 3-5) at sustained rates; skipped for
	// unplaced vertices under Bound.
	for _, id := range order {
		vr := &res.Rates[id]
		st := cfg.Stats[eg.Vertex(id).Op]
		sock, placed := placement.SocketOf(id)
		if !placed {
			continue
		}
		res.CPUUsed[sock] += vr.Sustained * vr.T
		res.BWUsed[sock] += vr.Sustained * st.M
		if vr.In > 0 {
			procShare := vr.Sustained / vr.In
			for from, rate := range vr.InBy {
				fsock, fplaced := placement.SocketOf(from)
				if fplaced && fsock != sock {
					res.ChannelUsed[fsock][sock] += rate * procShare * st.N
				}
			}
		}
	}

	// Constraint checks (Eq. 3-5). CPU capacity is in attainable CPU
	// nanoseconds per second per socket.
	for s := 0; s < m.Sockets; s++ {
		if res.CPUUsed[s] > m.CyclesPerSocket*(1+1e-9) {
			res.Violations = append(res.Violations, Violation{Kind: "cpu", From: numa.SocketID(s), To: numa.SocketID(s), Demand: res.CPUUsed[s], Limit: m.CyclesPerSocket})
		}
		if res.BWUsed[s] > m.LocalBandwidth*(1+1e-9) {
			res.Violations = append(res.Violations, Violation{Kind: "membw", From: numa.SocketID(s), To: numa.SocketID(s), Demand: res.BWUsed[s], Limit: m.LocalBandwidth})
		}
		for d := 0; d < m.Sockets; d++ {
			if d == s {
				continue
			}
			if res.ChannelUsed[s][d] > m.Q(numa.SocketID(s), numa.SocketID(d))*(1+1e-9) {
				res.Violations = append(res.Violations, Violation{Kind: "channel", From: numa.SocketID(s), To: numa.SocketID(d), Demand: res.ChannelUsed[s][d], Limit: m.Q(numa.SocketID(s), numa.SocketID(d))})
			}
		}
	}
	return res, nil
}

// fetchTime computes the input-weighted average Tf for vertex id under
// the configured policy. Under Options.Bound semantics, any pair with an
// unplaced endpoint is treated as collocated (Tf contribution 0), which
// is what makes the bounding function an upper bound.
func fetchTime(eg *plan.ExecGraph, placement *plan.Placement, cfg *Config, id plan.VertexID, vr *VertexRate, maxLat float64) float64 {
	st := cfg.Stats[eg.Vertex(id).Op]
	switch cfg.Policy {
	case TfZero:
		return 0
	case TfWorstCase:
		if eg.Vertex(id).Spout {
			return 0
		}
		lines := math.Ceil(st.N / numa.CacheLineSize)
		return lines * maxLat
	}
	if vr.In <= 0 {
		return 0
	}
	sock, placed := placement.SocketOf(id)
	if !placed {
		return 0
	}
	var weighted float64
	for from, rate := range vr.InBy {
		fsock, fplaced := placement.SocketOf(from)
		if !fplaced || fsock == sock {
			continue
		}
		weighted += rate * cfg.Machine.FetchCost(int(st.N), fsock, sock)
	}
	return weighted / vr.In
}

func maxRemoteLatency(m *numa.Machine) float64 {
	var max float64
	for i := 0; i < m.Sockets; i++ {
		for j := 0; j < m.Sockets; j++ {
			if i != j && m.Latency[i][j] > max {
				max = m.Latency[i][j]
			}
		}
	}
	if max == 0 && m.Sockets > 0 {
		max = m.Latency[0][0]
	}
	return max
}

// Demand summarizes one vertex's maximum resource appetite under the
// current rates: the CPU time and memory bandwidth it would consume per
// second if processing at its arrival rate (capped by capacity). The
// branch-and-bound "can these fit on a socket" gate uses it.
type Demand struct {
	CPU float64 // ns of CPU time per second
	BW  float64 // bytes/sec of local memory bandwidth
}

// VertexDemand extracts the demand of vertex id from a prior evaluation,
// at the back-pressure sustained rate.
func (r *Result) VertexDemand(eg *plan.ExecGraph, cfg *Config, id plan.VertexID) Demand {
	vr := r.Rates[id]
	st := cfg.Stats[eg.Vertex(id).Op]
	return Demand{CPU: vr.Sustained * vr.T, BW: vr.Sustained * st.M}
}

// RelativeError is the paper's model-accuracy metric:
// |measured - estimated| / measured (Section 6.2).
func RelativeError(measured, estimated float64) float64 {
	if measured == 0 {
		return math.Inf(1)
	}
	return math.Abs(measured-estimated) / measured
}
