package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Add(5)
	if c.Value() != 8005 {
		t.Fatalf("counter = %d, want 8005", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := h.Quantile(0.99); got < 99 || got > 100 {
		t.Errorf("p99 = %v, want in [99,100]", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.CDF(5) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 10_000; i++ {
		h.Observe(rand.Float64() * 1000)
	}
	if len(h.samples) != 100 {
		t.Fatalf("retained %d samples, want 100", len(h.samples))
	}
	if h.Count() != 10_000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Quantiles over the reservoir should still roughly track the
	// uniform distribution.
	med := h.Quantile(0.5)
	if med < 300 || med > 700 {
		t.Errorf("reservoir median %v too far from 500", med)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(len(raw) + 1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			h.Observe(v)
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		return h.Quantile(lo) <= h.Quantile(hi) &&
			h.Quantile(0) == h.Min() && h.Quantile(1) == h.Max()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cdf := CDFOf(vals, 5)
	if len(cdf) != 5 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].Value != 1 || cdf[0].Percent != 0.2 {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[4].Value != 5 || cdf[4].Percent != 1 {
		t.Errorf("last point = %+v", cdf[4])
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) {
		t.Error("CDF values not sorted")
	}
	// Fewer points than values: still ends at max with percent 1.
	c2 := CDFOf(vals, 2)
	if len(c2) != 2 || c2[1].Value != 5 || c2[1].Percent != 1 {
		t.Errorf("coarse CDF = %+v", c2)
	}
	// More points than values clamps.
	c3 := CDFOf([]float64{1}, 10)
	if len(c3) != 1 {
		t.Errorf("clamped CDF len = %d", len(c3))
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Execute: 100, RMA: 50, Others: 25}
	if b.Total() != 175 {
		t.Errorf("Total = %v", b.Total())
	}
	if s := b.String(); !strings.Contains(s, "execute=100.0ns") {
		t.Errorf("String = %q", s)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"app", "value"}, [][]string{{"WC", "96390.8"}, {"FD", "7172.5"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app") || !strings.Contains(lines[2], "WC") {
		t.Errorf("table layout wrong:\n%s", out)
	}
}

func TestThroughput(t *testing.T) {
	var c Counter
	tp := NewThroughput(&c)
	c.Add(1000)
	if tp.Rate() <= 0 {
		t.Error("rate should be positive after events")
	}
}

func TestSampleRate(t *testing.T) {
	sr := NewSampleRate(500)
	time.Sleep(time.Millisecond)
	r := sr.Rate(1500)
	if r <= 0 {
		t.Error("rate should be positive after the sample grew")
	}
	if sr.Rate(500) != 0 {
		t.Error("unchanged sample should give zero rate")
	}
}

func TestQuantileCacheStaysCorrect(t *testing.T) {
	h := NewHistogram(8) // tiny reservoir so replacement paths run
	for i := 1; i <= 8; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("max quantile = %v, want 8", got)
	}
	// Repeated reads between observations must agree (served from cache).
	if a, b := h.Quantile(0.5), h.Quantile(0.5); a != b {
		t.Fatalf("cached quantile drifted: %v vs %v", a, b)
	}
	// Keep observing past the cap; reservoir replacement must invalidate
	// the cache so new extremes become visible.
	for i := 0; i < 10_000; i++ {
		h.Observe(1e9)
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("after reservoir churn max quantile = %v, want 1e9", got)
	}
	if got := h.Quantile(0); got < 1 {
		t.Fatalf("min quantile = %v, want >= 1", got)
	}
	// The CDF view must reflect the same (current) sample set.
	cdf := h.CDF(4)
	if len(cdf) == 0 || cdf[len(cdf)-1].Value != h.Quantile(1) {
		t.Fatalf("CDF tail %+v disagrees with max quantile %v", cdf, h.Quantile(1))
	}
}

func TestQuantileCacheConcurrent(t *testing.T) {
	h := NewHistogram(1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(i % 997))
				if i%64 == 0 {
					_ = h.Quantile(0.99)
					_ = h.CDF(10)
				}
			}
		}()
	}
	wg.Wait()
	if q := h.Quantile(0.99); q <= 0 || q > 996 {
		t.Fatalf("p99 = %v out of range", q)
	}
}
