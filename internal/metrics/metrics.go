// Package metrics provides the measurement primitives BriskStream's
// evaluation uses: throughput counters, latency histograms with
// percentiles and CDFs, and the per-tuple execution-time breakdown
// (Execute / RMA / Others) of Section 6.1.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for
// concurrent use. Sinks use one Counter each; application throughput is
// the sum of sink counter rates.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Reset zeroes the counter (the engine resets per-run counters at the
// start of each Run so one engine can be run repeatedly).
func (c *Counter) Reset() { c.n.Store(0) }

// Histogram collects float64 observations (typically nanoseconds or
// milliseconds) and reports order statistics. It keeps raw samples up to
// a cap and then reservoir-subsamples, which preserves quantile accuracy
// for the long-running latency experiments without unbounded memory.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	cap     int
	count   uint64
	sum     float64
	min     float64
	max     float64
	rng     uint64 // xorshift state for reservoir sampling

	// sorted caches an ordered copy of samples so repeated quantile reads
	// (a scrape asks for p50/p90/p99 every second) sort once per sample
	// mutation instead of once per call. Invalidated by Observe only when
	// it actually changed the sample set.
	sorted   []float64
	sortedOK bool
}

// NewHistogram creates a histogram retaining at most maxSamples raw
// observations (default 100k if maxSamples <= 0).
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 100_000
	}
	return &Histogram{cap: maxSamples, min: math.Inf(1), max: math.Inf(-1), rng: 0x9E3779B97F4A7C15}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
		h.sortedOK = false
		return
	}
	// Reservoir sampling: replace a random slot with probability cap/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % h.count; idx < uint64(h.cap) {
		h.samples[idx] = v
		h.sortedOK = false
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (not just the
// retained samples), or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) over retained samples
// using linear interpolation, or 0 when empty. The sorted view is
// cached across calls, so asking for several quantiles between
// observations costs one sort total, not one per call.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileOf(h.sortedLocked(), q)
}

// sortedLocked returns the cached ordered copy of samples, rebuilding
// it only when an Observe changed the sample set since the last build.
// The cache reuses its backing array, so steady-state re-sorts (full
// reservoir) allocate nothing.
func (h *Histogram) sortedLocked() []float64 {
	if !h.sortedOK {
		h.sorted = append(h.sorted[:0], h.samples...)
		sort.Float64s(h.sorted)
		h.sortedOK = true
	}
	return h.sorted
}

// quantileOf interpolates the q-quantile of an already-sorted slice.
func quantileOf(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value   float64 // observation value
	Percent float64 // cumulative fraction in [0,1]
}

// CDF returns an empirical CDF with at most points entries, evenly spaced
// in cumulative probability. The paper plots CDFs of operator execution
// cycles (Figure 3), end-to-end latency (Figure 7) and random-plan
// throughput (Figure 14).
func (h *Histogram) CDF(points int) []CDFPoint {
	h.mu.Lock()
	// Copy the cached sorted view: cdfOfSorted runs outside the lock and
	// the cache's backing array mutates on the next invalidated read.
	s := append([]float64(nil), h.sortedLocked()...)
	h.mu.Unlock()
	return cdfOfSorted(s, points)
}

// CDFOf computes an empirical CDF of the given values.
func CDFOf(values []float64, points int) []CDFPoint {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return cdfOfSorted(s, points)
}

// cdfOfSorted computes the CDF of an already-sorted slice it may keep.
func cdfOfSorted(s []float64, points int) []CDFPoint {
	if len(s) == 0 || points <= 0 {
		return nil
	}
	if points > len(s) {
		points = len(s)
	}
	out := make([]CDFPoint, 0, points)
	for k := 1; k <= points; k++ {
		idx := k*len(s)/points - 1
		out = append(out, CDFPoint{Value: s[idx], Percent: float64(k) / float64(points)})
	}
	return out
}

// Throughput measures an event rate over a wall-clock window.
type Throughput struct {
	counter *Counter
	start   time.Time
	base    uint64
}

// NewThroughput starts measuring rate increases of c from now.
func NewThroughput(c *Counter) *Throughput {
	return &Throughput{counter: c, start: time.Now(), base: c.Value()}
}

// Rate returns events/second since construction.
func (t *Throughput) Rate() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.counter.Value()-t.base) / elapsed
}

// SampleRate measures an event rate from externally sampled cumulative
// counts — the shape Engine.QueueStats and Engine.Snapshot produce from
// their atomics — where no Counter is available to wrap.
type SampleRate struct {
	start time.Time
	base  uint64
}

// NewSampleRate starts measuring from the given cumulative base count.
func NewSampleRate(base uint64) *SampleRate {
	return &SampleRate{start: time.Now(), base: base}
}

// Rate returns events/second between the base sample and current. A
// current below the base (counter reset, samples from different
// engines) yields 0 rather than a wrapped uint64.
func (s *SampleRate) Rate(current uint64) float64 {
	elapsed := time.Since(s.start).Seconds()
	if elapsed <= 0 || current < s.base {
		return 0
	}
	return float64(current-s.base) / elapsed
}

// Breakdown is the per-tuple execution-time decomposition of Section 6.1:
// Execute (core function execution including processor stalls), RMA
// (remote memory access, only when placed away from the producer) and
// Others (queue access, object churn, context switching — overhead).
// All values are nanoseconds per tuple.
type Breakdown struct {
	Execute float64
	RMA     float64
	Others  float64
}

// Total returns the full per-tuple round-trip time.
func (b Breakdown) Total() float64 { return b.Execute + b.RMA + b.Others }

// String renders the breakdown as a compact report row.
func (b Breakdown) String() string {
	return fmt.Sprintf("execute=%.1fns rma=%.1fns others=%.1fns total=%.1fns",
		b.Execute, b.RMA, b.Others, b.Total())
}

// Table renders rows of label/value pairs as an aligned text table; the
// experiment harness uses it for paper-style output.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
