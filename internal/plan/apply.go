package plan

import (
	"fmt"
	"sort"

	"briskstream/internal/numa"
)

// EngineConfig is an execution plan translated into the engine's terms:
// the replica count per logical operator and the socket of every
// "op#replica" task label. Apply produces it from an optimized
// (ExecGraph, Placement) pair; the engine's Config consumes it
// verbatim (Replication on the topology, Placement on the config).
type EngineConfig struct {
	Replication map[string]int
	Placement   map[string]numa.SocketID
}

// Apply flattens an execution graph and its placement into an
// EngineConfig. Fused vertices expand back to individual replicas: the
// replicas of one operator are numbered 0..n-1 in vertex-index order,
// each inheriting its vertex's socket. Every vertex must be placed.
func Apply(eg *ExecGraph, p *Placement) (*EngineConfig, error) {
	if eg == nil || p == nil {
		return nil, fmt.Errorf("plan: Apply requires a graph and a placement")
	}
	if !p.Complete(eg) {
		return nil, fmt.Errorf("plan: placement covers %d of %d vertices", p.Placed(), len(eg.Vertices))
	}
	cfg := &EngineConfig{
		Replication: make(map[string]int, len(eg.byOp)),
		Placement:   make(map[string]numa.SocketID, eg.TotalReplicas()),
	}
	ops := make([]string, 0, len(eg.byOp))
	for op := range eg.byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		replica := 0
		for _, v := range eg.OfOp(op) {
			s, ok := p.SocketOf(v.ID)
			if !ok {
				return nil, fmt.Errorf("plan: vertex %s is unplaced", v.Label())
			}
			for i := 0; i < v.Count; i++ {
				cfg.Placement[fmt.Sprintf("%s#%d", op, replica)] = s
				replica++
			}
		}
		cfg.Replication[op] = replica
	}
	return cfg, nil
}

// FoldOnto remaps the placement's sockets onto a host with n sockets,
// so a plan computed against one machine model (say, the paper's
// 4-socket servers) can execute — pinned — on the box actually under
// us. Socket s becomes s mod n; out-of-model (negative) sockets clamp
// to 0. The relative co-location structure survives where it can: two
// tasks the optimizer put together stay together, and on a host with
// fewer sockets the surplus folds round-robin instead of stacking
// everything on socket 0. A nil config or n <= 0 is a no-op.
func (c *EngineConfig) FoldOnto(n int) {
	if c == nil || n <= 0 {
		return
	}
	for label, s := range c.Placement {
		if s < 0 {
			s = 0
		}
		c.Placement[label] = numa.SocketID(int(s) % n)
	}
}
