package plan

import (
	"testing"

	"briskstream/internal/numa"
)

func TestFoldOnto(t *testing.T) {
	cfg := &EngineConfig{Placement: map[string]numa.SocketID{
		"a#0": 0, "a#1": 1, "b#0": 2, "b#1": 3, "c#0": -1, "d#0": 5,
	}}
	cfg.FoldOnto(2)
	want := map[string]numa.SocketID{
		"a#0": 0, "a#1": 1, "b#0": 0, "b#1": 1, "c#0": 0, "d#0": 1,
	}
	for label, s := range want {
		if got := cfg.Placement[label]; got != s {
			t.Errorf("%s folded to socket %d, want %d", label, got, s)
		}
	}
	// Co-location survives folding: a#1 and b#1 shared distance-2
	// sockets on the model and still share one on the host.
	if cfg.Placement["a#1"] != cfg.Placement["b#1"] {
		t.Error("folding separated co-located tasks a#1 and b#1")
	}

	// Degenerate inputs are no-ops, not panics.
	cfg.FoldOnto(0)
	if cfg.Placement["d#0"] != 1 {
		t.Error("FoldOnto(0) mutated the placement")
	}
	var nilCfg *EngineConfig
	nilCfg.FoldOnto(2)
}
