// Package plan represents streaming execution plans: the execution graph
// obtained by replicating each logical operator (Section 2.2), the
// placement of every replica onto CPU sockets, and the graph compression
// heuristic (Section 4, heuristic 3) that fuses multiple replicas of one
// operator into a single schedulable instance to shrink the search space.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"briskstream/internal/graph"
	"briskstream/internal/numa"
)

// VertexID identifies a vertex of an execution graph.
type VertexID int

// Vertex is one schedulable unit: a group of Count replicas of one
// logical operator that are placed together. With compress ratio 1 every
// vertex holds exactly one replica (the most fine-grained optimization).
type Vertex struct {
	ID    VertexID
	Op    string // logical operator name
	Index int    // group index within the operator
	Count int    // number of fused replicas (>= 1)
	Spout bool
	Sink  bool
}

// Label renders "op#index" for reports.
func (v *Vertex) Label() string { return fmt.Sprintf("%s#%d", v.Op, v.Index) }

// Edge is a replica-level data flow with a rate share: the fraction (or
// multiple, for broadcast) of the producer vertex's output on Stream that
// flows along this edge.
type Edge struct {
	From, To VertexID
	Stream   string
	Share    float64
}

// ExecGraph is the execution graph: the logical DAG expanded by a
// replication configuration and optionally compressed.
type ExecGraph struct {
	App         *graph.Graph
	Vertices    []*Vertex
	Replication map[string]int // logical operator -> total replicas
	Ratio       int            // compress ratio used to build the graph

	out  map[VertexID][]Edge
	in   map[VertexID][]Edge
	byOp map[string][]*Vertex
}

// Build expands the logical graph under the given replication
// configuration (operator name -> replica count; absent means 1) and
// compress ratio. Replicas of one operator are fused into
// ceil(replicas/ratio) vertices with counts as even as possible.
func Build(app *graph.Graph, replication map[string]int, ratio int) (*ExecGraph, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("plan: compress ratio %d < 1", ratio)
	}
	eg := &ExecGraph{
		App:         app,
		Replication: map[string]int{},
		Ratio:       ratio,
		out:         map[VertexID][]Edge{},
		in:          map[VertexID][]Edge{},
		byOp:        map[string][]*Vertex{},
	}
	for _, n := range app.Nodes() {
		repl := replication[n.Name]
		if repl <= 0 {
			repl = 1
		}
		eg.Replication[n.Name] = repl
		groups := (repl + ratio - 1) / ratio
		base, extra := repl/groups, repl%groups
		for i := 0; i < groups; i++ {
			count := base
			if i < extra {
				count++
			}
			v := &Vertex{
				ID:    VertexID(len(eg.Vertices)),
				Op:    n.Name,
				Index: i,
				Count: count,
				Spout: n.IsSpout,
				Sink:  n.IsSink,
			}
			eg.Vertices = append(eg.Vertices, v)
			eg.byOp[n.Name] = append(eg.byOp[n.Name], v)
		}
	}
	for _, le := range app.Edges() {
		prods := eg.byOp[le.From]
		cons := eg.byOp[le.To]
		total := eg.Replication[le.To]
		for _, p := range prods {
			switch le.Partitioning {
			case graph.Global:
				eg.addEdge(Edge{From: p.ID, To: cons[0].ID, Stream: le.Stream, Share: 1})
			case graph.Broadcast:
				for _, c := range cons {
					eg.addEdge(Edge{From: p.ID, To: c.ID, Stream: le.Stream, Share: float64(c.Count)})
				}
			default: // Shuffle, Fields: split in proportion to fused size
				for _, c := range cons {
					eg.addEdge(Edge{From: p.ID, To: c.ID, Stream: le.Stream, Share: float64(c.Count) / float64(total)})
				}
			}
		}
	}
	return eg, nil
}

func (eg *ExecGraph) addEdge(e Edge) {
	eg.out[e.From] = append(eg.out[e.From], e)
	eg.in[e.To] = append(eg.in[e.To], e)
}

// Out returns the outgoing edges of a vertex.
func (eg *ExecGraph) Out(id VertexID) []Edge { return eg.out[id] }

// In returns the incoming edges of a vertex.
func (eg *ExecGraph) In(id VertexID) []Edge { return eg.in[id] }

// Vertex returns the vertex with the given id.
func (eg *ExecGraph) Vertex(id VertexID) *Vertex { return eg.Vertices[id] }

// OfOp returns the vertices of one logical operator in index order.
func (eg *ExecGraph) OfOp(op string) []*Vertex { return eg.byOp[op] }

// TotalReplicas sums the replica counts across all vertices.
func (eg *ExecGraph) TotalReplicas() int {
	n := 0
	for _, v := range eg.Vertices {
		n += v.Count
	}
	return n
}

// TopoOrder returns vertex ids topologically ordered (producers first),
// derived from the logical order so it never fails on a validated app.
func (eg *ExecGraph) TopoOrder() []VertexID {
	logical, err := eg.App.TopoSort()
	if err != nil {
		// Build is only called on validated graphs; a cycle here is a
		// programming error.
		panic(fmt.Sprintf("plan: logical graph no longer acyclic: %v", err))
	}
	var out []VertexID
	for _, op := range logical {
		for _, v := range eg.byOp[op] {
			out = append(out, v.ID)
		}
	}
	return out
}

// Pairs returns every producer-consumer vertex pair with a direct edge,
// in deterministic order. This is the collocation-decision list of the
// branch-and-bound heuristic 1.
func (eg *ExecGraph) Pairs() [][2]VertexID {
	seen := map[[2]VertexID]bool{}
	var out [][2]VertexID
	for _, id := range eg.TopoOrder() {
		for _, e := range eg.out[id] {
			k := [2]VertexID{e.From, e.To}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// Placement maps vertices to sockets. Unplaced vertices are absent.
type Placement struct {
	socketOf map[VertexID]numa.SocketID
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{socketOf: map[VertexID]numa.SocketID{}}
}

// Place assigns a vertex to a socket.
func (p *Placement) Place(v VertexID, s numa.SocketID) { p.socketOf[v] = s }

// Unplace removes a vertex's assignment.
func (p *Placement) Unplace(v VertexID) { delete(p.socketOf, v) }

// SocketOf returns the socket of v and whether v is placed.
func (p *Placement) SocketOf(v VertexID) (numa.SocketID, bool) {
	s, ok := p.socketOf[v]
	return s, ok
}

// Placed returns the number of placed vertices.
func (p *Placement) Placed() int { return len(p.socketOf) }

// Complete reports whether all vertices of eg are placed.
func (p *Placement) Complete(eg *ExecGraph) bool { return len(p.socketOf) == len(eg.Vertices) }

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	c := NewPlacement()
	for k, v := range p.socketOf {
		c.socketOf[k] = v
	}
	return c
}

// Validate checks that every placed vertex refers to a valid vertex and
// socket, and (if requireComplete) that all vertices are placed exactly
// once — the "allocated exactly once" constraint of Section 3.2.
func (p *Placement) Validate(eg *ExecGraph, m *numa.Machine, requireComplete bool) error {
	for id, s := range p.socketOf {
		if int(id) < 0 || int(id) >= len(eg.Vertices) {
			return fmt.Errorf("plan: placement refers to unknown vertex %d", id)
		}
		if int(s) < 0 || int(s) >= m.Sockets {
			return fmt.Errorf("plan: vertex %d placed on invalid socket %d", id, s)
		}
	}
	if requireComplete && !p.Complete(eg) {
		return fmt.Errorf("plan: only %d of %d vertices placed", len(p.socketOf), len(eg.Vertices))
	}
	return nil
}

// String renders the placement grouped by socket.
func (p *Placement) String(eg *ExecGraph) string {
	bySocket := map[numa.SocketID][]string{}
	for id, s := range p.socketOf {
		bySocket[s] = append(bySocket[s], eg.Vertex(id).Label())
	}
	var sockets []int
	for s := range bySocket {
		sockets = append(sockets, int(s))
	}
	sort.Ints(sockets)
	var b strings.Builder
	for _, s := range sockets {
		names := bySocket[numa.SocketID(s)]
		sort.Strings(names)
		fmt.Fprintf(&b, "S%d: %s\n", s, strings.Join(names, ", "))
	}
	return b.String()
}

// Plan is a complete streaming execution plan: what runs where on which
// machine.
type Plan struct {
	Graph     *ExecGraph
	Machine   *numa.Machine
	Placement *Placement
}

// Validate checks the whole plan.
func (pl *Plan) Validate() error {
	if pl.Graph == nil || pl.Machine == nil || pl.Placement == nil {
		return fmt.Errorf("plan: incomplete plan")
	}
	if err := pl.Machine.Validate(); err != nil {
		return err
	}
	return pl.Placement.Validate(pl.Graph, pl.Machine, true)
}

// CollocateAll returns a placement putting every vertex on socket 0 —
// the initial node of the branch-and-bound search.
func CollocateAll(eg *ExecGraph) *Placement {
	p := NewPlacement()
	for _, v := range eg.Vertices {
		p.Place(v.ID, 0)
	}
	return p
}
