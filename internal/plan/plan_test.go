package plan

import (
	"math"
	"math/rand"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/numa"
)

func wcGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("wc")
	add := func(n *graph.Node) {
		t.Helper()
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	add(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	add(&graph.Node{Name: "parser", Selectivity: map[string]float64{"default": 1}})
	add(&graph.Node{Name: "splitter", Selectivity: map[string]float64{"default": 10}})
	add(&graph.Node{Name: "counter", Selectivity: map[string]float64{"default": 1}})
	add(&graph.Node{Name: "sink", IsSink: true})
	edges := []graph.Edge{
		{From: "spout", To: "parser", Stream: "default"},
		{From: "parser", To: "splitter", Stream: "default"},
		{From: "splitter", To: "counter", Stream: "default", Partitioning: graph.Fields},
		{From: "counter", To: "sink", Stream: "default"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildNoReplication(t *testing.T) {
	g := wcGraph(t)
	eg, err := Build(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eg.Vertices) != 5 {
		t.Fatalf("vertices = %d, want 5", len(eg.Vertices))
	}
	if eg.TotalReplicas() != 5 {
		t.Fatalf("replicas = %d, want 5", eg.TotalReplicas())
	}
	for _, v := range eg.Vertices {
		if v.Count != 1 {
			t.Errorf("%s count = %d", v.Label(), v.Count)
		}
	}
}

func TestBuildWithReplication(t *testing.T) {
	g := wcGraph(t)
	repl := map[string]int{"parser": 2, "splitter": 3, "counter": 3}
	eg, err := Build(g, repl, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 3 + 3 + 1 = 10 vertices at ratio 1.
	if len(eg.Vertices) != 10 {
		t.Fatalf("vertices = %d, want 10", len(eg.Vertices))
	}
	// Shuffle edge spout->parser: shares across 2 parser replicas sum to 1.
	spout := eg.OfOp("spout")[0]
	var sum float64
	for _, e := range eg.Out(spout.ID) {
		sum += e.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("spout out-share sum = %v, want 1", sum)
	}
	// Each splitter replica connects to all 3 counter replicas.
	for _, sp := range eg.OfOp("splitter") {
		if got := len(eg.Out(sp.ID)); got != 3 {
			t.Errorf("splitter out-degree = %d, want 3", got)
		}
	}
}

func TestBuildCompression(t *testing.T) {
	g := wcGraph(t)
	repl := map[string]int{"splitter": 12}
	eg, err := Build(g, repl, 5)
	if err != nil {
		t.Fatal(err)
	}
	groups := eg.OfOp("splitter")
	// ceil(12/5) = 3 groups with counts 4,4,4.
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	total := 0
	for _, v := range groups {
		total += v.Count
		if v.Count < 1 {
			t.Errorf("group %s has count %d", v.Label(), v.Count)
		}
	}
	if total != 12 {
		t.Errorf("fused replicas = %d, want 12", total)
	}
	if eg.TotalReplicas() != 12+4 {
		t.Errorf("TotalReplicas = %d", eg.TotalReplicas())
	}
	// Shares still sum to 1 for shuffle/fields edges into splitter groups.
	parser := eg.OfOp("parser")[0]
	var sum float64
	for _, e := range eg.Out(parser.ID) {
		sum += e.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("share sum = %v, want 1", sum)
	}
}

func TestBuildRejectsBadRatio(t *testing.T) {
	if _, err := Build(wcGraph(t), nil, 0); err == nil {
		t.Error("ratio 0 accepted")
	}
}

func TestBroadcastAndGlobalShares(t *testing.T) {
	g := graph.New("bg")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "bcast", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "bcast", Stream: "default", Partitioning: graph.Broadcast})
	g.AddEdge(graph.Edge{From: "bcast", To: "sink", Stream: "default", Partitioning: graph.Global})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	eg, err := Build(g, map[string]int{"bcast": 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spout := eg.OfOp("spout")[0]
	// Broadcast: every replica receives the full stream; shares are 1 each.
	var sum float64
	for _, e := range eg.Out(spout.ID) {
		if e.Share != 1 {
			t.Errorf("broadcast share = %v, want 1", e.Share)
		}
		sum += e.Share
	}
	if sum != 3 {
		t.Errorf("broadcast total = %v, want 3 (replicated delivery)", sum)
	}
	// Global: each bcast vertex sends everything to the single sink vertex.
	for _, b := range eg.OfOp("bcast") {
		out := eg.Out(b.ID)
		if len(out) != 1 || out[0].Share != 1 {
			t.Errorf("global edge = %+v", out)
		}
	}
}

func TestTopoOrderAndPairs(t *testing.T) {
	eg, err := Build(wcGraph(t), map[string]int{"parser": 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	order := eg.TopoOrder()
	if len(order) != len(eg.Vertices) {
		t.Fatalf("order covers %d of %d vertices", len(order), len(eg.Vertices))
	}
	pos := map[VertexID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, v := range eg.Vertices {
		for _, e := range eg.Out(v.ID) {
			if pos[e.From] >= pos[e.To] {
				t.Errorf("edge %d->%d violates topo order", e.From, e.To)
			}
		}
	}
	pairs := eg.Pairs()
	// spout->parser(2) + parser(2)->splitter + splitter->counter + counter->sink = 2+2+1+1 = 6.
	if len(pairs) != 6 {
		t.Errorf("pairs = %d, want 6", len(pairs))
	}
}

func TestPlacement(t *testing.T) {
	eg, _ := Build(wcGraph(t), nil, 1)
	m := numa.ServerA()
	p := NewPlacement()
	if p.Complete(eg) {
		t.Error("empty placement complete")
	}
	for i, v := range eg.Vertices {
		p.Place(v.ID, numa.SocketID(i%2))
	}
	if !p.Complete(eg) {
		t.Error("full placement not complete")
	}
	if err := p.Validate(eg, m, true); err != nil {
		t.Fatal(err)
	}
	s, ok := p.SocketOf(eg.Vertices[1].ID)
	if !ok || s != 1 {
		t.Errorf("SocketOf = %v, %v", s, ok)
	}
	c := p.Clone()
	c.Place(eg.Vertices[0].ID, 5)
	if got, _ := p.SocketOf(eg.Vertices[0].ID); got == 5 {
		t.Error("Clone aliases parent")
	}
	p.Unplace(eg.Vertices[0].ID)
	if err := p.Validate(eg, m, true); err == nil {
		t.Error("incomplete placement accepted as complete")
	}
	if err := p.Validate(eg, m, false); err != nil {
		t.Errorf("partial validation failed: %v", err)
	}
}

func TestPlacementValidateRejects(t *testing.T) {
	eg, _ := Build(wcGraph(t), nil, 1)
	m := numa.ServerA()
	p := NewPlacement()
	p.Place(VertexID(99), 0)
	if err := p.Validate(eg, m, false); err == nil {
		t.Error("unknown vertex accepted")
	}
	p2 := NewPlacement()
	p2.Place(eg.Vertices[0].ID, numa.SocketID(99))
	if err := p2.Validate(eg, m, false); err == nil {
		t.Error("invalid socket accepted")
	}
}

func TestCollocateAll(t *testing.T) {
	eg, _ := Build(wcGraph(t), map[string]int{"counter": 4}, 1)
	p := CollocateAll(eg)
	if !p.Complete(eg) {
		t.Fatal("CollocateAll incomplete")
	}
	for _, v := range eg.Vertices {
		if s, _ := p.SocketOf(v.ID); s != 0 {
			t.Errorf("%s on socket %d", v.Label(), s)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	eg, _ := Build(wcGraph(t), nil, 1)
	pl := &Plan{Graph: eg, Machine: numa.ServerA(), Placement: CollocateAll(eg)}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Plan{}).Validate(); err == nil {
		t.Error("empty plan accepted")
	}
}

// Property: for random replication configurations and ratios, fused counts
// are positive, sum to the replication level, and shuffle shares sum to 1.
func TestBuildInvariantsRandom(t *testing.T) {
	g := wcGraph(t)
	rng := rand.New(rand.NewSource(11))
	ops := []string{"parser", "splitter", "counter"}
	for trial := 0; trial < 100; trial++ {
		repl := map[string]int{}
		for _, op := range ops {
			repl[op] = 1 + rng.Intn(40)
		}
		ratio := 1 + rng.Intn(8)
		eg, err := Build(g, repl, ratio)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			total := 0
			for _, v := range eg.OfOp(op) {
				if v.Count < 1 {
					t.Fatalf("trial %d: %s count %d", trial, v.Label(), v.Count)
				}
				total += v.Count
			}
			if total != repl[op] {
				t.Fatalf("trial %d: %s fused %d != repl %d", trial, op, total, repl[op])
			}
		}
		for _, v := range eg.Vertices {
			if v.Sink {
				continue
			}
			byStream := map[string]float64{}
			for _, e := range eg.Out(v.ID) {
				byStream[e.Stream] += e.Share
			}
			for s, sum := range byStream {
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("trial %d: %s stream %s share sum %v", trial, v.Label(), s, sum)
				}
			}
		}
	}
}
