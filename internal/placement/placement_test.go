package placement

import (
	"math/rand"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/profile"
)

func chain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "worker", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "worker", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "worker", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

func testStats() profile.Set {
	return profile.Set{
		"spout":  {Te: 100, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"worker": {Te: 1000, M: 64, N: 64, Selectivity: map[string]float64{"default": 1}},
		"sink":   {Te: 100, M: 32, N: 64, Selectivity: map[string]float64{}},
	}
}

func TestOSBalancesThreadCounts(t *testing.T) {
	m := numa.Synthetic("os", 4, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 6}, 1)
	p := OS(eg, m)
	if !p.Complete(eg) {
		t.Fatal("OS placement incomplete")
	}
	load := make([]int, m.Sockets)
	for _, v := range eg.Vertices {
		s, _ := p.SocketOf(v.ID)
		load[s] += v.Count
	}
	// 8 replicas over 4 sockets: max-min spread should be at most 1.
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Errorf("OS load imbalance: %v", load)
	}
}

func TestRRCyclesSockets(t *testing.T) {
	m := numa.Synthetic("rr", 3, 4, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	eg, _ := plan.Build(chain(t), nil, 1)
	p := RR(eg, m)
	order := eg.TopoOrder()
	for i, id := range order {
		s, ok := p.SocketOf(id)
		if !ok || int(s) != i%3 {
			t.Errorf("vertex %d on socket %v, want %d", id, s, i%3)
		}
	}
}

func TestFFPacksGreedily(t *testing.T) {
	m := numa.Synthetic("ff", 4, 8, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	p, err := FF(eg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete(eg) {
		t.Fatal("FF incomplete")
	}
	// Everything fits on socket 0 (spout 1 core + worker 1 core + sink):
	// first-fit packs them all there.
	for _, v := range eg.Vertices {
		if s, _ := p.SocketOf(v.ID); s != 0 {
			t.Errorf("%s on socket %d, want 0", v.Label(), s)
		}
	}
}

func TestFFRelaxesWhenOverloaded(t *testing.T) {
	// 1 socket x 1 core cannot hold the saturated chain under the strict
	// constraints; FF must still return a (relaxed) complete placement.
	m := numa.Synthetic("cramped", 1, 1, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	p, err := FF(eg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete(eg) {
		t.Fatal("FF with relaxation should still complete")
	}
}

func TestRandomIsCompleteAndDeterministicPerSeed(t *testing.T) {
	m := numa.ServerA()
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 4}, 1)
	p1 := Random(eg, m, rand.New(rand.NewSource(42)))
	p2 := Random(eg, m, rand.New(rand.NewSource(42)))
	if !p1.Complete(eg) {
		t.Fatal("random placement incomplete")
	}
	for _, v := range eg.Vertices {
		s1, _ := p1.SocketOf(v.ID)
		s2, _ := p2.SocketOf(v.ID)
		if s1 != s2 {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestBruteForceFindsFeasibleOptimum(t *testing.T) {
	m := numa.Synthetic("bf", 2, 2, 50, 200, 400, 50*numa.GB, 10*numa.GB, 5*numa.GB)
	cfg := &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), nil, 1)
	p, ev, err := BruteForce(eg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !ev.Feasible() {
		t.Fatal("brute force found no feasible plan")
	}
	// Exhaustive check: no feasible plan beats it.
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				pp := plan.NewPlacement()
				pp.Place(eg.Vertices[0].ID, numa.SocketID(s0))
				pp.Place(eg.Vertices[1].ID, numa.SocketID(s1))
				pp.Place(eg.Vertices[2].ID, numa.SocketID(s2))
				e, err := model.Evaluate(eg, pp, cfg, model.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if e.Feasible() && e.Throughput > ev.Throughput*(1+1e-9) {
					t.Fatalf("missed better plan: %v > %v", e.Throughput, ev.Throughput)
				}
			}
		}
	}
}

func TestBruteForceRejectsHugeSpace(t *testing.T) {
	m := numa.ServerA()
	cfg := &model.Config{Machine: m, Stats: testStats(), Ingress: model.Saturated}
	eg, _ := plan.Build(chain(t), map[string]int{"worker": 20}, 1)
	if _, _, err := BruteForce(eg, cfg); err == nil {
		t.Error("oversized brute force accepted")
	}
}
