// Package placement implements the competing placement strategies the
// paper evaluates against RLAS (Table 6 and Figure 13/14):
//
//   - OS: placement left to the operating system — modelled as a load-
//     spreading assignment that balances thread counts across sockets
//     without any notion of communication cost.
//   - FF: topological first-fit — greedily packs operators (producers
//     first) into the current socket until its resources are exhausted,
//     a stand-in for traffic-minimizing heuristics [T-Storm, Xu et al.].
//   - RR: round-robin over sockets — resource balancing in the spirit of
//     R-Storm and Flink's NUMA patch.
//   - Random: uniformly random placements for the Monte-Carlo study
//     (Figure 14).
//   - BruteForce: exhaustive optimal placement for tiny instances, used
//     to verify the branch-and-bound search.
//
// FF and RR are "enforced to guarantee resource constraints as much as
// possible": when no socket satisfies the constraints they gradually
// relax them (Section 6.4), so they always return a complete placement.
package placement

import (
	"fmt"
	"math/rand"

	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
)

// OS spreads vertices across sockets to balance per-socket thread count,
// ignoring communication entirely: a simple model of a general-purpose
// OS scheduler's load balancing on a NUMA machine.
func OS(eg *plan.ExecGraph, m *numa.Machine) *plan.Placement {
	p := plan.NewPlacement()
	load := make([]int, m.Sockets)
	for _, id := range eg.TopoOrder() {
		v := eg.Vertex(id)
		// Pick the least-loaded socket (ties to lowest index).
		best := 0
		for s := 1; s < m.Sockets; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += v.Count
		p.Place(id, numa.SocketID(best))
	}
	return p
}

// RR places vertices round-robin over sockets in topological order.
func RR(eg *plan.ExecGraph, m *numa.Machine) *plan.Placement {
	p := plan.NewPlacement()
	s := 0
	for _, id := range eg.TopoOrder() {
		p.Place(id, numa.SocketID(s))
		s = (s + 1) % m.Sockets
	}
	return p
}

// FF is topological first-fit: starting from the spout it packs each
// vertex into the lowest-numbered socket whose CPU and bandwidth
// constraints still hold under the model's (saturated) demand estimates.
// If no socket fits, constraints are relaxed by an increasing factor
// until the vertex can be placed — mirroring the paper's description of
// FF falling into "not-able-to-progress" situations and repacking with
// relaxed constraints, which tends to oversubscribe a few sockets.
func FF(eg *plan.ExecGraph, cfg *model.Config) (*plan.Placement, error) {
	m := cfg.Machine
	p := plan.NewPlacement()
	for _, relax := range []float64{1, 1.5, 2, 4, 8, 1e18} {
		p = plan.NewPlacement()
		ok := true
		for _, id := range eg.TopoOrder() {
			ev, err := model.Evaluate(eg, p, cfg, model.Options{Bound: true})
			if err != nil {
				return nil, err
			}
			placed := false
			for s := 0; s < m.Sockets; s++ {
				d := ev.VertexDemand(eg, cfg, id)
				if ev.CPUUsed[s]+d.CPU <= m.CyclesPerSocket*relax &&
					ev.BWUsed[s]+d.BW <= m.LocalBandwidth*relax {
					p.Place(id, numa.SocketID(s))
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("placement: first-fit could not place all vertices")
}

// Random places every vertex uniformly at random.
func Random(eg *plan.ExecGraph, m *numa.Machine, rng *rand.Rand) *plan.Placement {
	p := plan.NewPlacement()
	for _, v := range eg.Vertices {
		p.Place(v.ID, numa.SocketID(rng.Intn(m.Sockets)))
	}
	return p
}

// BruteForce enumerates every complete placement (m^n of them) and
// returns the feasible one with the highest modelled throughput, or nil
// if none is feasible. Only usable for tiny instances; it exists to
// verify the branch-and-bound optimizer.
func BruteForce(eg *plan.ExecGraph, cfg *model.Config) (*plan.Placement, *model.Result, error) {
	n := len(eg.Vertices)
	m := cfg.Machine.Sockets
	total := 1
	for i := 0; i < n; i++ {
		total *= m
		if total > 5_000_000 {
			return nil, nil, fmt.Errorf("placement: brute force space too large (%d vertices on %d sockets)", n, m)
		}
	}
	var best *plan.Placement
	var bestEval *model.Result
	assign := make([]int, n)
	for code := 0; code < total; code++ {
		c := code
		for i := 0; i < n; i++ {
			assign[i] = c % m
			c /= m
		}
		p := plan.NewPlacement()
		for i, v := range eg.Vertices {
			p.Place(v.ID, numa.SocketID(assign[i]))
		}
		ev, err := model.Evaluate(eg, p, cfg, model.Options{})
		if err != nil {
			return nil, nil, err
		}
		if !ev.Feasible() {
			continue
		}
		if bestEval == nil || ev.Throughput > bestEval.Throughput {
			best, bestEval = p, ev
		}
	}
	return best, bestEval, nil
}
