package engine

// Live telemetry wiring: RegisterObs publishes the engine's existing
// atomic counters as pull-based metric series and its lifecycle as
// journal events. Every series reads state the engine already
// maintains (task counters, inbox/ring cursors, pool accounting,
// watermark mirrors), so a scrape is race-free against a running
// engine and the data path gains no per-tuple work — the only hot-path
// addition anywhere is one predictable nil check at the sampled
// sink-latency site.

import (
	"strconv"
	"sync/atomic"
	"time"

	"briskstream/internal/obs"
)

// RegisterObs wires this engine into the metric group and journal.
// It clears the group first, so the adaptive loop — one fresh engine
// per segment — re-registers into the same group without leaking the
// dead engine's series. Call it after New and before Run; it also
// enables pool accounting (Config.TrackPools equivalent) so recycle
// hit rates are observable.
func (e *Engine) RegisterObs(g *obs.Group, jr *obs.Journal) {
	g.Clear()
	e.jr = jr

	g.Counter("brisk_runs_total", "Engine Run invocations.", nil, e.runSeq.Load)
	g.Counter("brisk_sink_tuples_total", "Tuples received by sink tasks this run.", nil, e.sink.Value)
	g.Counter("brisk_align_timeouts_total", "Checkpoint alignment attempts abandoned by AlignTimeout this run.", nil, e.alignTimeouts.Load)
	g.Gauge("brisk_pinned_tasks", "Task threads currently pinned to their socket's CPUs.", nil, func() float64 {
		return float64(e.pinned.Load())
	})
	g.Counter("brisk_queue_puts_total", "Jumbo batches inserted across all task inboxes (engine lifetime).", nil, func() uint64 {
		puts, _ := e.QueueStats()
		return puts
	})
	g.Counter("brisk_queue_gets_total", "Jumbo batches removed across all task inboxes (engine lifetime).", nil, func() uint64 {
		_, gets := e.QueueStats()
		return gets
	})

	ingest := func() uint64 {
		var n uint64
		for _, t := range e.tasks {
			if t.spout != nil {
				n += atomic.LoadUint64(&t.processed)
			}
		}
		return n
	}
	g.Counter("brisk_ingest_tuples_total", "Tuples emitted by spout tasks this run.", nil, ingest)
	g.RateWindow("brisk_ingest_rate_tps", "Rolling spout ingest rate (tuples/s).", nil, ingest)
	g.RateWindow("brisk_sink_rate_tps", "Rolling sink throughput (tuples/s).", nil, e.sink.Value)
	g.RateWindow("brisk_queue_put_rate_tps", "Rolling jumbo-batch enqueue rate (batches/s).", nil, func() uint64 {
		puts, _ := e.QueueStats()
		return puts
	})

	e.obsLatHist = g.Histogram("brisk_latency_ns", "Sampled end-to-end sink latency (ns, engine registration lifetime).", nil)
	e.obsLat = g.ValueWindow("brisk_latency_rolling_ns", "Rolling sampled sink latency (ns).", nil)

	for _, t := range e.tasks {
		t.pool.EnableStats()
		tl := []obs.L{
			{Key: "op", Value: t.op},
			{Key: "task", Value: t.label},
			{Key: "socket", Value: strconv.Itoa(int(t.socket))},
		}
		g.Counter("brisk_task_processed_total", "Tuples processed per task this run.", tl, func() uint64 {
			return atomic.LoadUint64(&t.processed)
		})
		g.Counter("brisk_task_emitted_total", "Tuples emitted per task this run.", tl, func() uint64 {
			return atomic.LoadUint64(&t.emitted)
		})
		g.Counter("brisk_task_service_ns_total", "Sampled operator service time per task (ns, profiling).", tl, func() uint64 {
			return atomic.LoadUint64(&t.serviceNs)
		})
		g.Counter("brisk_task_service_samples_total", "Sampled operator invocations per task (profiling).", tl, func() uint64 {
			return atomic.LoadUint64(&t.serviceSamples)
		})
		g.Counter("brisk_task_queue_wait_ns_total", "Cumulative queue wait of the task's input, weighted per tuple (each input batch's wait counted once per tuple it carries, ns), so the ratio to the batches counter is a per-tuple mean comparable across batch sizes.", tl, func() uint64 {
			return atomic.LoadUint64(&t.qwaitNs)
		})
		g.Counter("brisk_task_queue_wait_batches_total", "Tuples covered by the queue-wait accounting this run (per-tuple weighted, matching the ns counter).", tl, func() uint64 {
			return atomic.LoadUint64(&t.qwaitBatches)
		})
		if t.in != nil {
			t.qwaitWin = g.ValueWindow("brisk_task_queue_wait_ns", "Rolling per-batch queue wait of the task's input (ns).", tl)
		}
		if t.operator != nil {
			t.svcWin = g.ValueWindow("brisk_task_service_ns", "Rolling measured operator invocation time (ns; fed by profile-sampled and traced invocations).", tl)
		}
		g.Counter("brisk_pool_gets_total", "Tuple pool gets per task (engine lifetime).", tl, func() uint64 {
			gets, _ := t.pool.Stats()
			return gets
		})
		g.Counter("brisk_pool_puts_total", "Tuples recycled back per task pool (engine lifetime).", tl, func() uint64 {
			_, puts := t.pool.Stats()
			return puts
		})
		g.Counter("brisk_pool_ring_hits_total", "Pool gets satisfied from a reverse recycling ring (engine lifetime).", tl, t.pool.RingHits)
		if t.in != nil {
			g.Gauge("brisk_task_queue_depth", "Jumbo batches waiting in the task's inbox.", tl, func() float64 {
				return float64(t.in.Len())
			})
		}
		g.Gauge("brisk_task_watermark", "Task low watermark (event-time units; 0 before progress).", tl, func() float64 {
			return float64(presentableWM(atomic.LoadInt64(&t.wmLive)))
		})
		g.Gauge("brisk_task_watermark_lag_ms", "Wallclock minus task low watermark (ms-convention event time; 0 before progress).", tl, func() float64 {
			wm := presentableWM(atomic.LoadInt64(&t.wmLive))
			if wm == 0 {
				return 0
			}
			lag := time.Now().UnixMilli() - wm
			if lag < 0 {
				lag = 0
			}
			return float64(lag)
		})
	}

	// Per-edge ring counters: producer task → consumer task. Depth is
	// puts−gets of the edge's SPSC ring — exact, since both cursors are
	// the ring's own atomics.
	for _, t := range e.tasks {
		for _, oe := range t.outList {
			el := []obs.L{
				{Key: "producer", Value: t.label},
				{Key: "consumer", Value: oe.consumer.label},
			}
			ring := oe.ring
			g.Counter("brisk_edge_ring_puts_total", "Jumbo batches enqueued on the edge's SPSC ring (engine lifetime).", el, func() uint64 {
				puts, _ := ring.Stats()
				return puts
			})
			g.Counter("brisk_edge_ring_gets_total", "Jumbo batches dequeued from the edge's SPSC ring (engine lifetime).", el, func() uint64 {
				_, gets := ring.Stats()
				return gets
			})
			g.Gauge("brisk_edge_ring_depth", "Jumbo batches currently queued on the edge's SPSC ring.", el, func() float64 {
				puts, gets := ring.Stats()
				return float64(puts - gets)
			})
		}
	}

	if e.coord != nil {
		g.Counter("brisk_checkpoints_completed_total", "Checkpoints persisted by the coordinator.", nil, e.coord.Completed)
		g.Gauge("brisk_checkpoint_latest_id", "Highest completed checkpoint id.", nil, func() float64 {
			return float64(e.coord.LatestID())
		})
		ckptDur := g.Histogram("brisk_checkpoint_duration_seconds", "Checkpoint begin-to-persist duration (s).", nil)
		e.coord.SetOnComplete(func(id uint64, began, done time.Time) {
			d := done.Sub(began)
			ckptDur.Observe(d.Seconds())
			e.event("checkpoint_complete", "", map[string]string{
				"id":          strconv.FormatUint(id, 10),
				"duration_ms": strconv.FormatInt(d.Milliseconds(), 10),
			})
		})
	}
}

// RegisterTrace attaches a span ring to every task, so sampled tuples
// (Config.TraceSampleEvery) leave one span per hop for the tracer to
// assemble into end-to-end traces. Like RegisterObs it resets the
// tracer first, so the adaptive loop re-registers each segment's fresh
// engine into the same tracer without mixing span tables. Call it after
// New and before Run.
func (e *Engine) RegisterTrace(tr *obs.Tracer) {
	tr.Reset()
	for _, t := range e.tasks {
		t.spans = tr.AddTask(obs.TraceTask{
			Label:   t.label,
			Op:      t.op,
			Replica: t.replica,
			Socket:  int(t.socket),
			Source:  t.spout != nil,
			Sink:    t.isSink,
		}, 0)
	}
}

// presentableWM maps watermark sentinels to 0 so gauges do not swing
// between ±2^63 around real progress.
func presentableWM(wm int64) int64 {
	if wm == WatermarkMin || wm == WatermarkMax || wm == WatermarkIdle {
		return 0
	}
	return wm
}

// event emits one lifecycle event into the registered journal (no-op
// without RegisterObs). Events are rare — run/checkpoint/rescale
// cadence, never per tuple.
func (e *Engine) event(typ, task string, attrs map[string]string) {
	if e.jr == nil {
		return
	}
	e.jr.Emit(obs.Event{Type: typ, Task: task, Attrs: attrs})
}
