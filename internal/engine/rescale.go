package engine

// Elastic rescale: checkpoint/restore doubling as the state-migration
// mechanism for online re-planning. A completed aligned checkpoint is a
// consistent cut whose keyed operator snapshots are key-addressable
// (the window codecs encode per-(key, window) entries, tuple.Key hashes
// byte-stably), so a checkpoint taken at one replication can be
// re-sharded into an equivalent checkpoint for another: decode every
// keyed entry, route it to its new hash(key) % replicas owner, and
// re-frame per new task label. Restoring the re-sharded checkpoint on
// an engine built with the new replication — sources sought back to the
// recorded offsets — replays the exact post-cut stream into the
// re-partitioned state, which is what makes a rescaled run's output
// equal a static run's byte for byte.

import (
	"errors"
	"fmt"

	"briskstream/internal/checkpoint"
)

// ReshardCheckpoint translates a completed checkpoint of topo at its
// old replication into an equivalent checkpoint for newRepl (operator
// name -> replica count; absent means 1). Operators whose count is
// unchanged keep their snapshots verbatim. A rescaled stateful operator
// must implement checkpoint.Resharder (an instance is built from its
// topology factory just to re-shard); its new replicas all restart from
// the minimum of the old replicas' watermarks, which under-fires
// nothing — replayed punctuations re-advance it. Spout and sink counts
// must not change: replay offsets cannot be split or merged, and sinks
// observe the output being compared.
func ReshardCheckpoint(cp *checkpoint.Checkpoint, topo Topology, newRepl map[string]int) (*checkpoint.Checkpoint, error) {
	if cp == nil {
		return nil, errors.New("engine: ReshardCheckpoint needs a checkpoint")
	}
	out := &checkpoint.Checkpoint{ID: cp.ID, Tasks: make(map[string][]byte, len(cp.Tasks))}
	for _, n := range topo.App.Nodes() {
		oldCount := 0
		for {
			if _, ok := cp.Tasks[fmt.Sprintf("%s#%d", n.Name, oldCount)]; !ok {
				break
			}
			oldCount++
		}
		if oldCount == 0 {
			return nil, fmt.Errorf("engine: checkpoint %d has no snapshot for operator %q (topology changed?)", cp.ID, n.Name)
		}
		newCount := newRepl[n.Name]
		if newCount <= 0 {
			newCount = 1
		}
		if newCount == oldCount {
			for i := 0; i < oldCount; i++ {
				label := fmt.Sprintf("%s#%d", n.Name, i)
				out.Tasks[label] = cp.Tasks[label]
			}
			continue
		}
		if n.IsSpout {
			return nil, fmt.Errorf("engine: cannot rescale spout %q from %d to %d replicas (replay offsets are per-replica)", n.Name, oldCount, newCount)
		}
		// Unframe the old replicas: watermark, state flag, inner payload.
		minWm := int64(0)
		stateful := 0
		inners := make([][]byte, 0, oldCount)
		for i := 0; i < oldCount; i++ {
			label := fmt.Sprintf("%s#%d", n.Name, i)
			data := cp.Tasks[label]
			dec := checkpoint.NewDecoder(data)
			wm := dec.Int64()
			hasState := dec.Bool()
			if err := dec.Err(); err != nil {
				return nil, fmt.Errorf("engine: checkpoint %d task %s: %w", cp.ID, label, err)
			}
			if i == 0 || wm < minWm {
				minWm = wm
			}
			if hasState {
				stateful++
				inners = append(inners, data[len(data)-dec.Remaining():])
			}
		}
		if stateful != 0 && stateful != oldCount {
			return nil, fmt.Errorf("engine: operator %q has %d of %d stateful snapshots — cannot reshard a mixed checkpoint", n.Name, stateful, oldCount)
		}
		var shards [][]byte
		if stateful > 0 {
			factory, ok := topo.Operators[n.Name]
			if !ok {
				return nil, fmt.Errorf("engine: no operator factory for %q", n.Name)
			}
			rs, ok := factory().(checkpoint.Resharder)
			if !ok {
				return nil, fmt.Errorf("engine: operator %q holds state but does not implement checkpoint.Resharder — cannot rescale it", n.Name)
			}
			var err error
			if shards, err = rs.Reshard(inners, newCount); err != nil {
				return nil, fmt.Errorf("engine: reshard %q: %w", n.Name, err)
			}
			if len(shards) != newCount {
				return nil, fmt.Errorf("engine: reshard %q returned %d shards, want %d", n.Name, len(shards), newCount)
			}
		}
		for i := 0; i < newCount; i++ {
			enc := checkpoint.NewEncoder()
			enc.Int64(minWm)
			if stateful > 0 {
				enc.Bool(true)
				enc.Raw(shards[i])
			} else {
				enc.Bool(false)
			}
			out.Tasks[fmt.Sprintf("%s#%d", n.Name, i)] = enc.Bytes()
		}
	}
	return out, nil
}

// RestoreFrom arranges for the next Run to rebuild every task from the
// given checkpoint — typically one produced by ReshardCheckpoint, which
// exists only in memory and not in any coordinator store. The
// checkpoint's task labels must match this engine's topology exactly.
// Like Restore, it must not be called while a run is in progress.
func (e *Engine) RestoreFrom(cp *checkpoint.Checkpoint) error {
	if cp == nil {
		return errors.New("engine: RestoreFrom needs a checkpoint")
	}
	for _, t := range e.tasks {
		if _, ok := cp.Tasks[t.label]; !ok {
			return fmt.Errorf("engine: checkpoint %d has no snapshot for task %s", cp.ID, t.label)
		}
	}
	e.restoreCp = cp
	return nil
}
